#include "expr/condition.h"

#include <gtest/gtest.h>

namespace exotica::expr {
namespace {

TEST(ConditionTest, TrivialConditionIsAlwaysTrue) {
  Condition c;
  EXPECT_TRUE(c.is_trivial());
  EXPECT_EQ(c.source(), "TRUE");
  data::TypeRegistry reg;
  data::Container container = data::Container::Default(reg);
  ContainerResolver resolver(container);
  auto v = c.Evaluate(resolver);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  EXPECT_TRUE(c.Identifiers().empty());
}

TEST(ConditionTest, CompiledConditionEvaluates) {
  auto c = Condition::Compile("RC = 0");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->is_trivial());
  EXPECT_EQ(c->source(), "RC = 0");
  EXPECT_EQ(c->Identifiers(), (std::vector<std::string>{"RC"}));

  data::TypeRegistry reg;
  data::Container container = data::Container::Default(reg);
  ContainerResolver resolver(container);
  EXPECT_TRUE(*c->Evaluate(resolver));  // RC defaults to 0
  ASSERT_TRUE(container.Set("RC", data::Value(int64_t{1})).ok());
  EXPECT_FALSE(*c->Evaluate(resolver));
}

TEST(ConditionTest, CompileErrorSurfaces) {
  EXPECT_TRUE(Condition::Compile("RC = ").status().IsParseError());
}

TEST(ConditionTest, CopiesShareCompiledTree) {
  auto c = Condition::Compile("RC <> 0 AND RC < 5");
  ASSERT_TRUE(c.ok());
  Condition copy = *c;
  EXPECT_EQ(copy.source(), c->source());
}

}  // namespace
}  // namespace exotica::expr
