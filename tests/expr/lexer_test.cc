#include "expr/lexer.h"

#include <gtest/gtest.h>

namespace exotica::expr {
namespace {

std::vector<TokenKind> KindsOf(const std::string& src) {
  auto tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(ExprLexerTest, BasicOperators) {
  EXPECT_EQ(KindsOf("a = 1"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kEq,
                                    TokenKind::kLongLit, TokenKind::kEnd}));
  EXPECT_EQ(KindsOf("<> <= >= < > != ="),
            (std::vector<TokenKind>{TokenKind::kNeq, TokenKind::kLe,
                                    TokenKind::kGe, TokenKind::kLt,
                                    TokenKind::kGt, TokenKind::kNeq,
                                    TokenKind::kEq, TokenKind::kEnd}));
}

TEST(ExprLexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("And oR nOt TRUE false");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kAnd);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kOr);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNot);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kTrue);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kFalse);
}

TEST(ExprLexerTest, DottedIdentifiers) {
  auto tokens = Tokenize("Order.Ship.City State_1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Order.Ship.City");
  EXPECT_EQ((*tokens)[1].text, "State_1");
}

TEST(ExprLexerTest, Numbers) {
  auto tokens = Tokenize("42 3.5 1e3 2E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLongLit);
  EXPECT_EQ((*tokens)[0].long_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFloatLit);
  EXPECT_EQ((*tokens)[1].float_value, 3.5);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloatLit);
  EXPECT_EQ((*tokens)[2].float_value, 1000.0);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kFloatLit);
}

TEST(ExprLexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("\"ab\\\"c\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kStringLit);
  EXPECT_EQ((*tokens)[0].text, "ab\"c");
}

TEST(ExprLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"open").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ExprLexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("   ");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace exotica::expr
