// Property: for random expression trees, ToString() reparses to an
// identical tree (canonical-form fixpoint), and evaluation of the
// reparsed tree matches the original.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/container.h"
#include "expr/eval.h"
#include "expr/parser.h"

namespace exotica::expr {
namespace {

using data::ScalarType;
using data::Value;

NodePtr RandomExpr(Rng* rng, int depth);

NodePtr RandomLeaf(Rng* rng) {
  switch (rng->Uniform(0, 4)) {
    case 0: return Node::Literal(Value(rng->Uniform(-100, 100)));
    case 1: return Node::Literal(Value(rng->NextDouble() * 10));
    case 2: return Node::Literal(Value(rng->Bernoulli(0.5)));
    case 3: return Node::Identifier("i");
    default: return Node::Identifier("f");
  }
}

NodePtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.3)) return RandomLeaf(rng);
  switch (rng->Uniform(0, 7)) {
    case 0:
      return Node::Unary(UnaryOp::kNeg, RandomExpr(rng, depth - 1));
    case 1: {
      // NOT needs a boolean-ish operand for evaluation; for round-trip we
      // only care about syntax, so wrap a comparison.
      NodePtr cmp = Node::Binary(BinaryOp::kLt, RandomExpr(rng, depth - 1),
                                 RandomExpr(rng, depth - 1));
      return Node::Unary(UnaryOp::kNot, std::move(cmp));
    }
    case 2:
      return Node::Binary(BinaryOp::kAdd, RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    case 3:
      return Node::Binary(BinaryOp::kMul, RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    case 4:
      return Node::Binary(BinaryOp::kSub, RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    case 5: {
      NodePtr a = Node::Binary(BinaryOp::kLe, RandomExpr(rng, depth - 1),
                               RandomExpr(rng, depth - 1));
      NodePtr b = Node::Binary(BinaryOp::kNeq, RandomExpr(rng, depth - 1),
                               RandomExpr(rng, depth - 1));
      return Node::Binary(BinaryOp::kAnd, std::move(a), std::move(b));
    }
    default: {
      NodePtr a = Node::Binary(BinaryOp::kGt, RandomExpr(rng, depth - 1),
                               RandomExpr(rng, depth - 1));
      NodePtr b = Node::Binary(BinaryOp::kEq, RandomExpr(rng, depth - 1),
                               RandomExpr(rng, depth - 1));
      return Node::Binary(BinaryOp::kOr, std::move(a), std::move(b));
    }
  }
}

class ExprRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprRoundTripTest, CanonicalFormIsAFixpointAndEvaluatesEqually) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);

  data::TypeRegistry reg;
  data::StructType t("Env");
  ASSERT_TRUE(t.AddScalar("i", ScalarType::kLong).ok());
  ASSERT_TRUE(t.AddScalar("f", ScalarType::kFloat).ok());
  ASSERT_TRUE(reg.Register(std::move(t)).ok());
  auto env = data::Container::Create(reg, "Env");
  ASSERT_TRUE(env.ok());
  ASSERT_TRUE(env->Set("i", Value(rng.Uniform(-5, 5))).ok());
  ASSERT_TRUE(env->Set("f", Value(rng.NextDouble())).ok());
  ContainerResolver resolver(*env);

  for (int trial = 0; trial < 25; ++trial) {
    NodePtr original = RandomExpr(&rng, 4);
    std::string text = original->ToString();

    auto reparsed = Parse(text);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.status().ToString();
    EXPECT_EQ((*reparsed)->ToString(), text) << "not a fixpoint: " << text;

    // Evaluation agrees (both may fail identically, e.g. division issues
    // don't occur here, type errors can).
    auto v1 = Evaluate(*original, resolver);
    auto v2 = Evaluate(**reparsed, resolver);
    ASSERT_EQ(v1.ok(), v2.ok()) << text;
    if (v1.ok()) {
      EXPECT_EQ(*v1, *v2) << text;
    } else {
      EXPECT_EQ(v1.status().code(), v2.status().code()) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTripTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace exotica::expr
