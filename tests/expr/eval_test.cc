#include "expr/eval.h"

#include <gtest/gtest.h>

#include "expr/parser.h"

namespace exotica::expr {
namespace {

using data::ScalarType;
using data::Value;

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::StructType t("Vals");
    ASSERT_TRUE(t.AddScalar("i", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("f", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("s", ScalarType::kString).ok());
    ASSERT_TRUE(t.AddScalar("b", ScalarType::kBool).ok());
    ASSERT_TRUE(t.AddScalar("unset", ScalarType::kLong).ok());
    ASSERT_TRUE(reg_.Register(std::move(t)).ok());
    auto c = data::Container::Create(reg_, "Vals");
    ASSERT_TRUE(c.ok());
    container_ = std::make_unique<data::Container>(std::move(*c));
    ASSERT_TRUE(container_->Set("i", Value(int64_t{6})).ok());
    ASSERT_TRUE(container_->Set("f", Value(2.5)).ok());
    ASSERT_TRUE(container_->Set("s", Value("abc")).ok());
    ASSERT_TRUE(container_->Set("b", Value(true)).ok());
  }

  Result<Value> Eval(const std::string& src) {
    auto node = Parse(src);
    if (!node.ok()) return node.status();
    ContainerResolver resolver(*container_);
    return Evaluate(**node, resolver);
  }

  void ExpectBool(const std::string& src, bool want) {
    auto v = Eval(src);
    ASSERT_TRUE(v.ok()) << src << ": " << v.status().ToString();
    ASSERT_TRUE(v->is_bool()) << src;
    EXPECT_EQ(v->as_bool(), want) << src;
  }

  data::TypeRegistry reg_;
  std::unique_ptr<data::Container> container_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(*Eval("1 + 2 * 3"), Value(int64_t{7}));
  EXPECT_EQ(*Eval("7 / 2"), Value(int64_t{3}));     // long division
  EXPECT_EQ(*Eval("7.0 / 2"), Value(3.5));          // float contaminates
  EXPECT_EQ(*Eval("7 % 3"), Value(int64_t{1}));
  EXPECT_EQ(*Eval("-i"), Value(int64_t{-6}));
  EXPECT_EQ(*Eval("i + f"), Value(8.5));
}

TEST_F(EvalTest, DivisionAndModuloByZero) {
  EXPECT_TRUE(Eval("1 / 0").status().IsInvalidArgument());
  EXPECT_TRUE(Eval("1.0 / 0.0").status().IsInvalidArgument());
  EXPECT_TRUE(Eval("1 % 0").status().IsInvalidArgument());
  EXPECT_TRUE(Eval("1.5 % 2").status().IsInvalidArgument());
}

TEST_F(EvalTest, Comparisons) {
  ExpectBool("i = 6", true);
  ExpectBool("i <> 6", false);
  ExpectBool("i < 7", true);
  ExpectBool("f >= 2.5", true);
  ExpectBool("i = 6.0", true);  // numeric widening
  ExpectBool("s = \"abc\"", true);
  ExpectBool("s < \"abd\"", true);
  ExpectBool("b = TRUE", true);
}

TEST_F(EvalTest, MixedKindComparisonFails) {
  EXPECT_FALSE(Eval("s = 1").ok());
  EXPECT_FALSE(Eval("b < TRUE").ok());
  EXPECT_FALSE(Eval("s > 1.0").ok());
}

TEST_F(EvalTest, LogicAndShortCircuit) {
  ExpectBool("TRUE AND FALSE", false);
  ExpectBool("TRUE OR FALSE", true);
  ExpectBool("NOT FALSE", true);
  // Short circuit: the unevaluable right side is never touched.
  ExpectBool("FALSE AND unset = 1", false);
  ExpectBool("TRUE OR unset = 1", true);
  // But it is touched when the left side does not decide.
  EXPECT_FALSE(Eval("TRUE AND unset = 1").ok());
}

TEST_F(EvalTest, LogicTypeErrors) {
  EXPECT_FALSE(Eval("1 AND TRUE").ok());
  EXPECT_FALSE(Eval("NOT 3").ok());
  EXPECT_FALSE(Eval("-s").ok());
}

TEST_F(EvalTest, UnsetDataIsAnError) {
  auto st = Eval("unset = 0").status();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
}

TEST_F(EvalTest, UnknownIdentifierIsAnError) {
  EXPECT_TRUE(Eval("ghost = 1").status().IsNotFound());
}

TEST_F(EvalTest, EvaluateBoolRejectsNonBoolean) {
  auto node = Parse("1 + 1");
  ASSERT_TRUE(node.ok());
  ContainerResolver resolver(*container_);
  EXPECT_FALSE(EvaluateBool(**node, resolver).ok());
}

}  // namespace
}  // namespace exotica::expr
