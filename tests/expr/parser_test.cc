#include "expr/parser.h"

#include <gtest/gtest.h>

namespace exotica::expr {
namespace {

std::string Canon(const std::string& src) {
  auto node = Parse(src);
  EXPECT_TRUE(node.ok()) << src << ": " << node.status().ToString();
  return node.ok() ? (*node)->ToString() : "<error>";
}

TEST(ExprParserTest, Precedence) {
  EXPECT_EQ(Canon("1 + 2 * 3"), "1 + 2 * 3");
  EXPECT_EQ(Canon("(1 + 2) * 3"), "(1 + 2) * 3");
  EXPECT_EQ(Canon("a = 1 AND b = 2 OR c = 3"),
            "a = 1 AND b = 2 OR c = 3");
  EXPECT_EQ(Canon("a = 1 AND (b = 2 OR c = 3)"),
            "a = 1 AND (b = 2 OR c = 3)");
  EXPECT_EQ(Canon("NOT a = 1"), "NOT (a = 1)");
}

TEST(ExprParserTest, CanonicalFormReparsesIdentically) {
  const char* sources[] = {
      "RC = 0",
      "State_1 = 1 AND State_2 <> 0",
      "NOT (x < 3 OR y >= 2.5)",
      "a - b - c",
      "a % 2 = 0",
      "-x + 3 > 0",
      "\"abc\" = name",
      "TRUE OR FALSE",
  };
  for (const char* src : sources) {
    std::string once = Canon(src);
    EXPECT_EQ(Canon(once), once) << src;
  }
}

TEST(ExprParserTest, LeftAssociativity) {
  // (a - b) - c, not a - (b - c): check by structure via canonical text of
  // an expression where it matters.
  auto node = Parse("10 - 4 - 3");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->rhs->literal, data::Value(int64_t{3}));
}

TEST(ExprParserTest, ChainedComparisonRejected) {
  EXPECT_FALSE(Parse("a = b = c").ok());
  EXPECT_FALSE(Parse("1 < 2 < 3").ok());
}

TEST(ExprParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("1 +").ok());
  EXPECT_FALSE(Parse("(1").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("AND").ok());
}

TEST(ExprParserTest, CollectIdentifiers) {
  auto node = Parse("RC = 0 AND State_1 = 1 OR RC = 2");
  ASSERT_TRUE(node.ok());
  std::vector<std::string> ids;
  (*node)->CollectIdentifiers(&ids);
  EXPECT_EQ(ids, (std::vector<std::string>{"RC", "State_1"}));
}

TEST(ExprParserTest, CloneIsDeepAndEqual) {
  auto node = Parse("a + 1 = b");
  ASSERT_TRUE(node.ok());
  NodePtr clone = (*node)->Clone();
  EXPECT_EQ(clone->ToString(), (*node)->ToString());
  EXPECT_NE(clone.get(), node->get());
}

}  // namespace
}  // namespace exotica::expr
