#include "expr/compile.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "expr/eval.h"
#include "expr/parser.h"
#include "expr/vm.h"

namespace exotica::expr {
namespace {

using data::ScalarType;
using data::Value;
using Op = CompiledCondition::Op;

class CompileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::StructType t("Vals");
    ASSERT_TRUE(t.AddScalar("i", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("f", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("s", ScalarType::kString).ok());
    ASSERT_TRUE(t.AddScalar("b", ScalarType::kBool).ok());
    ASSERT_TRUE(t.AddScalar("unset", ScalarType::kLong).ok());
    ASSERT_TRUE(reg_.Register(std::move(t)).ok());
    auto c = data::Container::Create(reg_, "Vals");
    ASSERT_TRUE(c.ok());
    container_ = std::make_unique<data::Container>(std::move(*c));
    ASSERT_TRUE(container_->Set("i", Value(int64_t{6})).ok());
    ASSERT_TRUE(container_->Set("f", Value(2.5)).ok());
    ASSERT_TRUE(container_->Set("s", Value("abc")).ok());
    ASSERT_TRUE(container_->Set("b", Value(true)).ok());
  }

  Result<CompiledCondition> Compile(const std::string& src) {
    auto node = Parse(src);
    if (!node.ok()) return node.status();
    node_ = std::move(*node);
    return ConditionCompiler::Compile(node_.get(), *container_);
  }

  Result<Value> Run(const std::string& src) {
    EXO_ASSIGN_OR_RETURN(CompiledCondition prog, Compile(src));
    return prog.Evaluate(*container_);
  }

  data::TypeRegistry reg_;
  std::unique_ptr<data::Container> container_;
  NodePtr node_;
};

TEST_F(CompileTest, EmptyProgramIsTrue) {
  auto prog = ConditionCompiler::Compile(nullptr, *container_);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->empty());
  EXPECT_EQ(prog->source(), "TRUE");
  auto v = prog->Evaluate(*container_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(true));
}

TEST_F(CompileTest, ConstantFoldingCollapsesLiteralSubtrees) {
  auto prog = Compile("1 + 2 * 3 = 7");
  ASSERT_TRUE(prog.ok());
  // The whole identifier-free expression folds to a single constant push.
  ASSERT_EQ(prog->code().size(), 1u);
  EXPECT_EQ(prog->code()[0].op, Op::kConst);
  EXPECT_EQ(prog->max_stack(), 1u);
  auto v = prog->Evaluate(*container_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(true));
}

TEST_F(CompileTest, ErroringConstantsAreNotFolded) {
  // 1/0 must stay unfolded so evaluation reproduces the tree-walk error.
  auto prog = Compile("1 / 0 = 1");
  ASSERT_TRUE(prog.ok());
  EXPECT_GT(prog->code().size(), 1u);
  auto v = prog->Evaluate(*container_);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
}

TEST_F(CompileTest, IdentifiersBindToLayoutSlots) {
  auto prog = Compile("i = 6");
  ASSERT_TRUE(prog.ok());
  ASSERT_EQ(prog->code().size(), 3u);
  EXPECT_EQ(prog->code()[0].op, Op::kLoad);
  EXPECT_EQ(prog->code()[0].a, container_->SlotIndex("i"));
  EXPECT_EQ(prog->bound_type(), "Vals");
  EXPECT_GE(prog->min_slots(), container_->SlotIndex("i") + 1);
  auto v = prog->Evaluate(*container_);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value(true));
}

TEST_F(CompileTest, UnknownIdentifierIsUnsupported) {
  auto prog = Compile("nosuch = 1");
  ASSERT_FALSE(prog.ok());
  EXPECT_TRUE(prog.status().IsUnsupported());
}

TEST_F(CompileTest, ArithmeticAndComparisonsMatchTreeWalk) {
  for (const char* src :
       {"i + f", "i - 2", "i * i", "i / 2", "i % 4", "-i", "i < f", "i <= 6",
        "i > f", "i >= 7", "i = 6", "i <> 6", "s = \"abc\"", "s < \"b\"",
        "f + 1.5", "7 / 2", "7.0 / 2", "i + f * 2.0 - 1"}) {
    auto node = Parse(src);
    ASSERT_TRUE(node.ok()) << src;
    auto prog = ConditionCompiler::Compile(node->get(), *container_);
    ASSERT_TRUE(prog.ok()) << src << ": " << prog.status().ToString();
    ContainerResolver resolver(*container_);
    auto tree = Evaluate(**node, resolver);
    auto vm = prog->Evaluate(*container_);
    ASSERT_TRUE(tree.ok()) << src;
    ASSERT_TRUE(vm.ok()) << src << ": " << vm.status().ToString();
    EXPECT_EQ(*tree, *vm) << src;
  }
}

TEST_F(CompileTest, ShortCircuitAndSkipsRhs) {
  // Unset data on the rhs must not be touched when the lhs decides.
  auto v = Run("i = 0 AND unset = 1");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, Value(false));

  v = Run("i = 6 OR unset = 1");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, Value(true));
}

TEST_F(CompileTest, NonShortCircuitedRhsStillErrors) {
  auto v = Run("i = 6 AND unset = 1");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsFailedPrecondition());
  EXPECT_NE(v.status().ToString().find("unset"), std::string::npos);
}

TEST_F(CompileTest, NullOperandErrorMatchesTreeWalkMessage) {
  auto node = Parse("unset + 1 = 2");
  ASSERT_TRUE(node.ok());
  auto prog = ConditionCompiler::Compile(node->get(), *container_);
  ASSERT_TRUE(prog.ok());
  ContainerResolver resolver(*container_);
  auto tree = Evaluate(**node, resolver);
  auto vm = prog->Evaluate(*container_);
  ASSERT_FALSE(tree.ok());
  ASSERT_FALSE(vm.ok());
  EXPECT_EQ(tree.status().ToString(), vm.status().ToString());
}

TEST_F(CompileTest, TypeErrorMessagesMatchTreeWalk) {
  for (const char* src : {"s + 1", "b < TRUE", "i % 2.5", "NOT i", "-s",
                          "b AND 1", "1 OR b", "s * s"}) {
    auto node = Parse(src);
    ASSERT_TRUE(node.ok()) << src;
    auto prog = ConditionCompiler::Compile(node->get(), *container_);
    ASSERT_TRUE(prog.ok()) << src;
    ContainerResolver resolver(*container_);
    auto tree = Evaluate(**node, resolver);
    auto vm = prog->Evaluate(*container_);
    ASSERT_FALSE(tree.ok()) << src;
    ASSERT_FALSE(vm.ok()) << src;
    EXPECT_EQ(tree.status().ToString(), vm.status().ToString()) << src;
  }
}

TEST_F(CompileTest, EvaluateBoolRejectsNonBooleanResult) {
  auto prog = Compile("i + 1");
  ASSERT_TRUE(prog.ok());
  auto b = prog->EvaluateBool(*container_);
  ASSERT_FALSE(b.ok());
  // Message parity with Condition::Evaluate's non-boolean error.
  EXPECT_NE(b.status().ToString().find("did not evaluate to a boolean"),
            std::string::npos);
}

TEST_F(CompileTest, DeepExpressionOverflowsToUnsupported) {
  // Right-leaning additions of identifiers: each level needs one more
  // stack slot, and identifiers prevent folding.
  std::string src = "i";
  for (int i = 0; i < 80; ++i) src = "i + (" + src + ")";
  auto prog = Compile(src);
  ASSERT_FALSE(prog.ok());
  EXPECT_TRUE(prog.status().IsUnsupported());
}

TEST_F(CompileTest, SourceIsCanonicalRootText) {
  auto prog = Compile("i=6 AND b");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->source(), node_->ToString());
}

}  // namespace
}  // namespace exotica::expr
