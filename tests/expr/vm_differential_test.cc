// Differential property test: the compiled-condition VM must agree with
// the tree-walk evaluator on every expression it accepts — same value on
// success, same status (code AND message) on error — across randomized
// expressions and randomized container states, including null members and
// type errors. Four-way since native codegen landed: tree-walk vs the
// generic VM (EvaluateGeneric) vs the typed monomorphic VM (Evaluate,
// which runs the typed program whenever the compiler emitted one) vs the
// native x86-64 function (codegen::NativeCondition, compiled from the
// same typed program) must all be byte-identical. The native arm skips
// itself on builds without the emitter.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "codegen/step_jit.h"
#include "common/rng.h"
#include "data/container.h"
#include "expr/ast.h"
#include "expr/compile.h"
#include "expr/eval.h"
#include "expr/parser.h"
#include "expr/vm.h"

namespace exotica::expr {
namespace {

using data::ScalarType;
using data::Value;

/// Random expression generator. Value magnitudes are capped at 3 and
/// depth at 5, so the largest product chain a tree can build stays far
/// below int64 overflow (3^32 < 2^63) — the test must never trip UBSan
/// on its own inputs, only exercise the evaluators' defined error paths
/// (div/mod by zero, nulls, type mismatches).
class ExprGen {
 public:
  explicit ExprGen(Rng* rng) : rng_(rng) {}

  static constexpr const char* kIdents[] = {"la", "lb", "lzero", "lnull",
                                            "fa", "fb", "fnull",
                                            "sa", "snull", "ba", "bnull"};

  NodePtr Gen(int depth) {
    // Leaves at the depth cap; otherwise mostly interior nodes.
    int64_t pick = rng_->Uniform(0, depth <= 0 ? 1 : 9);
    switch (pick) {
      case 0:  // literal
        switch (rng_->Uniform(0, 3)) {
          case 0: return Node::Literal(Value(rng_->Uniform(-3, 3)));
          case 1: return Node::Literal(Value(0.5 * rng_->Uniform(-6, 6)));
          case 2: return Node::Literal(Value(rng_->Bernoulli(0.5)));
          default:
            return Node::Literal(
                Value(std::string(1, "abc"[rng_->Uniform(0, 2)])));
        }
      case 1:  // identifier
        return Node::Identifier(
            kIdents[rng_->Uniform(0, static_cast<int64_t>(std::size(kIdents)) - 1)]);
      case 2:  // unary
        return Node::Unary(rng_->Bernoulli(0.5) ? UnaryOp::kNot : UnaryOp::kNeg,
                           Gen(depth - 1));
      default: {  // binary
        static constexpr BinaryOp kOps[] = {
            BinaryOp::kAnd, BinaryOp::kOr,  BinaryOp::kEq,  BinaryOp::kNeq,
            BinaryOp::kLt,  BinaryOp::kLe,  BinaryOp::kGt,  BinaryOp::kGe,
            BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
            BinaryOp::kMod};
        BinaryOp op =
            kOps[rng_->Uniform(0, static_cast<int64_t>(std::size(kOps)) - 1)];
        return Node::Binary(op, Gen(depth - 1), Gen(depth - 1));
      }
    }
  }

 private:
  Rng* rng_;
};

class VmDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::StructType t("Fuzz");
    ASSERT_TRUE(t.AddScalar("la", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("lb", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("lzero", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("lnull", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("fa", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("fb", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("fnull", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("sa", ScalarType::kString).ok());
    ASSERT_TRUE(t.AddScalar("snull", ScalarType::kString).ok());
    ASSERT_TRUE(t.AddScalar("ba", ScalarType::kBool).ok());
    ASSERT_TRUE(t.AddScalar("bnull", ScalarType::kBool).ok());
    ASSERT_TRUE(reg_.Register(std::move(t)).ok());
  }

  /// A randomized container: the *null members stay unwritten (they have
  /// no defaults, so they read null — the unset-data error path); the
  /// rest get small random values, lzero is 0 half the time (div/mod).
  data::Container RandomContainer(Rng* rng) {
    auto c = data::Container::Create(reg_, "Fuzz");
    EXPECT_TRUE(c.ok());
    data::Container container = std::move(*c);
    EXPECT_TRUE(container.Set("la", Value(rng->Uniform(-3, 3))).ok());
    EXPECT_TRUE(container.Set("lb", Value(rng->Uniform(-3, 3))).ok());
    EXPECT_TRUE(
        container
            .Set("lzero", Value(rng->Bernoulli(0.5) ? int64_t{0}
                                                    : rng->Uniform(1, 3)))
            .ok());
    EXPECT_TRUE(container.Set("fa", Value(0.5 * rng->Uniform(-6, 6))).ok());
    EXPECT_TRUE(container.Set("fb", Value(0.5 * rng->Uniform(-6, 6))).ok());
    EXPECT_TRUE(
        container.Set("sa", Value(std::string(1, "abc"[rng->Uniform(0, 2)])))
            .ok());
    EXPECT_TRUE(container.Set("ba", Value(rng->Bernoulli(0.5))).ok());
    return container;
  }

  data::TypeRegistry reg_;
};

TEST_F(VmDifferentialTest, TenThousandRandomExpressionsAgree) {
  Rng rng(20260806);
  ExprGen gen(&rng);

  const bool native_available = codegen::NativeCodegenAvailable();
  int compiled = 0, agreed_values = 0, agreed_errors = 0, typed = 0;
  int native_compiled = 0;
  constexpr int kExpressions = 12000;
  for (int i = 0; i < kExpressions; ++i) {
    NodePtr node = gen.Gen(5);
    data::Container container = RandomContainer(&rng);

    auto prog = ConditionCompiler::Compile(node.get(), container);
    // Every identifier the generator emits exists in Fuzz and depth is
    // bounded, so compilation must always succeed.
    ASSERT_TRUE(prog.ok()) << node->ToString() << ": "
                           << prog.status().ToString();
    ++compiled;
    if (prog->typed()) ++typed;

    ContainerResolver resolver(container);
    Result<Value> tree = Evaluate(*node, resolver);
    Result<Value> generic = prog->EvaluateGeneric(container);
    Result<Value> vm = prog->Evaluate(container);  // typed when available

    // Fourth arm: the typed program lowered to machine code. Every typed
    // program uses only ops the emitter supports, so compilation must
    // succeed whenever a typed program exists at all.
    std::unique_ptr<codegen::NativeCondition> native;
    if (native_available && prog->typed()) {
      native = codegen::NativeCondition::Compile(*prog);
      ASSERT_NE(native, nullptr) << node->ToString();
      ++native_compiled;
      Result<Value> nat = native->Evaluate(container);
      ASSERT_EQ(vm.ok(), nat.ok())
          << node->ToString() << "\n vm:     "
          << (vm.ok() ? vm->ToString() : vm.status().ToString())
          << "\n native: "
          << (nat.ok() ? nat->ToString() : nat.status().ToString());
      if (vm.ok()) {
        ASSERT_EQ(*vm, *nat) << node->ToString();
      } else {
        ASSERT_EQ(vm.status().ToString(), nat.status().ToString())
            << node->ToString();
      }
    }

    ASSERT_EQ(tree.ok(), generic.ok())
        << node->ToString() << "\n tree:    "
        << (tree.ok() ? tree->ToString() : tree.status().ToString())
        << "\n generic: "
        << (generic.ok() ? generic->ToString()
                         : generic.status().ToString());
    ASSERT_EQ(tree.ok(), vm.ok())
        << node->ToString() << "\n tree: "
        << (tree.ok() ? tree->ToString() : tree.status().ToString())
        << "\n vm:   " << (vm.ok() ? vm->ToString() : vm.status().ToString());
    if (tree.ok()) {
      // No NaN can occur (division by zero errors out, % is long-only),
      // so structural Value equality is exact.
      ASSERT_EQ(*tree, *generic) << node->ToString();
      ASSERT_EQ(*tree, *vm) << node->ToString();
      ++agreed_values;
    } else {
      ASSERT_EQ(tree.status().ToString(), generic.status().ToString())
          << node->ToString();
      ASSERT_EQ(tree.status().ToString(), vm.status().ToString())
          << node->ToString();
      ++agreed_errors;
    }

    // When the canonical text reparses (the generator can build trees the
    // grammar cannot express, e.g. chained comparisons), the reparsed
    // tree must compile to the same outcome — that is the path plan
    // compilation actually consumes.
    if (i % 100 == 0) {
      auto reparsed = Parse(node->ToString());
      if (reparsed.ok()) {
        auto prog2 = ConditionCompiler::Compile(reparsed->get(), container);
        ASSERT_TRUE(prog2.ok());
        Result<Value> vm2 = prog2->Evaluate(container);
        ASSERT_EQ(vm.ok(), vm2.ok()) << node->ToString();
        if (vm.ok()) {
          ASSERT_EQ(*vm, *vm2) << node->ToString();
        }
      }
    }
  }
  EXPECT_EQ(compiled, kExpressions);
  // Sanity: the generator must actually exercise both regimes, and the
  // typing pass must monomorphize a meaningful share of the corpus (the
  // generator mixes string identifiers/literals in, so never all of it).
  EXPECT_GT(agreed_values, 1000);
  EXPECT_GT(agreed_errors, 1000);
  EXPECT_GT(typed, 1000);
  EXPECT_LT(typed, kExpressions);
  // On emitter-enabled builds the native arm must have actually run over
  // the full typed share of the corpus.
  if (native_available) {
    EXPECT_EQ(native_compiled, typed);
  }
}

TEST_F(VmDifferentialTest, BoolCoercionAgreesUnderEvaluateBool) {
  Rng rng(7);
  ExprGen gen(&rng);
  for (int i = 0; i < 3000; ++i) {
    NodePtr node = gen.Gen(4);
    data::Container container = RandomContainer(&rng);
    auto prog = ConditionCompiler::Compile(node.get(), container);
    ASSERT_TRUE(prog.ok());

    ContainerResolver resolver(container);
    Result<bool> tree = EvaluateBool(*node, resolver);
    Result<bool> generic = prog->EvaluateBoolGeneric(container);
    Result<bool> vm = prog->EvaluateBool(container);  // typed when available
    ASSERT_EQ(tree.ok(), generic.ok()) << node->ToString();
    ASSERT_EQ(tree.ok(), vm.ok()) << node->ToString();
    if (codegen::NativeCodegenAvailable() && prog->typed()) {
      auto native = codegen::NativeCondition::Compile(*prog);
      ASSERT_NE(native, nullptr) << node->ToString();
      Result<bool> nat = native->EvaluateBool(container);
      ASSERT_EQ(vm.ok(), nat.ok()) << node->ToString();
      if (vm.ok()) {
        ASSERT_EQ(*vm, *nat) << node->ToString();
      } else {
        ASSERT_EQ(vm.status().ToString(), nat.status().ToString())
            << node->ToString();
      }
    }
    if (tree.ok()) {
      ASSERT_EQ(*tree, *generic) << node->ToString();
      ASSERT_EQ(*tree, *vm) << node->ToString();
    } else {
      ASSERT_EQ(tree.status().ToString(), generic.status().ToString())
          << node->ToString();
      ASSERT_EQ(tree.status().ToString(), vm.status().ToString())
          << node->ToString();
    }
  }
}

}  // namespace
}  // namespace exotica::expr
