// RetryPolicy semantics: attempt counting across reschedules and crash
// retries, exponential backoff over the injected clock, permanent-failure
// short-circuit, per-activity overrides, the instance retry budget, and
// the quarantine transitions they all feed.

#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "wf/builder.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindCrashy;
using test::DeclareDefaultProgram;

class RetryPolicyTest : public ::testing::Test {
 protected:
  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

// Regression for the ProgramContext.attempt contract ("1-based; >1 after
// reschedules / failures"): the counter must keep incrementing across a
// crash retry followed by exit-condition reschedules, not reset per cause.
TEST_F(RetryPolicyTest, AttemptIncrementsAcrossReschedulesAndCrashRetries) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "rec").ok());
  std::vector<int> attempts;
  ASSERT_TRUE(programs_
                  .Bind("rec",
                        [&attempts](const data::Container&,
                                    data::Container* output,
                                    const wfrt::ProgramContext& ctx) -> Status {
                          attempts.push_back(ctx.attempt);
                          if (ctx.attempt == 1) {
                            return Status::Internal("crash on first attempt");
                          }
                          return output->Set(
                              "RC", data::Value(int64_t{ctx.attempt}));
                        })
                  .ok());

  wf::ProcessBuilder b(&store_, "attempts");
  // Attempt 1 crashes; attempts 2 and 3 run but only RC = 3 satisfies the
  // exit condition, so attempt 2 is an exit-condition reschedule.
  b.Program("A", "rec").ExitWhen("RC = 3");
  b.MapToOutput("A", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("attempts");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(attempts, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.stats().program_failures, 1u);
  EXPECT_EQ(engine.stats().retries, 1u);
  EXPECT_EQ(engine.stats().reschedules, 2u);  // 1 crash + 1 exit reschedule
}

TEST_F(RetryPolicyTest, ExponentialBackoffOverInjectedClock) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 3).ok());

  wf::ProcessBuilder b(&store_, "backoff");
  b.Program("A", "crashy");
  ASSERT_TRUE(b.Register().ok());

  ManualClock clock(1000);
  wfrt::EngineOptions opts;
  opts.clock = &clock;
  opts.retry.initial_backoff_micros = 1000;
  opts.retry.backoff_multiplier = 2.0;
  opts.on_backoff = [&clock](Micros delay) { clock.Advance(delay); };
  wfrt::Engine engine(&store_, &programs_, opts);

  auto id = engine.RunToCompletion("backoff");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.stats().retries, 3u);
  EXPECT_EQ(engine.stats().backoff_waits, 3u);
  // 1000 + 2000 + 4000.
  EXPECT_EQ(engine.stats().backoff_wait_micros, 7000u);
  EXPECT_EQ(clock.NowMicros(), 1000 + 7000);

  auto trace =
      engine.audit().CompactTrace(*id, {wfrt::AuditKind::kRetryBackoff});
  EXPECT_EQ(trace.size(), 3u);
}

TEST_F(RetryPolicyTest, BackoffIsCappedAndJitterIsDeterministic) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());

  wf::ProcessBuilder b(&store_, "capped");
  b.Program("A", "crashy");
  ASSERT_TRUE(b.Register().ok());

  auto run = [&](uint64_t seed) {
    wfrt::ProgramRegistry programs;
    EXPECT_TRUE(BindCrashy(&programs, "crashy", 5).ok());
    wfrt::EngineOptions opts;
    opts.retry.initial_backoff_micros = 1000;
    opts.retry.backoff_multiplier = 2.0;
    opts.retry.max_backoff_micros = 3000;
    opts.retry.jitter = 0.5;
    opts.retry_jitter_seed = seed;
    wfrt::Engine engine(&store_, &programs, opts);
    EXPECT_TRUE(engine.RunToCompletion("capped").ok());
    return engine.stats().backoff_wait_micros;
  };

  uint64_t a = run(7);
  uint64_t b2 = run(7);
  EXPECT_EQ(a, b2);  // same seed, same schedule
  // Jitter stays within +/- 50% of the un-jittered (capped) total:
  // 1000 + 2000 + 3000 + 3000 + 3000 = 12000.
  EXPECT_GE(a, 6000u);
  EXPECT_LE(a, 18000u);
}

TEST_F(RetryPolicyTest, PermanentFailureShortCircuitsRetries) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "broken").ok());
  int calls = 0;
  ASSERT_TRUE(programs_
                  .Bind("broken",
                        [&calls](const data::Container&, data::Container*,
                                 const wfrt::ProgramContext&) -> Status {
                          ++calls;
                          return Status::Unsupported("bad request shape");
                        })
                  .ok());

  wf::ProcessBuilder b(&store_, "permanent");
  b.Program("A", "broken");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("permanent");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(calls, 1);  // no retry of a permanent error
  EXPECT_TRUE(engine.IsFailed(*id));
  EXPECT_EQ(engine.stats().permanent_failures, 1u);
  EXPECT_EQ(engine.stats().retries, 0u);
  auto trace =
      engine.audit().CompactTrace(*id, {wfrt::AuditKind::kPermanentFailure});
  EXPECT_EQ(trace.size(), 1u);
}

TEST_F(RetryPolicyTest, CustomPermanentClassifier) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 100).ok());

  wf::ProcessBuilder b(&store_, "classified");
  b.Program("A", "crashy");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  // Treat the (normally transient) Internal crash as permanent.
  opts.retry.is_permanent = [](const Status& s) { return s.IsInternal(); };
  wfrt::Engine engine(&store_, &programs_, opts);
  auto id = engine.StartProcess("classified");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.IsFailed(*id));
  EXPECT_EQ(engine.stats().program_failures, 1u);
}

TEST_F(RetryPolicyTest, PerActivityOverrideBeatsEngineDefault) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy2").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 3).ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy2", 3).ok());

  wf::ProcessBuilder b(&store_, "override");
  b.Program("A", "crashy").Program("B", "crashy2");
  b.Connect("A", "B");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.retry.max_attempts = 10;      // default would survive 3 crashes
  opts.activity_retry["A"].max_attempts = 2;  // A gives up earlier
  wfrt::Engine engine(&store_, &programs_, opts);
  auto id = engine.StartProcess("override");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.IsFailed(*id));
  EXPECT_EQ(engine.stats().program_failures, 2u);
  ASSERT_EQ(engine.FailedInstances().size(), 1u);
  EXPECT_NE(engine.FailedInstances()[0].reason.find("activity A"),
            std::string::npos);
}

TEST_F(RetryPolicyTest, InstanceRetryBudgetSpansActivities) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy2").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 2).ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy2", 2).ok());

  wf::ProcessBuilder b(&store_, "budget");
  b.Program("A", "crashy").Program("B", "crashy2");
  b.Connect("A", "B");
  ASSERT_TRUE(b.Register().ok());

  // Four retries needed in total (two per activity); a budget of 3 lets A
  // through but quarantines on B's second crash.
  wfrt::EngineOptions opts;
  opts.retry.instance_retry_budget = 3;
  wfrt::Engine engine(&store_, &programs_, opts);
  auto id = engine.StartProcess("budget");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.IsFailed(*id));
  ASSERT_EQ(engine.FailedInstances().size(), 1u);
  EXPECT_NE(engine.FailedInstances()[0].reason.find("retry budget"),
            std::string::npos);

  // A budget of 4 is enough for the same process to finish.
  wfrt::ProgramRegistry programs2;
  ASSERT_TRUE(BindCrashy(&programs2, "crashy", 2).ok());
  ASSERT_TRUE(BindCrashy(&programs2, "crashy2", 2).ok());
  wfrt::EngineOptions opts2;
  opts2.retry.instance_retry_budget = 4;
  wfrt::Engine engine2(&store_, &programs2, opts2);
  EXPECT_TRUE(engine2.RunToCompletion("budget").ok());
}

TEST_F(RetryPolicyTest, QuarantinedInstanceDoesNotBlockOthers) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "picky").ok());
  ASSERT_TRUE(programs_
                  .Bind("picky",
                        [](const data::Container&, data::Container* output,
                           const wfrt::ProgramContext& ctx) -> Status {
                          if (ctx.instance_id == "wf-1") {
                            return Status::Internal("poisoned instance");
                          }
                          return output->Set("RC", data::Value(int64_t{0}));
                        })
                  .ok());

  wf::ProcessBuilder b(&store_, "mixed");
  b.Program("A", "picky");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.retry.max_attempts = 2;
  wfrt::Engine engine(&store_, &programs_, opts);
  std::vector<std::string> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = engine.StartProcess("mixed");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.IsFailed(ids[0]));
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_TRUE(engine.IsFinished(ids[i])) << ids[i];
  }
  EXPECT_EQ(engine.stats().instances_failed, 1u);
  EXPECT_EQ(engine.stats().instances_finished, 4u);
}

// Lifecycle interactions with the terminal failed state.
TEST_F(RetryPolicyTest, FailedInstanceRejectsLifecycleOperations) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 100).ok());

  wf::ProcessBuilder b(&store_, "terminal");
  b.Program("A", "crashy");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.retry.max_attempts = 1;
  wfrt::Engine engine(&store_, &programs_, opts);
  auto id = engine.StartProcess("terminal");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_TRUE(engine.IsFailed(*id));
  EXPECT_TRUE(engine.SuspendInstance(*id).IsFailedPrecondition());
  EXPECT_TRUE(engine.CancelInstance(*id).IsFailedPrecondition());
  // A second Run is a no-op, not an error.
  EXPECT_TRUE(engine.Run().ok());
}

}  // namespace
}  // namespace exotica
