// Blocks (process activities, paper §3.2): nesting, data flow across the
// block boundary, and loops built from exit conditions on blocks.

#include <memory>

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::BindEchoRc;
using test::BindScriptedRc;
using test::DeclareDefaultProgram;
using test::DefaultInput;

class BlockTest : public ::testing::Test {
 protected:
  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(BlockTest, ChildRunsAndReturnsOutput) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "echo").ok());
  ASSERT_TRUE(BindEchoRc(&programs_, "echo").ok());

  wf::ProcessBuilder inner(&store_, "inner");
  inner.Program("X", "echo");
  inner.MapFromInput("X", {{"RC", "RC"}});
  inner.MapToOutput("X", {{"RC", "RC"}});
  ASSERT_TRUE(inner.Register().ok());

  wf::ProcessBuilder outer(&store_, "outer");
  outer.Program("Pre", "echo");
  outer.Block("B", "inner");
  outer.Connect("Pre", "B");
  outer.MapFromInput("Pre", {{"RC", "RC"}});
  outer.MapData("Pre", "B", {{"RC", "RC"}});
  outer.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(outer.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  data::Container in = DefaultInput(store_, 9);
  auto id = engine.RunToCompletion("outer", &in);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 9);
  // Parent + child instance.
  EXPECT_EQ(engine.stats().instances_started, 2u);
  EXPECT_EQ(engine.stats().instances_finished, 2u);
}

TEST_F(BlockTest, ThreeLevelNesting) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "echo").ok());
  ASSERT_TRUE(BindEchoRc(&programs_, "echo").ok());

  wf::ProcessBuilder l3(&store_, "level3");
  l3.Program("X", "echo");
  l3.MapFromInput("X", {{"RC", "RC"}});
  l3.MapToOutput("X", {{"RC", "RC"}});
  ASSERT_TRUE(l3.Register().ok());

  wf::ProcessBuilder l2(&store_, "level2");
  l2.Block("B", "level3");
  l2.MapFromInput("B", {{"RC", "RC"}});
  l2.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(l2.Register().ok());

  wf::ProcessBuilder l1(&store_, "level1");
  l1.Block("B", "level2");
  l1.MapFromInput("B", {{"RC", "RC"}});
  l1.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(l1.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  data::Container in = DefaultInput(store_, 5);
  auto id = engine.RunToCompletion("level1", &in);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 5);
  EXPECT_EQ(engine.stats().instances_finished, 3u);
}

TEST_F(BlockTest, ExitConditionLoopsBlock) {
  // The paper: "Exit conditions can be used to implement loops, by
  // embedding subprocesses within another process." The child reports
  // RC=1 twice then RC=0; the block re-runs until the exit holds. Each
  // block re-run spawns a fresh child instance (fresh attempt counters),
  // so the flakiness must live outside the instance.
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "flaky").ok());
  auto calls = std::make_shared<int>(0);
  ASSERT_TRUE(programs_
                  .Bind("flaky",
                        [calls](const data::Container&, data::Container* out,
                                const wfrt::ProgramContext&) -> Status {
                          int64_t rc = ++*calls < 3 ? 1 : 0;
                          return out->Set("RC", data::Value(rc));
                        })
                  .ok());

  wf::ProcessBuilder inner(&store_, "body");
  inner.Program("X", "flaky");
  inner.MapToOutput("X", {{"RC", "RC"}});
  ASSERT_TRUE(inner.Register().ok());

  wf::ProcessBuilder outer(&store_, "looped");
  outer.Block("B", "body").ExitWhen("RC = 0");
  outer.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(outer.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("looped");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);
  // One parent + three child instances (two rescheduled runs).
  EXPECT_EQ(engine.stats().instances_started, 4u);
  EXPECT_EQ(engine.stats().reschedules, 2u);
}

TEST_F(BlockTest, DeadBlockNeverSpawnsChild) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "echo").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());
  ASSERT_TRUE(BindEchoRc(&programs_, "echo").ok());

  wf::ProcessBuilder inner(&store_, "inner2");
  inner.Program("X", "echo");
  ASSERT_TRUE(inner.Register().ok());

  wf::ProcessBuilder outer(&store_, "outer2");
  outer.Program("A", "fail");
  outer.Block("B", "inner2");
  outer.Connect("A", "B", "RC = 0");
  ASSERT_TRUE(outer.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("outer2");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*engine.StateOf(*id, "B"), wf::ActivityState::kDead);
  EXPECT_EQ(engine.stats().instances_started, 1u);  // parent only
}

TEST_F(BlockTest, SideBySideBlocksShareDefinition) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "echo").ok());
  ASSERT_TRUE(BindEchoRc(&programs_, "echo").ok());

  wf::ProcessBuilder inner(&store_, "shared");
  inner.Program("X", "echo");
  inner.MapFromInput("X", {{"RC", "RC"}});
  inner.MapToOutput("X", {{"RC", "RC"}});
  ASSERT_TRUE(inner.Register().ok());

  wf::ProcessBuilder outer(&store_, "pair");
  outer.Block("B1", "shared");
  outer.Block("B2", "shared");
  outer.Connect("B1", "B2");
  outer.MapFromInput("B1", {{"RC", "RC"}});
  outer.MapData("B1", "B2", {{"RC", "RC"}});
  outer.MapToOutput("B2", {{"RC", "RC"}});
  ASSERT_TRUE(outer.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  data::Container in = DefaultInput(store_, 3);
  auto id = engine.RunToCompletion("pair", &in);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 3);
  EXPECT_EQ(engine.stats().instances_finished, 3u);
}

}  // namespace
}  // namespace exotica
