// Process versioning (§3.2: a process has "a name, version number, ...").
// New instances bind the latest registered version; in-flight instances
// stay pinned to theirs — including across crash recovery.

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;

class VersioningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
    ASSERT_TRUE(dir_.AddRole("clerk").ok());
    ASSERT_TRUE(dir_.AddPerson("ann", 1, {"clerk"}).ok());
  }

  // v1: single step. v2: two steps.
  void RegisterV1() {
    wf::ProcessBuilder b(&store_, "proc", 1);
    b.Program("A", "ok");
    ASSERT_TRUE(b.Register().ok());
  }
  void RegisterV2() {
    wf::ProcessBuilder b(&store_, "proc", 2);
    b.Program("A", "ok").Program("B", "ok");
    b.Connect("A", "B");
    ASSERT_TRUE(b.Register().ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
  org::Directory dir_;
};

TEST_F(VersioningTest, StoreKeepsVersionsSideBySide) {
  RegisterV1();
  RegisterV2();
  EXPECT_EQ(store_.VersionsOf("proc"), (std::vector<int>{1, 2}));
  EXPECT_EQ((*store_.FindProcess("proc"))->version(), 2);  // latest wins
  EXPECT_EQ((*store_.FindProcessVersion("proc", 1))->version(), 1);
  EXPECT_TRUE(store_.FindProcessVersion("proc", 3).status().IsNotFound());

  // Same (name, version) collides; a third version registers fine.
  wf::ProcessBuilder dup(&store_, "proc", 2);
  dup.Program("A", "ok");
  EXPECT_TRUE(dup.Register().IsAlreadyExists());
  wf::ProcessBuilder v3(&store_, "proc", 3);
  v3.Program("A", "ok");
  EXPECT_TRUE(v3.Register().ok());
  EXPECT_EQ((*store_.FindProcess("proc"))->version(), 3);
}

TEST_F(VersioningTest, NewInstancesUseLatestVersion) {
  RegisterV1();
  wfrt::Engine engine(&store_, &programs_);
  auto id1 = engine.RunToCompletion("proc");
  ASSERT_TRUE(id1.ok());
  EXPECT_FALSE((*engine.FindInstance(*id1))->definition->HasActivity("B"));

  RegisterV2();
  auto id2 = engine.RunToCompletion("proc");
  ASSERT_TRUE(id2.ok());
  EXPECT_TRUE((*engine.FindInstance(*id2))->definition->HasActivity("B"));
  EXPECT_EQ(*engine.StateOf(*id2, "B"), wf::ActivityState::kTerminated);
}

TEST_F(VersioningTest, RecoveryPinsTheOriginalVersion) {
  // A v1 instance stalls on manual work; v2 registers; a crash and
  // recovery must replay the instance against v1, not v2.
  wf::ProcessBuilder b(&store_, "manualproc", 1);
  b.Program("M", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());

  wfjournal::MemoryJournal journal;
  std::string id;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
    auto r = engine.StartProcess("manualproc");
    ASSERT_TRUE(r.ok());
    id = *r;
    ASSERT_TRUE(engine.Run().ok());
  }

  // v2 adds an automatic follow-up step.
  wf::ProcessBuilder v2(&store_, "manualproc", 2);
  v2.Program("M", "ok").Manual().Role("clerk");
  v2.Program("After", "ok");
  v2.Connect("M", "After");
  ASSERT_TRUE(v2.Register().ok());

  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
    ASSERT_TRUE(engine.Recover().ok());
    auto inst = engine.FindInstance(id);
    ASSERT_TRUE(inst.ok());
    EXPECT_EQ((*inst)->definition->version(), 1);
    EXPECT_FALSE((*inst)->definition->HasActivity("After"));

    auto items = engine.worklists()->WorklistOf("ann");
    ASSERT_EQ(items.size(), 1u);
    ASSERT_TRUE(engine.Claim(items[0]->id, "ann").ok());
    ASSERT_TRUE(engine.ExecuteWorkItem(items[0]->id, "ann").ok());
    EXPECT_TRUE(engine.IsFinished(id));

    // A fresh instance uses v2 and runs "After".
    auto id2 = engine.RunToCompletion("manualproc");
    EXPECT_TRUE(id2.status().IsFailedPrecondition());  // stalls on manual
  }
}

TEST_F(VersioningTest, BlocksBindLatestSubprocessAtSpawn) {
  wf::ProcessBuilder inner1(&store_, "inner", 1);
  inner1.Program("X", "ok");
  ASSERT_TRUE(inner1.Register().ok());
  wf::ProcessBuilder outer(&store_, "outer", 1);
  outer.Block("B", "inner");
  ASSERT_TRUE(outer.Register().ok());

  wf::ProcessBuilder inner2(&store_, "inner", 2);
  inner2.Program("X", "ok").Program("Y", "ok");
  inner2.Connect("X", "Y");
  ASSERT_TRUE(inner2.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("outer");
  ASSERT_TRUE(id.ok());
  // Two activities ran in the child: the block picked up inner v2.
  EXPECT_EQ(engine.stats().activities_executed, 3u);  // B's X + Y, outer's B
}

}  // namespace
}  // namespace exotica
