// Instance lifecycle control (§3.3 user intervention): suspend, resume,
// cancel — including their interaction with worklists, block children,
// and crash recovery.

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wf::ActivityState;

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
    ASSERT_TRUE(dir_.AddRole("clerk").ok());
    ASSERT_TRUE(dir_.AddPerson("ann", 1, {"clerk"}).ok());

    // Register -> ManualStep -> Finish.
    wf::ProcessBuilder b(&store_, "proc");
    b.Program("Register", "ok");
    b.Program("ManualStep", "ok").Manual().Role("clerk");
    b.Program("Finish", "ok");
    b.Connect("Register", "ManualStep", "RC = 0");
    b.Connect("ManualStep", "Finish", "RC = 0");
    b.MapToOutput("Finish", {{"RC", "RC"}});
    ASSERT_TRUE(b.Register().ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
  org::Directory dir_;
};

TEST_F(LifecycleTest, SuspendParksAndResumeContinues) {
  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("proc");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_EQ(engine.worklists()->WorklistOf("ann").size(), 1u);

  ASSERT_TRUE(engine.SuspendInstance(*id).ok());
  EXPECT_TRUE(engine.IsSuspended(*id));
  // The posted item was withdrawn.
  EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());
  // Double suspend is an error.
  EXPECT_TRUE(engine.SuspendInstance(*id).IsFailedPrecondition());

  ASSERT_TRUE(engine.ResumeSuspended(*id).ok());
  EXPECT_FALSE(engine.IsSuspended(*id));
  auto items = engine.worklists()->WorklistOf("ann");
  ASSERT_EQ(items.size(), 1u);  // reposted
  ASSERT_TRUE(engine.Claim(items[0]->id, "ann").ok());
  ASSERT_TRUE(engine.ExecuteWorkItem(items[0]->id, "ann").ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_TRUE(engine.ResumeSuspended(*id).IsFailedPrecondition());
}

TEST_F(LifecycleTest, SuspendBlocksAutomaticDispatch) {
  // A process with only automatic steps: suspend after start, Run does
  // nothing, resume + Run completes.
  wf::ProcessBuilder b(&store_, "autoproc");
  b.Program("A", "ok").Program("B", "ok");
  b.Connect("A", "B", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("autoproc");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.SuspendInstance(*id).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_FALSE(engine.IsFinished(*id));
  EXPECT_EQ(*engine.StateOf(*id, "A"), ActivityState::kReady);

  ASSERT_TRUE(engine.ResumeSuspended(*id).ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.IsFinished(*id));
}

TEST_F(LifecycleTest, CancelSettlesEverythingWithoutSuccessors) {
  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("proc");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());

  ASSERT_TRUE(engine.CancelInstance(*id).ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_TRUE(engine.IsCancelled(*id));
  EXPECT_EQ(*engine.StateOf(*id, "Register"), ActivityState::kTerminated);
  EXPECT_EQ(*engine.StateOf(*id, "ManualStep"), ActivityState::kDead);
  EXPECT_EQ(*engine.StateOf(*id, "Finish"), ActivityState::kDead);
  EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());
  // Finished instances cannot be cancelled again.
  EXPECT_TRUE(engine.CancelInstance(*id).IsFailedPrecondition());
}

TEST_F(LifecycleTest, CancelReachesBlockChildren) {
  wf::ProcessBuilder inner(&store_, "inner");
  inner.Program("X", "ok").Manual().Role("clerk");
  ASSERT_TRUE(inner.Register().ok());
  wf::ProcessBuilder outer(&store_, "outer");
  outer.Block("B", "inner");
  ASSERT_TRUE(outer.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("outer");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_EQ(engine.worklists()->WorklistOf("ann").size(), 1u);

  // Cancel must target the root, not the child.
  ASSERT_EQ(engine.instance_order().size(), 2u);
  std::string child = engine.instance_order()[1];
  EXPECT_TRUE(engine.CancelInstance(child).IsInvalidArgument());
  EXPECT_TRUE(engine.SuspendInstance(child).IsInvalidArgument());

  ASSERT_TRUE(engine.CancelInstance(*id).ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_TRUE(engine.IsCancelled(child));
  EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());
}

TEST_F(LifecycleTest, SuspensionSurvivesCrash) {
  wfjournal::MemoryJournal journal;
  std::string id;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
    auto r = engine.StartProcess("proc");
    ASSERT_TRUE(r.ok());
    id = *r;
    ASSERT_TRUE(engine.Run().ok());
    ASSERT_TRUE(engine.SuspendInstance(id).ok());
  }
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
    ASSERT_TRUE(engine.Recover().ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_TRUE(engine.IsSuspended(id));
    EXPECT_FALSE(engine.IsFinished(id));
    // No work item reposted while suspended.
    EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());

    ASSERT_TRUE(engine.ResumeSuspended(id).ok());
    ASSERT_TRUE(engine.Run().ok());
    auto items = engine.worklists()->WorklistOf("ann");
    ASSERT_EQ(items.size(), 1u);
    ASSERT_TRUE(engine.Claim(items[0]->id, "ann").ok());
    ASSERT_TRUE(engine.ExecuteWorkItem(items[0]->id, "ann").ok());
    EXPECT_TRUE(engine.IsFinished(id));
  }
}

TEST_F(LifecycleTest, CancellationSurvivesCrash) {
  wfjournal::MemoryJournal journal;
  std::string id;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
    auto r = engine.StartProcess("proc");
    ASSERT_TRUE(r.ok());
    id = *r;
    ASSERT_TRUE(engine.Run().ok());
    ASSERT_TRUE(engine.CancelInstance(id).ok());
  }
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
    ASSERT_TRUE(engine.Recover().ok());
    EXPECT_TRUE(engine.IsFinished(id));
    EXPECT_TRUE(engine.IsCancelled(id));
    EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());
  }
}

TEST_F(LifecycleTest, ResumeRequiresSuspended) {
  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("proc");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(engine.ResumeSuspended(*id).IsFailedPrecondition());
  EXPECT_TRUE(engine.SuspendInstance("ghost").IsNotFound());
  EXPECT_TRUE(engine.CancelInstance("ghost").IsNotFound());
}

}  // namespace
}  // namespace exotica
