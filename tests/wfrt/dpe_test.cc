// Dead path elimination (paper §3.2): a false connector terminates the
// target without running it, and the false propagates along every
// outgoing connector of the dead activity.

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wf::ActivityState;

class DpeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
    ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(DpeTest, CascadesThroughLongChain) {
  constexpr int kLen = 50;
  wf::ProcessBuilder b(&store_, "longchain");
  b.Program("A0", "fail");
  for (int i = 1; i < kLen; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i), "RC = 0");
  }
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("longchain");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.stats().activities_executed, 1u);
  EXPECT_EQ(engine.stats().dead_path_terminations,
            static_cast<uint64_t>(kLen - 1));
  for (int i = 1; i < kLen; ++i) {
    EXPECT_EQ(*engine.StateOf(*id, "A" + std::to_string(i)),
              ActivityState::kDead);
  }
}

TEST_F(DpeTest, FanOutAllBranchesDie) {
  constexpr int kFan = 20;
  wf::ProcessBuilder b(&store_, "fan");
  b.Program("Root", "fail");
  for (int i = 0; i < kFan; ++i) {
    b.Program("L" + std::to_string(i), "ok");
    b.Connect("Root", "L" + std::to_string(i), "RC = 0");
  }
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("fan");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.stats().dead_path_terminations,
            static_cast<uint64_t>(kFan));
}

TEST_F(DpeTest, DeadBranchDoesNotKillConvergingOrJoin) {
  // A succeeds, B fails; M or-joins both and must still run.
  wf::ProcessBuilder b(&store_, "converge");
  b.Program("A", "ok").Program("B", "fail");
  b.Program("M", "ok").OrJoin();
  b.Connect("A", "M", "RC = 0");
  b.Connect("B", "M", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("converge");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*engine.StateOf(*id, "M"), ActivityState::kTerminated);
}

TEST_F(DpeTest, DiamondWithDeadMiddleTerminatesProcess) {
  // Root fails -> both middle branches die -> AND-join sink dies ->
  // process still finishes (all activities settled).
  wf::ProcessBuilder b(&store_, "diamond");
  b.Program("Root", "fail").Program("L", "ok").Program("R", "ok")
      .Program("Sink", "ok");
  b.Connect("Root", "L", "RC = 0");
  b.Connect("Root", "R", "RC = 0");
  b.Connect("L", "Sink");
  b.Connect("R", "Sink");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("diamond");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(*engine.StateOf(*id, "Sink"), ActivityState::kDead);
}

TEST_F(DpeTest, PartialDiamondAndJoinDies) {
  // L runs, R dies; the AND-join sink must die after both settle.
  wf::ProcessBuilder b(&store_, "partial");
  b.Program("A", "ok").Program("L", "ok").Program("R", "ok")
      .Program("Sink", "ok");
  b.Connect("A", "L", "RC = 0");
  b.Connect("A", "R", "RC = 1");  // false
  b.Connect("L", "Sink");
  b.Connect("R", "Sink");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("partial");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*engine.StateOf(*id, "L"), ActivityState::kTerminated);
  EXPECT_EQ(*engine.StateOf(*id, "R"), ActivityState::kDead);
  EXPECT_EQ(*engine.StateOf(*id, "Sink"), ActivityState::kDead);
}

}  // namespace
}  // namespace exotica
