// Fleet integration: many saga instances across engine threads hammering
// a shared multidatabase with injected unilateral aborts — the saga
// guarantee must hold for every instance, and the cross-site books must
// balance at the end despite the absence of global atomic commit.

#include "wfrt/fleet.h"

#include <gtest/gtest.h>

#include "atm/saga.h"
#include "common/strings.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "txn/multidb.h"
#include "wf/builder.h"
#include "../testutil.h"

namespace exotica {
namespace {

// Subtransactions with retries around lock conflicts: the fleet's engines
// contend on the same counters.
atm::SubTxnBody IncrementBody(const std::string& key) {
  return [key](txn::Transaction& t) -> Status {
    EXO_ASSIGN_OR_RETURN(data::Value v, t.Get(key));
    int64_t current = v.is_null() ? 0 : v.as_long();
    return t.Put(key, data::Value(current + 1));
  };
}

atm::SubTxnBody DecrementBody(const std::string& key) {
  return [key](txn::Transaction& t) -> Status {
    EXO_ASSIGN_OR_RETURN(data::Value v, t.Get(key));
    int64_t current = v.is_null() ? 0 : v.as_long();
    return t.Put(key, data::Value(current - 1));
  };
}

TEST(FleetTest, SagaGuaranteeHoldsAcrossConcurrentEngines) {
  constexpr int kEngines = 4;
  constexpr int kInstances = 80;

  txn::MultiDatabase mdb;
  ASSERT_TRUE(mdb.AddSite("orders").ok());
  ASSERT_TRUE(mdb.AddSite("stock").ok());
  ASSERT_TRUE(mdb.AddSite("billing").ok());
  // Two sites refuse some commits: a fifth of the sagas will abort at
  // various points and must compensate.
  (*mdb.site("stock"))->SetCommitFailureRate(0.15, 11);
  (*mdb.site("billing"))->SetCommitFailureRate(0.15, 17);

  atm::MultiDbRunner runner(&mdb);
  ASSERT_TRUE(runner.Register({"Order", "orders", IncrementBody("count"),
                               DecrementBody("count")}).ok());
  ASSERT_TRUE(runner.Register({"Reserve", "stock", IncrementBody("count"),
                               DecrementBody("count")}).ok());
  ASSERT_TRUE(runner.Register({"Bill", "billing", IncrementBody("count"),
                               DecrementBody("count")}).ok());

  atm::SagaSpec spec("Fulfil");
  spec.Then("Order").Then("Reserve").Then("Bill");

  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());

  wfrt::EngineFleet fleet(&store, &programs, kEngines);
  auto result = fleet.RunBatch(translation->root_process, kInstances);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const std::string& e : result->errors) {
    EXPECT_TRUE(e.empty()) << e;
  }
  // instances_finished counts block children too; the root count is what
  // must match the batch size.
  EXPECT_GE(result->instances_finished, static_cast<uint64_t>(kInstances));

  // Count outcomes across engines: committed sagas applied all three
  // increments; aborted ones net zero.
  int committed = 0;
  int roots = 0;
  for (int e = 0; e < fleet.size(); ++e) {
    wfrt::Engine* engine = fleet.engine(e);
    for (const std::string& id : engine->instance_order()) {
      auto inst = engine->FindInstance(id);
      ASSERT_TRUE(inst.ok());
      if ((*inst)->is_child()) continue;  // blocks
      ++roots;
      auto out = engine->OutputOf(id);
      ASSERT_TRUE(out.ok());
      if (out->Get("RC")->as_long() == 0) ++committed;
    }
  }
  EXPECT_EQ(roots, kInstances);
  // With a 15% per-site abort rate some sagas must have aborted and some
  // committed (probabilistically certain with these seeds).
  EXPECT_GT(committed, 0);
  EXPECT_LT(committed, kInstances);

  // The books balance: each site's counter equals the number of committed
  // sagas — everything else was compensated, with no global commit
  // protocol anywhere.
  for (const char* site : {"orders", "stock", "billing"}) {
    auto v = (*mdb.site(site))->ReadCommitted("count");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->as_long(), committed) << site;
  }
}

TEST(FleetTest, SharedArenasCoverSubprocessClosure) {
  // A batch seeding only the outer process must still serve *inner*
  // (block) spin-ups from fleet-shared arenas: PrepareArenas walks the
  // transitive subprocess closure before the workers launch.
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(test::BindConstRc(&programs, "ok", 0).ok());

  wf::ProcessBuilder inner(&store, "inner");
  inner.Program("X", "ok").Program("Y", "ok");
  inner.Connect("X", "Y", "RC = 0");
  ASSERT_TRUE(inner.Register().ok());

  wf::ProcessBuilder outer(&store, "outer");
  outer.Program("A", "ok");
  outer.Block("B", "inner");
  outer.Connect("A", "B", "RC = 0");
  ASSERT_TRUE(outer.Register().ok());

  constexpr int kEngines = 3;
  constexpr int kInstances = 12;
  wfrt::EngineFleet fleet(&store, &programs, kEngines);
  auto result = fleet.RunBatch("outer", kInstances);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  // Block children count as instances too: one inner per outer.
  EXPECT_EQ(result->instances_finished, 2u * kInstances);
  // One spin-up for each outer instance plus one for each inner block
  // child — every single one from a shared arena, none private.
  EXPECT_EQ(result->aggregate.arena_spinups, 2u * kInstances);
  EXPECT_EQ(result->aggregate.arena_shared_hits, 2u * kInstances);

  // A second batch reuses the same arenas without rebuilding.
  auto again = fleet.RunBatch("outer", kEngines);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok());
}

TEST(FleetTest, RoundRobinDistribution) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(test::BindConstRc(&programs, "ok", 0).ok());
  wf::ProcessBuilder b(&store, "p");
  b.Program("A", "ok");
  ASSERT_TRUE(b.Register().ok());

  // Static scheduling (stealing off) so per-engine counts are exact.
  wfrt::FleetOptions fo;
  fo.work_stealing = false;
  wfrt::EngineFleet fleet(&store, &programs, 3, {}, fo);
  auto result = fleet.RunBatch("p", 10);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->instances_finished, 10u);
  // 10 over 3 engines: 4 + 3 + 3.
  EXPECT_EQ(fleet.engine(0)->stats().instances_finished, 4u);
  EXPECT_EQ(fleet.engine(1)->stats().instances_finished, 3u);
  EXPECT_EQ(fleet.engine(2)->stats().instances_finished, 3u);
}

TEST(FleetTest, QuarantinedInstancesAreReportedAndDoNotMaskOthers) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "picky").ok());
  wf::ProcessBuilder b(&store, "p");
  b.Program("A", "picky");
  b.MapToOutput("A", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  // Each engine numbers its instances independently, so exactly one
  // "<prefix>wf-1" exists per engine: one poisoned instance per engine,
  // permanently.
  ASSERT_TRUE(programs
                  .Bind("picky",
                        [](const data::Container&, data::Container* out,
                           const wfrt::ProgramContext& ctx) -> Status {
                          if (EndsWith(ctx.instance_id, ":wf-1") ||
                              ctx.instance_id == "wf-1") {
                            return Status::Unsupported("bad instance");
                          }
                          out->Set("RC", data::Value(int64_t{0}));
                          return Status::OK();
                        })
                  .ok());

  wfrt::EngineFleet fleet(&store, &programs, 2);
  auto result = fleet.RunBatch("p", 6);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // No engine-level error — the quarantine is an instance-level outcome —
  // but the batch is not clean, and every healthy instance still finished.
  for (const std::string& e : result->errors) {
    EXPECT_TRUE(e.empty()) << e;
  }
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->instances_finished, 4u);
  EXPECT_EQ(result->aggregate.instances_failed, 2u);
  EXPECT_EQ(result->aggregate.permanent_failures, 2u);
  ASSERT_EQ(result->failed_instances.size(), 2u);
  for (const wfrt::EngineFleet::InstanceError& err : result->failed_instances) {
    EXPECT_TRUE(EndsWith(err.id, "wf-1")) << err.id;
    EXPECT_NE(err.error.find("permanent"), std::string::npos) << err.error;
  }
  EXPECT_NE(result->failed_instances[0].id, result->failed_instances[1].id);
}

TEST(FleetTest, ErrorsSurfacePerEngine) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ghost").ok());
  wf::ProcessBuilder b(&store, "p");
  b.Program("A", "ghost");  // declared but never bound
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineFleet fleet(&store, &programs, 2);
  auto result = fleet.RunBatch("p", 4);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());

  EXPECT_TRUE(fleet.RunBatch("ghostproc", 1).status().IsNotFound());
  EXPECT_TRUE(fleet.RunBatch("p", -1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace exotica
