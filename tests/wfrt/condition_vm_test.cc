// Engine-level behaviour of the compiled condition VM: registered plans
// carry slot-bound programs, navigation routes conditions through them
// (stats prove it), the A/B toggle reproduces identical traces, and the
// fleet shares one spin-up arena per definition.

#include <gtest/gtest.h>

#include <string>

#include "wf/builder.h"
#include "wfrt/engine.h"
#include "wfrt/fleet.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::BindScriptedRc;
using test::DeclareDefaultProgram;
using wf::ActivityState;

class ConditionVmTest : public ::testing::Test {
 protected:
  void Register(const char* name, int fail_rc) {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", fail_rc).ok());
    wf::ProcessBuilder b(&store_, name);
    b.Program("A", "ok").Program("B", "ok").Program("C", "ok");
    b.Connect("A", "B", "RC = 0 OR RC = 2");
    b.Connect("B", "C", "RC >= 0 AND RC < 10 AND NOT (RC = 9)");
    ASSERT_TRUE(b.Register().ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(ConditionVmTest, RegisteredPlanCarriesCompiledPrograms) {
  Register("p", 0);
  auto def = store_.FindProcess("p");
  ASSERT_TRUE(def.ok());
  const wf::NavigationPlan& plan = (*def)->plan();
  // Both conditioned connectors compiled; no exit conditions.
  EXPECT_EQ(plan.vm_program_count(), 2u);
  bool found_compiled = false;
  for (uint32_t c = 0; c < 2; ++c) {
    const wf::NavigationPlan::ConnectorInfo& ci = plan.connector(c);
    EXPECT_FALSE(ci.trivial);
    ASSERT_GE(ci.cond_vm, 0);
    const expr::CompiledCondition& prog = plan.vm_program(ci.cond_vm);
    EXPECT_FALSE(prog.empty());
    EXPECT_EQ(prog.bound_type(), "_Default");
    found_compiled = true;
  }
  EXPECT_TRUE(found_compiled);
}

TEST_F(ConditionVmTest, LazyPlanWithoutRegistryHasNoPrograms) {
  // plan() on a hand-built (unregistered) definition has no TypeRegistry,
  // so every condition keeps the tree-walk fallback.
  wf::ProcessDefinition def("bare");
  wf::Activity a;
  a.name = "A";
  ASSERT_TRUE(def.AddActivity(a).ok());
  a.name = "B";
  ASSERT_TRUE(def.AddActivity(a).ok());
  wf::ControlConnector c;
  c.from = "A";
  c.to = "B";
  auto cond = expr::Condition::Compile("RC = 0");
  ASSERT_TRUE(cond.ok());
  c.condition = *cond;
  ASSERT_TRUE(def.AddControlConnector(c).ok());
  const wf::NavigationPlan& plan = def.plan();
  EXPECT_EQ(plan.vm_program_count(), 0u);
  EXPECT_EQ(plan.connector(0).cond_vm, -1);
}

TEST_F(ConditionVmTest, NavigationUsesVmAndCountsIt) {
  Register("p", 0);
  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("p");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(engine.stats().vm_condition_evals, 2u);
  EXPECT_EQ(engine.stats().tree_condition_evals, 0u);
  // Both conditions read only RC (a long), so the typing pass
  // monomorphizes them: every VM eval ran the typed program.
  EXPECT_EQ(engine.stats().typed_condition_evals, 2u);
}

TEST_F(ConditionVmTest, ToggleOffFallsBackToTreeWalk) {
  Register("p", 0);
  wfrt::EngineOptions options;
  options.use_condition_vm = false;
  wfrt::Engine engine(&store_, &programs_, options);
  auto id = engine.RunToCompletion("p");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.stats().vm_condition_evals, 0u);
  EXPECT_EQ(engine.stats().tree_condition_evals, 2u);
}

TEST_F(ConditionVmTest, VmAndTreeWalkProduceIdenticalTraces) {
  Register("p", 1);  // RC=1: first connector false → B, C dead via DPE
  std::vector<std::string> traces[2];
  int t = 0;
  for (bool use_vm : {true, false}) {
    wfrt::EngineOptions options;
    options.use_condition_vm = use_vm;
    wfrt::Engine engine(&store_, &programs_, options);
    auto id = engine.RunToCompletion("p");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*engine.StateOf(*id, "B"), ActivityState::kDead);
    EXPECT_EQ(*engine.StateOf(*id, "C"), ActivityState::kDead);
    traces[t++] = engine.audit().CompactTrace(*id, {});
  }
  // Byte-identical navigation, event for event.
  EXPECT_EQ(traces[0], traces[1]);
}

TEST_F(ConditionVmTest, ExitConditionLoopsThroughVm) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "flaky").ok());
  // RC: 1, 1, 0 — exit condition false twice, then true.
  ASSERT_TRUE(BindScriptedRc(&programs_, "flaky", {1, 1, 0}).ok());
  wf::ProcessBuilder b(&store_, "loop");
  b.Program("A", "flaky").ExitWhen("RC = 0");
  ASSERT_TRUE(b.Register().ok());

  auto def = store_.FindProcess("loop");
  ASSERT_TRUE(def.ok());
  ASSERT_GE((*def)->plan().activity(0).exit_vm, 0);

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("loop");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(engine.stats().reschedules, 2u);
  EXPECT_EQ(engine.stats().vm_condition_evals, 3u);
  EXPECT_EQ(engine.stats().typed_condition_evals, 3u);
}

TEST_F(ConditionVmTest, ConditionErrorIsFalseStillHonoredOnVmPath) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  wf::ProcessBuilder b(&store_, "err");
  b.Program("A", "ok").Program("B", "ok");
  // Type error at evaluation time: RC is a long, "x" a string.
  b.Connect("A", "B", "RC < \"x\"");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions options;
  options.condition_error_is_false = true;
  wfrt::Engine engine(&store_, &programs_, options);
  auto id = engine.RunToCompletion("err");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*engine.StateOf(*id, "B"), ActivityState::kDead);

  // Without the option, navigation fails with the same error either way.
  wfrt::Engine strict_vm(&store_, &programs_);
  auto vm_id = strict_vm.StartProcess("err");
  ASSERT_TRUE(vm_id.ok());
  Status vm_err = strict_vm.Run();
  ASSERT_FALSE(vm_err.ok());

  wfrt::EngineOptions tree_options;
  tree_options.use_condition_vm = false;
  wfrt::Engine strict_tree(&store_, &programs_, tree_options);
  auto tree_id = strict_tree.StartProcess("err");
  ASSERT_TRUE(tree_id.ok());
  Status tree_err = strict_tree.Run();
  ASSERT_FALSE(tree_err.ok());
  EXPECT_EQ(vm_err.ToString(), tree_err.ToString());
}

TEST_F(ConditionVmTest, FleetSharesOneArenaPerDefinition) {
  Register("p", 0);
  wfrt::EngineFleet fleet(&store_, &programs_, 4);
  auto result = fleet.RunBatch("p", 32);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->instances_finished, 32u);
  // Every spin-up hit the fleet-shared arena rather than a private one.
  EXPECT_EQ(result->aggregate.arena_spinups, 32u);
  EXPECT_EQ(result->aggregate.arena_shared_hits, 32u);
  EXPECT_GT(result->aggregate.vm_condition_evals, 0u);
  EXPECT_EQ(result->aggregate.tree_condition_evals, 0u);
  // Typed programs and step dispatches flow through BatchResult too.
  // Every sweep dispatches through exactly one rung — natively where
  // this build compiled the plan, threaded code otherwise.
  EXPECT_EQ(result->aggregate.typed_condition_evals,
            result->aggregate.vm_condition_evals);
  EXPECT_GT(result->aggregate.step_program_dispatches +
                result->aggregate.native_step_dispatches,
            0u);
}

}  // namespace
}  // namespace exotica
