// Audit trail accounting (§3.3 monitoring / accounting): per-activity
// execution counts and active time, instance makespan, with a manual
// clock so the timestamps are exact.

#include "wfrt/audit.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica::wfrt {
namespace {

TEST(AuditAccountingTest, SummarizesEngineRun) {
  wf::DefinitionStore store;
  ProgramRegistry programs;
  ManualClock clock;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "tick").ok());
  // The program advances the clock by 50 µs per run and reports RC by
  // attempt: fail once, then succeed.
  ASSERT_TRUE(programs
                  .Bind("tick",
                        [&clock](const data::Container&, data::Container* out,
                                 const ProgramContext& ctx) -> Status {
                          clock.Advance(50);
                          return out->Set(
                              "RC", data::Value(int64_t{ctx.attempt < 2 ? 1 : 0}));
                        })
                  .ok());

  wf::ProcessBuilder b(&store, "p");
  b.Program("A", "tick").ExitWhen("RC = 0");
  b.Program("B", "tick").ExitWhen("RC < 2");  // first run passes (RC=1)
  b.Program("Dead", "tick");
  b.Connect("A", "B", "RC = 0");
  b.Connect("A", "Dead", "RC = 9");  // never
  ASSERT_TRUE(b.Register().ok());

  EngineOptions opts;
  opts.clock = &clock;
  Engine engine(&store, &programs, opts);
  auto id = engine.RunToCompletion("p");
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto summary = engine.audit().Summarize(*id);
  ASSERT_TRUE(summary.ok());
  const auto& a = summary->at("A");
  EXPECT_EQ(a.executions, 2);   // rescheduled once by the exit condition
  EXPECT_EQ(a.reschedules, 1);
  EXPECT_EQ(a.active_micros, 100);  // two 50 µs runs
  EXPECT_GE(a.settled_at, a.first_ready);

  const auto& b_sum = summary->at("B");
  EXPECT_EQ(b_sum.executions, 1);
  EXPECT_EQ(b_sum.active_micros, 50);

  const auto& dead = summary->at("Dead");
  EXPECT_EQ(dead.executions, 0);
  EXPECT_EQ(dead.active_micros, 0);
  EXPECT_GE(dead.settled_at, 0);  // settled via dead path

  auto makespan = engine.audit().InstanceMakespan(*id);
  ASSERT_TRUE(makespan.ok());
  EXPECT_EQ(*makespan, 150);  // three program runs total

  EXPECT_TRUE(engine.audit().Summarize("ghost").status().IsNotFound());
}

TEST(AuditAccountingTest, UnfinishedInstanceHasNoMakespan) {
  wf::DefinitionStore store;
  ProgramRegistry programs;
  org::Directory dir;
  ASSERT_TRUE(dir.AddRole("r").ok());
  ASSERT_TRUE(dir.AddPerson("p", 1, {"r"}).ok());
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(test::BindConstRc(&programs, "ok", 0).ok());

  wf::ProcessBuilder b(&store, "manual");
  b.Program("M", "ok").Manual().Role("r");
  ASSERT_TRUE(b.Register().ok());

  Engine engine(&store, &programs);
  ASSERT_TRUE(engine.AttachOrganization(&dir).ok());
  auto id = engine.StartProcess("manual");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(
      engine.audit().InstanceMakespan(*id).status().IsFailedPrecondition());
}

TEST(AuditAccountingTest, ObserverSeesEventsLive) {
  wf::DefinitionStore store;
  ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(test::BindConstRc(&programs, "ok", 0).ok());
  wf::ProcessBuilder b(&store, "p");
  b.Program("A", "ok");
  ASSERT_TRUE(b.Register().ok());

  Engine engine(&store, &programs);
  std::vector<std::string> seen;
  engine.SetObserver([&seen](const AuditEvent& e) {
    seen.push_back(e.Compact());
  });
  auto id = engine.RunToCompletion("p");
  ASSERT_TRUE(id.ok());
  // The observer saw exactly what the trail recorded.
  std::vector<std::string> trail;
  for (const AuditEvent& e : engine.audit().events()) {
    trail.push_back(e.Compact());
  }
  EXPECT_EQ(seen, trail);
  EXPECT_FALSE(seen.empty());

  // Detach: no further callbacks.
  engine.SetObserver(nullptr);
  size_t before = seen.size();
  ASSERT_TRUE(engine.RunToCompletion("p").ok());
  EXPECT_EQ(seen.size(), before);
}

TEST(AuditRingTest, BoundedTrailKeepsMostRecentEvents) {
  AuditTrail trail;
  trail.set_max_events(10);
  for (int i = 0; i < 100; ++i) {
    AuditEvent e;
    e.kind = AuditKind::kActivityReady;
    e.activity = "A" + std::to_string(i);
    trail.Add(std::move(e));
  }
  // At least max_events retained, at most twice that (amortized erase).
  ASSERT_GE(trail.events().size(), 10u);
  ASSERT_LE(trail.events().size(), 20u);
  // Whatever is retained is the most recent contiguous suffix.
  EXPECT_EQ(trail.events().back().activity, "A99");
  size_t n = trail.events().size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(trail.events()[i].activity,
              "A" + std::to_string(100 - n + i));
  }
}

TEST(AuditRingTest, EngineOptionBoundsTrail) {
  wf::DefinitionStore store;
  ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(test::BindConstRc(&programs, "ok", 0).ok());
  wf::ProcessBuilder b(&store, "chain");
  for (int i = 0; i < 20; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    if (i > 0) b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i));
  }
  ASSERT_TRUE(b.Register().ok());

  EngineOptions options;
  options.max_audit_events = 8;
  Engine engine(&store, &programs, options);
  ASSERT_TRUE(engine.RunToCompletion("chain").ok());
  EXPECT_LE(engine.audit().events().size(), 16u);
  // The tail of the run is still observable.
  EXPECT_EQ(engine.audit().events().back().kind,
            AuditKind::kInstanceFinished);

  // Unbounded engines keep everything.
  Engine unbounded(&store, &programs);
  ASSERT_TRUE(unbounded.RunToCompletion("chain").ok());
  EXPECT_GT(unbounded.audit().events().size(), 16u);
}

TEST(AuditAccountingTest, AuditLevelNoneRecordsNothing) {
  // FlowMark's per-process audit level "none": the trail stays empty,
  // the observer never fires, but navigation and the journal (the
  // recovery source of truth) are untouched.
  wf::DefinitionStore store;
  ProgramRegistry programs;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(test::BindConstRc(&programs, "ok", 0).ok());
  wf::ProcessBuilder b(&store, "p");
  b.Program("A", "ok");
  b.Program("B", "ok");
  b.Connect("A", "B");
  ASSERT_TRUE(b.Register().ok());

  EngineOptions options;
  options.audit_enabled = false;
  Engine engine(&store, &programs, options);
  wfjournal::MemoryJournal journal;
  ASSERT_TRUE(engine.AttachJournal(&journal).ok());
  int observer_calls = 0;
  engine.SetObserver([&observer_calls](const AuditEvent&) {
    ++observer_calls;
  });
  auto id = engine.RunToCompletion("p");
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  EXPECT_TRUE(engine.audit().events().empty());
  EXPECT_EQ(observer_calls, 0);
  EXPECT_GT(journal.size(), 0u);

  // Same run with auditing on, for contrast: same journal, full trail.
  Engine audited(&store, &programs);
  wfjournal::MemoryJournal audited_journal;
  ASSERT_TRUE(audited.AttachJournal(&audited_journal).ok());
  ASSERT_TRUE(audited.RunToCompletion("p").ok());
  EXPECT_FALSE(audited.audit().events().empty());
  EXPECT_EQ(audited_journal.size(), journal.size());
}

TEST(AuditAccountingTest, CompactFormats) {
  AuditEvent e;
  e.kind = AuditKind::kConnectorTrue;
  e.activity = "A";
  e.detail = "B";
  EXPECT_EQ(e.Compact(), "A->B:true");
  e.kind = AuditKind::kInstanceFinished;
  e.instance = "wf-1";
  EXPECT_EQ(e.Compact(), "wf-1:instance-finished");
  e.kind = AuditKind::kActivityStarted;
  EXPECT_EQ(e.Compact(), "A:started");
}

}  // namespace
}  // namespace exotica::wfrt
