// Crash recovery against a group-committed FileJournal: the file may end
// mid-record (a torn batch tail). The test cuts the journal file at EVERY
// byte offset and verifies Open() truncates the tear, Recover() replays the
// surviving prefix, and navigation resumes to the reference outcome.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::BindScriptedRc;
using test::DeclareDefaultProgram;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "flaky").ok());

    // Same shape as the recovery reference: data flow, a dead branch, a
    // block, and an exit-condition loop.
    wf::ProcessBuilder inner(&store_, "inner");
    inner.Program("X", "ok");
    inner.MapToOutput("X", {{"RC", "RC"}});
    ASSERT_TRUE(inner.Register().ok());

    wf::ProcessBuilder b(&store_, "ref");
    b.Program("A", "ok");
    b.Program("Dead", "ok");
    b.Program("Loop", "flaky").ExitWhen("RC = 0");
    b.Block("Blk", "inner");
    b.Program("Z", "ok");
    b.Connect("A", "Dead", "RC <> 0");  // never taken
    b.Connect("A", "Loop", "RC = 0");
    b.Connect("Loop", "Blk", "RC = 0");
    b.Connect("Blk", "Z", "RC = 0");
    b.MapToOutput("Z", {{"RC", "RC"}});
    ASSERT_TRUE(b.Register().ok());
  }

  void BindAll(wfrt::ProgramRegistry* programs) {
    ASSERT_TRUE(BindConstRc(programs, "ok", 0).ok());
    ASSERT_TRUE(BindScriptedRc(programs, "flaky", {1, 0}).ok());
  }

  wf::DefinitionStore store_;
};

TEST_F(CrashRecoveryTest, TruncationAtEveryByteResumesToSameOutcome) {
  std::string path = ::testing::TempDir() + "/exo_crash_ref.log";
  std::remove(path.c_str());

  // Reference run through a group-committed (non-fsync) file journal. The
  // journal handle is dropped without an explicit Flush() to mirror the
  // engine-level flush at Run() exit keeping the file complete.
  std::string id;
  {
    auto journal = wfjournal::FileJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    wfrt::ProgramRegistry programs;
    BindAll(&programs);
    wfrt::Engine engine(&store_, &programs);
    ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
    auto r = engine.RunToCompletion("ref");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    id = *r;
  }

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 100u);

  std::string cut_path = ::testing::TempDir() + "/exo_crash_cut.log";
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    SCOPED_TRACE("crash after byte " + std::to_string(cut));
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    auto journal = wfjournal::FileJournal::Open(cut_path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    const uint64_t surviving = (*journal)->size();

    wfrt::ProgramRegistry programs;
    BindAll(&programs);
    wfrt::Engine engine(&store_, &programs);
    ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
    Status rec = engine.Recover();
    ASSERT_TRUE(rec.ok()) << rec.ToString();
    Status run = engine.Run();
    ASSERT_TRUE(run.ok()) << run.ToString();

    if (surviving == 0) {
      // The tear swallowed even the INSTANCE_START record: nothing to
      // recover, nothing to finish.
      EXPECT_TRUE(engine.instance_order().empty());
      continue;
    }
    ASSERT_TRUE(engine.IsFinished(id));
    auto out = engine.OutputOf(id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->Get("RC")->as_long(), 0);
    EXPECT_EQ(*engine.StateOf(id, "Dead"), wf::ActivityState::kDead);
    EXPECT_EQ(*engine.StateOf(id, "Z"), wf::ActivityState::kTerminated);
  }

  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST_F(CrashRecoveryTest, ReopenedTornJournalContinuesSequence) {
  std::string path = ::testing::TempDir() + "/exo_crash_seq.log";
  std::remove(path.c_str());
  {
    auto journal = wfjournal::FileJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    wfrt::ProgramRegistry programs;
    BindAll(&programs);
    wfrt::Engine engine(&store_, &programs);
    ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
    ASSERT_TRUE(engine.RunToCompletion("ref").ok());
  }
  // Tear the final record in half.
  uint64_t full_size;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    full_size = static_cast<uint64_t>(in.tellg());
  }
  ASSERT_GT(full_size, 3u);
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(full_size - 3)), 0);

  // The reopened journal drops the tear; recovery completes the run and
  // appends records continuing the surviving sequence.
  auto journal = wfjournal::FileJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  uint64_t kept = (*journal)->size();
  ASSERT_GT(kept, 0u);

  wfrt::ProgramRegistry programs;
  BindAll(&programs);
  wfrt::Engine engine(&store_, &programs);
  ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
  ASSERT_TRUE(engine.Recover().ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_GT((*journal)->size(), kept);
  auto all = (*journal)->ReadAll();
  ASSERT_TRUE(all.ok());
  for (uint64_t i = 0; i < all->size(); ++i) {
    EXPECT_EQ((*all)[i].seq, i);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exotica
