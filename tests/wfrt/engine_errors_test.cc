// Error-path coverage for the engine's public API: every guard returns
// the documented Status code and leaves state consistent.

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;

class EngineErrorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
    wf::ProcessBuilder b(&store_, "p");
    b.Program("A", "ok");
    ASSERT_TRUE(b.Register().ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(EngineErrorsTest, StartProcessGuards) {
  wfrt::Engine engine(&store_, &programs_);
  EXPECT_TRUE(engine.StartProcess("ghost").status().IsNotFound());

  // Wrong input container type.
  data::StructType t("Odd");
  ASSERT_TRUE(t.AddScalar("X", data::ScalarType::kLong).ok());
  ASSERT_TRUE(store_.types().Register(std::move(t)).ok());
  auto odd = data::Container::Create(store_.types(), "Odd");
  ASSERT_TRUE(odd.ok());
  EXPECT_TRUE(engine.StartProcess("p", &*odd).status().IsInvalidArgument());
}

TEST_F(EngineErrorsTest, JournalMustAttachBeforeFirstInstance) {
  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.StartProcess("p").ok());
  wfjournal::MemoryJournal journal;
  EXPECT_TRUE(engine.AttachJournal(&journal).IsFailedPrecondition());
}

TEST_F(EngineErrorsTest, InspectionGuards) {
  wfrt::Engine engine(&store_, &programs_);
  EXPECT_TRUE(engine.FindInstance("nope").status().IsNotFound());
  EXPECT_FALSE(engine.IsFinished("nope"));
  EXPECT_FALSE(engine.IsCancelled("nope"));
  EXPECT_FALSE(engine.IsSuspended("nope"));
  EXPECT_TRUE(engine.OutputOf("nope").status().IsNotFound());
  EXPECT_TRUE(engine.StateOf("nope", "A").status().IsNotFound());

  auto id = engine.StartProcess("p");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(engine.OutputOf(*id).status().IsFailedPrecondition());
  EXPECT_TRUE(engine.StateOf(*id, "Ghost").status().IsNotFound());
}

TEST_F(EngineErrorsTest, ManualApisNeedAnOrganization) {
  wfrt::Engine engine(&store_, &programs_);
  EXPECT_TRUE(engine.Claim(1, "ann").IsFailedPrecondition());
  EXPECT_TRUE(engine.ExecuteWorkItem(1, "ann").IsFailedPrecondition());
  EXPECT_TRUE(engine.CheckDeadlines().empty());
  EXPECT_EQ(engine.worklists(), nullptr);

  // A manual activity without an attached organization fails to ready.
  wf::ProcessBuilder b(&store_, "manual");
  b.Program("M", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());
  EXPECT_TRUE(engine.StartProcess("manual").status().IsFailedPrecondition());
}

TEST_F(EngineErrorsTest, ForceFinishGuards) {
  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("p");
  ASSERT_TRUE(id.ok());
  data::Container out = data::Container::Default(store_.types());

  // Ready works; terminated does not.
  ASSERT_TRUE(engine.ForceFinish(*id, "A", out).ok());
  EXPECT_TRUE(engine.ForceFinish(*id, "A", out).IsFailedPrecondition());
  EXPECT_TRUE(engine.ForceFinish("nope", "A", out).IsNotFound());
  EXPECT_TRUE(engine.ForceFinish(*id, "Ghost", out).IsNotFound());
}

TEST_F(EngineErrorsTest, ExecuteWorkItemStateChecks) {
  org::Directory dir;
  ASSERT_TRUE(dir.AddRole("clerk").ok());
  ASSERT_TRUE(dir.AddPerson("ann", 1, {"clerk"}).ok());
  ASSERT_TRUE(dir.AddPerson("bob", 1, {"clerk"}).ok());

  wf::ProcessBuilder b(&store_, "manual2");
  b.Program("M", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir).ok());
  auto id = engine.StartProcess("manual2");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  auto items = engine.worklists()->WorklistOf("ann");
  ASSERT_EQ(items.size(), 1u);
  org::WorkItemId item = items[0]->id;

  // Must be claimed, and by the executor.
  EXPECT_TRUE(engine.ExecuteWorkItem(item, "ann").IsFailedPrecondition());
  ASSERT_TRUE(engine.Claim(item, "ann").ok());
  EXPECT_TRUE(engine.ExecuteWorkItem(item, "bob").IsFailedPrecondition());
  EXPECT_TRUE(engine.ExecuteWorkItem(999, "ann").IsNotFound());
  ASSERT_TRUE(engine.ExecuteWorkItem(item, "ann").ok());
  EXPECT_TRUE(engine.IsFinished(*id));
}

TEST_F(EngineErrorsTest, RunToCompletionReportsStall) {
  org::Directory dir;
  ASSERT_TRUE(dir.AddRole("clerk").ok());
  ASSERT_TRUE(dir.AddPerson("ann", 1, {"clerk"}).ok());
  wf::ProcessBuilder b(&store_, "manual3");
  b.Program("M", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir).ok());
  auto r = engine.RunToCompletion("manual3");
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

}  // namespace
}  // namespace exotica
