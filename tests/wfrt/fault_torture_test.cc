// Fault-torture harness: enumerate fault schedules — a program crash at
// every (activity, attempt) point and a journal I/O failure at every
// append index — over the paper's two example transaction models and
// assert the guarantees survive every one of them:
//
//   saga (§4.1, trip example):  T1..Tn  or  T1..Tj; Cj..C1
//   flex (§4.2, ZNBB94 Fig. 3): exactly one of p1/p2/p3 commits, or the
//                               whole transaction compensates away
//
// The external world is an idempotent runner whose effects persist across
// engine crashes — the at-least-once re-execution caveat of §3.3 made
// explicit: a committed subtransaction re-run after recovery is a no-op.

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "atm/flex.h"
#include "atm/saga.h"
#include "atm/subtxn.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wf/builder.h"
#include "wfjournal/faulty.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "wfrt/faults.h"
#include "../testutil.h"

namespace exotica {
namespace {

using wfjournal::FaultyJournal;
using wfjournal::MemoryJournal;

// Deterministic external world with durable, idempotent effects: each
// subtransaction either always aborts (scripted) or commits on first run;
// re-running a committed subtransaction or an already-applied compensation
// changes nothing. This is what the paper demands of activities under
// at-least-once re-execution.
class IdempotentRunner : public atm::SubTxnRunner {
 public:
  explicit IdempotentRunner(std::set<std::string> always_abort = {})
      : always_abort_(std::move(always_abort)) {}

  Result<bool> Run(const std::string& name) override {
    if (always_abort_.count(name)) return false;
    if (committed_.insert(name).second) commit_order_.push_back(name);
    return true;
  }
  Result<bool> Compensate(const std::string& name) override {
    if (compensated_.insert(name).second) comp_order_.push_back(name);
    return true;
  }

  /// Net committed effects (committed minus compensated), first-commit
  /// order.
  std::vector<std::string> effective() const {
    std::vector<std::string> out;
    for (const auto& name : commit_order_) {
      if (!compensated_.count(name)) out.push_back(name);
    }
    return out;
  }
  const std::vector<std::string>& comp_order() const { return comp_order_; }

 private:
  std::set<std::string> always_abort_;
  std::set<std::string> committed_;
  std::set<std::string> compensated_;
  std::vector<std::string> commit_order_;
  std::vector<std::string> comp_order_;
};

std::set<std::string> AsSet(const std::vector<std::string>& v) {
  return std::set<std::string>(v.begin(), v.end());
}

// ---------------------------------------------------------------------------
// Saga: the Trip running example (Flight, Hotel, Car).

const std::vector<std::string> kTripSteps = {"Flight", "Hotel", "Car"};

atm::SagaSpec TripSaga() {
  atm::SagaSpec spec("Trip");
  for (const auto& step : kTripSteps) spec.Then(step);
  return spec;
}

std::set<std::string> AbortSetFor(int abort_at) {
  std::set<std::string> aborts;
  if (abort_at > 0) aborts.insert(kTripSteps[static_cast<size_t>(abort_at - 1)]);
  return aborts;
}

// The saga guarantee for an abort at step `abort_at` (1-based; 0 = no
// abort): either everything committed and nothing was compensated, or
// nothing is net-committed and the committed prefix was compensated in
// reverse order.
void CheckSagaGuarantee(const IdempotentRunner& runner, int abort_at) {
  if (abort_at == 0) {
    EXPECT_EQ(runner.effective(), kTripSteps);
    EXPECT_TRUE(runner.comp_order().empty());
  } else {
    EXPECT_TRUE(runner.effective().empty());
    std::vector<std::string> expect(
        kTripSteps.begin(), kTripSteps.begin() + (abort_at - 1));
    std::reverse(expect.begin(), expect.end());
    EXPECT_EQ(runner.comp_order(), expect);
  }
}

// Wraps every bound program to record which activity names actually invoke
// programs — the crash enumeration's schedule domain.
void SpyActivities(wfrt::ProgramRegistry* programs,
                   std::set<std::string>* activities) {
  for (const auto& name : programs->BoundNames()) {
    auto fn = programs->Find(name);
    ASSERT_TRUE(fn.ok());
    wfrt::ProgramFn inner = **fn;
    ASSERT_TRUE(programs
                    ->Rebind(name,
                             [inner, activities](const data::Container& in,
                                                 data::Container* out,
                                                 const wfrt::ProgramContext& ctx) {
                               activities->insert(ctx.activity);
                               return inner(in, out, ctx);
                             })
                    .ok());
  }
}

TEST(FaultTortureTest, SagaSurvivesProgramCrashAtEveryActivityAttempt) {
  atm::SagaSpec spec = TripSaga();
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (int abort_at = 0; abort_at <= 3; ++abort_at) {
    const std::set<std::string> aborts = AbortSetFor(abort_at);

    // Fault-free spy run: the guarantee holds and we learn the activity
    // names to enumerate crashes over.
    std::set<std::string> activities;
    {
      IdempotentRunner runner(aborts);
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      SpyActivities(&programs, &activities);
      wfrt::Engine engine(&store, &programs);
      auto id = engine.RunToCompletion(t->root_process);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      CheckSagaGuarantee(runner, abort_at);
    }
    ASSERT_FALSE(activities.empty());

    // A transient crash at every (activity, attempt <= 3) point: the
    // default retry policy absorbs it and the outcome must not change.
    for (const auto& activity : activities) {
      for (int attempt = 1; attempt <= 3; ++attempt) {
        SCOPED_TRACE("abort_at=" + std::to_string(abort_at) + " crash at (" +
                     activity + ", attempt " + std::to_string(attempt) + ")");
        IdempotentRunner runner(aborts);
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
        wfrt::FaultPlan plan;
        plan.CrashAt(activity, attempt);
        ASSERT_TRUE(plan.Instrument(&programs).ok());
        wfrt::Engine engine(&store, &programs);
        auto id = engine.RunToCompletion(t->root_process);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        CheckSagaGuarantee(runner, abort_at);
      }
    }
  }
}

TEST(FaultTortureTest, SagaSurvivesJournalFaultAtEveryAppendIndex) {
  atm::SagaSpec spec = TripSaga();
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (int abort_at = 0; abort_at <= 3; ++abort_at) {
    const std::set<std::string> aborts = AbortSetFor(abort_at);

    // Reference run counts the appends to enumerate over.
    uint64_t total_appends = 0;
    {
      IdempotentRunner runner(aborts);
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      MemoryJournal mem;
      FaultyJournal counting(&mem);
      wfrt::Engine engine(&store, &programs);
      ASSERT_TRUE(engine.AttachJournal(&counting).ok());
      auto id = engine.RunToCompletion(t->root_process);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      total_appends = counting.appends();
    }
    ASSERT_GT(total_appends, 0u);

    for (uint64_t k = 0; k < total_appends; ++k) {
      SCOPED_TRACE("abort_at=" + std::to_string(abort_at) +
                   " journal fault at append " + std::to_string(k));
      IdempotentRunner runner(aborts);
      MemoryJournal mem;
      FaultyJournal faulty(&mem);
      faulty.FailAppendAt(k, FaultyJournal::FaultMode::kAppendError);

      // First life: the engine hits the disk fault and dies mid-run.
      {
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
        wfrt::Engine engine(&store, &programs);
        ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
        auto started = engine.StartProcess(t->root_process);
        if (started.ok()) {
          EXPECT_FALSE(engine.Run().ok());
        }
        EXPECT_EQ(faulty.faults_injected(), 1u);
      }

      // Second life: recover from the surviving prefix. The runner — the
      // external world — carries its state across the crash.
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      wfrt::Engine engine(&store, &programs);
      ASSERT_TRUE(engine.AttachJournal(&mem).ok());
      ASSERT_TRUE(engine.Recover().ok());
      ASSERT_TRUE(engine.Run().ok());

      if (mem.size() == 0) {
        // Even the INSTANCE_START record was lost: no instance, and the
        // world untouched.
        EXPECT_TRUE(runner.effective().empty());
        EXPECT_TRUE(runner.comp_order().empty());
        continue;
      }
      ASSERT_FALSE(engine.instance_order().empty());
      const std::string& id = engine.instance_order()[0];
      ASSERT_TRUE(engine.IsFinished(id));
      CheckSagaGuarantee(runner, abort_at);
    }
  }
}

// ---------------------------------------------------------------------------
// Flexible transaction: ZNBB94 Figure 3. Every run must land on exactly
// one of the three execution paths, or compensate everything away.

const std::set<std::string> kP1 = {"T1", "T2", "T4", "T5", "T6", "T8"};
const std::set<std::string> kP2 = {"T1", "T2", "T4", "T7"};
const std::set<std::string> kP3 = {"T1", "T2", "T3"};

bool IsAllowedFlexOutcome(const std::set<std::string>& effective) {
  return effective == kP1 || effective == kP2 || effective == kP3 ||
         effective.empty();
}

struct FlexCase {
  const char* name;
  std::set<std::string> aborts;
};

const std::vector<FlexCase>& FlexCases() {
  static const std::vector<FlexCase> cases = {
      {"none", {}},           // p1 commits
      {"t5", {"T5"}},         // p2 via T7
      {"t8", {"T8"}},         // p2, compensating T5/T6
      {"t4", {"T4"}},         // p3
      {"t2", {"T2"}},         // full compensation
  };
  return cases;
}

// Reference effective set for a case: the fault-free workflow run, which
// itself must land on an allowed outcome.
std::set<std::string> FlexReference(const atm::FlexSpec& spec,
                                    const wf::DefinitionStore& store,
                                    const std::string& root,
                                    const FlexCase& c,
                                    std::set<std::string>* activities) {
  IdempotentRunner runner(c.aborts);
  wfrt::ProgramRegistry programs;
  EXPECT_TRUE(exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
  if (activities != nullptr) SpyActivities(&programs, activities);
  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(root);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  std::set<std::string> effective = AsSet(runner.effective());
  EXPECT_TRUE(IsAllowedFlexOutcome(effective)) << c.name;
  return effective;
}

TEST(FaultTortureTest, FlexSurvivesProgramCrashAtEveryActivityAttempt) {
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  wf::DefinitionStore store;
  auto t = exo::TranslateFlex(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (const FlexCase& c : FlexCases()) {
    std::set<std::string> activities;
    const std::set<std::string> reference =
        FlexReference(spec, store, t->root_process, c, &activities);
    ASSERT_FALSE(activities.empty());

    for (const auto& activity : activities) {
      for (int attempt = 1; attempt <= 3; ++attempt) {
        SCOPED_TRACE(std::string(c.name) + " crash at (" + activity +
                     ", attempt " + std::to_string(attempt) + ")");
        IdempotentRunner runner(c.aborts);
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
        wfrt::FaultPlan plan;
        plan.CrashAt(activity, attempt);
        ASSERT_TRUE(plan.Instrument(&programs).ok());
        wfrt::Engine engine(&store, &programs);
        auto id = engine.RunToCompletion(t->root_process);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        // A transient crash must not move the transaction to a different
        // path, let alone an illegal one.
        EXPECT_EQ(AsSet(runner.effective()), reference);
      }
    }
  }
}

TEST(FaultTortureTest, FlexSurvivesJournalFaultAtEveryAppendIndex) {
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  wf::DefinitionStore store;
  auto t = exo::TranslateFlex(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (const FlexCase& c : FlexCases()) {
    const std::set<std::string> reference =
        FlexReference(spec, store, t->root_process, c, nullptr);

    uint64_t total_appends = 0;
    {
      IdempotentRunner runner(c.aborts);
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
      MemoryJournal mem;
      FaultyJournal counting(&mem);
      wfrt::Engine engine(&store, &programs);
      ASSERT_TRUE(engine.AttachJournal(&counting).ok());
      auto id = engine.RunToCompletion(t->root_process);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      total_appends = counting.appends();
    }
    ASSERT_GT(total_appends, 0u);

    for (uint64_t k = 0; k < total_appends; ++k) {
      SCOPED_TRACE(std::string(c.name) + " journal fault at append " +
                   std::to_string(k));
      IdempotentRunner runner(c.aborts);
      MemoryJournal mem;
      FaultyJournal faulty(&mem);
      faulty.FailAppendAt(k, FaultyJournal::FaultMode::kAppendError);
      {
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
        wfrt::Engine engine(&store, &programs);
        ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
        auto started = engine.StartProcess(t->root_process);
        if (started.ok()) {
          EXPECT_FALSE(engine.Run().ok());
        }
      }

      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
      wfrt::Engine engine(&store, &programs);
      ASSERT_TRUE(engine.AttachJournal(&mem).ok());
      ASSERT_TRUE(engine.Recover().ok());
      ASSERT_TRUE(engine.Run().ok());

      if (mem.size() == 0) {
        EXPECT_TRUE(runner.effective().empty());
        continue;
      }
      ASSERT_FALSE(engine.instance_order().empty());
      const std::string& id = engine.instance_order()[0];
      ASSERT_TRUE(engine.IsFinished(id));
      EXPECT_EQ(AsSet(runner.effective()), reference);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot boundaries: re-run the journal-fault enumerations with
// checkpoints firing mid-workflow (small snapshot_interval, RunSlice(1)
// driving so MaybeCheckpoint sees live instances at slice quiescence).
// The crash-at-every-append-index sweep now also lands on the kSnapshot
// append itself (a torn snapshot) and on the records right after a
// completed checkpoint (post-truncate); the truncate-failure sweep covers
// the remaining window, a crash after the snapshot commits but before
// truncation runs. Every schedule must recover to the unfaulted terminal
// state.

// Drives the engine one navigation step at a time until quiescent or an
// injected fault surfaces. Checkpoints fire at slice boundaries, so a
// small snapshot_interval snapshots *live* instances mid-workflow.
Status DriveInSlices(wfrt::Engine* engine) {
  while (true) {
    bool quiescent = false;
    Status st = engine->RunSlice(1, &quiescent);
    if (!st.ok()) return st;
    if (quiescent) return Status::OK();
  }
}

wfrt::EngineOptions SnapshotEvery(uint64_t records) {
  wfrt::EngineOptions opts;
  opts.snapshot_interval = records;
  return opts;
}

TEST(SnapshotTortureTest, SagaSurvivesJournalFaultAtEveryAppendIndex) {
  atm::SagaSpec spec = TripSaga();
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (int abort_at = 0; abort_at <= 3; ++abort_at) {
    const std::set<std::string> aborts = AbortSetFor(abort_at);

    // Reference run with checkpoints on: count the appends and make sure
    // the schedule actually crosses snapshot boundaries mid-workflow.
    uint64_t total_appends = 0;
    {
      IdempotentRunner runner(aborts);
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      MemoryJournal mem;
      FaultyJournal counting(&mem);
      wfrt::Engine engine(&store, &programs, SnapshotEvery(5));
      ASSERT_TRUE(engine.AttachJournal(&counting).ok());
      ASSERT_TRUE(engine.StartProcess(t->root_process).ok());
      ASSERT_TRUE(DriveInSlices(&engine).ok());
      ASSERT_GE(engine.stats().snapshots_written, 2u);
      CheckSagaGuarantee(runner, abort_at);
      total_appends = counting.appends();
    }

    for (uint64_t k = 0; k < total_appends; ++k) {
      SCOPED_TRACE("abort_at=" + std::to_string(abort_at) +
                   " journal fault at append " + std::to_string(k));
      IdempotentRunner runner(aborts);
      MemoryJournal mem;
      FaultyJournal faulty(&mem);
      faulty.FailAppendAt(k, FaultyJournal::FaultMode::kAppendError);

      // First life: the fault may hit a navigation append, the kSnapshot
      // append itself, or an append right after a completed truncation.
      {
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
        wfrt::Engine engine(&store, &programs, SnapshotEvery(5));
        ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
        auto started = engine.StartProcess(t->root_process);
        if (started.ok()) {
          EXPECT_FALSE(DriveInSlices(&engine).ok());
        }
        EXPECT_EQ(faulty.faults_injected(), 1u);
      }

      // Second life: recover from what survives — possibly a snapshot
      // plus a suffix — under the same checkpoint policy.
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      wfrt::Engine engine(&store, &programs, SnapshotEvery(5));
      ASSERT_TRUE(engine.AttachJournal(&mem).ok());
      ASSERT_TRUE(engine.Recover().ok());
      ASSERT_TRUE(engine.Run().ok());

      if (mem.size() == 0) {
        EXPECT_TRUE(runner.effective().empty());
        EXPECT_TRUE(runner.comp_order().empty());
        continue;
      }
      // A snapshot may have truncated the finished instance away; the
      // guarantee lives in the external world either way.
      if (!engine.instance_order().empty()) {
        EXPECT_TRUE(engine.IsFinished(engine.instance_order()[0]));
      }
      CheckSagaGuarantee(runner, abort_at);
    }
  }
}

TEST(SnapshotTortureTest, SagaSurvivesTruncateFailureAtEveryCheckpoint) {
  atm::SagaSpec spec = TripSaga();
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (int abort_at = 0; abort_at <= 3; ++abort_at) {
    const std::set<std::string> aborts = AbortSetFor(abort_at);

    uint64_t total_truncates = 0;
    {
      IdempotentRunner runner(aborts);
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      MemoryJournal mem;
      FaultyJournal counting(&mem);
      wfrt::Engine engine(&store, &programs, SnapshotEvery(5));
      ASSERT_TRUE(engine.AttachJournal(&counting).ok());
      ASSERT_TRUE(engine.StartProcess(t->root_process).ok());
      ASSERT_TRUE(DriveInSlices(&engine).ok());
      total_truncates = counting.truncates();
    }
    ASSERT_GE(total_truncates, 2u);

    for (uint64_t k = 0; k < total_truncates; ++k) {
      SCOPED_TRACE("abort_at=" + std::to_string(abort_at) +
                   " truncate failure at checkpoint " + std::to_string(k));
      IdempotentRunner runner(aborts);
      MemoryJournal mem;
      FaultyJournal faulty(&mem);
      faulty.FailTruncateAt(k);

      // First life dies in the window where the k-th snapshot is durable
      // but the history behind it still exists.
      {
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
        wfrt::Engine engine(&store, &programs, SnapshotEvery(5));
        ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
        ASSERT_TRUE(engine.StartProcess(t->root_process).ok());
        EXPECT_FALSE(DriveInSlices(&engine).ok());
        EXPECT_EQ(faulty.faults_injected(), 1u);
      }

      // Recovery lands on the snapshot, ignores the stale prefix, and
      // finishes both the truncation and the workflow.
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());
      wfrt::Engine engine(&store, &programs, SnapshotEvery(5));
      ASSERT_TRUE(engine.AttachJournal(&mem).ok());
      ASSERT_TRUE(engine.Recover().ok());
      EXPECT_GT(mem.first_seq(), 0u);  // interrupted truncation completed
      ASSERT_TRUE(engine.Run().ok());
      if (!engine.instance_order().empty()) {
        EXPECT_TRUE(engine.IsFinished(engine.instance_order()[0]));
      }
      CheckSagaGuarantee(runner, abort_at);
    }
  }
}

TEST(SnapshotTortureTest, FlexSurvivesJournalFaultAtEveryAppendIndex) {
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  wf::DefinitionStore store;
  auto t = exo::TranslateFlex(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  for (const FlexCase& c : FlexCases()) {
    const std::set<std::string> reference =
        FlexReference(spec, store, t->root_process, c, nullptr);

    uint64_t total_appends = 0;
    {
      IdempotentRunner runner(c.aborts);
      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
      MemoryJournal mem;
      FaultyJournal counting(&mem);
      wfrt::Engine engine(&store, &programs, SnapshotEvery(8));
      ASSERT_TRUE(engine.AttachJournal(&counting).ok());
      ASSERT_TRUE(engine.StartProcess(t->root_process).ok());
      ASSERT_TRUE(DriveInSlices(&engine).ok());
      ASSERT_GE(engine.stats().snapshots_written, 1u);
      EXPECT_EQ(AsSet(runner.effective()), reference);
      total_appends = counting.appends();
    }

    for (uint64_t k = 0; k < total_appends; ++k) {
      SCOPED_TRACE(std::string(c.name) + " journal fault at append " +
                   std::to_string(k));
      IdempotentRunner runner(c.aborts);
      MemoryJournal mem;
      FaultyJournal faulty(&mem);
      faulty.FailAppendAt(k, FaultyJournal::FaultMode::kAppendError);
      {
        wfrt::ProgramRegistry programs;
        ASSERT_TRUE(
            exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
        wfrt::Engine engine(&store, &programs, SnapshotEvery(8));
        ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
        auto started = engine.StartProcess(t->root_process);
        if (started.ok()) {
          EXPECT_FALSE(DriveInSlices(&engine).ok());
        }
      }

      wfrt::ProgramRegistry programs;
      ASSERT_TRUE(exo::BindFlexPrograms(spec, store, &runner, &programs).ok());
      wfrt::Engine engine(&store, &programs, SnapshotEvery(8));
      ASSERT_TRUE(engine.AttachJournal(&mem).ok());
      ASSERT_TRUE(engine.Recover().ok());
      ASSERT_TRUE(engine.Run().ok());

      if (mem.size() == 0) {
        EXPECT_TRUE(runner.effective().empty());
        continue;
      }
      if (!engine.instance_order().empty()) {
        EXPECT_TRUE(engine.IsFinished(engine.instance_order()[0]));
      }
      EXPECT_EQ(AsSet(runner.effective()), reference);
    }
  }
}

// ---------------------------------------------------------------------------
// Quarantine under randomized faults: a batch on one engine keeps going —
// every instance ends finished or quarantined, never wedged, and the
// poisoned ones are reported.

TEST(FaultTortureTest, RandomFaultsQuarantineSomeInstancesAndBlockNone) {
  wf::DefinitionStore store;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "prog").ok());
  wf::ProcessBuilder b(&store, "two_step");
  b.Program("A", "prog");
  b.Program("B", "prog");
  b.Connect("A", "B", "RC = 0");
  b.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::BindConstRc(&programs, "prog", 0).ok());
  wfrt::FaultPlan plan(7);
  wfrt::FaultProfile profile;
  profile.transient_probability = 0.2;
  profile.permanent_probability = 0.08;
  plan.SetDefaultProfile(profile);
  ASSERT_TRUE(plan.Instrument(&programs).ok());

  wfrt::EngineOptions opts;
  opts.retry.max_attempts = 4;
  wfrt::Engine engine(&store, &programs, opts);

  const int kInstances = 40;
  std::vector<std::string> ids;
  for (int i = 0; i < kInstances; ++i) {
    auto id = engine.StartProcess("two_step");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // One Run() navigates the whole batch: injected faults quarantine
  // individual instances but never poison the call.
  ASSERT_TRUE(engine.Run().ok());

  int finished = 0, failed = 0;
  for (const auto& id : ids) {
    if (engine.IsFinished(id)) {
      ++finished;
    } else {
      ASSERT_TRUE(engine.IsFailed(id)) << id << " neither finished nor failed";
      ++failed;
    }
  }
  EXPECT_EQ(finished + failed, kInstances);
  // The seeded profile is deterministic: both outcomes occur.
  EXPECT_GT(finished, 0);
  EXPECT_GT(failed, 0);
  EXPECT_EQ(engine.FailedInstances().size(), static_cast<size_t>(failed));
  EXPECT_EQ(engine.stats().instances_failed, static_cast<uint64_t>(failed));
  EXPECT_EQ(engine.stats().instances_finished,
            static_cast<uint64_t>(finished));
  EXPECT_GT(plan.injected(), 0u);
}

TEST(FaultTortureTest, SlowFaultsDelayViaHookWithoutChangingOutcome) {
  wf::DefinitionStore store;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "prog").ok());
  wf::ProcessBuilder b(&store, "one_step");
  b.Program("A", "prog");
  b.MapToOutput("A", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::BindConstRc(&programs, "prog", 0).ok());
  wfrt::FaultPlan plan;
  plan.SlowAt("A", 1, 5000);
  Micros observed = 0;
  plan.set_on_delay([&observed](Micros d) { observed += d; });
  ASSERT_TRUE(plan.Instrument(&programs).ok());

  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion("one_step");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto out = engine.OutputOf(*id);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);
  EXPECT_EQ(observed, 5000);
  EXPECT_EQ(plan.injected(), 1u);
}

}  // namespace
}  // namespace exotica
