// Golden equivalence of the native x86-64 step functions
// (EngineOptions::use_native_step_programs) against the threaded-code
// interpreter: on the same definition and inputs, every engine-observable
// artifact — the journal record stream (order AND content, connector
// evals included), the audit trace, the instance output, and error
// strings — must be byte-identical across the toggle. Exercised over the
// Trip saga (compensation path) and the Figure 3 flexible transaction
// (alternative path), mirroring instance_layout_test.cc, plus targeted
// error-path and stats/fleet-aggregation coverage. On builds without the
// emitter the toggle is a no-op and every assertion still holds — that
// is the fallback contract.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "atm/flex.h"
#include "atm/saga.h"
#include "atm/subtxn.h"
#include "codegen/step_jit.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "wfrt/fleet.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wfjournal::MemoryJournal;

class AbortingRunner : public atm::SubTxnRunner {
 public:
  explicit AbortingRunner(std::set<std::string> aborts)
      : aborts_(std::move(aborts)) {}
  Result<bool> Run(const std::string& name) override {
    return aborts_.count(name) == 0;
  }
  Result<bool> Compensate(const std::string&) override { return true; }

 private:
  std::set<std::string> aborts_;
};

struct RunResult {
  std::vector<std::string> records;
  std::vector<std::string> trace;
  std::string output;
  wfrt::EngineStats stats;
};

RunResult RunOnce(const wf::DefinitionStore& store,
                  wfrt::ProgramRegistry* programs, const std::string& process,
                  bool use_native) {
  RunResult out;
  MemoryJournal journal;
  wfrt::EngineOptions options;
  options.use_native_step_programs = use_native;
  wfrt::Engine engine(&store, programs, options);
  EXPECT_TRUE(engine.AttachJournal(&journal).ok());
  auto id = engine.RunToCompletion(process);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (id.ok()) {
    EXPECT_TRUE(engine.IsFinished(*id));
    out.trace = engine.audit().CompactTrace(*id, {});
    auto o = engine.OutputOf(*id);
    if (o.ok()) out.output = o->Serialize();
  }
  auto records = journal.ReadAll();
  EXPECT_TRUE(records.ok());
  for (const wfjournal::Record& r : *records) {
    out.records.push_back(r.Encode());
  }
  out.stats = engine.stats();
  return out;
}

class NativeStepTest : public ::testing::Test {
 protected:
  std::string SetupTripSaga() {
    atm::SagaSpec spec("Trip");
    spec.Then("Flight").Then("Hotel").Then("Car");
    auto t = exo::TranslateSaga(spec, &store_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    runner_ = std::make_unique<AbortingRunner>(std::set<std::string>{"Hotel"});
    EXPECT_TRUE(
        exo::BindSagaPrograms(spec, store_, runner_.get(), &programs_).ok());
    return t->root_process;
  }

  std::string SetupFigure3() {
    atm::FlexSpec flex = atm::MakeFigure3Spec();
    auto t = exo::TranslateFlex(flex, &store_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    runner_ = std::make_unique<AbortingRunner>(std::set<std::string>{"T5"});
    EXPECT_TRUE(
        exo::BindFlexPrograms(flex, store_, runner_.get(), &programs_).ok());
    return t->root_process;
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
  std::unique_ptr<AbortingRunner> runner_;
};

TEST_F(NativeStepTest, TripSagaByteIdenticalAcrossNativeToggle) {
  std::string process = SetupTripSaga();
  RunResult threaded = RunOnce(store_, &programs_, process, /*use_native=*/false);
  ASSERT_FALSE(threaded.records.empty());
  EXPECT_EQ(threaded.stats.native_step_dispatches, 0u);

  RunResult native = RunOnce(store_, &programs_, process, /*use_native=*/true);
  EXPECT_EQ(threaded.records, native.records);
  EXPECT_EQ(threaded.trace, native.trace);
  EXPECT_EQ(threaded.output, native.output);
  EXPECT_EQ(threaded.stats.activities_executed, native.stats.activities_executed);
  EXPECT_EQ(threaded.stats.connectors_evaluated,
            native.stats.connectors_evaluated);
  EXPECT_EQ(threaded.stats.dead_path_terminations,
            native.stats.dead_path_terminations);
  EXPECT_EQ(threaded.stats.vm_condition_evals, native.stats.vm_condition_evals);
  EXPECT_EQ(threaded.stats.typed_condition_evals,
            native.stats.typed_condition_evals);
  // Every sweep ran through exactly one of the two dispatchers.
  EXPECT_EQ(native.stats.native_step_dispatches +
                native.stats.step_program_dispatches,
            threaded.stats.step_program_dispatches);
  if (codegen::NativeCodegenAvailable()) {
    EXPECT_GT(native.stats.native_step_dispatches, 0u);
    EXPECT_GT(native.stats.native_programs_compiled, 0u);
  } else {
    EXPECT_EQ(native.stats.native_step_dispatches, 0u);
  }
}

TEST_F(NativeStepTest, Figure3ByteIdenticalAcrossNativeToggle) {
  std::string process = SetupFigure3();
  RunResult threaded = RunOnce(store_, &programs_, process, /*use_native=*/false);
  ASSERT_FALSE(threaded.records.empty());
  RunResult native = RunOnce(store_, &programs_, process, /*use_native=*/true);
  EXPECT_EQ(threaded.records, native.records);
  EXPECT_EQ(threaded.trace, native.trace);
  EXPECT_EQ(threaded.output, native.output);
  EXPECT_EQ(native.stats.native_step_dispatches +
                native.stats.step_program_dispatches,
            threaded.stats.step_program_dispatches);
}

// Null reads surface the exact interpreter Status: the emitter's error
// stub carries the identifier-name index and the engine rebuilds
// "condition references unset data: <name>" with the same transition
// context the interpreted sweep attaches.
class NativeStepErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::StructType gate("Gate");
    // FLAG has no default: a program that never writes it leaves a null
    // the condition trips over at evaluation time.
    ASSERT_TRUE(gate.AddScalar("FLAG", data::ScalarType::kLong).ok());
    ASSERT_TRUE(store_.types().Register(std::move(gate)).ok());
    wf::ProgramDeclaration decl;
    decl.name = "gated";
    decl.output_type = "Gate";
    ASSERT_TRUE(store_.DeclareProgram(std::move(decl)).ok());
    ASSERT_TRUE(programs_
                    .Bind("gated",
                          [](const data::Container&, data::Container*,
                             const wfrt::ProgramContext&) -> Status {
                            return Status::OK();  // FLAG stays unset
                          })
                    .ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "plain").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "plain", 0).ok());

    wf::ProcessBuilder b(&store_, "nullread");
    b.Program("A", "gated").Program("B", "plain").Program("C", "plain");
    b.Connect("A", "B", "FLAG = 1");
    b.Otherwise("A", "C");
    ASSERT_TRUE(b.Register().ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(NativeStepErrorTest, NullReadErrorStringsMatchInterpreter) {
  std::vector<std::string> errors;
  for (bool use_native : {false, true}) {
    wfrt::EngineOptions options;
    options.use_native_step_programs = use_native;
    wfrt::Engine engine(&store_, &programs_, options);
    ASSERT_TRUE(engine.StartProcess("nullread").ok());
    Status st = engine.Run();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("condition references unset data: FLAG"),
              std::string::npos)
        << st.ToString();
    errors.push_back(st.ToString());
  }
  EXPECT_EQ(errors[0], errors[1]);
}

TEST_F(NativeStepErrorTest, ConditionErrorIsFalseParity) {
  // With condition_error_is_false the null read demotes to "connector
  // false" and the otherwise path fires — identically on both paths,
  // journal included.
  std::vector<RunResult> runs;
  for (bool use_native : {false, true}) {
    RunResult out;
    MemoryJournal journal;
    wfrt::EngineOptions options;
    options.use_native_step_programs = use_native;
    options.condition_error_is_false = true;
    wfrt::Engine engine(&store_, &programs_, options);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    auto id = engine.RunToCompletion("nullread");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_TRUE(engine.IsFinished(*id));
    out.trace = engine.audit().CompactTrace(*id, {});
    auto records = journal.ReadAll();
    ASSERT_TRUE(records.ok());
    for (const wfjournal::Record& r : *records) {
      out.records.push_back(r.Encode());
    }
    out.stats = engine.stats();
    runs.push_back(std::move(out));
  }
  ASSERT_FALSE(runs[0].records.empty());
  EXPECT_EQ(runs[0].records, runs[1].records);
  EXPECT_EQ(runs[0].trace, runs[1].trace);
  EXPECT_EQ(runs[0].stats.connectors_evaluated,
            runs[1].stats.connectors_evaluated);
}

TEST(NativeStepStatsTest, CompileAccountingAndFleetAggregation) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "p").ok());
  ASSERT_TRUE(BindConstRc(&programs, "p", 0).ok());
  wf::ProcessBuilder b(&store, "chain");
  b.Program("A", "p").Program("B", "p").Program("C", "p");
  b.Connect("A", "B", "RC = 0");
  b.Otherwise("A", "C");
  b.Connect("B", "C", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  // Single engine: the plan is counted once (first encounter), repeat
  // runs only grow the dispatch counter.
  wfrt::Engine engine(&store, &programs);
  ASSERT_TRUE(engine.RunToCompletion("chain").ok());
  wfrt::EngineStats first = engine.stats();
  ASSERT_TRUE(engine.RunToCompletion("chain").ok());
  wfrt::EngineStats second = engine.stats();
  EXPECT_EQ(first.native_programs_compiled, second.native_programs_compiled);
  EXPECT_EQ(first.native_compile_bailouts, second.native_compile_bailouts);
  if (codegen::NativeCodegenAvailable()) {
    EXPECT_EQ(first.native_programs_compiled, 3u);
    EXPECT_EQ(first.native_compile_bailouts, 0u);
    EXPECT_EQ(second.native_step_dispatches,
              2 * first.native_step_dispatches);
    EXPECT_GT(first.native_step_dispatches, 0u);
  }

  // Fleet batch: the aggregate carries the native counters across
  // engines, and sweeps dispatch native wherever the build compiled them.
  wfrt::EngineFleet fleet(&store, &programs, 2);
  auto result = fleet.RunBatch("chain", 8);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->instances_finished, 8u);
  // Dispatch-count conservation: every sweep in the batch went through
  // exactly one of the two dispatchers, 8 instances' worth.
  EXPECT_EQ(result->aggregate.native_step_dispatches +
                result->aggregate.step_program_dispatches,
            8 * (first.native_step_dispatches + first.step_program_dispatches));
  if (codegen::NativeCodegenAvailable()) {
    EXPECT_GT(result->aggregate.native_step_dispatches, 0u);
    EXPECT_GT(result->aggregate.native_programs_compiled, 0u);
  }
}

}  // namespace
}  // namespace exotica
