// Work stealing: Detach/Adopt instance migration between engines.
//
// The single-threaded suites (StealTest, StealTortureTest) force steals
// at chosen points by calling Detach/Adopt directly — no threads, fully
// deterministic, including a golden invariance check (total navigation
// work is independent of where the steal lands) and crash-recovery cases
// on both sides of the handoff. FleetStealTest drives the real
// multi-threaded scheduler with skewed sleep profiles and runs under
// TSan in CI.

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "atm/saga.h"
#include "common/rng.h"
#include "common/strings.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "wfrt/fleet.h"
#include "wfsim/sim.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wfjournal::MemoryJournal;

// Registers a linear chain process `name` with `length` activities of
// program `prog`, last activity mapped to the process output.
void RegisterChain(wf::DefinitionStore* store, const std::string& name,
                   int length, const std::string& prog) {
  wf::ProcessBuilder b(store, name);
  std::string prev;
  for (int i = 1; i <= length; ++i) {
    std::string act = "A" + std::to_string(i);
    b.Program(act, prog);
    if (!prev.empty()) b.Connect(prev, act);
    prev = act;
  }
  b.MapToOutput(prev, {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());
}

wfrt::EngineOptions Prefixed(const std::string& prefix) {
  wfrt::EngineOptions opts;
  opts.instance_id_prefix = prefix;
  return opts;
}

TEST(StealTest, DetachAdoptMovesInstanceToAnotherEngine) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "chain", 6, "ok");

  wfrt::Engine victim(&store, &programs, Prefixed("a:"));
  wfrt::Engine thief(&store, &programs, Prefixed("b:"));

  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = victim.StartProcess("chain");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  bool quiescent = false;
  ASSERT_TRUE(victim.RunSlice(4, &quiescent).ok());
  ASSERT_FALSE(quiescent);

  auto pick = victim.PickDetachable();
  ASSERT_TRUE(pick.ok()) << pick.status().ToString();
  std::string stolen = *pick;
  auto detached = victim.Detach(stolen);
  ASSERT_TRUE(detached.ok()) << detached.status().ToString();
  EXPECT_EQ(detached->root_id, stolen);

  // The victim no longer knows the instance; the slot is a husk.
  EXPECT_TRUE(victim.FindInstance(stolen).status().IsNotFound());
  EXPECT_EQ(victim.stats().instances_detached, 1u);

  ASSERT_TRUE(thief.Adopt(*detached).ok());
  EXPECT_EQ(thief.stats().instances_stolen, 1u);
  ASSERT_TRUE(victim.Run().ok());
  ASSERT_TRUE(thief.Run().ok());

  EXPECT_TRUE(thief.IsFinished(stolen));
  auto out = thief.OutputOf(stolen);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);
  for (const std::string& id : ids) {
    if (id == stolen) continue;
    EXPECT_TRUE(victim.IsFinished(id));
  }
  EXPECT_EQ(victim.stats().instances_finished + thief.stats().instances_finished,
            3u);
}

// Golden invariance: wherever the steal lands, the combined navigation
// work across both engines equals the no-steal reference — no activity
// runs twice, none is skipped.
TEST(StealTest, StolenWorkIsInvariantAcrossEverySliceBoundary) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "chain", 8, "ok");

  // Reference: both instances on one engine, no stealing.
  uint64_t ref_activities = 0, ref_connectors = 0;
  {
    wfrt::Engine engine(&store, &programs);
    ASSERT_TRUE(engine.StartProcess("chain").ok());
    ASSERT_TRUE(engine.StartProcess("chain").ok());
    ASSERT_TRUE(engine.Run().ok());
    ref_activities = engine.stats().activities_executed;
    ref_connectors = engine.stats().connectors_evaluated;
  }

  for (int k = 1; k <= 16; ++k) {
    SCOPED_TRACE("steal after " + std::to_string(k) + " steps");
    wfrt::Engine victim(&store, &programs, Prefixed("a:"));
    wfrt::Engine thief(&store, &programs, Prefixed("b:"));
    ASSERT_TRUE(victim.StartProcess("chain").ok());
    ASSERT_TRUE(victim.StartProcess("chain").ok());
    bool quiescent = false;
    ASSERT_TRUE(victim.RunSlice(k, &quiescent).ok());

    auto pick = victim.PickDetachable();
    if (pick.ok()) {
      auto detached = victim.Detach(*pick);
      ASSERT_TRUE(detached.ok()) << detached.status().ToString();
      ASSERT_TRUE(thief.Adopt(*detached).ok());
    }
    ASSERT_TRUE(victim.Run().ok());
    ASSERT_TRUE(thief.Run().ok());

    EXPECT_EQ(victim.stats().instances_finished +
                  thief.stats().instances_finished,
              2u);
    EXPECT_EQ(victim.stats().activities_executed +
                  thief.stats().activities_executed,
              ref_activities);
    EXPECT_EQ(victim.stats().connectors_evaluated +
                  thief.stats().connectors_evaluated,
              ref_connectors);
  }
}

TEST(StealTest, DetachRefusesIneligibleInstances) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  org::Directory dir;
  ASSERT_TRUE(dir.AddRole("clerk").ok());
  ASSERT_TRUE(dir.AddPerson("ann", 1, {"clerk"}).ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store, "sour").ok());
  ASSERT_TRUE(programs
                  .Bind("sour",
                        [](const data::Container&, data::Container*,
                           const wfrt::ProgramContext&) -> Status {
                          return Status::Unsupported("always fails");
                        })
                  .ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store, "async").ok());
  ASSERT_TRUE(programs
                  .Bind("async",
                        [](const data::Container&, data::Container*,
                           const wfrt::ProgramContext&) -> Status {
                          return Status::Pending("external work");
                        })
                  .ok());
  RegisterChain(&store, "chain", 2, "ok");
  {
    wf::ProcessBuilder b(&store, "outer");
    b.Block("Sub", "chain");
    ASSERT_TRUE(b.Register().ok());
  }
  {
    wf::ProcessBuilder b(&store, "manual");
    b.Program("Approve", "ok").Manual().Role("clerk");
    ASSERT_TRUE(b.Register().ok());
  }
  {
    wf::ProcessBuilder b(&store, "poison");
    b.Program("Boom", "sour");
    ASSERT_TRUE(b.Register().ok());
  }
  {
    wf::ProcessBuilder b(&store, "pending");
    b.Program("Wait", "async");
    ASSERT_TRUE(b.Register().ok());
  }

  wfrt::Engine engine(&store, &programs);
  ASSERT_TRUE(engine.AttachOrganization(&dir).ok());

  // Block child: only whole families migrate.
  auto outer = engine.StartProcess("outer");
  ASSERT_TRUE(outer.ok());
  bool quiescent = false;
  ASSERT_TRUE(engine.RunSlice(1, &quiescent).ok());
  ASSERT_EQ(engine.instance_order().size(), 2u);
  std::string child = engine.instance_order()[1];
  EXPECT_TRUE(engine.Detach(child).status().IsInvalidArgument());

  // Posted work item: manual work is pinned to the engine that posted it.
  auto manual = engine.StartProcess("manual");
  ASSERT_TRUE(manual.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.Detach(*manual).status().IsFailedPrecondition());

  // In-flight asynchronous program: CompleteAsync will report back here.
  auto pending = engine.StartProcess("pending");
  ASSERT_TRUE(pending.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.Detach(*pending).status().IsFailedPrecondition());

  // Quarantined: the failure record stays with this engine.
  auto poison = engine.StartProcess("poison");
  ASSERT_TRUE(poison.ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_TRUE(engine.IsFailed(*poison));
  EXPECT_TRUE(engine.Detach(*poison).status().IsFailedPrecondition());

  // Finished: nothing left to migrate.
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_TRUE(engine.IsFinished(*outer));
  EXPECT_TRUE(engine.Detach(*outer).status().IsFailedPrecondition());
}

TEST(StealTest, BlockFamilyMigratesTogether) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "inner", 3, "ok");
  {
    wf::ProcessBuilder b(&store, "outer");
    b.Program("Pre", "ok");
    b.Block("Sub", "inner");
    b.Program("Post", "ok");
    b.Connect("Pre", "Sub");
    b.Connect("Sub", "Post");
    b.MapToOutput("Post", {{"RC", "RC"}});
    ASSERT_TRUE(b.Register().ok());
  }

  wfrt::Engine victim(&store, &programs, Prefixed("a:"));
  wfrt::Engine thief(&store, &programs, Prefixed("b:"));
  auto id = victim.StartProcess("outer");
  ASSERT_TRUE(id.ok());
  // Run until the block child exists and has made some progress.
  bool quiescent = false;
  ASSERT_TRUE(victim.RunSlice(3, &quiescent).ok());
  ASSERT_EQ(victim.instance_order().size(), 2u);

  auto detached = victim.Detach(*id);
  ASSERT_TRUE(detached.ok()) << detached.status().ToString();
  EXPECT_EQ(detached->images.size(), 2u);  // root + child
  ASSERT_TRUE(thief.Adopt(*detached).ok());
  ASSERT_TRUE(thief.Run().ok());
  ASSERT_TRUE(thief.IsFinished(*id));
  auto out = thief.OutputOf(*id);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);
  // Victim retains nothing live.
  EXPECT_EQ(victim.unfinished_top_level(), 0u);
}

TEST(StealTest, MigrationSurvivesCrashRecoveryOnBothSides) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "chain", 6, "ok");

  MemoryJournal victim_journal, thief_journal;
  std::string stolen, kept;
  {
    wfrt::Engine victim(&store, &programs, Prefixed("a:"));
    wfrt::Engine thief(&store, &programs, Prefixed("b:"));
    ASSERT_TRUE(victim.AttachJournal(&victim_journal).ok());
    ASSERT_TRUE(thief.AttachJournal(&thief_journal).ok());
    auto id1 = victim.StartProcess("chain");
    auto id2 = victim.StartProcess("chain");
    ASSERT_TRUE(id1.ok() && id2.ok());
    bool quiescent = false;
    ASSERT_TRUE(victim.RunSlice(3, &quiescent).ok());
    auto pick = victim.PickDetachable();
    ASSERT_TRUE(pick.ok());
    stolen = *pick;
    kept = (stolen == *id1) ? *id2 : *id1;
    auto detached = victim.Detach(stolen);
    ASSERT_TRUE(detached.ok());
    ASSERT_TRUE(thief.Adopt(*detached).ok());
    // Crash both engines here: neither instance has finished.
  }

  wfrt::Engine victim2(&store, &programs, Prefixed("a:"));
  ASSERT_TRUE(victim2.AttachJournal(&victim_journal).ok());
  ASSERT_TRUE(victim2.Recover().ok());
  ASSERT_TRUE(victim2.Run().ok());
  EXPECT_TRUE(victim2.IsFinished(kept));
  // The migrated instance is a husk on the victim, even after replay.
  EXPECT_TRUE(victim2.FindInstance(stolen).status().IsNotFound());

  wfrt::Engine thief2(&store, &programs, Prefixed("b:"));
  ASSERT_TRUE(thief2.AttachJournal(&thief_journal).ok());
  ASSERT_TRUE(thief2.Recover().ok());
  ASSERT_TRUE(thief2.Run().ok());
  EXPECT_TRUE(thief2.IsFinished(stolen));
  auto out = thief2.OutputOf(stolen);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);
}

TEST(StealTest, DanglingHandoffRecoversFromVictimJournal) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "chain", 5, "ok");

  MemoryJournal victim_journal;
  std::string stolen;
  {
    wfrt::Engine victim(&store, &programs, Prefixed("a:"));
    ASSERT_TRUE(victim.AttachJournal(&victim_journal).ok());
    ASSERT_TRUE(victim.StartProcess("chain").ok());
    auto id2 = victim.StartProcess("chain");
    ASSERT_TRUE(id2.ok());
    bool quiescent = false;
    ASSERT_TRUE(victim.RunSlice(2, &quiescent).ok());
    auto pick = victim.PickDetachable();
    ASSERT_TRUE(pick.ok());
    stolen = *pick;
    ASSERT_TRUE(victim.Detach(stolen).ok());
    // Crash before any engine adopts: the handoff is dangling, but the
    // detach record carries the full image.
  }

  wfrt::Engine victim2(&store, &programs, Prefixed("a:"));
  ASSERT_TRUE(victim2.AttachJournal(&victim_journal).ok());
  ASSERT_TRUE(victim2.Recover().ok());
  ASSERT_TRUE(victim2.Run().ok());
  EXPECT_TRUE(victim2.FindInstance(stolen).status().IsNotFound());

  auto image = victim2.TakeDetachedImage(stolen);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  // The image is surrendered exactly once.
  EXPECT_TRUE(victim2.TakeDetachedImage(stolen).status().IsNotFound());

  wfrt::Engine rescuer(&store, &programs, Prefixed("b:"));
  ASSERT_TRUE(rescuer.Adopt(*image).ok());
  ASSERT_TRUE(rescuer.Run().ok());
  EXPECT_TRUE(rescuer.IsFinished(stolen));
  auto out = rescuer.OutputOf(stolen);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);
}

// ---------------------------------------------------------------------------
// Saga torture: steal the Trip saga at every slice boundary — including
// mid-compensation — crash the thief immediately after the handoff, and
// the saga guarantee must still hold after recovery.

class CountingRunner : public atm::SubTxnRunner {
 public:
  explicit CountingRunner(std::set<std::string> always_abort)
      : always_abort_(std::move(always_abort)) {}

  Result<bool> Run(const std::string& name) override {
    if (always_abort_.count(name)) return false;
    if (committed_.insert(name).second) commit_order_.push_back(name);
    return true;
  }
  Result<bool> Compensate(const std::string& name) override {
    if (compensated_.insert(name).second) comp_order_.push_back(name);
    return true;
  }

  std::vector<std::string> effective() const {
    std::vector<std::string> out;
    for (const auto& name : commit_order_) {
      if (!compensated_.count(name)) out.push_back(name);
    }
    return out;
  }
  const std::vector<std::string>& comp_order() const { return comp_order_; }

 private:
  std::set<std::string> always_abort_;
  std::set<std::string> committed_;
  std::set<std::string> compensated_;
  std::vector<std::string> commit_order_;
  std::vector<std::string> comp_order_;
};

TEST(StealTortureTest, SagaStolenAtEveryPointSurvivesThiefCrash) {
  atm::SagaSpec spec("Trip");
  spec.Then("Flight").Then("Hotel").Then("Car");
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();

  // Hotel aborts: Flight commits, then compensates in reverse. Steals at
  // late k land inside the compensation phase.
  const std::set<std::string> aborts = {"Hotel"};

  for (int k = 0; k < 64; ++k) {
    SCOPED_TRACE("steal after " + std::to_string(k) + " steps");
    CountingRunner runner(aborts);
    wfrt::ProgramRegistry programs;
    ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());

    MemoryJournal victim_journal, thief_journal;
    wfrt::Engine victim(&store, &programs, Prefixed("a:"));
    ASSERT_TRUE(victim.AttachJournal(&victim_journal).ok());
    auto id = victim.StartProcess(t->root_process);
    ASSERT_TRUE(id.ok());
    bool quiescent = false;
    ASSERT_TRUE(victim.RunSlice(k, &quiescent).ok());
    if (victim.IsFinished(*id)) break;  // k exceeded the saga's total steps

    auto detached = victim.Detach(*id);
    ASSERT_TRUE(detached.ok()) << detached.status().ToString();
    {
      wfrt::Engine thief(&store, &programs, Prefixed("b:"));
      ASSERT_TRUE(thief.AttachJournal(&thief_journal).ok());
      ASSERT_TRUE(thief.Adopt(*detached).ok());
      // Thief crashes before navigating a single step.
    }

    wfrt::Engine thief2(&store, &programs, Prefixed("b:"));
    ASSERT_TRUE(thief2.AttachJournal(&thief_journal).ok());
    ASSERT_TRUE(thief2.Recover().ok());
    ASSERT_TRUE(thief2.Run().ok());
    ASSERT_TRUE(thief2.IsFinished(*id));

    // The saga guarantee: nothing net-committed, compensation in reverse
    // order of the committed prefix.
    EXPECT_TRUE(runner.effective().empty());
    EXPECT_EQ(runner.comp_order(), std::vector<std::string>{"Flight"});
  }
}

// ---------------------------------------------------------------------------
// Multi-threaded fleet scheduler with skewed sleep profiles (TSan target;
// the suite name matches the CI fleet filter).

// Binds `name` to a program that sleeps for a wfsim-sampled duration.
void BindSleeper(wfrt::ProgramRegistry* programs, const std::string& name,
                 wfsim::DurationModel model) {
  ASSERT_TRUE(programs
                  ->Bind(name,
                         [model](const data::Container&, data::Container* out,
                                 const wfrt::ProgramContext& ctx) -> Status {
                           Rng rng(static_cast<uint64_t>(ctx.attempt) * 7919 +
                                   ctx.activity.size());
                           Micros d = model.Sample(&rng);
                           std::this_thread::sleep_for(
                               std::chrono::microseconds(d));
                           return out->Set("RC", data::Value(int64_t{0}));
                         })
                  .ok());
}

TEST(FleetStealTest, SkewedSleepBatchBalancesAcrossEngines) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "heavy_step").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store, "light_step").ok());
  BindSleeper(&programs, "heavy_step", wfsim::DurationModel::Fixed(3000));
  BindSleeper(&programs, "light_step", wfsim::DurationModel::Uniform(300, 700));
  RegisterChain(&store, "heavy", 10, "heavy_step");
  RegisterChain(&store, "light", 2, "light_step");

  wfrt::FleetOptions fo;
  fo.work_stealing = true;
  fo.steal_slice = 2;  // low steal latency against multi-ms activities
  wfrt::EngineFleet fleet(&store, &programs, 4, {}, fo);

  std::vector<wfrt::EngineFleet::BatchSeed> seeds;
  seeds.push_back({"heavy", nullptr});
  for (int i = 0; i < 24; ++i) seeds.push_back({"light", nullptr});

  auto result = fleet.RunBatch(seeds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->instances_finished, 25u);
  // The three light engines drain first and relieve the heavy one.
  EXPECT_GE(result->aggregate.instances_stolen, 1u);
  EXPECT_EQ(result->aggregate.instances_stolen,
            result->aggregate.instances_detached);
  // Every instance spun up from an arena image (seeds + adoptions).
  EXPECT_GE(result->aggregate.arena_spinups, 25u);
}

TEST(FleetStealTest, AdaptiveSliceShrinksUnderThiefPressure) {
  // One engine draws a long chain whose slices take tens of milliseconds;
  // the others drain their light seeds, go idle, and queue steal requests
  // at the loaded engine. Finding thieves queued at a slice boundary must
  // shrink the slice (counted per halving), whether or not the steal
  // itself is ultimately served or declined.
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "slow_step").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store, "quick_step").ok());
  BindSleeper(&programs, "slow_step", wfsim::DurationModel::Fixed(1500));
  BindSleeper(&programs, "quick_step", wfsim::DurationModel::Fixed(200));
  RegisterChain(&store, "long", 80, "slow_step");
  RegisterChain(&store, "short", 2, "quick_step");

  wfrt::FleetOptions fo;
  fo.work_stealing = true;
  fo.steal_slice = 32;  // slices outlive the light engines' whole share
  fo.adaptive_steal_slice = true;
  wfrt::EngineFleet fleet(&store, &programs, 4, {}, fo);

  std::vector<wfrt::EngineFleet::BatchSeed> seeds;
  seeds.push_back({"long", nullptr});
  for (int i = 0; i < 12; ++i) seeds.push_back({"short", nullptr});

  auto result = fleet.RunBatch(seeds);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->instances_finished, 13u);
  EXPECT_GE(result->aggregate.steal_slice_shrinks, 1u);
}

TEST(FleetStealTest, CostAwareVictimsDrainSkewedBatch) {
  // Two loaded engines: one with many light seeds (deep queue, cheap
  // work), one with few heavy seeds (shallow queue, expensive work). With
  // cost-aware victim picking the thieves weigh queue depth by the
  // victims' published mean activity cost, and the batch must still
  // drain with stealing intact. The cost EWMA is thread-local to each
  // engine and published only under the coordinator lock, which is what
  // TSan checks here.
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "heavy_step").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store, "light_step").ok());
  BindSleeper(&programs, "heavy_step", wfsim::DurationModel::Fixed(4000));
  BindSleeper(&programs, "light_step", wfsim::DurationModel::Fixed(300));
  RegisterChain(&store, "heavy", 8, "heavy_step");
  RegisterChain(&store, "light", 2, "light_step");

  for (bool cost_aware : {true, false}) {
    SCOPED_TRACE(cost_aware ? "cost-aware" : "plain depth");
    wfrt::FleetOptions fo;
    fo.work_stealing = true;
    fo.steal_slice = 1;
    fo.cost_aware_victims = cost_aware;
    wfrt::EngineFleet fleet(&store, &programs, 4, {}, fo);

    // [heavy, heavy, light x 14]: greedy assignment lands both heavies
    // on engines 0 and 1, the lights spread over all four.
    std::vector<wfrt::EngineFleet::BatchSeed> seeds;
    seeds.push_back({"heavy", nullptr});
    seeds.push_back({"heavy", nullptr});
    for (int i = 0; i < 14; ++i) seeds.push_back({"light", nullptr});

    auto result = fleet.RunBatch(seeds);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->ok());
    EXPECT_EQ(result->instances_finished, 16u);
    EXPECT_GE(result->aggregate.instances_stolen, 1u);
    // The stat only counts picks diverging from the plain-depth argmax,
    // so with the toggle off it must stay zero.
    if (!cost_aware) {
      EXPECT_EQ(result->aggregate.steal_victim_cost_picks, 0u);
    }
  }
}

TEST(FleetStealTest, DisabledStealingKeepsEnginesIndependent) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "chain", 3, "ok");

  wfrt::FleetOptions fo;
  fo.work_stealing = false;
  wfrt::EngineFleet fleet(&store, &programs, 3, {}, fo);
  auto result = fleet.RunBatch("chain", 9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->instances_finished, 9u);
  EXPECT_EQ(result->aggregate.instances_stolen, 0u);
  EXPECT_EQ(result->aggregate.instances_detached, 0u);
  // Without stealing, ids keep the bare engine-local namespace.
  EXPECT_TRUE(fleet.engine(0)->FindInstance("wf-1").ok());
}

TEST(FleetStealTest, HeterogeneousBatchValidatesEverySeed) {
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(DeclareDefaultProgram(&store, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
  RegisterChain(&store, "chain", 2, "ok");

  wfrt::EngineFleet fleet(&store, &programs, 2);
  std::vector<wfrt::EngineFleet::BatchSeed> seeds = {{"chain", nullptr},
                                                     {"ghost", nullptr}};
  EXPECT_TRUE(fleet.RunBatch(seeds).status().IsNotFound());
}

}  // namespace
}  // namespace exotica
