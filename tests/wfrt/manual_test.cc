// Manual activities, worklists and user intervention (paper §3.3).

#include <gtest/gtest.h>

#include "common/clock.h"
#include "wf/builder.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;

class ManualTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(dir_.AddRole("clerk").ok());
    ASSERT_TRUE(dir_.AddRole("manager").ok());
    ASSERT_TRUE(dir_.AddPerson("ann", 1, {"clerk"}).ok());
    ASSERT_TRUE(dir_.AddPerson("bob", 1, {"clerk"}).ok());
    ASSERT_TRUE(dir_.AddPerson("mia", 2, {"manager"}).ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
  org::Directory dir_;
  ManualClock clock_;
};

TEST_F(ManualTest, ManualActivityWaitsOnWorklistAndDisappearsOnClaim) {
  wf::ProcessBuilder b(&store_, "approval");
  b.Program("Approve", "ok").Manual().Role("clerk");
  b.MapToOutput("Approve", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.clock = &clock_;
  wfrt::Engine engine(&store_, &programs_, opts);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());

  auto id = engine.StartProcess("approval");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_FALSE(engine.IsFinished(*id));  // waiting on a person

  // The item shows on both clerks' worklists.
  auto ann_list = engine.worklists()->WorklistOf("ann");
  auto bob_list = engine.worklists()->WorklistOf("bob");
  ASSERT_EQ(ann_list.size(), 1u);
  ASSERT_EQ(bob_list.size(), 1u);
  org::WorkItemId item = ann_list[0]->id;

  // Claiming withdraws it from every other worklist.
  ASSERT_TRUE(engine.Claim(item, "ann").ok());
  EXPECT_TRUE(engine.worklists()->WorklistOf("bob").empty());

  // Executing completes the activity and the process.
  ASSERT_TRUE(engine.ExecuteWorkItem(item, "ann").ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);
}

TEST_F(ManualTest, IneligiblePersonCannotClaim) {
  wf::ProcessBuilder b(&store_, "p1");
  b.Program("Approve", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("p1");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());

  auto items = engine.worklists()->WorklistOf("ann");
  ASSERT_EQ(items.size(), 1u);
  Status st = engine.Claim(items[0]->id, "mia");
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(ManualTest, AbsentPersonSubstituted) {
  ASSERT_TRUE(dir_.SetAbsent("ann", true, "mia").ok());

  wf::ProcessBuilder b(&store_, "p2");
  b.Program("Approve", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  ASSERT_TRUE(engine.StartProcess("p2").ok());
  ASSERT_TRUE(engine.Run().ok());

  // mia stands in for ann; bob is present.
  EXPECT_EQ(engine.worklists()->WorklistOf("mia").size(), 1u);
  EXPECT_EQ(engine.worklists()->WorklistOf("bob").size(), 1u);
  EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());
}

TEST_F(ManualTest, RoleResolvingToNobodyFails) {
  ASSERT_TRUE(dir_.AddRole("auditor").ok());
  wf::ProcessBuilder b(&store_, "p3");
  b.Program("Audit", "ok").Manual().Role("auditor");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("p3");
  EXPECT_TRUE(id.status().IsFailedPrecondition()) << id.status().ToString();
}

TEST_F(ManualTest, DeadlineRaisesNotificationOnce) {
  wf::ProcessBuilder b(&store_, "p4");
  b.Program("Approve", "ok").Manual().Role("clerk").NotifyAfter(1000, "manager");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.clock = &clock_;
  wfrt::Engine engine(&store_, &programs_, opts);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  ASSERT_TRUE(engine.StartProcess("p4").ok());
  ASSERT_TRUE(engine.Run().ok());

  EXPECT_TRUE(engine.CheckDeadlines().empty());  // not yet due
  clock_.Advance(2000);
  auto notes = engine.CheckDeadlines();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].activity, "Approve");
  ASSERT_EQ(notes[0].recipients.size(), 1u);
  EXPECT_EQ(notes[0].recipients[0], "mia");
  EXPECT_TRUE(engine.CheckDeadlines().empty());  // raised only once
}

TEST_F(ManualTest, ForceFinishSkipsProgram) {
  wf::ProcessBuilder b(&store_, "p5");
  b.Program("Approve", "ok").Manual().Role("clerk");
  b.Program("After", "ok");
  b.Connect("Approve", "After", "RC = 0");
  b.MapToOutput("Approve", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  auto id = engine.StartProcess("p5");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());

  data::Container forced = data::Container::Default(store_.types());
  ASSERT_TRUE(forced.Set("RC", data::Value(int64_t{0})).ok());
  ASSERT_TRUE(engine.ForceFinish(*id, "Approve", forced).ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(*engine.StateOf(*id, "After"), wf::ActivityState::kTerminated);
  // The pending work item was withdrawn.
  EXPECT_TRUE(engine.worklists()->WorklistOf("ann").empty());
}

TEST_F(ManualTest, ReleaseReturnsItemToAllWorklists) {
  wf::ProcessBuilder b(&store_, "p6");
  b.Program("Approve", "ok").Manual().Role("clerk");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachOrganization(&dir_).ok());
  ASSERT_TRUE(engine.StartProcess("p6").ok());
  ASSERT_TRUE(engine.Run().ok());

  auto items = engine.worklists()->WorklistOf("ann");
  ASSERT_EQ(items.size(), 1u);
  org::WorkItemId item = items[0]->id;
  ASSERT_TRUE(engine.Claim(item, "ann").ok());
  EXPECT_TRUE(engine.worklists()->WorklistOf("bob").empty());
  ASSERT_TRUE(engine.worklists()->Release(item, "ann").ok());
  EXPECT_EQ(engine.worklists()->WorklistOf("bob").size(), 1u);
}

}  // namespace
}  // namespace exotica
