// Forward recovery (paper §3.3): "In case of failures, the process
// execution will stop. Once the failures have been repaired, the process
// execution is resumed from the point where the failure occurred."
//
// The exhaustive test crashes the engine after EVERY journal prefix and
// verifies the resumed execution reaches the same final state — with
// in-flight activities re-run from the beginning (at-least-once).

#include <cstdio>

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::BindScriptedRc;
using test::DeclareDefaultProgram;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "flaky").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
    ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());

    // Reference process: data flow, a dead branch, a block, and a loop.
    wf::ProcessBuilder inner(&store_, "inner");
    inner.Program("X", "ok");
    inner.MapToOutput("X", {{"RC", "RC"}});
    ASSERT_TRUE(inner.Register().ok());

    wf::ProcessBuilder b(&store_, "ref");
    b.Program("A", "ok");
    b.Program("Dead", "ok");
    b.Program("Loop", "flaky").ExitWhen("RC = 0");
    b.Block("Blk", "inner");
    b.Program("Z", "ok");
    b.Connect("A", "Dead", "RC <> 0");   // never taken
    b.Connect("A", "Loop", "RC = 0");
    b.Connect("Loop", "Blk", "RC = 0");
    b.Connect("Blk", "Z", "RC = 0");
    b.MapToOutput("Z", {{"RC", "RC"}});
    ASSERT_TRUE(b.Register().ok());
  }

  // `flaky` needs rebinding per engine since attempts restart at 1 on
  // recovery re-execution; a pure attempt-scripted program stays
  // deterministic because the journal restores the attempt counter.
  void BindFlaky(wfrt::ProgramRegistry* programs) {
    if (!programs->IsBound("flaky")) {
      ASSERT_TRUE(BindScriptedRc(programs, "flaky", {1, 0}).ok());
    }
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(RecoveryTest, CrashAtEveryJournalPrefixResumesToSameOutcome) {
  BindFlaky(&programs_);

  // Reference run.
  wfjournal::MemoryJournal reference;
  wfrt::Engine ref_engine(&store_, &programs_);
  ASSERT_TRUE(ref_engine.AttachJournal(&reference).ok());
  auto ref_id = ref_engine.RunToCompletion("ref");
  ASSERT_TRUE(ref_id.ok()) << ref_id.status().ToString();
  ASSERT_TRUE(ref_engine.IsFinished(*ref_id));
  const uint64_t total = reference.size();
  ASSERT_GT(total, 10u);
  auto ref_records = reference.ReadAll();
  ASSERT_TRUE(ref_records.ok());

  for (uint64_t cut = 1; cut <= total; ++cut) {
    SCOPED_TRACE("crash after record " + std::to_string(cut));
    // Rebuild a journal holding only the first `cut` records.
    wfjournal::MemoryJournal journal;
    for (uint64_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(journal.Append((*ref_records)[i]).ok());
    }
    wfrt::ProgramRegistry programs;
    ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
    ASSERT_TRUE(BindConstRc(&programs, "fail", 1).ok());
    ASSERT_TRUE(BindScriptedRc(&programs, "flaky", {1, 0}).ok());

    wfrt::Engine engine(&store_, &programs);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    Status rec = engine.Recover();
    ASSERT_TRUE(rec.ok()) << rec.ToString();
    Status run = engine.Run();
    ASSERT_TRUE(run.ok()) << run.ToString();

    ASSERT_TRUE(engine.IsFinished(*ref_id));
    auto out = engine.OutputOf(*ref_id);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->Get("RC")->as_long(), 0);
    EXPECT_EQ(*engine.StateOf(*ref_id, "Dead"), wf::ActivityState::kDead);
    EXPECT_EQ(*engine.StateOf(*ref_id, "Z"), wf::ActivityState::kTerminated);
  }
}

TEST_F(RecoveryTest, FileJournalSurvivesEngineRestart) {
  BindFlaky(&programs_);
  std::string path = ::testing::TempDir() + "/exo_recovery_journal.log";
  std::remove(path.c_str());

  std::string id;
  {
    auto journal = wfjournal::FileJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
    auto r = engine.RunToCompletion("ref");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    id = *r;
  }
  // "Restart": new journal handle, new engine, same file.
  {
    auto journal = wfjournal::FileJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    wfrt::ProgramRegistry programs;
    ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
    ASSERT_TRUE(BindConstRc(&programs, "fail", 1).ok());
    ASSERT_TRUE(BindScriptedRc(&programs, "flaky", {1, 0}).ok());
    wfrt::Engine engine(&store_, &programs);
    ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
    ASSERT_TRUE(engine.Recover().ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_TRUE(engine.IsFinished(id));
    EXPECT_EQ(engine.OutputOf(id)->Get("RC")->as_long(), 0);
  }
  std::remove(path.c_str());
}

TEST_F(RecoveryTest, ManualWorkItemRepostedAfterRecovery) {
  org::Directory dir;
  ASSERT_TRUE(dir.AddRole("clerk").ok());
  ASSERT_TRUE(dir.AddPerson("ann", 1, {"clerk"}).ok());

  wf::ProcessBuilder b(&store_, "manual");
  b.Program("Approve", "ok").Manual().Role("clerk");
  b.MapToOutput("Approve", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfjournal::MemoryJournal journal;
  std::string id;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir).ok());
    auto r = engine.StartProcess("manual");
    ASSERT_TRUE(r.ok());
    id = *r;
    ASSERT_TRUE(engine.Run().ok());
    ASSERT_EQ(engine.worklists()->WorklistOf("ann").size(), 1u);
    // Crash here: the engine object goes away; the work item with it.
  }
  {
    wfrt::ProgramRegistry programs;
    ASSERT_TRUE(BindConstRc(&programs, "ok", 0).ok());
    wfrt::Engine engine(&store_, &programs);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.AttachOrganization(&dir).ok());
    ASSERT_TRUE(engine.Recover().ok());
    auto items = engine.worklists()->WorklistOf("ann");
    ASSERT_EQ(items.size(), 1u);  // reposted
    ASSERT_TRUE(engine.Claim(items[0]->id, "ann").ok());
    ASSERT_TRUE(engine.ExecuteWorkItem(items[0]->id, "ann").ok());
    EXPECT_TRUE(engine.IsFinished(id));
  }
}

TEST_F(RecoveryTest, RecoverRequiresJournalAndFreshEngine) {
  wfrt::Engine engine(&store_, &programs_);
  EXPECT_TRUE(engine.Recover().IsFailedPrecondition());

  wfjournal::MemoryJournal journal;
  wfrt::Engine with_journal(&store_, &programs_);
  ASSERT_TRUE(with_journal.AttachJournal(&journal).ok());
  ASSERT_TRUE(with_journal.StartProcess("ref").ok());
  EXPECT_TRUE(with_journal.Recover().IsFailedPrecondition());
}

}  // namespace
}  // namespace exotica
