// Golden equivalence of the packed SoA hot/cold instance layout
// (EngineOptions::packed_instance_state) against the legacy AoS
// vector<ActivityRuntime>: on the same definition and inputs, every
// engine-observable artifact — the journal record stream (order AND
// content), the audit trace, the instance output, error strings, and the
// encoded instance images that snapshots and detach handoffs are made of
// — must be byte-identical across the toggle. Exercised over the Trip
// saga (compensation path) and the Figure 3 flexible transaction
// (alternative path), i.e. block children, dead-path sweeps, OR-joins,
// and data connectors all in one stream. Also covers cross-layout
// migration: images written by one layout recover/adopt into the other.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "atm/flex.h"
#include "atm/saga.h"
#include "atm/subtxn.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wfjournal::MemoryJournal;

// A runner that aborts a fixed set of subtransactions; enough to steer
// the saga into compensation and the flex spec onto its alternative path.
class AbortingRunner : public atm::SubTxnRunner {
 public:
  explicit AbortingRunner(std::set<std::string> aborts)
      : aborts_(std::move(aborts)) {}
  Result<bool> Run(const std::string& name) override {
    return aborts_.count(name) == 0;
  }
  Result<bool> Compensate(const std::string&) override { return true; }

 private:
  std::set<std::string> aborts_;
};

struct RunResult {
  std::vector<std::string> records;  ///< encoded journal stream
  std::vector<std::string> trace;    ///< compact audit trace
  std::string output;                ///< serialized instance output
  wfrt::EngineStats stats;
};

// Runs `process` once with the given layout against a fresh memory
// journal and returns every observable artifact.
RunResult RunOnce(const wf::DefinitionStore& store,
                  wfrt::ProgramRegistry* programs, const std::string& process,
                  bool packed, bool use_step = true) {
  RunResult out;
  MemoryJournal journal;
  wfrt::EngineOptions options;
  options.packed_instance_state = packed;
  options.use_step_programs = use_step;
  wfrt::Engine engine(&store, programs, options);
  EXPECT_TRUE(engine.AttachJournal(&journal).ok());
  auto id = engine.RunToCompletion(process);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (id.ok()) {
    EXPECT_TRUE(engine.IsFinished(*id));
    out.trace = engine.audit().CompactTrace(*id, {});
    auto o = engine.OutputOf(*id);
    if (o.ok()) out.output = o->Serialize();
  }
  auto records = journal.ReadAll();
  EXPECT_TRUE(records.ok());
  for (const wfjournal::Record& r : *records) {
    out.records.push_back(r.Encode());
  }
  out.stats = engine.stats();
  return out;
}

class InstanceLayoutTest : public ::testing::Test {
 protected:
  // Trip saga with Hotel aborting: Flight commits then compensates —
  // block children plus the dead-path compensation chain.
  std::string SetupTripSaga() {
    atm::SagaSpec spec("Trip");
    spec.Then("Flight").Then("Hotel").Then("Car");
    auto t = exo::TranslateSaga(spec, &store_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    runner_ = std::make_unique<AbortingRunner>(std::set<std::string>{"Hotel"});
    EXPECT_TRUE(
        exo::BindSagaPrograms(spec, store_, runner_.get(), &programs_).ok());
    return t->root_process;
  }

  // Figure 3 flexible transaction with T5 aborting: forces the
  // alternative path — preferences, OR-joins, contingency blocks.
  std::string SetupFigure3() {
    atm::FlexSpec flex = atm::MakeFigure3Spec();
    auto t = exo::TranslateFlex(flex, &store_);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    runner_ = std::make_unique<AbortingRunner>(std::set<std::string>{"T5"});
    EXPECT_TRUE(
        exo::BindFlexPrograms(flex, store_, runner_.get(), &programs_).ok());
    return t->root_process;
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
  std::unique_ptr<AbortingRunner> runner_;
};

TEST_F(InstanceLayoutTest, TripSagaByteIdenticalAcrossLayouts) {
  std::string process = SetupTripSaga();
  RunResult legacy = RunOnce(store_, &programs_, process, /*packed=*/false);
  ASSERT_FALSE(legacy.records.empty());
  RunResult packed = RunOnce(store_, &programs_, process, /*packed=*/true);
  EXPECT_EQ(legacy.records, packed.records);
  EXPECT_EQ(legacy.trace, packed.trace);
  EXPECT_EQ(legacy.output, packed.output);
  EXPECT_EQ(legacy.stats.activities_executed, packed.stats.activities_executed);
  EXPECT_EQ(legacy.stats.connectors_evaluated,
            packed.stats.connectors_evaluated);
  EXPECT_EQ(legacy.stats.dead_path_terminations,
            packed.stats.dead_path_terminations);
}

TEST_F(InstanceLayoutTest, Figure3ByteIdenticalAcrossLayouts) {
  std::string process = SetupFigure3();
  RunResult legacy = RunOnce(store_, &programs_, process, /*packed=*/false);
  ASSERT_FALSE(legacy.records.empty());
  RunResult packed = RunOnce(store_, &programs_, process, /*packed=*/true);
  EXPECT_EQ(legacy.records, packed.records);
  EXPECT_EQ(legacy.trace, packed.trace);
  EXPECT_EQ(legacy.output, packed.output);
}

TEST_F(InstanceLayoutTest, InterpretedSweepAlsoByteIdentical) {
  // The interpreted sweep (step programs off) has its own accessor
  // conversion; pin it to the same golden as the fused path.
  std::string process = SetupTripSaga();
  RunResult golden =
      RunOnce(store_, &programs_, process, /*packed=*/false, /*use_step=*/true);
  for (bool packed : {false, true}) {
    SCOPED_TRACE(packed ? "packed" : "legacy");
    RunResult interp =
        RunOnce(store_, &programs_, process, packed, /*use_step=*/false);
    EXPECT_EQ(golden.records, interp.records);
    EXPECT_EQ(golden.trace, interp.trace);
    EXPECT_EQ(golden.output, interp.output);
  }
}

TEST_F(InstanceLayoutTest, ErrorStringsMatchAcrossLayouts) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  wf::ProcessBuilder b(&store_, "err");
  b.Program("A", "ok").Program("B", "ok");
  b.Connect("A", "B", "RC < \"x\"");  // type error at evaluation time
  ASSERT_TRUE(b.Register().ok());

  std::vector<std::string> errors;
  for (bool packed : {false, true}) {
    wfrt::EngineOptions options;
    options.packed_instance_state = packed;
    wfrt::Engine engine(&store_, &programs_, options);
    ASSERT_TRUE(engine.StartProcess("err").ok());
    Status st = engine.Run();
    ASSERT_FALSE(st.ok());
    errors.push_back(st.ToString());
  }
  EXPECT_EQ(errors[0], errors[1]);
}

// Snapshot images are the same bytes from either layout, and an image
// checkpointed by one layout recovers on an engine running the other —
// the wire format is layout-independent in both directions.
TEST_F(InstanceLayoutTest, SnapshotRecoveryCrossesLayouts) {
  std::string process = SetupTripSaga();
  for (bool writer_packed : {false, true}) {
    SCOPED_TRACE(writer_packed ? "packed writer" : "legacy writer");
    MemoryJournal journal;
    std::string id;
    {
      wfrt::EngineOptions options;
      options.packed_instance_state = writer_packed;
      wfrt::Engine engine(&store_, &programs_, options);
      ASSERT_TRUE(engine.AttachJournal(&journal).ok());
      auto started = engine.StartProcess(process);
      ASSERT_TRUE(started.ok());
      id = *started;
      bool quiescent = false;
      ASSERT_TRUE(engine.RunSlice(5, &quiescent).ok());
      ASSERT_FALSE(engine.IsFinished(id));
      ASSERT_TRUE(engine.Checkpoint().ok());
      // Writer crashes here; the snapshot is the only surviving state.
    }
    wfrt::EngineOptions options;
    options.packed_instance_state = !writer_packed;  // the other layout
    wfrt::Engine reader(&store_, &programs_, options);
    ASSERT_TRUE(reader.AttachJournal(&journal).ok());
    ASSERT_TRUE(reader.Recover().ok());
    ASSERT_TRUE(reader.Run().ok());
    EXPECT_TRUE(reader.IsFinished(id));
  }
}

// Detach on one layout, adopt on the other, at several slice boundaries.
TEST_F(InstanceLayoutTest, DetachAdoptCrossesLayouts) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 7).ok());
  wf::ProcessBuilder b(&store_, "chain");
  std::string prev;
  for (int i = 1; i <= 6; ++i) {
    std::string act = "A" + std::to_string(i);
    b.Program(act, "ok");
    if (!prev.empty()) b.Connect(prev, act);
    prev = act;
  }
  b.MapToOutput(prev, {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  for (bool victim_packed : {false, true}) {
    for (int k = 1; k <= 5; k += 2) {
      SCOPED_TRACE((victim_packed ? "packed victim" : "legacy victim") +
                   std::string(", steal after ") + std::to_string(k));
      wfrt::EngineOptions vo, to;
      vo.packed_instance_state = victim_packed;
      vo.instance_id_prefix = "a:";
      to.packed_instance_state = !victim_packed;
      to.instance_id_prefix = "b:";
      wfrt::Engine victim(&store_, &programs_, vo);
      wfrt::Engine thief(&store_, &programs_, to);

      auto id = victim.StartProcess("chain");
      ASSERT_TRUE(id.ok());
      bool quiescent = false;
      ASSERT_TRUE(victim.RunSlice(k, &quiescent).ok());
      auto detached = victim.Detach(*id);
      ASSERT_TRUE(detached.ok()) << detached.status().ToString();
      ASSERT_TRUE(thief.Adopt(*detached).ok());
      ASSERT_TRUE(thief.Run().ok());
      ASSERT_TRUE(thief.IsFinished(*id));
      auto out = thief.OutputOf(*id);
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(out->Get("RC")->as_long(), 7);
    }
  }
}

// The packed hot block is exactly what the plan's HotLayout says it is,
// and the dense scans agree with the per-activity accessors.
TEST_F(InstanceLayoutTest, HotLayoutMatchesPlan) {
  std::string process = SetupTripSaga();
  auto def = store_.FindProcess(process);
  ASSERT_TRUE(def.ok());
  const wf::NavigationPlan& plan = (*def)->plan();
  const wf::HotLayout& hl = plan.hot();
  uint32_t n = plan.activity_count();
  EXPECT_EQ(hl.state_base, 0u);
  EXPECT_EQ(hl.enqueued_base, n);
  EXPECT_EQ(hl.attempt_base % 4, 0u);
  EXPECT_EQ(hl.failures_base, hl.attempt_base + 4 * n);
  EXPECT_EQ(hl.size, hl.failures_base + 4 * n);

  wfrt::Engine engine(&store_, &programs_);  // packed by default
  auto id = engine.RunToCompletion(process);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto inst = engine.FindInstance(*id);
  ASSERT_TRUE(inst.ok());
  ASSERT_TRUE((*inst)->packed);
  EXPECT_EQ((*inst)->hot.size(), hl.size);
  size_t settled = (*inst)->CountInState(wf::ActivityState::kTerminated) +
                   (*inst)->CountInState(wf::ActivityState::kDead);
  EXPECT_EQ(settled, n);
  EXPECT_TRUE((*inst)->AllSettled());
}

}  // namespace
}  // namespace exotica
