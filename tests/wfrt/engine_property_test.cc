// Engine property tests over random process graphs:
//  * navigation always settles every activity (terminated or dead);
//  * execution is deterministic (identical audit trails across runs);
//  * an activity never runs unless its start condition held;
//  * crash-recovery at random journal cuts reaches the same final state
//    as the uninterrupted run.

#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::DeclareDefaultProgram;
using wf::ActivityState;

// Builds a random DAG process over n activities with random conditions
// and joins. Programs emit RC in {0,1} chosen per-activity (fixed, so the
// run is deterministic).
struct RandomProcess {
  std::string name;
  int n = 0;
  std::map<std::string, int64_t> rc;  // activity -> RC it reports
};

RandomProcess BuildRandomProcess(Rng* rng, int index,
                                 wf::DefinitionStore* store,
                                 wfrt::ProgramRegistry* programs) {
  RandomProcess rp;
  rp.name = "rand" + std::to_string(index);
  rp.n = static_cast<int>(rng->Uniform(3, 12));

  wf::ProcessBuilder b(store, rp.name);
  for (int i = 0; i < rp.n; ++i) {
    std::string act = "A" + std::to_string(i);
    int64_t rc = rng->Bernoulli(0.25) ? 1 : 0;
    rp.rc[act] = rc;
    std::string program = rc == 0 ? "rc0" : "rc1";
    b.Program(act, program);
    if (rng->Bernoulli(0.3)) b.OrJoin();
  }
  // Random forward edges i -> j (i < j) with random conditions.
  for (int j = 1; j < rp.n; ++j) {
    int edges = static_cast<int>(rng->Uniform(1, std::min(j, 3)));
    std::vector<int> sources;
    for (int e = 0; e < edges; ++e) {
      int i = static_cast<int>(rng->Uniform(0, j - 1));
      bool dup = false;
      for (int s : sources) dup = dup || s == i;
      if (dup) continue;
      sources.push_back(i);
      const char* cond;
      switch (rng->Uniform(0, 2)) {
        case 0: cond = "RC = 0"; break;
        case 1: cond = "RC <> 0"; break;
        default: cond = ""; break;
      }
      b.Connect("A" + std::to_string(i), "A" + std::to_string(j), cond);
    }
  }
  Status st = b.Register();
  EXPECT_TRUE(st.ok()) << st.ToString();

  if (!programs->IsBound("rc0")) {
    EXPECT_TRUE(DeclareDefaultProgram(store, "rc0").ok() || true);
  }
  return rp;
}

void EnsurePrograms(wf::DefinitionStore* store,
                    wfrt::ProgramRegistry* programs) {
  for (const char* name : {"rc0", "rc1"}) {
    if (!store->HasProgram(name)) {
      ASSERT_TRUE(DeclareDefaultProgram(store, name).ok());
    }
    if (!programs->IsBound(name)) {
      int64_t rc = name[2] == '0' ? 0 : 1;
      ASSERT_TRUE(test::BindConstRc(programs, name, rc).ok());
    }
  }
}

class EnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnginePropertyTest, SettlesDeterministicallyAndRecovers) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1313);
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  EnsurePrograms(&store, &programs);
  RandomProcess rp = BuildRandomProcess(&rng, GetParam(), &store, &programs);

  // Reference run with journal.
  wfjournal::MemoryJournal journal;
  wfrt::Engine engine(&store, &programs);
  ASSERT_TRUE(engine.AttachJournal(&journal).ok());
  auto id = engine.RunToCompletion(rp.name);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // (1) Everything settled.
  std::map<std::string, ActivityState> final_states;
  for (int i = 0; i < rp.n; ++i) {
    std::string act = "A" + std::to_string(i);
    ActivityState s = *engine.StateOf(*id, act);
    EXPECT_TRUE(s == ActivityState::kTerminated || s == ActivityState::kDead)
        << act << " is " << wf::ActivityStateName(s);
    final_states[act] = s;
  }

  // (2) Determinism: a second engine produces the identical audit trail.
  {
    wfrt::Engine engine2(&store, &programs);
    auto id2 = engine2.RunToCompletion(rp.name);
    ASSERT_TRUE(id2.ok());
    EXPECT_EQ(engine.audit().CompactTrace(*id),
              engine2.audit().CompactTrace(*id2));
  }

  // (3) An activity executed iff it terminated (no dead activity ran).
  for (const auto& [act, state] : final_states) {
    auto started = engine.audit().CompactTrace(
        *id, {wfrt::AuditKind::kActivityStarted});
    bool ran = false;
    for (const std::string& line : started) {
      if (line == act + ":started") ran = true;
    }
    EXPECT_EQ(ran, state == ActivityState::kTerminated) << act;
  }

  // (4) Recovery from three random cuts reaches the same final states.
  auto records = journal.ReadAll();
  ASSERT_TRUE(records.ok());
  for (int trial = 0; trial < 3; ++trial) {
    uint64_t cut = static_cast<uint64_t>(
        rng.Uniform(1, static_cast<int64_t>(records->size())));
    wfjournal::MemoryJournal partial;
    for (uint64_t i = 0; i < cut; ++i) {
      ASSERT_TRUE(partial.Append((*records)[i]).ok());
    }
    wfrt::Engine recovered(&store, &programs);
    ASSERT_TRUE(recovered.AttachJournal(&partial).ok());
    ASSERT_TRUE(recovered.Recover().ok());
    ASSERT_TRUE(recovered.Run().ok());
    ASSERT_TRUE(recovered.IsFinished(*id)) << "cut=" << cut;
    for (const auto& [act, state] : final_states) {
      EXPECT_EQ(*recovered.StateOf(*id, act), state)
          << act << " after cut " << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest, ::testing::Range(1, 31));

}  // namespace
}  // namespace exotica
