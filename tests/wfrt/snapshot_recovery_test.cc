// Snapshot checkpoints: Engine::Checkpoint() rotates the journal, writes
// one kSnapshot record holding every live instance family, and truncates
// the history behind it. Recovery seeks the snapshot and replays only the
// suffix; a torn snapshot falls back to full replay of the surviving
// segments. FleetRecoveryTest drives the per-engine journal shards and
// the parallel sharded Recover() (runs under TSan in CI).

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/faulty.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "wfrt/fleet.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wfjournal::EventType;
using wfjournal::FaultyJournal;
using wfjournal::FileJournal;
using wfjournal::MemoryJournal;

void RegisterChain(wf::DefinitionStore* store, const std::string& name,
                   int length, const std::string& prog) {
  wf::ProcessBuilder b(store, name);
  std::string prev;
  for (int i = 1; i <= length; ++i) {
    std::string act = "A" + std::to_string(i);
    b.Program(act, prog);
    if (!prev.empty()) b.Connect(prev, act);
    prev = act;
  }
  b.MapToOutput(prev, {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  for (uint64_t n = 0; n < 4096; ++n) {
    std::remove((path + "." + std::to_string(n)).c_str());
  }
  return path;
}

void RemoveShards(const std::string& base, int engines) {
  for (int e = 0; e < engines; ++e) {
    std::string shard = base + ".e" + std::to_string(e);
    std::remove(shard.c_str());
    for (uint64_t n = 0; n < 4096; ++n) {
      std::remove((shard + "." + std::to_string(n)).c_str());
    }
  }
}

class SnapshotRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    RegisterChain(&store_, "chain", 4, "ok");
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(SnapshotRecoveryTest, CheckpointTruncatesHistoryAndKeepsLiveWork) {
  std::string path = TempPath("exo_snap_basic.log");
  auto journal = FileJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());

  // History: three finished instances, then one suspended (live) one.
  std::vector<std::string> done;
  for (int i = 0; i < 3; ++i) {
    auto id = engine.RunToCompletion("chain");
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    done.push_back(*id);
  }
  auto live = engine.StartProcess("chain");
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(engine.SuspendInstance(*live).ok());
  ASSERT_TRUE(engine.Run().ok());

  const uint64_t before = (*journal)->size();
  ASSERT_TRUE(engine.Checkpoint().ok());
  EXPECT_EQ(engine.stats().snapshots_written, 1u);
  // Everything before the snapshot record is gone; the snapshot opens a
  // fresh segment whose first record it is.
  EXPECT_EQ(engine.stats().records_truncated, before);
  EXPECT_EQ((*journal)->first_seq(), before);
  EXPECT_EQ((*journal)->size(), before + 1);
  EXPECT_EQ((*journal)->segment_count(), 1u);

  // A fresh engine recovers the live instance from the snapshot alone.
  wfrt::Engine recovered(&store_, &programs_);
  ASSERT_TRUE(recovered.AttachJournal(journal->get()).ok());
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.stats().recovery_records_replayed, 1u);
  EXPECT_TRUE(recovered.IsSuspended(*live));
  // Finished instances were dropped with their history.
  for (const std::string& id : done) {
    EXPECT_TRUE(recovered.FindInstance(id).status().IsNotFound());
  }
  ASSERT_TRUE(recovered.ResumeSuspended(*live).ok());
  ASSERT_TRUE(recovered.Run().ok());
  EXPECT_TRUE(recovered.IsFinished(*live));
  auto out = recovered.OutputOf(*live);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);

  // The id counter survived truncation: new instances must not collide
  // with truncated ones.
  auto fresh = recovered.StartProcess("chain");
  ASSERT_TRUE(fresh.ok());
  for (const std::string& id : done) EXPECT_NE(*fresh, id);
  TempPath("exo_snap_basic.log");
}

TEST_F(SnapshotRecoveryTest, SnapshotIntervalCheckpointsAutomatically) {
  std::string path = TempPath("exo_snap_auto.log");
  auto journal = FileJournal::Open(path);
  ASSERT_TRUE(journal.ok());

  wfrt::EngineOptions opts;
  opts.snapshot_interval = 8;  // a 4-step chain writes more than 8 records
  wfrt::Engine engine(&store_, &programs_, opts);
  ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.RunToCompletion("chain").ok());
  }
  EXPECT_GE(engine.stats().snapshots_written, 3u);
  EXPECT_GT(engine.stats().records_truncated, 0u);
  // The journal holds only the records since the last snapshot.
  EXPECT_LT((*journal)->size() - (*journal)->first_seq(), 24u);

  // Replay cost is bounded by the suffix, not the six-instance history.
  wfrt::Engine recovered(&store_, &programs_);
  ASSERT_TRUE(recovered.AttachJournal(journal->get()).ok());
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_LT(recovered.stats().recovery_records_replayed, 24u);
  ASSERT_TRUE(recovered.Run().ok());
  TempPath("exo_snap_auto.log");
}

TEST_F(SnapshotRecoveryTest, RecoveryCompletesInterruptedTruncation) {
  std::string path = TempPath("exo_snap_trunc.log");
  auto journal = FileJournal::Open(path);
  ASSERT_TRUE(journal.ok());

  // The crash window after the snapshot commits but before truncation:
  // the snapshot is durable, the old segments still exist.
  FaultyJournal faulty(journal->get(), path);
  wfrt::Engine engine(&store_, &programs_);
  ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
  ASSERT_TRUE(engine.RunToCompletion("chain").ok());
  auto live = engine.StartProcess("chain");
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(engine.SuspendInstance(*live).ok());
  ASSERT_TRUE(engine.Run().ok());

  faulty.FailTruncateAt(0);
  Status st = engine.Checkpoint();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GT((*journal)->segment_count(), 1u);
  EXPECT_EQ((*journal)->first_seq(), 0u);

  // Recovery lands on the snapshot, ignores the stale prefix, and
  // finishes the truncation the crash interrupted.
  wfrt::Engine recovered(&store_, &programs_);
  ASSERT_TRUE(recovered.AttachJournal(journal->get()).ok());
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_TRUE(recovered.IsSuspended(*live));
  EXPECT_EQ((*journal)->segment_count(), 1u);
  EXPECT_GT((*journal)->first_seq(), 0u);
  ASSERT_TRUE(recovered.ResumeSuspended(*live).ok());
  ASSERT_TRUE(recovered.Run().ok());
  EXPECT_TRUE(recovered.IsFinished(*live));
  TempPath("exo_snap_trunc.log");
}

TEST_F(SnapshotRecoveryTest, TornSnapshotFallsBackToFullReplay) {
  std::string path = TempPath("exo_snap_torn.log");
  std::string live;
  uint64_t history_records = 0;
  {
    auto journal = FileJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    FaultyJournal faulty(journal->get(), path);
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
    ASSERT_TRUE(engine.RunToCompletion("chain").ok());
    auto id = engine.StartProcess("chain");
    ASSERT_TRUE(id.ok());
    live = *id;
    ASSERT_TRUE(engine.SuspendInstance(live).ok());
    ASSERT_TRUE(engine.Run().ok());
    history_records = (*journal)->size();

    // Crash mid-snapshot-append: the truncate never runs, and we tear
    // the snapshot record below.
    faulty.FailTruncateAt(0);
    EXPECT_TRUE(engine.Checkpoint().IsIOError());
  }
  // Tear the snapshot: cut the active segment (whose sole record is the
  // snapshot) in half.
  std::string snap_segment = path + "." + std::to_string(history_records);
  {
    std::ifstream in(snap_segment, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.is_open());
    auto half = static_cast<off_t>(in.tellg()) / 2;
    ASSERT_GT(half, 0);
    ASSERT_EQ(::truncate(snap_segment.c_str(), half), 0);
  }

  // Open truncates the torn snapshot away; recovery replays the full
  // surviving history as if no checkpoint had been attempted.
  auto journal = FileJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ((*journal)->size(), history_records);
  wfrt::Engine recovered(&store_, &programs_);
  ASSERT_TRUE(recovered.AttachJournal(journal->get()).ok());
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.stats().recovery_records_replayed, history_records);
  EXPECT_TRUE(recovered.IsSuspended(live));
  ASSERT_TRUE(recovered.ResumeSuspended(live).ok());
  ASSERT_TRUE(recovered.Run().ok());
  EXPECT_TRUE(recovered.IsFinished(live));
  TempPath("exo_snap_torn.log");
}

TEST_F(SnapshotRecoveryTest, AdoptReplayDropsRetainedDetachImage) {
  MemoryJournal journal;
  std::string root;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    auto id = engine.StartProcess("chain");
    ASSERT_TRUE(id.ok());
    root = *id;
    bool quiescent = false;
    ASSERT_TRUE(engine.RunSlice(1, &quiescent).ok());
    auto detached = engine.Detach(root);
    ASSERT_TRUE(detached.ok()) << detached.status().ToString();
    // Adopt back into the same engine: the journal now holds a
    // DETACH/ADOPT pair.
    ASSERT_TRUE(engine.Adopt(*detached).ok());
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_TRUE(engine.IsFinished(root));
  }

  // Replaying the adopt erases the image the detach retained — the
  // husk map cannot grow without bound across detach/adopt cycles.
  wfrt::Engine recovered(&store_, &programs_);
  ASSERT_TRUE(recovered.AttachJournal(&journal).ok());
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_TRUE(recovered.RetainedDetachedRoots().empty());
  ASSERT_TRUE(recovered.Run().ok());
  EXPECT_TRUE(recovered.IsFinished(root));
}

TEST_F(SnapshotRecoveryTest, CheckpointDropsRetainedDetachImages) {
  MemoryJournal journal;
  std::string root;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    auto id = engine.StartProcess("chain");
    ASSERT_TRUE(id.ok());
    root = *id;
    bool quiescent = false;
    ASSERT_TRUE(engine.RunSlice(1, &quiescent).ok());
    // Detach with no adopt anywhere: a dangling handoff.
    ASSERT_TRUE(engine.Detach(root).ok());
    ASSERT_TRUE(engine.Run().ok());
  }

  wfrt::Engine recovered(&store_, &programs_);
  ASSERT_TRUE(recovered.AttachJournal(&journal).ok());
  ASSERT_TRUE(recovered.Recover().ok());
  ASSERT_EQ(recovered.RetainedDetachedRoots().size(), 1u);
  EXPECT_EQ(recovered.RetainedDetachedRoots()[0], root);
  // A checkpoint bounds the husk map: images not claimed by a fleet
  // recovery pass are dropped with the history they came from.
  ASSERT_TRUE(recovered.Checkpoint().ok());
  EXPECT_TRUE(recovered.RetainedDetachedRoots().empty());
}

// --- fleet shards (suite name matches the TSan CI filter *Fleet*) -----------

class FleetRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    RegisterChain(&store_, "chain", 4, "ok");
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(FleetRecoveryTest, ShardedJournalsRecoverInParallel) {
  const int kEngines = 4;
  std::string base = ::testing::TempDir() + "/exo_fleet_shards.log";
  RemoveShards(base, kEngines);

  std::vector<std::string> suspended;
  {
    wfrt::EngineFleet fleet(&store_, &programs_, kEngines);
    ASSERT_TRUE(fleet.OpenJournalShards(base).ok());
    auto result = fleet.RunBatch("chain", 8);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->ok());
    // Park one live instance on every engine, then let each engine
    // flush (Run() on a quiet engine is a journal flush point).
    for (int e = 0; e < kEngines; ++e) {
      auto id = fleet.engine(e)->StartProcess("chain");
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(fleet.engine(e)->SuspendInstance(*id).ok());
      ASSERT_TRUE(fleet.engine(e)->Run().ok());
      suspended.push_back(*id);
    }
  }  // fleet destroyed = crash; shard files survive

  wfrt::EngineFleet fleet(&store_, &programs_, kEngines);
  ASSERT_TRUE(fleet.OpenJournalShards(base).ok());
  auto report = fleet.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->records_replayed, 0u);
  EXPECT_EQ(report->handoffs_readopted, 0u);

  // Every engine got its own suspended instance back from its own shard.
  for (int e = 0; e < kEngines; ++e) {
    EXPECT_TRUE(fleet.engine(e)->IsSuspended(suspended[static_cast<size_t>(e)]))
        << "engine " << e;
    ASSERT_TRUE(
        fleet.engine(e)->ResumeSuspended(suspended[static_cast<size_t>(e)])
            .ok());
  }
  auto drive = fleet.RunBatch(std::vector<wfrt::EngineFleet::BatchSeed>{});
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  for (int e = 0; e < kEngines; ++e) {
    EXPECT_TRUE(fleet.engine(e)->IsFinished(suspended[static_cast<size_t>(e)]));
  }
  RemoveShards(base, kEngines);
}

TEST_F(FleetRecoveryTest, DanglingHandoffIsReadopted) {
  const int kEngines = 2;
  MemoryJournal shard0, shard1;
  std::string root;
  {
    wfrt::EngineFleet fleet(&store_, &programs_, kEngines);
    ASSERT_TRUE(fleet.AttachJournals({&shard0, &shard1}).ok());
    auto id = fleet.engine(0)->StartProcess("chain");
    ASSERT_TRUE(id.ok());
    root = *id;
    bool quiescent = false;
    ASSERT_TRUE(fleet.engine(0)->RunSlice(1, &quiescent).ok());
    // The crash hits between Detach (journaled on shard 0) and the
    // thief's Adopt (never journaled anywhere).
    ASSERT_TRUE(fleet.engine(0)->Detach(root).ok());
  }

  wfrt::EngineFleet fleet(&store_, &programs_, kEngines);
  ASSERT_TRUE(fleet.AttachJournals({&shard0, &shard1}).ok());
  auto report = fleet.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->handoffs_readopted, 1u);
  EXPECT_EQ(report->handoff_images_dropped, 0u);

  // The family lives on exactly one engine and runs to completion.
  int hosts = 0;
  for (int e = 0; e < kEngines; ++e) {
    if (fleet.engine(e)->FindInstance(root).ok()) ++hosts;
  }
  EXPECT_EQ(hosts, 1);
  auto drive = fleet.RunBatch(std::vector<wfrt::EngineFleet::BatchSeed>{});
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  bool finished = false;
  for (int e = 0; e < kEngines; ++e) {
    finished = finished || fleet.engine(e)->IsFinished(root);
  }
  EXPECT_TRUE(finished);
}

TEST_F(FleetRecoveryTest, CompletedHandoffDropsTheStaleImage) {
  const int kEngines = 2;
  MemoryJournal shard0, shard1;
  std::string root;
  {
    wfrt::EngineFleet fleet(&store_, &programs_, kEngines);
    ASSERT_TRUE(fleet.AttachJournals({&shard0, &shard1}).ok());
    auto id = fleet.engine(0)->StartProcess("chain");
    ASSERT_TRUE(id.ok());
    root = *id;
    bool quiescent = false;
    ASSERT_TRUE(fleet.engine(0)->RunSlice(1, &quiescent).ok());
    auto detached = fleet.engine(0)->Detach(root);
    ASSERT_TRUE(detached.ok());
    // The handoff completed: shard 1 has the ADOPT.
    ASSERT_TRUE(fleet.engine(1)->Adopt(*detached).ok());
  }

  wfrt::EngineFleet fleet(&store_, &programs_, kEngines);
  ASSERT_TRUE(fleet.AttachJournals({&shard0, &shard1}).ok());
  auto report = fleet.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->handoffs_readopted, 0u);
  EXPECT_EQ(report->handoff_images_dropped, 1u);

  // Shard 1 hosts the family; shard 0's stale image did not duplicate it.
  EXPECT_TRUE(fleet.engine(0)->FindInstance(root).status().IsNotFound());
  ASSERT_TRUE(fleet.engine(1)->FindInstance(root).ok());
  auto drive = fleet.RunBatch(std::vector<wfrt::EngineFleet::BatchSeed>{});
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  EXPECT_TRUE(fleet.engine(1)->IsFinished(root));
}

TEST_F(FleetRecoveryTest, AttachJournalsRejectsWrongShardCount) {
  MemoryJournal shard0;
  wfrt::EngineFleet fleet(&store_, &programs_, 2);
  EXPECT_TRUE(fleet.AttachJournals({&shard0}).IsInvalidArgument());
}

}  // namespace
}  // namespace exotica
