// Core navigator behaviour: sequencing, conditions, data flow, exit-
// condition loops, program failure handling.

#include "wfrt/engine.h"

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::BindCrashy;
using test::BindEchoRc;
using test::BindScriptedRc;
using test::DeclareDefaultProgram;
using test::DefaultInput;
using wf::ActivityState;

class EngineTest : public ::testing::Test {
 protected:
  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(EngineTest, LinearChainRunsInOrder) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());

  wf::ProcessBuilder b(&store_, "chain");
  b.Program("A", "ok").Program("B", "ok").Program("C", "ok");
  b.Connect("A", "B", "RC = 0").Connect("B", "C", "RC = 0");
  b.MapToOutput("C", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok()) << b.Register().ToString();

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("chain");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(engine.IsFinished(*id));

  auto out = engine.OutputOf(*id);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);

  // Started order is A, B, C.
  auto trace = engine.audit().CompactTrace(
      *id, {wfrt::AuditKind::kActivityStarted});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "A:started");
  EXPECT_EQ(trace[1], "B:started");
  EXPECT_EQ(trace[2], "C:started");
  EXPECT_EQ(engine.stats().activities_executed, 3u);
}

TEST_F(EngineTest, FalseConditionKillsDownstream) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());

  wf::ProcessBuilder b(&store_, "p");
  b.Program("A", "fail").Program("B", "ok").Program("C", "ok");
  b.Connect("A", "B", "RC = 0").Connect("B", "C", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("p");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*engine.StateOf(*id, "A"), ActivityState::kTerminated);
  EXPECT_EQ(*engine.StateOf(*id, "B"), ActivityState::kDead);
  EXPECT_EQ(*engine.StateOf(*id, "C"), ActivityState::kDead);
  EXPECT_EQ(engine.stats().dead_path_terminations, 2u);
  EXPECT_EQ(engine.stats().activities_executed, 1u);
}

TEST_F(EngineTest, AndJoinNeedsAllTrue) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());

  // A and B both feed J (AND join); B reports failure.
  wf::ProcessBuilder b(&store_, "diamond");
  b.Program("A", "ok").Program("B", "fail").Program("J", "ok");
  b.Connect("A", "J", "RC = 0").Connect("B", "J", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("diamond");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*engine.StateOf(*id, "J"), ActivityState::kDead);
}

TEST_F(EngineTest, OrJoinStartsOnAnyTrueAfterAllEvaluated) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());

  wf::ProcessBuilder b(&store_, "orjoin");
  b.Program("A", "ok").Program("B", "fail");
  b.Program("J", "ok").OrJoin();
  b.Connect("A", "J", "RC = 0").Connect("B", "J", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("orjoin");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*engine.StateOf(*id, "J"), ActivityState::kTerminated);
}

TEST_F(EngineTest, OrJoinAllFalseIsDead) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "fail").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "fail", 1).ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());

  wf::ProcessBuilder b(&store_, "orjoin2");
  b.Program("A", "fail").Program("B", "fail");
  b.Program("J", "ok").OrJoin();
  b.Connect("A", "J", "RC = 0").Connect("B", "J", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("orjoin2");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*engine.StateOf(*id, "J"), ActivityState::kDead);
}

TEST_F(EngineTest, OtherwiseConnectorFiresWhenAllConditionedAreFalse) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "two").ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "two", 2).ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());

  wf::ProcessBuilder b(&store_, "switch");
  b.Program("A", "two").Program("Zero", "ok").Program("One", "ok")
      .Program("Other", "ok");
  b.Connect("A", "Zero", "RC = 0");
  b.Connect("A", "One", "RC = 1");
  b.Otherwise("A", "Other");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("switch");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*engine.StateOf(*id, "Zero"), ActivityState::kDead);
  EXPECT_EQ(*engine.StateOf(*id, "One"), ActivityState::kDead);
  EXPECT_EQ(*engine.StateOf(*id, "Other"), ActivityState::kTerminated);
}

TEST_F(EngineTest, OtherwiseConnectorSkippedWhenSomeConditionHolds) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());

  wf::ProcessBuilder b(&store_, "switch2");
  b.Program("A", "ok").Program("Zero", "ok").Program("Other", "ok");
  b.Connect("A", "Zero", "RC = 0");
  b.Otherwise("A", "Other");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("switch2");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*engine.StateOf(*id, "Zero"), ActivityState::kTerminated);
  EXPECT_EQ(*engine.StateOf(*id, "Other"), ActivityState::kDead);
}

TEST_F(EngineTest, ExitConditionReschedulesUntilTrue) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "flaky").ok());
  // Aborts twice, then succeeds.
  ASSERT_TRUE(BindScriptedRc(&programs_, "flaky", {1, 1, 0}).ok());

  wf::ProcessBuilder b(&store_, "loop");
  b.Program("R", "flaky").ExitWhen("RC = 0");
  b.MapToOutput("R", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("loop");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);
  EXPECT_EQ(engine.stats().reschedules, 2u);
  EXPECT_EQ(engine.stats().activities_executed, 3u);
}

TEST_F(EngineTest, ExitRetryCapSurfacesAsError) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "never").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "never", 1).ok());

  wf::ProcessBuilder b(&store_, "hopeless");
  b.Program("R", "never").ExitWhen("RC = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.max_exit_retries = 5;
  wfrt::Engine engine(&store_, &programs_, opts);
  auto id = engine.StartProcess("hopeless");
  ASSERT_TRUE(id.ok());
  Status st = engine.Run();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
}

TEST_F(EngineTest, DataFlowsAlongConnectors) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "echo").ok());
  ASSERT_TRUE(BindEchoRc(&programs_, "echo").ok());

  wf::ProcessBuilder b(&store_, "dataflow");
  b.Program("A", "echo").Program("B", "echo");
  b.Connect("A", "B");
  b.MapFromInput("A", {{"RC", "RC"}});
  b.MapData("A", "B", {{"RC", "RC"}});
  b.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  data::Container input = DefaultInput(store_, 7);
  auto id = engine.RunToCompletion("dataflow", &input);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 7);
}

TEST_F(EngineTest, ProgramCrashIsRetriedFromTheBeginning) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 2).ok());

  wf::ProcessBuilder b(&store_, "crash");
  b.Program("A", "crashy");
  b.MapToOutput("A", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.RunToCompletion("crash");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);
  EXPECT_EQ(engine.stats().program_failures, 2u);
}

TEST_F(EngineTest, ProgramFailureCapQuarantinesInstance) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "crashy").ok());
  ASSERT_TRUE(BindCrashy(&programs_, "crashy", 100).ok());

  wf::ProcessBuilder b(&store_, "crash2");
  b.Program("A", "crashy");
  ASSERT_TRUE(b.Register().ok());

  wfrt::EngineOptions opts;
  opts.retry.max_attempts = 3;
  wfrt::Engine engine(&store_, &programs_, opts);
  auto id = engine.StartProcess("crash2");
  ASSERT_TRUE(id.ok());
  // Exhausting the retry policy no longer poisons Run(): the instance is
  // quarantined and navigation of everything else continues.
  Status st = engine.Run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(engine.IsFailed(*id));
  EXPECT_FALSE(engine.IsFinished(*id));
  EXPECT_EQ(engine.stats().program_failures, 3u);
  EXPECT_EQ(engine.stats().retries, 2u);
  EXPECT_EQ(engine.stats().instances_failed, 1u);
  ASSERT_EQ(engine.FailedInstances().size(), 1u);
  EXPECT_EQ(engine.FailedInstances()[0].id, *id);
  EXPECT_FALSE(engine.OutputOf(*id).ok());
}

TEST_F(EngineTest, UnboundProgramFailsNavigation) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ghost").ok());
  wf::ProcessBuilder b(&store_, "ghostly");
  b.Program("A", "ghost");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("ghostly");
  ASSERT_TRUE(id.ok());
  Status st = engine.Run();
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
}

TEST_F(EngineTest, ConditionOverUnsetDataFailsNavigationByDefault) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "silent").ok());
  // Writes nothing: RC keeps its declared default, but a condition over a
  // never-written member of a custom type is an error. Use a custom type
  // with no default.
  data::StructType t("Bare");
  ASSERT_TRUE(t.AddScalar("X", data::ScalarType::kLong).ok());
  ASSERT_TRUE(store_.types().Register(std::move(t)).ok());
  wf::ProgramDeclaration decl;
  decl.name = "bare";
  decl.output_type = "Bare";
  ASSERT_TRUE(store_.DeclareProgram(std::move(decl)).ok());
  ASSERT_TRUE(programs_
                  .Bind("bare",
                        [](const data::Container&, data::Container*,
                           const wfrt::ProgramContext&) { return Status::OK(); })
                  .ok());
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());

  wf::ProcessBuilder b(&store_, "unset");
  b.Program("A", "bare").Program("B", "ok");
  b.Connect("A", "B", "X = 0");
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("unset");
  ASSERT_TRUE(id.ok());
  Status st = engine.Run();
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();

  // With the lenient option the connector evaluates false instead.
  wfrt::EngineOptions opts;
  opts.condition_error_is_false = true;
  wfrt::Engine lenient(&store_, &programs_, opts);
  auto id2 = lenient.RunToCompletion("unset");
  ASSERT_TRUE(id2.ok()) << id2.status().ToString();
  EXPECT_EQ(*lenient.StateOf(*id2, "B"), wf::ActivityState::kDead);
}

TEST_F(EngineTest, MultipleInstancesAreIndependent) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "echo").ok());
  ASSERT_TRUE(BindEchoRc(&programs_, "echo").ok());

  wf::ProcessBuilder b(&store_, "p");
  b.Program("A", "echo");
  b.MapFromInput("A", {{"RC", "RC"}});
  b.MapToOutput("A", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  wfrt::Engine engine(&store_, &programs_);
  data::Container in1 = DefaultInput(store_, 1);
  data::Container in2 = DefaultInput(store_, 2);
  auto id1 = engine.StartProcess("p", &in1);
  auto id2 = engine.StartProcess("p", &in2);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(engine.OutputOf(*id1)->Get("RC")->as_long(), 1);
  EXPECT_EQ(engine.OutputOf(*id2)->Get("RC")->as_long(), 2);
  EXPECT_EQ(engine.stats().instances_finished, 2u);
}

}  // namespace
}  // namespace exotica
