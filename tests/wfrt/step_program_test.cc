// Golden equivalence of the fused step programs (Engine::RunStepProgram)
// against the interpreted outgoing sweep: on the same definition and
// inputs, every engine-observable artifact — the journal record stream
// (order AND content, connector evals included), the audit trace, and the
// instance output — must be byte-identical across all four combinations
// of {step programs, condition VM} on/off. Also pins the plan-side step
// program structure and the typed/step stats counters.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wf::ActivityState;

class StepProgramTest : public ::testing::Test {
 protected:
  /// A diamond with conditioned, otherwise, and trivial connectors plus an
  /// OR-join, so one run exercises every step opcode and the dead-path
  /// (all_false) sweep:
  ///
  ///       A --RC=0--> B ----> D (OR-join)
  ///       A --OTHERWISE--> C -/
  ///
  /// With rc=0 the top path fires and C dies; with rc=1 the otherwise
  /// path fires and B dies. Either way D's join sees one true and one
  /// false, and the dead branch's sweep runs all_false.
  void RegisterDiamond(const std::string& name, int64_t rc) {
    const std::string prog = name + "_prog";
    ASSERT_TRUE(DeclareDefaultProgram(&store_, prog).ok());
    ASSERT_TRUE(BindConstRc(&programs_, prog, rc).ok());
    wf::ProcessBuilder b(&store_, name);
    b.Program("A", prog).Program("B", prog).Program("C", prog);
    b.Program("D", prog).OrJoin();
    b.Connect("A", "B", "RC = 0");
    b.Otherwise("A", "C");
    b.Connect("B", "D");
    b.Connect("C", "D");
    ASSERT_TRUE(b.Register().ok());
  }

  /// Runs `process` once under the given toggles against a fresh memory
  /// journal; returns the encoded record stream + the audit trace.
  struct RunResult {
    std::vector<std::string> records;
    std::vector<std::string> trace;
    wfrt::EngineStats stats;
  };
  RunResult RunOnce(const std::string& process, bool use_step, bool use_vm,
                    bool use_native = false) {
    RunResult out;
    wfjournal::MemoryJournal journal;
    wfrt::EngineOptions options;
    options.use_step_programs = use_step;
    options.use_condition_vm = use_vm;
    options.use_native_step_programs = use_native;
    wfrt::Engine engine(&store_, &programs_, options);
    EXPECT_TRUE(engine.AttachJournal(&journal).ok());
    auto id = engine.RunToCompletion(process);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (id.ok()) {
      EXPECT_TRUE(engine.IsFinished(*id));
      out.trace = engine.audit().CompactTrace(*id, {});
    }
    auto records = journal.ReadAll();
    EXPECT_TRUE(records.ok());
    for (const wfjournal::Record& r : *records) {
      out.records.push_back(r.Encode());
    }
    out.stats = engine.stats();
    return out;
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(StepProgramTest, PlanCompilesOneProgramPerActivity) {
  RegisterDiamond("diamond", 0);
  auto def = store_.FindProcess("diamond");
  ASSERT_TRUE(def.ok());
  const wf::NavigationPlan& plan = (*def)->plan();

  // A's program: the conditioned connector (VM-compiled), then the
  // otherwise connector, then kEnd — non-otherwise strictly first.
  const wf::NavigationPlan::ActivityInfo& a = plan.activity(0);
  const wf::StepInstr* p = plan.step_program(a.step_base);
  ASSERT_EQ(p[0].op, wf::StepInstr::Op::kVm);
  EXPECT_GE(p[0].prog, 0);
  ASSERT_EQ(p[1].op, wf::StepInstr::Op::kOtherwise);
  ASSERT_EQ(p[2].op, wf::StepInstr::Op::kEnd);
  // "RC = 0" is fully typeable against _Default (RC : LONG), and the
  // sweep needs no resolver (no tree-walk fallbacks).
  EXPECT_TRUE(plan.vm_program(p[0].prog).typed());
  EXPECT_FALSE(a.needs_resolver);
  EXPECT_TRUE(a.has_cond_out);

  // B's program: one trivial connector.
  const wf::StepInstr* pb = plan.step_program(plan.activity(1).step_base);
  ASSERT_EQ(pb[0].op, wf::StepInstr::Op::kTrivial);
  EXPECT_EQ(pb[1].op, wf::StepInstr::Op::kEnd);
  EXPECT_FALSE(plan.activity(1).has_cond_out);

  // D is a sink: its program is just kEnd.
  EXPECT_EQ(plan.step_program(plan.activity(3).step_base)[0].op,
            wf::StepInstr::Op::kEnd);
}

TEST_F(StepProgramTest, JournalByteIdenticalAcrossAllEvaluationPaths) {
  RegisterDiamond("top", 0);   // conditioned path fires, C dies
  RegisterDiamond("other", 1); // otherwise path fires, B dies
  for (const char* process : {"top", "other"}) {
    SCOPED_TRACE(process);

    RunResult golden = RunOnce(process, /*use_step=*/false, /*use_vm=*/true);
    ASSERT_FALSE(golden.records.empty());
    EXPECT_EQ(golden.stats.step_program_dispatches, 0u);

    uint64_t fused_dispatches = 0;
    for (bool use_vm : {true, false}) {
      RunResult fused = RunOnce(process, /*use_step=*/true, use_vm);
      SCOPED_TRACE(std::string("vm=") + (use_vm ? "on" : "off"));
      // Record for record: same order, same content — connector evals
      // (from, to, value) exactly where the interpreted sweep put them.
      EXPECT_EQ(golden.records, fused.records);
      EXPECT_EQ(golden.trace, fused.trace);
      EXPECT_GT(fused.stats.step_program_dispatches, 0u);
      EXPECT_EQ(fused.stats.connectors_evaluated,
                golden.stats.connectors_evaluated);
      if (use_vm) fused_dispatches = fused.stats.step_program_dispatches;
    }
    RunResult tree = RunOnce(process, /*use_step=*/false, /*use_vm=*/false);
    EXPECT_EQ(golden.records, tree.records);
    EXPECT_EQ(golden.trace, tree.trace);

    // The native rung: byte-identical again. On builds without the
    // emitter the option is a no-op and the sweep stays fused — still
    // byte-identical, which is exactly the fallback contract.
    RunResult native =
        RunOnce(process, /*use_step=*/true, /*use_vm=*/true, /*use_native=*/true);
    EXPECT_EQ(golden.records, native.records);
    EXPECT_EQ(golden.trace, native.trace);
    EXPECT_EQ(native.stats.native_step_dispatches +
                  native.stats.step_program_dispatches,
              fused_dispatches);
  }
}

TEST_F(StepProgramTest, ConditionErrorMessagesMatchInterpretedSweep) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
  wf::ProcessBuilder b(&store_, "err");
  b.Program("A", "ok").Program("B", "ok");
  // Type error at evaluation time: RC is a long, "x" a string. The typed
  // compiler rejects the program (string operand) and the generic VM
  // reproduces the tree-walk's error.
  b.Connect("A", "B", "RC < \"x\"");
  ASSERT_TRUE(b.Register().ok());

  std::vector<std::string> errors;
  for (bool use_step : {true, false}) {
    wfrt::EngineOptions options;
    options.use_step_programs = use_step;
    wfrt::Engine engine(&store_, &programs_, options);
    auto id = engine.StartProcess("err");
    ASSERT_TRUE(id.ok());
    Status st = engine.Run();
    ASSERT_FALSE(st.ok());
    errors.push_back(st.ToString());
  }
  EXPECT_EQ(errors[0], errors[1]);
}

TEST_F(StepProgramTest, TypedStatsCountSubsetOfVmEvals) {
  RegisterDiamond("diamond", 0);
  wfrt::EngineOptions threaded;
  threaded.use_native_step_programs = false;
  wfrt::Engine engine(&store_, &programs_, threaded);
  auto id = engine.RunToCompletion("diamond");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // "RC = 0" runs once, on the typed program, through a step dispatch.
  EXPECT_EQ(engine.stats().vm_condition_evals, 1u);
  EXPECT_EQ(engine.stats().typed_condition_evals, 1u);
  EXPECT_GT(engine.stats().step_program_dispatches, 0u);

  // The default engine dispatches the same sweeps natively (where this
  // build compiled them) and counts the same condition stats.
  wfrt::Engine native_engine(&store_, &programs_);
  ASSERT_TRUE(native_engine.RunToCompletion("diamond").ok());
  EXPECT_EQ(native_engine.stats().vm_condition_evals, 1u);
  EXPECT_EQ(native_engine.stats().typed_condition_evals, 1u);
  EXPECT_EQ(native_engine.stats().native_step_dispatches +
                native_engine.stats().step_program_dispatches,
            engine.stats().step_program_dispatches);

  // Forcing the generic program keeps the vm count but drops typed.
  wfrt::EngineOptions options;
  options.use_typed_conditions = false;
  wfrt::Engine generic(&store_, &programs_, options);
  ASSERT_TRUE(generic.RunToCompletion("diamond").ok());
  EXPECT_EQ(generic.stats().vm_condition_evals, 1u);
  EXPECT_EQ(generic.stats().typed_condition_evals, 0u);
}

}  // namespace
}  // namespace exotica
