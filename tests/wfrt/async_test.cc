// Asynchronous external activities (§3.3: activities "can be of any
// type, not just computer programs, as long as there is a way to report
// their progress to the WFMS").

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using test::BindConstRc;
using test::DeclareDefaultProgram;
using wf::ActivityState;

class AsyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "ok").ok());
    ASSERT_TRUE(DeclareDefaultProgram(&store_, "external").ok());
    ASSERT_TRUE(BindConstRc(&programs_, "ok", 0).ok());
    // The external program only *launches* work: its result arrives later
    // via CompleteAsync.
    ASSERT_TRUE(programs_
                    .Bind("external",
                          [this](const data::Container&, data::Container*,
                                 const wfrt::ProgramContext&) {
                            ++launches_;
                            return Status::Pending("fax sent, awaiting reply");
                          })
                    .ok());

    wf::ProcessBuilder b(&store_, "proc");
    b.Program("Pre", "ok");
    b.Program("Fax", "external");
    b.Program("Post", "ok");
    b.Connect("Pre", "Fax", "RC = 0");
    b.Connect("Fax", "Post", "RC = 0");
    b.MapToOutput("Post", {{"RC", "RC"}});
    ASSERT_TRUE(b.Register().ok());
  }

  data::Container RcContainer(int64_t rc) {
    data::Container c = data::Container::Default(store_.types());
    Status st = c.Set("RC", data::Value(rc));
    (void)st;
    return c;
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
  int launches_ = 0;
};

TEST_F(AsyncTest, PendingParksTheActivityUntilCompletion) {
  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("proc");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());

  EXPECT_FALSE(engine.IsFinished(*id));
  EXPECT_EQ(*engine.StateOf(*id, "Fax"), ActivityState::kRunning);
  EXPECT_EQ(launches_, 1);

  ASSERT_TRUE(engine.CompleteAsync(*id, "Fax", RcContainer(0)).ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);
  EXPECT_EQ(*engine.StateOf(*id, "Post"), ActivityState::kTerminated);
}

TEST_F(AsyncTest, AsyncFailureRoutesLikeAnyAbort) {
  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("proc");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_TRUE(engine.CompleteAsync(*id, "Fax", RcContainer(1)).ok());
  EXPECT_TRUE(engine.IsFinished(*id));
  EXPECT_EQ(*engine.StateOf(*id, "Post"), ActivityState::kDead);
}

TEST_F(AsyncTest, CompleteAsyncGuards) {
  wfrt::Engine engine(&store_, &programs_);
  auto id = engine.StartProcess("proc");
  ASSERT_TRUE(id.ok());
  // Pre is ready but not running yet.
  EXPECT_TRUE(engine.CompleteAsync(*id, "Pre", RcContainer(0))
                  .IsFailedPrecondition());
  ASSERT_TRUE(engine.Run().ok());
  // Post is waiting; Fax running. Unknown names / instances fail.
  EXPECT_TRUE(engine.CompleteAsync(*id, "Post", RcContainer(0))
                  .IsFailedPrecondition());
  EXPECT_TRUE(engine.CompleteAsync("ghost", "Fax", RcContainer(0)).IsNotFound());
  EXPECT_TRUE(engine.CompleteAsync(*id, "Ghost", RcContainer(0)).IsNotFound());
  // Wrong container shape.
  data::StructType t("Odd");
  ASSERT_TRUE(t.AddScalar("X", data::ScalarType::kLong).ok());
  ASSERT_TRUE(store_.types().Register(std::move(t)).ok());
  auto odd = data::Container::Create(store_.types(), "Odd");
  ASSERT_TRUE(odd.ok());
  EXPECT_TRUE(engine.CompleteAsync(*id, "Fax", *odd).IsInvalidArgument());
  // Double completion.
  ASSERT_TRUE(engine.CompleteAsync(*id, "Fax", RcContainer(0)).ok());
  EXPECT_TRUE(engine.CompleteAsync(*id, "Fax", RcContainer(0))
                  .IsFailedPrecondition());
}

TEST_F(AsyncTest, CrashWhilePendingRelaunchesTheExternalWork) {
  wfjournal::MemoryJournal journal;
  std::string id;
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    auto r = engine.StartProcess("proc");
    ASSERT_TRUE(r.ok());
    id = *r;
    ASSERT_TRUE(engine.Run().ok());
    EXPECT_EQ(launches_, 1);
    // Crash while the fax is out.
  }
  {
    wfrt::Engine engine(&store_, &programs_);
    ASSERT_TRUE(engine.AttachJournal(&journal).ok());
    ASSERT_TRUE(engine.Recover().ok());
    ASSERT_TRUE(engine.Run().ok());
    // At-least-once: the external work was re-launched.
    EXPECT_EQ(launches_, 2);
    EXPECT_EQ(*engine.StateOf(id, "Fax"), ActivityState::kRunning);
    ASSERT_TRUE(engine.CompleteAsync(id, "Fax", RcContainer(0)).ok());
    EXPECT_TRUE(engine.IsFinished(id));
  }
}

}  // namespace
}  // namespace exotica
