#include "data/container.h"

#include <gtest/gtest.h>

namespace exotica::data {
namespace {

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StructType addr("Addr");
    ASSERT_TRUE(addr.AddScalar("City", ScalarType::kString).ok());
    ASSERT_TRUE(reg_.Register(std::move(addr)).ok());

    StructType order("Order");
    ASSERT_TRUE(order.AddScalar("Id", ScalarType::kLong).ok());
    ASSERT_TRUE(
        order.AddScalar("Total", ScalarType::kFloat, Value(0.0)).ok());
    ASSERT_TRUE(order.AddStruct("Ship", "Addr").ok());
    ASSERT_TRUE(reg_.Register(std::move(order)).ok());
  }

  TypeRegistry reg_;
};

TEST_F(ContainerTest, DefaultsAndSetGet) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Get("Id")->is_null());       // no default declared
  EXPECT_EQ(*c->Get("Total"), Value(0.0));    // declared default
  ASSERT_TRUE(c->Set("Id", Value(int64_t{7})).ok());
  EXPECT_EQ(c->Get("Id")->as_long(), 7);
  ASSERT_TRUE(c->Set("Ship.City", Value("Oslo")).ok());
  EXPECT_EQ(c->Get("Ship.City")->as_string(), "Oslo");
}

TEST_F(ContainerTest, TypeCheckingOnSet) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Set("Id", Value("nope")).IsInvalidArgument());
  EXPECT_TRUE(c->Set("Nope", Value(int64_t{1})).IsNotFound());
  // Long widens into a float member.
  ASSERT_TRUE(c->Set("Total", Value(int64_t{3})).ok());
  EXPECT_TRUE(c->Get("Total")->is_float());
}

TEST_F(ContainerTest, ResetRestoresDefaults) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Set("Total", Value(9.5)).ok());
  c->Reset();
  EXPECT_EQ(*c->Get("Total"), Value(0.0));
}

TEST_F(ContainerTest, SerializeDeserializeRoundTrip) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Set("Id", Value(int64_t{12})).ok());
  ASSERT_TRUE(c->Set("Ship.City", Value("Lima\nPeru")).ok());

  auto d = Container::Create(reg_, "Order");
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->Deserialize(c->Serialize()).ok());
  EXPECT_TRUE(*c == *d);
}

TEST_F(ContainerTest, DeserializeRejectsCorruption) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->Deserialize("no-equals-here").IsCorruption());
  EXPECT_FALSE(c->Deserialize("Nope=1").ok());
}

TEST_F(ContainerTest, UnknownTypeFails) {
  EXPECT_TRUE(Container::Create(reg_, "Ghost").status().IsValidationError());
}

TEST_F(ContainerTest, MappingValidatesAndApplies) {
  auto src = Container::Create(reg_, "Order");
  auto dst = Container::Create(reg_, "Order");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());

  DataMapping map;
  map.Add("Id", "Id");
  map.Add("Ship.City", "Ship.City");
  ASSERT_TRUE(map.Validate(*src, *dst).ok());

  ASSERT_TRUE(src->Set("Id", Value(int64_t{5})).ok());
  // Ship.City left null: must be skipped, not erased.
  ASSERT_TRUE(dst->Set("Ship.City", Value("Kept")).ok());
  ASSERT_TRUE(map.Apply(*src, &*dst).ok());
  EXPECT_EQ(dst->Get("Id")->as_long(), 5);
  EXPECT_EQ(dst->Get("Ship.City")->as_string(), "Kept");
}

TEST_F(ContainerTest, MappingTypeMismatchRejected) {
  auto src = Container::Create(reg_, "Order");
  auto dst = Container::Create(reg_, "Order");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  DataMapping map;
  map.Add("Ship.City", "Id");  // string -> long
  EXPECT_TRUE(map.Validate(*src, *dst).IsValidationError());

  DataMapping widening;
  widening.Add("Id", "Total");  // long -> float is fine
  EXPECT_TRUE(widening.Validate(*src, *dst).ok());
}

TEST_F(ContainerTest, DefaultContainerHasRc) {
  Container c = Container::Default(reg_);
  EXPECT_EQ(c.Get("RC")->as_long(), 0);
}

TEST_F(ContainerTest, SlotIndexMatchesDeclarationOrder) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->slot_count(), 3u);
  // Slots follow paths(): the flatten order, stable for every container
  // of this layout.
  for (uint32_t i = 0; i < c->slot_count(); ++i) {
    EXPECT_EQ(c->SlotIndex(c->paths()[i]), i);
  }
  EXPECT_EQ(c->SlotIndex("NoSuch"), Container::kNoSlot);
  EXPECT_EQ(Container().SlotIndex("Id"), Container::kNoSlot);
  EXPECT_EQ(Container().slot_count(), 0u);
}

TEST_F(ContainerTest, GetSlotTracksGetExactly) {
  auto c = Container::Create(reg_, "Order");
  ASSERT_TRUE(c.ok());
  // Never-written container: no slot storage, reads hit the defaults.
  EXPECT_TRUE(c->GetSlot(c->SlotIndex("Id")).is_null());
  EXPECT_EQ(c->GetSlot(c->SlotIndex("Total")), Value(0.0));

  ASSERT_TRUE(c->Set("Id", Value(int64_t{7})).ok());
  EXPECT_EQ(c->GetSlot(c->SlotIndex("Id")), Value(int64_t{7}));
  // Setting one member materializes the value vector; unwritten (null)
  // slots must still read their declared defaults.
  EXPECT_EQ(c->GetSlot(c->SlotIndex("Total")), Value(0.0));
  EXPECT_TRUE(c->GetSlot(c->SlotIndex("Ship.City")).is_null());

  for (const std::string& path : c->paths()) {
    EXPECT_EQ(*c->Get(path), c->GetSlot(c->SlotIndex(path))) << path;
  }

  c->Reset();
  EXPECT_TRUE(c->GetSlot(c->SlotIndex("Id")).is_null());
  EXPECT_EQ(c->GetSlot(c->SlotIndex("Total")), Value(0.0));
}

}  // namespace
}  // namespace exotica::data
