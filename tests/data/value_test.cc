#include "data/value.h"

#include <gtest/gtest.h>

namespace exotica::data {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_long());
  EXPECT_TRUE(Value(3.5).is_float());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
  EXPECT_EQ(Value(int64_t{-2}).as_long(), -2);
  EXPECT_EQ(Value("abc").as_string(), "abc");
}

TEST(ValueTest, ToDouble) {
  EXPECT_EQ(*Value(int64_t{4}).ToDouble(), 4.0);
  EXPECT_EQ(*Value(2.5).ToDouble(), 2.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value().ToDouble().ok());
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // different types
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(int64_t{0}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value(true), Value(false));
}

TEST(ValueTest, ToStringFromStringRoundTrip) {
  const Value values[] = {
      Value(),       Value(int64_t{0}),  Value(int64_t{-42}),
      Value(3.5),    Value(1e300),       Value(-0.25),
      Value(true),   Value(false),       Value(""),
      Value("with \"quotes\" and \\ and \n newline"),
      Value(7.0),  // float that prints like an integer
  };
  for (const Value& v : values) {
    auto parsed = Value::FromString(v.ToString());
    ASSERT_TRUE(parsed.ok()) << v.ToString() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, v) << v.ToString();
  }
}

TEST(ValueTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(Value::FromString("").ok());
  EXPECT_FALSE(Value::FromString("12x").ok());
  EXPECT_FALSE(Value::FromString("\"unterminated").ok());
  EXPECT_FALSE(Value::FromString("1.2.3").ok());
}

TEST(ValueTest, FloatKeepsMarkerInText) {
  // 7.0 must not round-trip into a long.
  EXPECT_TRUE(Value::FromString(Value(7.0).ToString())->is_float());
  EXPECT_TRUE(Value::FromString("7")->is_long());
}

TEST(ValueTest, CoerceWidensLongToFloat) {
  auto widened = Value(int64_t{3}).CoerceTo(ScalarType::kFloat);
  ASSERT_TRUE(widened.ok());
  EXPECT_TRUE(widened->is_float());
  EXPECT_EQ(widened->as_float(), 3.0);

  EXPECT_FALSE(Value(3.5).CoerceTo(ScalarType::kLong).ok());
  EXPECT_FALSE(Value("x").CoerceTo(ScalarType::kBool).ok());
  EXPECT_TRUE(Value().CoerceTo(ScalarType::kString).ok());  // null anywhere
}

TEST(ValueTest, ScalarTypeNames) {
  EXPECT_EQ(*ScalarTypeFromName("long"), ScalarType::kLong);
  EXPECT_EQ(*ScalarTypeFromName("FLOAT"), ScalarType::kFloat);
  EXPECT_EQ(*ScalarTypeFromName("Boolean"), ScalarType::kBool);
  EXPECT_EQ(*ScalarTypeFromName("STRING"), ScalarType::kString);
  EXPECT_FALSE(ScalarTypeFromName("blob").ok());
}

}  // namespace
}  // namespace exotica::data
