#include "data/types.h"

#include <gtest/gtest.h>

namespace exotica::data {
namespace {

TEST(TypesTest, DefaultTypeIsPreRegistered) {
  TypeRegistry reg;
  EXPECT_TRUE(reg.Has(TypeRegistry::kDefaultTypeName));
  auto leaves = reg.Flatten(TypeRegistry::kDefaultTypeName);
  ASSERT_TRUE(leaves.ok());
  ASSERT_EQ(leaves->size(), 1u);
  EXPECT_EQ((*leaves)[0].path, "RC");
  EXPECT_EQ((*leaves)[0].type, ScalarType::kLong);
  EXPECT_EQ((*leaves)[0].default_value, Value(int64_t{0}));
}

TEST(TypesTest, DuplicateMemberRejected) {
  StructType t("T");
  ASSERT_TRUE(t.AddScalar("a", ScalarType::kLong).ok());
  EXPECT_TRUE(t.AddScalar("a", ScalarType::kString).IsAlreadyExists());
  EXPECT_TRUE(t.AddStruct("a", "X").IsAlreadyExists());
}

TEST(TypesTest, NestedFlattening) {
  TypeRegistry reg;
  StructType addr("Addr");
  ASSERT_TRUE(addr.AddScalar("City", ScalarType::kString).ok());
  ASSERT_TRUE(addr.AddScalar("Zip", ScalarType::kLong).ok());
  ASSERT_TRUE(reg.Register(std::move(addr)).ok());

  StructType person("Person");
  ASSERT_TRUE(person.AddScalar("Name", ScalarType::kString).ok());
  ASSERT_TRUE(person.AddStruct("Home", "Addr").ok());
  ASSERT_TRUE(person.AddStruct("Work", "Addr").ok());
  ASSERT_TRUE(reg.Register(std::move(person)).ok());

  auto leaves = reg.Flatten("Person");
  ASSERT_TRUE(leaves.ok());
  std::vector<std::string> paths;
  for (const auto& l : *leaves) paths.push_back(l.path);
  EXPECT_EQ(paths, (std::vector<std::string>{"Name", "Home.City", "Home.Zip",
                                             "Work.City", "Work.Zip"}));
}

TEST(TypesTest, UnresolvedReferenceCaughtByValidate) {
  TypeRegistry reg;
  StructType t("T");
  ASSERT_TRUE(t.AddStruct("x", "Missing").ok());
  ASSERT_TRUE(reg.Register(std::move(t)).ok());
  EXPECT_TRUE(reg.Validate().IsValidationError());
  EXPECT_FALSE(reg.Flatten("T").ok());
}

TEST(TypesTest, RecursiveTypesRejected) {
  TypeRegistry reg;
  StructType a("A");
  ASSERT_TRUE(a.AddStruct("b", "B").ok());
  ASSERT_TRUE(reg.Register(std::move(a)).ok());
  StructType b("B");
  ASSERT_TRUE(b.AddStruct("a", "A").ok());
  ASSERT_TRUE(reg.Register(std::move(b)).ok());
  EXPECT_TRUE(reg.Validate().IsValidationError());
}

TEST(TypesTest, SelfRecursionRejected) {
  TypeRegistry reg;
  StructType a("A");
  ASSERT_TRUE(a.AddStruct("self", "A").ok());
  ASSERT_TRUE(reg.Register(std::move(a)).ok());
  EXPECT_TRUE(reg.Flatten("A").status().IsValidationError());
}

TEST(TypesTest, DefaultValueCoercedAtDeclaration) {
  StructType t("T");
  ASSERT_TRUE(t.AddScalar("f", ScalarType::kFloat, Value(int64_t{2})).ok());
  EXPECT_TRUE(t.members()[0].default_value.is_float());
  EXPECT_TRUE(
      t.AddScalar("bad", ScalarType::kLong, Value("nope")).IsInvalidArgument());
}

TEST(TypesTest, DuplicateTypeNameRejected) {
  TypeRegistry reg;
  ASSERT_TRUE(reg.Register(StructType("T")).ok());
  EXPECT_TRUE(reg.Register(StructType("T")).IsAlreadyExists());
}

}  // namespace
}  // namespace exotica::data
