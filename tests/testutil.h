// Shared helpers for engine-level tests.

#ifndef EXOTICA_TESTS_TESTUTIL_H_
#define EXOTICA_TESTS_TESTUTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/container.h"
#include "wf/process.h"
#include "wfrt/program.h"

namespace exotica::test {

/// Declares a program named `name` with default containers in `store`.
inline Status DeclareDefaultProgram(wf::DefinitionStore* store,
                                    const std::string& name) {
  wf::ProgramDeclaration decl;
  decl.name = name;
  return store->DeclareProgram(std::move(decl));
}

/// Binds `name` to a program that writes RC = `rc`.
inline Status BindConstRc(wfrt::ProgramRegistry* programs,
                          const std::string& name, int64_t rc) {
  return programs->Bind(
      name, [rc](const data::Container&, data::Container* output,
                 const wfrt::ProgramContext&) -> Status {
        return output->Set("RC", data::Value(rc));
      });
}

/// Binds `name` to a program that copies the input RC to the output RC.
inline Status BindEchoRc(wfrt::ProgramRegistry* programs,
                         const std::string& name) {
  return programs->Bind(
      name, [](const data::Container& input, data::Container* output,
               const wfrt::ProgramContext&) -> Status {
        EXO_ASSIGN_OR_RETURN(data::Value rc, input.Get("RC"));
        return output->Set("RC", rc);
      });
}

/// Binds `name` to a program whose RC depends on the attempt number:
/// attempt k (1-based) yields rcs[min(k, n) - 1].
inline Status BindScriptedRc(wfrt::ProgramRegistry* programs,
                             const std::string& name,
                             std::vector<int64_t> rcs) {
  return programs->Bind(
      name, [rcs = std::move(rcs)](const data::Container&,
                                   data::Container* output,
                                   const wfrt::ProgramContext& ctx) -> Status {
        size_t idx = static_cast<size_t>(ctx.attempt) - 1;
        if (idx >= rcs.size()) idx = rcs.size() - 1;
        return output->Set("RC", data::Value(rcs[idx]));
      });
}

/// Binds `name` to a program that crashes (error Status) on its first
/// `failures` attempts, then writes RC = 0.
inline Status BindCrashy(wfrt::ProgramRegistry* programs,
                         const std::string& name, int failures) {
  return programs->Bind(
      name, [failures](const data::Container&, data::Container* output,
                       const wfrt::ProgramContext& ctx) -> Status {
        if (ctx.attempt <= failures) {
          return Status::Internal("injected crash, attempt " +
                                  std::to_string(ctx.attempt));
        }
        return output->Set("RC", data::Value(int64_t{0}));
      });
}

/// Builds a `_Default` container with the given RC.
inline data::Container DefaultInput(const wf::DefinitionStore& store,
                                    int64_t rc) {
  data::Container c = data::Container::Default(store.types());
  Status st = c.Set("RC", data::Value(rc));
  (void)st;
  return c;
}

}  // namespace exotica::test

#endif  // EXOTICA_TESTS_TESTUTIL_H_
