// FDL closure fidelity on the heaviest real producer: the Figure-3
// flexible-transaction translation (nine processes, shared types, helper
// programs) must round-trip byte-for-byte, and the re-imported
// definitions must execute identically.

#include <gtest/gtest.h>

#include "atm/flex.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "fdl/export.h"
#include "fdl/import.h"
#include "wf/builder.h"
#include "wfrt/engine.h"

namespace exotica::fdl {
namespace {

TEST(FdlClosureTest, Figure3TranslationRoundTripsAndRuns) {
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  wf::DefinitionStore original;
  auto translation = exo::TranslateFlex(spec, &original);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();

  auto fdl1 = ExportClosure(original, {translation->root_process});
  ASSERT_TRUE(fdl1.ok()) << fdl1.status().ToString();

  wf::DefinitionStore reimported;
  auto names = ImportFdl(*fdl1, &reimported);
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  EXPECT_EQ(names->size(), translation->processes.size());

  auto fdl2 = ExportClosure(reimported, {translation->root_process});
  ASSERT_TRUE(fdl2.ok());
  EXPECT_EQ(*fdl1, *fdl2);

  // The re-imported process executes the appendix's T8-abort scenario
  // exactly like the original.
  for (wf::DefinitionStore* store : {&original, &reimported}) {
    atm::ScriptedRunner runner;
    runner.AlwaysAbort("T8");
    wfrt::ProgramRegistry programs;
    ASSERT_TRUE(exo::BindFlexPrograms(spec, *store, &runner, &programs).ok());
    wfrt::Engine engine(store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);  // p2
  }
}

TEST(FdlClosureTest, VersionedProcessesRoundTrip) {
  wf::DefinitionStore store;
  wf::ProgramDeclaration prog;
  prog.name = "work";
  ASSERT_TRUE(store.DeclareProgram(prog).ok());

  wf::ProcessBuilder v1(&store, "P", 1);
  v1.Program("A", "work");
  ASSERT_TRUE(v1.Register().ok());
  wf::ProcessBuilder v2(&store, "P", 2);
  v2.Program("A", "work").Program("B", "work");
  v2.Connect("A", "B");
  ASSERT_TRUE(v2.Register().ok());

  // The closure exports the latest version (the executable default).
  auto fdl_text = ExportClosure(store, {"P"});
  ASSERT_TRUE(fdl_text.ok());
  EXPECT_NE(fdl_text->find("VERSION 2"), std::string::npos);

  wf::DefinitionStore reimported;
  ASSERT_TRUE(ImportFdl(*fdl_text, &reimported).ok());
  auto p = reimported.FindProcess("P");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->version(), 2);
  EXPECT_TRUE((*p)->HasActivity("B"));
}

TEST(FdlClosureTest, ImportNegativeCases) {
  wf::DefinitionStore store;
  // Duplicate activity in one process.
  constexpr const char* kDupAct = R"(
PROGRAM 'x' END 'x'
PROCESS 'P'
  PROGRAM_ACTIVITY 'A' PROGRAM 'x' END 'A'
  PROGRAM_ACTIVITY 'A' PROGRAM 'x' END 'A'
END 'P')";
  EXPECT_TRUE(ImportFdl(kDupAct, &store).status().IsAlreadyExists());

  // Unknown container type.
  constexpr const char* kBadType = R"(
PROGRAM 'x' ('Ghost', '_Default') END 'x')";
  wf::DefinitionStore store2;
  EXPECT_FALSE(ImportFdl(kBadType, &store2).ok());

  // Control connector to a missing activity.
  constexpr const char* kBadConn = R"(
PROGRAM 'x' END 'x'
PROCESS 'P'
  PROGRAM_ACTIVITY 'A' PROGRAM 'x' END 'A'
  CONTROL FROM 'A' TO 'Missing'
END 'P')";
  wf::DefinitionStore store3;
  EXPECT_TRUE(ImportFdl(kBadConn, &store3).status().IsNotFound());

  // Cyclic control flow.
  constexpr const char* kCycle = R"(
PROGRAM 'x' END 'x'
PROCESS 'P'
  PROGRAM_ACTIVITY 'A' PROGRAM 'x' END 'A'
  PROGRAM_ACTIVITY 'B' PROGRAM 'x' END 'B'
  CONTROL FROM 'A' TO 'B'
  CONTROL FROM 'B' TO 'A'
END 'P')";
  wf::DefinitionStore store4;
  EXPECT_TRUE(ImportFdl(kCycle, &store4).status().IsValidationError());
}

}  // namespace
}  // namespace exotica::fdl
