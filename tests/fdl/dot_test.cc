#include "fdl/dot.h"

#include <gtest/gtest.h>

#include "atm/saga.h"
#include "exotica/saga_translate.h"
#include "wf/builder.h"

namespace exotica::fdl {
namespace {

TEST(DotExportTest, RendersActivitiesAndConnectors) {
  wf::DefinitionStore store;
  wf::ProgramDeclaration prog;
  prog.name = "work";
  ASSERT_TRUE(store.DeclareProgram(prog).ok());

  wf::ProcessBuilder b(&store, "P");
  b.Program("A", "work").Program("B", "work").Manual().Role("clerk")
      .ExitWhen("RC = 0");
  b.Program("C", "work");
  b.Connect("A", "B", "RC = 0");
  b.Otherwise("A", "C");
  b.MapData("A", "B", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  auto dot = ExportDot(store, "P");
  ASSERT_TRUE(dot.ok()) << dot.status().ToString();
  EXPECT_NE(dot->find("digraph \"P\""), std::string::npos);
  EXPECT_NE(dot->find("\"A\" -> \"B\" [label=\"RC = 0\"]"),
            std::string::npos);
  EXPECT_NE(dot->find("otherwise"), std::string::npos);
  EXPECT_NE(dot->find("role: clerk"), std::string::npos);
  EXPECT_NE(dot->find("exit: RC = 0"), std::string::npos);
  EXPECT_NE(dot->find("RC->RC"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot->begin(), dot->end(), '{'),
            std::count(dot->begin(), dot->end(), '}'));
}

TEST(DotExportTest, ExpandsBlocksAsClusters) {
  atm::SagaSpec spec("S");
  spec.Then("T1").Then("T2");
  wf::DefinitionStore store;
  ASSERT_TRUE(exo::TranslateSaga(spec, &store).ok());

  auto dot = ExportDot(store, "S");
  ASSERT_TRUE(dot.ok());
  // The forward and compensation blocks appear as clusters; the paper's
  // NOP trigger shows inside the compensation cluster.
  EXPECT_NE(dot->find("subgraph \"cluster_FB\""), std::string::npos);
  EXPECT_NE(dot->find("subgraph \"cluster_CB\""), std::string::npos);
  EXPECT_NE(dot->find("CB/_NOP"), std::string::npos);
  EXPECT_NE(dot->find("State_T1 = 1"), std::string::npos);
  EXPECT_EQ(std::count(dot->begin(), dot->end(), '{'),
            std::count(dot->begin(), dot->end(), '}'));

  DotOptions flat;
  flat.expand_blocks = false;
  auto shallow = ExportDot(store, "S", flat);
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(shallow->find("subgraph"), std::string::npos);
  EXPECT_NE(shallow->find("box3d"), std::string::npos);  // block node shape
}

TEST(DotExportTest, UnknownProcessFails) {
  wf::DefinitionStore store;
  EXPECT_TRUE(ExportDot(store, "ghost").status().IsNotFound());
}

}  // namespace
}  // namespace exotica::fdl
