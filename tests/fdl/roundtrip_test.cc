// Export → parse → import → export fidelity: the FDL dialect is pinned by
// requiring the second export to reproduce the first byte for byte, and
// the imported definitions to pass full validation.

#include <gtest/gtest.h>

#include "fdl/export.h"
#include "fdl/import.h"
#include "fdl/parser.h"
#include "wf/builder.h"

namespace exotica::fdl {
namespace {

void BuildSimpleStore(wf::DefinitionStore* store) {
  wf::ProgramDeclaration prog;
  prog.name = "work";
  ASSERT_TRUE(store->DeclareProgram(prog).ok());
  wf::ProcessBuilder b(store, "Simple");
  b.Program("A", "work").Program("B", "work");
  b.Connect("A", "B", "RC = 0");
  b.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());
}

void BuildRichStore(wf::DefinitionStore* store) {
  data::StructType txn("TxnResult");
  ASSERT_TRUE(txn.AddScalar("RC", data::ScalarType::kLong,
                            data::Value(int64_t{1})).ok());
  ASSERT_TRUE(txn.AddScalar("Note", data::ScalarType::kString,
                            data::Value("it's fine")).ok());
  ASSERT_TRUE(txn.AddScalar("Score", data::ScalarType::kFloat,
                            data::Value(2.5)).ok());
  ASSERT_TRUE(txn.AddScalar("Hot", data::ScalarType::kBool,
                            data::Value(true)).ok());
  ASSERT_TRUE(store->types().Register(std::move(txn)).ok());

  data::StructType nest("Nest");
  ASSERT_TRUE(nest.AddStruct("Inner", "TxnResult").ok());
  ASSERT_TRUE(nest.AddScalar("Extra", data::ScalarType::kLong).ok());
  ASSERT_TRUE(store->types().Register(std::move(nest)).ok());

  wf::ProgramDeclaration prog;
  prog.name = "work";
  prog.description = "does the work";
  prog.output_type = "TxnResult";
  ASSERT_TRUE(store->DeclareProgram(prog).ok());

  wf::ProgramDeclaration nestprog;
  nestprog.name = "nested";
  nestprog.input_type = "Nest";
  nestprog.output_type = "Nest";
  ASSERT_TRUE(store->DeclareProgram(nestprog).ok());

  wf::ProcessBuilder sub(store, "Sub");
  sub.OutputType("TxnResult");
  sub.Program("X", "work");
  sub.MapToOutput("X", {{"RC", "RC"}});
  ASSERT_TRUE(sub.Register().ok());

  wf::ProcessBuilder b(store, "Main");
  b.Description("the main process");
  b.InputType("Nest");
  b.OutputType("TxnResult");
  b.Program("T1", "work").Manual().Role("clerk").ExitWhen("RC = 0")
      .NotifyAfter(1000, "boss");
  b.Block("B", "Sub");
  b.Program("T2", "work").OrJoin();
  b.Program("T3", "nested");
  b.Program("T4", "work");
  b.Connect("T1", "B", "RC = 0");
  b.Connect("B", "T2", "RC = 0");
  b.Connect("B", "T3", "RC <> 0 AND RC < 5");
  b.Otherwise("B", "T4");
  b.MapFromInput("T3", {{"Inner.RC", "Inner.RC"}, {"Extra", "Extra"}});
  b.MapData("B", "T2", {{"RC", "RC"}});
  b.MapToOutput("T2", {{"RC", "RC"}});
  Status st = b.Register();
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(FdlRoundTripTest, SimpleProcess) {
  wf::DefinitionStore store;
  BuildSimpleStore(&store);
  auto fdl1 = ExportClosure(store, {"Simple"});
  ASSERT_TRUE(fdl1.ok()) << fdl1.status().ToString();

  wf::DefinitionStore reimported;
  auto names = ImportFdl(*fdl1, &reimported);
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  EXPECT_EQ(*names, (std::vector<std::string>{"Simple"}));

  auto fdl2 = ExportClosure(reimported, {"Simple"});
  ASSERT_TRUE(fdl2.ok());
  EXPECT_EQ(*fdl1, *fdl2);
}

TEST(FdlRoundTripTest, RichProcessWithEverything) {
  wf::DefinitionStore store;
  BuildRichStore(&store);
  auto fdl1 = ExportClosure(store, {"Main"});
  ASSERT_TRUE(fdl1.ok()) << fdl1.status().ToString();

  wf::DefinitionStore reimported;
  auto names = ImportFdl(*fdl1, &reimported);
  ASSERT_TRUE(names.ok()) << names.status().ToString() << "\n" << *fdl1;
  // Subprocess precedes the parent in the emitted closure.
  EXPECT_EQ(*names, (std::vector<std::string>{"Sub", "Main"}));

  auto fdl2 = ExportClosure(reimported, {"Main"});
  ASSERT_TRUE(fdl2.ok());
  EXPECT_EQ(*fdl1, *fdl2);

  // Spot-check a few semantic properties survived.
  auto main = reimported.FindProcess("Main");
  ASSERT_TRUE(main.ok());
  auto t1 = (*main)->FindActivity("T1");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ((*t1)->start_mode, wf::StartMode::kManual);
  EXPECT_EQ((*t1)->role, "clerk");
  EXPECT_EQ((*t1)->exit_condition.source(), "RC = 0");
  EXPECT_EQ((*t1)->notify_after_micros, 1000);
  auto nested_type = reimported.types().Find("Nest");
  ASSERT_TRUE(nested_type.ok());
  EXPECT_TRUE((*nested_type)->members()[0].is_struct());
}

TEST(FdlRoundTripTest, ImportIsIdempotentForSharedDefinitions) {
  wf::DefinitionStore store;
  BuildSimpleStore(&store);
  auto fdl1 = ExportClosure(store, {"Simple"});
  ASSERT_TRUE(fdl1.ok());

  wf::DefinitionStore target;
  ASSERT_TRUE(ImportFdl(*fdl1, &target).ok());
  // A second import re-registers identical structs/programs (tolerated)
  // but collides on the process name.
  auto again = ImportFdl(*fdl1, &target);
  EXPECT_TRUE(again.status().IsAlreadyExists());
}

TEST(FdlRoundTripTest, ConflictingStructRedefinitionRejected) {
  wf::DefinitionStore store;
  ASSERT_TRUE(ImportFdl("STRUCT 'S' 'a' : LONG; END 'S'", &store).ok());
  auto st = ImportFdl("STRUCT 'S' 'a' : STRING; END 'S'", &store).status();
  EXPECT_TRUE(st.IsAlreadyExists()) << st.ToString();
}

TEST(FdlRoundTripTest, ImportRunsSemanticValidation) {
  // Syntactically fine, semantically broken: unknown program.
  constexpr const char* kBroken = R"(
PROCESS 'P'
  PROGRAM_ACTIVITY 'A' PROGRAM 'ghost' END 'A'
END 'P')";
  wf::DefinitionStore store;
  EXPECT_TRUE(ImportFdl(kBroken, &store).status().IsNotFound());
}

}  // namespace
}  // namespace exotica::fdl
