#include "fdl/parser.h"

#include <gtest/gtest.h>

namespace exotica::fdl {
namespace {

constexpr const char* kSample = R"(
-- A full document exercising every clause.
STRUCT 'TxnResult'
  'RC' : LONG DEFAULT 1;
  'Committed' : LONG DEFAULT 0;
END 'TxnResult'

STRUCT 'Order'
  'Total' : FLOAT DEFAULT 3.5;
  'Note' : STRING DEFAULT 'hi';
  'Urgent' : BOOLEAN DEFAULT TRUE;
  'Result' : 'TxnResult';
END 'Order'

PROGRAM 'reserve' ('_Default', 'TxnResult')
  DESCRIPTION 'reserves a seat'
END 'reserve'

PROCESS 'Trip' ('_Default', 'TxnResult')
  VERSION 3
  DESCRIPTION 'books a trip'
  PROGRAM_ACTIVITY 'T1' ('_Default', 'TxnResult')
    PROGRAM 'reserve'
    START MANUAL ROLE 'clerk'
    EXIT WHEN 'RC = 0'
    JOIN OR
    NOTIFY 'boss' AFTER 5000
  END 'T1'
  PROCESS_ACTIVITY 'B' ('_Default', '_Default')
    PROCESS 'Sub'
  END 'B'
  CONTROL FROM 'T1' TO 'B' WHEN 'RC = 0'
  CONTROL FROM 'T1' TO 'B2' OTHERWISE
  DATA FROM 'T1' TO 'B' MAP 'RC' TO 'RC'
  DATA FROM INPUT TO 'T1' MAP 'RC' TO 'RC'
  DATA FROM 'B' TO OUTPUT MAP 'RC' TO 'RC' MAP 'RC' TO 'Committed'
END 'Trip'
)";

TEST(FdlParserTest, ParsesFullDocument) {
  auto doc = ParseDocument(kSample);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->structs.size(), 2u);
  ASSERT_EQ(doc->programs.size(), 1u);
  ASSERT_EQ(doc->processes.size(), 1u);

  const StructDecl& order = doc->structs[1];
  EXPECT_EQ(order.members.size(), 4u);
  EXPECT_EQ(order.members[0].type, "FLOAT");
  EXPECT_EQ(*order.members[0].default_literal, "3.5");
  EXPECT_EQ(*order.members[1].default_literal, "\"hi\"");
  EXPECT_EQ(*order.members[2].default_literal, "TRUE");
  EXPECT_TRUE(order.members[3].is_struct);
  EXPECT_EQ(order.members[3].type, "TxnResult");

  const ProcessDecl& trip = doc->processes[0];
  EXPECT_EQ(trip.version, 3);
  EXPECT_EQ(trip.description, "books a trip");
  ASSERT_EQ(trip.activities.size(), 2u);
  const ActivityDecl& t1 = trip.activities[0];
  EXPECT_FALSE(t1.is_process_activity);
  EXPECT_EQ(t1.body, "reserve");
  EXPECT_TRUE(t1.manual);
  EXPECT_EQ(t1.role, "clerk");
  EXPECT_EQ(t1.exit_condition, "RC = 0");
  EXPECT_TRUE(t1.or_join);
  EXPECT_EQ(t1.notify_after_micros, 5000);
  EXPECT_EQ(t1.notify_role, "boss");
  EXPECT_TRUE(trip.activities[1].is_process_activity);

  ASSERT_EQ(trip.controls.size(), 2u);
  EXPECT_EQ(trip.controls[0].condition, "RC = 0");
  EXPECT_TRUE(trip.controls[1].otherwise);

  ASSERT_EQ(trip.datas.size(), 3u);
  EXPECT_EQ(trip.datas[1].from.kind, DataEndpointDecl::Kind::kInput);
  EXPECT_EQ(trip.datas[2].to.kind, DataEndpointDecl::Kind::kOutput);
  EXPECT_EQ(trip.datas[2].maps.size(), 2u);
}

TEST(FdlParserTest, EndNameMustMatch) {
  EXPECT_TRUE(ParseDocument("PROCESS 'A' END 'B'").status().IsParseError());
  EXPECT_TRUE(
      ParseDocument("STRUCT 'A' END 'Mismatch'").status().IsParseError());
}

TEST(FdlParserTest, ActivityNeedsBody) {
  constexpr const char* kNoBody = R"(
PROCESS 'P'
  PROGRAM_ACTIVITY 'A'
  END 'A'
END 'P')";
  EXPECT_TRUE(ParseDocument(kNoBody).status().IsParseError());
}

TEST(FdlParserTest, WrongBodyClauseRejected) {
  constexpr const char* kMixed = R"(
PROCESS 'P'
  PROGRAM_ACTIVITY 'A'
    PROCESS 'Sub'
  END 'A'
END 'P')";
  EXPECT_TRUE(ParseDocument(kMixed).status().IsParseError());
}

TEST(FdlParserTest, DataClauseNeedsMaps) {
  constexpr const char* kNoMap = R"(
PROCESS 'P'
  PROGRAM_ACTIVITY 'A' PROGRAM 'x' END 'A'
  DATA FROM 'A' TO OUTPUT
END 'P')";
  EXPECT_TRUE(ParseDocument(kNoMap).status().IsParseError());
}

TEST(FdlParserTest, TopLevelGarbageRejected) {
  EXPECT_TRUE(ParseDocument("BANANA 'x'").status().IsParseError());
}

TEST(FdlParserTest, EmptyDocumentIsValid) {
  auto doc = ParseDocument("-- nothing but a comment\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->structs.empty());
  EXPECT_TRUE(doc->processes.empty());
}

}  // namespace
}  // namespace exotica::fdl
