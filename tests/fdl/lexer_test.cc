#include "fdl/lexer.h"

#include <gtest/gtest.h>

namespace exotica::fdl {
namespace {

TEST(FdlLexerTest, KeywordsUppercasedNamesPreserved) {
  auto tokens = TokenizeFdl("process 'MyProc' End");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, FdlTokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "PROCESS");
  EXPECT_EQ((*tokens)[1].kind, FdlTokenKind::kName);
  EXPECT_EQ((*tokens)[1].text, "MyProc");
  EXPECT_EQ((*tokens)[2].text, "END");
}

TEST(FdlLexerTest, QuoteEscaping) {
  auto tokens = TokenizeFdl("'it''s quoted'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's quoted");
}

TEST(FdlLexerTest, CommentsSkipped) {
  auto tokens = TokenizeFdl("PROCESS -- a comment\n'X'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // PROCESS, 'X', end
  EXPECT_EQ((*tokens)[1].text, "X");
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(FdlLexerTest, NumbersIncludingNegative) {
  auto tokens = TokenizeFdl("42 -17 3.5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "-17");
  EXPECT_EQ((*tokens)[2].text, "3.5");
}

TEST(FdlLexerTest, Punctuation) {
  auto tokens = TokenizeFdl("( ) , : ;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, FdlTokenKind::kLParen);
  EXPECT_EQ((*tokens)[1].kind, FdlTokenKind::kRParen);
  EXPECT_EQ((*tokens)[2].kind, FdlTokenKind::kComma);
  EXPECT_EQ((*tokens)[3].kind, FdlTokenKind::kColon);
  EXPECT_EQ((*tokens)[4].kind, FdlTokenKind::kSemicolon);
}

TEST(FdlLexerTest, LineTracking) {
  auto tokens = TokenizeFdl("A\nB\n\nC");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

TEST(FdlLexerTest, Errors) {
  EXPECT_TRUE(TokenizeFdl("'unterminated").status().IsParseError());
  EXPECT_TRUE(TokenizeFdl("@").status().IsParseError());
}

}  // namespace
}  // namespace exotica::fdl
