#include "org/worklist.h"

#include <gtest/gtest.h>

namespace exotica::org {
namespace {

class WorklistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(dir_.AddRole("clerk").ok());
    ASSERT_TRUE(dir_.AddRole("boss").ok());
    ASSERT_TRUE(dir_.AddPerson("ann", 1, {"clerk"}).ok());
    ASSERT_TRUE(dir_.AddPerson("bob", 1, {"clerk"}).ok());
    ASSERT_TRUE(dir_.AddPerson("mia", 2, {"boss"}).ok());
    service_ = std::make_unique<WorklistService>(&dir_, &clock_);
  }

  Directory dir_;
  ManualClock clock_;
  std::unique_ptr<WorklistService> service_;
};

TEST_F(WorklistTest, PostAppearsOnEveryEligibleWorklist) {
  auto id = service_->Post("wf-1", "Approve", "clerk");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service_->WorklistOf("ann").size(), 1u);
  EXPECT_EQ(service_->WorklistOf("bob").size(), 1u);
  EXPECT_TRUE(service_->WorklistOf("mia").empty());
}

TEST_F(WorklistTest, ClaimWithdrawsEverywhereElse) {
  auto id = service_->Post("wf-1", "Approve", "clerk");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service_->Claim(*id, "bob").ok());
  EXPECT_TRUE(service_->WorklistOf("ann").empty());
  ASSERT_EQ(service_->WorklistOf("bob").size(), 1u);
  EXPECT_EQ(service_->WorklistOf("bob")[0]->state, WorkItemState::kClaimed);

  // Double claim fails; claiming by another also fails.
  EXPECT_TRUE(service_->Claim(*id, "ann").IsFailedPrecondition());
}

TEST_F(WorklistTest, IneligibleClaimRejected) {
  auto id = service_->Post("wf-1", "Approve", "clerk");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service_->Claim(*id, "mia").IsInvalidArgument());
}

TEST_F(WorklistTest, ReleasePutsItemBack) {
  auto id = service_->Post("wf-1", "Approve", "clerk");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service_->Claim(*id, "ann").ok());
  ASSERT_TRUE(service_->Release(*id, "ann").ok());
  EXPECT_EQ(service_->WorklistOf("bob").size(), 1u);
  EXPECT_TRUE(service_->Release(*id, "ann").IsFailedPrecondition());
}

TEST_F(WorklistTest, CompleteLifecycle) {
  auto id = service_->Post("wf-1", "Approve", "clerk");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service_->Complete(*id, "ann").IsFailedPrecondition());  // unclaimed
  ASSERT_TRUE(service_->Claim(*id, "ann").ok());
  EXPECT_TRUE(service_->Complete(*id, "bob").IsFailedPrecondition());  // not owner
  ASSERT_TRUE(service_->Complete(*id, "ann").ok());
  EXPECT_EQ(service_->Count(WorkItemState::kDone), 1u);
  EXPECT_TRUE(service_->WorklistOf("ann").empty());
}

TEST_F(WorklistTest, CancelRemovesItem) {
  auto id = service_->Post("wf-1", "Approve", "clerk");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service_->Cancel(*id).ok());
  EXPECT_TRUE(service_->WorklistOf("ann").empty());
  EXPECT_TRUE(service_->Cancel(999).IsNotFound());
}

TEST_F(WorklistTest, EmptyRoleFailsAtPost) {
  ASSERT_TRUE(dir_.AddRole("lonely").ok());
  EXPECT_TRUE(
      service_->Post("wf-1", "X", "lonely").status().IsFailedPrecondition());
  EXPECT_TRUE(service_->Post("wf-1", "X", "ghost").status().IsNotFound());
}

TEST_F(WorklistTest, DeadlineNotificationOnceWithRecipients) {
  auto id = service_->Post("wf-1", "Approve", "clerk", 1000, "boss");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service_->CheckDeadlines().empty());
  clock_.Advance(999);
  EXPECT_TRUE(service_->CheckDeadlines().empty());
  clock_.Advance(1);
  auto notes = service_->CheckDeadlines();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].recipients, (std::vector<std::string>{"mia"}));
  EXPECT_TRUE(service_->CheckDeadlines().empty());
  EXPECT_EQ(service_->notifications().size(), 1u);
}

TEST_F(WorklistTest, DoneItemsEscapeDeadlines) {
  auto id = service_->Post("wf-1", "Approve", "clerk", 1000, "boss");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service_->Claim(*id, "ann").ok());
  ASSERT_TRUE(service_->Complete(*id, "ann").ok());
  clock_.Advance(5000);
  EXPECT_TRUE(service_->CheckDeadlines().empty());
}

}  // namespace
}  // namespace exotica::org
