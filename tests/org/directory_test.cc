#include "org/directory.h"

#include <gtest/gtest.h>

namespace exotica::org {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(dir_.AddRole("clerk", "handles paperwork").ok());
    ASSERT_TRUE(dir_.AddRole("manager").ok());
    ASSERT_TRUE(dir_.AddPerson("ann", 1, {"clerk"}).ok());
    ASSERT_TRUE(dir_.AddPerson("bob", 1, {"clerk"}).ok());
    ASSERT_TRUE(dir_.AddPerson("mia", 2, {"manager", "clerk"}, "").ok());
  }

  Directory dir_;
};

TEST_F(DirectoryTest, BasicRegistration) {
  EXPECT_TRUE(dir_.HasRole("clerk"));
  EXPECT_FALSE(dir_.HasRole("auditor"));
  EXPECT_TRUE(dir_.HasPerson("ann"));
  EXPECT_TRUE(dir_.AddRole("clerk").IsAlreadyExists());
  EXPECT_TRUE(dir_.AddPerson("ann", 1, {}).IsAlreadyExists());
  EXPECT_TRUE(dir_.AddPerson("zed", 1, {"ghost"}).IsNotFound());
  EXPECT_TRUE(dir_.AddPerson("zed", 1, {}, "ghost").IsNotFound());
}

TEST_F(DirectoryTest, MultipleRolesPerPerson) {
  auto mia = dir_.FindPerson("mia");
  ASSERT_TRUE(mia.ok());
  EXPECT_EQ((*mia)->roles.size(), 2u);
  EXPECT_EQ(dir_.MembersOfRole("clerk"),
            (std::vector<std::string>{"ann", "bob", "mia"}));
}

TEST_F(DirectoryTest, GrantRevoke) {
  ASSERT_TRUE(dir_.GrantRole("ann", "manager").ok());
  EXPECT_EQ(dir_.MembersOfRole("manager"),
            (std::vector<std::string>{"ann", "mia"}));
  ASSERT_TRUE(dir_.RevokeRole("ann", "manager").ok());
  EXPECT_EQ(dir_.MembersOfRole("manager"), (std::vector<std::string>{"mia"}));
  EXPECT_TRUE(dir_.GrantRole("ghost", "clerk").IsNotFound());
  EXPECT_TRUE(dir_.GrantRole("ann", "ghost").IsNotFound());
}

TEST_F(DirectoryTest, StaffResolutionSkipsAbsentWithoutSubstitute) {
  ASSERT_TRUE(dir_.SetAbsent("ann", true).ok());
  auto staff = dir_.ResolveStaff("clerk");
  ASSERT_TRUE(staff.ok());
  EXPECT_EQ(*staff, (std::vector<std::string>{"bob", "mia"}));
}

TEST_F(DirectoryTest, SubstitutionChainFollowed) {
  ASSERT_TRUE(dir_.SetAbsent("ann", true, "bob").ok());
  ASSERT_TRUE(dir_.SetAbsent("bob", true, "mia").ok());
  auto staff = dir_.ResolveStaff("clerk");
  ASSERT_TRUE(staff.ok());
  // ann -> bob -> mia; bob absent; mia also direct member. Dedup keeps one.
  EXPECT_EQ(*staff, (std::vector<std::string>{"mia"}));
}

TEST_F(DirectoryTest, SubstitutionCycleDropsMember) {
  ASSERT_TRUE(dir_.AddPerson("cy1", 1, {"clerk"}).ok());
  ASSERT_TRUE(dir_.AddPerson("cy2", 1, {}).ok());
  ASSERT_TRUE(dir_.SetAbsent("cy1", true, "cy2").ok());
  ASSERT_TRUE(dir_.SetAbsent("cy2", true, "cy1").ok());
  auto staff = dir_.ResolveStaff("clerk");
  ASSERT_TRUE(staff.ok());
  EXPECT_EQ(*staff, (std::vector<std::string>{"ann", "bob", "mia"}));
}

TEST_F(DirectoryTest, SelfSubstitutionRejected) {
  EXPECT_TRUE(dir_.SetAbsent("ann", true, "ann").IsInvalidArgument());
}

TEST_F(DirectoryTest, UnknownRoleResolutionFails) {
  EXPECT_TRUE(dir_.ResolveStaff("ghost").status().IsNotFound());
}

TEST_F(DirectoryTest, LevelsQuery) {
  EXPECT_EQ(dir_.PersonsAtOrAbove(2), (std::vector<std::string>{"mia"}));
  EXPECT_EQ(dir_.PersonsAtOrAbove(1).size(), 3u);
}

TEST_F(DirectoryTest, ManagerAssignment) {
  ASSERT_TRUE(dir_.SetManager("ann", "mia").ok());
  EXPECT_EQ((*dir_.FindPerson("ann"))->manager, "mia");
  EXPECT_TRUE(dir_.SetManager("ann", "ghost").IsNotFound());
}

}  // namespace
}  // namespace exotica::org
