// Workflow simulation tests: navigation fidelity under virtual time,
// stochastic branching frequencies, role-capacity queueing, loops.

#include "wfsim/sim.h"

#include <gtest/gtest.h>

#include "atm/saga.h"
#include "exotica/saga_translate.h"
#include "wf/builder.h"

namespace exotica::wfsim {
namespace {

class SimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wf::ProgramDeclaration p;
    p.name = "prog";
    ASSERT_TRUE(store_.DeclareProgram(p).ok());
  }

  ActivityProfile Fixed(Micros d, std::vector<std::pair<int64_t, double>> rc =
                                      {{0, 1.0}}) {
    ActivityProfile prof;
    prof.duration = DurationModel::Fixed(d);
    prof.rc_distribution = std::move(rc);
    return prof;
  }

  wf::DefinitionStore store_;
};

TEST_F(SimTest, ChainMakespanIsSumOfDurations) {
  wf::ProcessBuilder b(&store_, "chain");
  b.Program("A", "prog").Program("B", "prog").Program("C", "prog");
  b.Connect("A", "B", "RC = 0").Connect("B", "C", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 10;
  cfg.profiles["A"] = Fixed(100);
  cfg.profiles["B"] = Fixed(200);
  cfg.profiles["C"] = Fixed(300);
  auto r = Simulate(store_, "chain", cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->MakespanMean(), 600);
  EXPECT_EQ(r->MakespanMax(), 600);
  EXPECT_EQ(r->activities.at("A").executions, 10u);
}

TEST_F(SimTest, ParallelBranchesOverlap) {
  wf::ProcessBuilder b(&store_, "par");
  b.Program("Fork", "prog").Program("L", "prog").Program("R", "prog")
      .Program("Join", "prog");
  b.Connect("Fork", "L").Connect("Fork", "R");
  b.Connect("L", "Join").Connect("R", "Join");
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 5;
  cfg.profiles["Fork"] = Fixed(10);
  cfg.profiles["L"] = Fixed(100);
  cfg.profiles["R"] = Fixed(400);
  cfg.profiles["Join"] = Fixed(10);
  auto r = Simulate(store_, "par", cfg);
  ASSERT_TRUE(r.ok());
  // Critical path: 10 + max(100, 400) + 10.
  EXPECT_EQ(r->MakespanMean(), 420);
}

TEST_F(SimTest, StochasticBranchFrequenciesMatchProbabilities) {
  wf::ProcessBuilder b(&store_, "branch");
  b.Program("Decide", "prog").Program("Yes", "prog").Program("No", "prog");
  b.Connect("Decide", "Yes", "RC = 0");
  b.Connect("Decide", "No", "RC <> 0");
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 4000;
  cfg.seed = 9;
  cfg.profiles["Decide"] = Fixed(1, {{0, 0.7}, {1, 0.3}});
  auto r = Simulate(store_, "branch", cfg);
  ASSERT_TRUE(r.ok());
  double yes_rate = static_cast<double>(r->activities.at("Yes").executions) /
                    static_cast<double>(cfg.trials);
  EXPECT_NEAR(yes_rate, 0.7, 0.03);
  EXPECT_EQ(r->activities.at("Yes").executions +
                r->activities.at("Yes").dead,
            static_cast<uint64_t>(cfg.trials));
}

TEST_F(SimTest, ExitConditionLoopRepeatsUntilSuccess) {
  wf::ProcessBuilder b(&store_, "loop");
  b.Program("Retry", "prog").ExitWhen("RC = 0");
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 3000;
  cfg.seed = 4;
  // Commits with probability 1/2: geometric with mean 2 attempts.
  cfg.profiles["Retry"] = Fixed(10, {{0, 0.5}, {1, 0.5}});
  auto r = Simulate(store_, "loop", cfg);
  ASSERT_TRUE(r.ok());
  double mean_attempts =
      static_cast<double>(r->activities.at("Retry").executions) /
      static_cast<double>(cfg.trials);
  EXPECT_NEAR(mean_attempts, 2.0, 0.12);
}

TEST_F(SimTest, RoleCapacityQueuesManualWork) {
  // Three parallel manual reviews, one reviewer: the reviews serialize.
  wf::ProcessBuilder b(&store_, "reviews");
  b.Program("Start", "prog");
  for (const char* name : {"R1", "R2", "R3"}) {
    b.Program(name, "prog").Manual().Role("reviewer");
    b.Connect("Start", name);
  }
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 4;
  cfg.profiles["Start"] = Fixed(0);
  for (const char* name : {"R1", "R2", "R3"}) {
    cfg.profiles[name] = Fixed(100);
  }
  cfg.role_capacity["reviewer"] = 1;
  auto r = Simulate(store_, "reviews", cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->MakespanMean(), 300);  // fully serialized
  // Waiting time per trial: second waits 100, third waits 200.
  EXPECT_EQ(r->roles.at("reviewer").queue_micros, 4 * (100 + 200));

  // With capacity 3 the reviews run in parallel.
  cfg.role_capacity["reviewer"] = 3;
  auto r3 = Simulate(store_, "reviews", cfg);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->MakespanMean(), 100);
  EXPECT_EQ(r3->roles.at("reviewer").queue_micros, 0);
}

TEST_F(SimTest, BlocksNestAndDriveParentTiming) {
  wf::ProcessBuilder inner(&store_, "inner");
  inner.Program("X", "prog").Program("Y", "prog");
  inner.Connect("X", "Y");
  ASSERT_TRUE(inner.Register().ok());

  wf::ProcessBuilder outer(&store_, "outer");
  outer.Block("B", "inner").Program("Z", "prog");
  outer.Connect("B", "Z", "RC = 0");
  ASSERT_TRUE(outer.Register().ok());

  SimConfig cfg;
  cfg.trials = 3;
  cfg.profiles["X"] = Fixed(50);
  cfg.profiles["Y"] = Fixed(70);
  cfg.profiles["Z"] = Fixed(30);
  auto r = Simulate(store_, "outer", cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->MakespanMean(), 150);
}

TEST_F(SimTest, DeterministicPerSeed) {
  wf::ProcessBuilder b(&store_, "p");
  b.Program("A", "prog");
  ASSERT_TRUE(b.Register().ok());
  SimConfig cfg;
  cfg.trials = 100;
  cfg.profiles["A"].duration = DurationModel::Uniform(10, 1000);
  auto r1 = Simulate(store_, "p", cfg);
  auto r2 = Simulate(store_, "p", cfg);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->makespans, r2->makespans);
  cfg.seed = 43;
  auto r3 = Simulate(store_, "p", cfg);
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(r1->makespans, r3->makespans);
}

TEST_F(SimTest, DurationModels) {
  Rng rng(5);
  EXPECT_EQ(DurationModel::Fixed(42).Sample(&rng), 42);
  for (int i = 0; i < 200; ++i) {
    Micros u = DurationModel::Uniform(10, 20).Sample(&rng);
    EXPECT_GE(u, 10);
    EXPECT_LE(u, 20);
    EXPECT_GE(DurationModel::Exponential(100).Sample(&rng), 0);
  }
  // Exponential mean roughly calibrated.
  long double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    sum += static_cast<long double>(DurationModel::Exponential(100).Sample(&rng));
  }
  EXPECT_NEAR(static_cast<double>(sum / 20000), 100.0, 5.0);
}

TEST_F(SimTest, PercentilesAreOrdered) {
  wf::ProcessBuilder b(&store_, "p2");
  b.Program("A", "prog");
  ASSERT_TRUE(b.Register().ok());
  SimConfig cfg;
  cfg.trials = 500;
  cfg.profiles["A"].duration = DurationModel::Exponential(1000);
  auto r = Simulate(store_, "p2", cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->MakespanPercentile(0.5), r->MakespanPercentile(0.95));
  EXPECT_LE(r->MakespanPercentile(0.95), r->MakespanMax());
  EXPECT_GT(r->MakespanMean(), 0);
}

TEST_F(SimTest, SimulatesATranslatedSagaProcess) {
  // Design-time what-if over an Exotica-translated saga: the forward
  // block's steps take time; the compensation path is driven by the
  // block-level RC profile. (Data flow is not simulated, so State_*
  // conditions read false and compensations stay dead — the forward
  // timing is the question simulation answers here.)
  atm::SagaSpec spec("Trip");
  spec.Then("Flight").Then("Hotel");
  auto translation = exo::TranslateSaga(spec, &store_);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();

  SimConfig cfg;
  cfg.trials = 50;
  cfg.profiles["Flight"] = Fixed(100);
  cfg.profiles["Hotel"] = Fixed(200);
  auto r = Simulate(store_, translation->root_process, cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Critical path: Flight + Hotel (+ zero-cost sentinels and blocks).
  EXPECT_EQ(r->MakespanMean(), 300);
  EXPECT_EQ(r->activities.at("Flight").executions, 50u);
}

TEST_F(SimTest, ConfigValidation) {
  wf::ProcessBuilder b(&store_, "p3");
  b.Program("A", "prog");
  ASSERT_TRUE(b.Register().ok());
  SimConfig cfg;
  cfg.trials = 0;
  EXPECT_TRUE(Simulate(store_, "p3", cfg).status().IsInvalidArgument());
  cfg.trials = 1;
  cfg.profiles["A"] = ActivityProfile{};
  cfg.profiles["A"].rc_distribution = {{0, 0.5}};  // sums to 0.5
  EXPECT_TRUE(Simulate(store_, "p3", cfg).status().IsInvalidArgument());
  EXPECT_TRUE(Simulate(store_, "ghost", SimConfig{}).status().IsNotFound());
}

TEST_F(SimTest, CrashProbabilityAmplifiesRetriesAndMakespan) {
  wf::ProcessBuilder b(&store_, "crashy");
  b.Program("A", "prog");
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 500;
  cfg.profiles["A"] = Fixed(100);
  cfg.profiles["A"].crash_probability = 0.5;
  auto r = Simulate(store_, "crashy", cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Every crash spends the attempt's time and re-runs the activity: runs
  // exceed trials by exactly the crash count, and the mean makespan
  // reflects the retry amplification (expected 2x at p = 0.5).
  const ActivityStats& a = r->activities.at("A");
  EXPECT_GT(a.crashes, 0u);
  EXPECT_EQ(a.executions, static_cast<uint64_t>(cfg.trials) + a.crashes);
  EXPECT_GT(r->MakespanMean(), 150);
  EXPECT_EQ(a.busy_micros, static_cast<Micros>(a.executions) * 100);
}

TEST_F(SimTest, CrashRetryCapSurfacesAsError) {
  wf::ProcessBuilder b(&store_, "hopeless");
  b.Program("A", "prog");
  ASSERT_TRUE(b.Register().ok());

  SimConfig cfg;
  cfg.trials = 3;
  cfg.profiles["A"] = Fixed(10);
  cfg.profiles["A"].crash_probability = 1.0;
  cfg.max_crash_retries = 5;
  auto r = Simulate(store_, "hopeless", cfg);
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status().ToString();
}

}  // namespace
}  // namespace exotica::wfsim
