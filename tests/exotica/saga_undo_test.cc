// §4.1's closing remark: "it is possible that users may require to
// compensate an already completed saga. In these cases all activities
// must be compensated." The translation already supports this: the
// compensation block is a registered process of its own; feeding it a
// fully-committed State image undoes the whole saga, in reverse order.

#include <gtest/gtest.h>

#include "atm/saga.h"
#include "exotica/blocks.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wfrt/engine.h"

namespace exotica {
namespace {

TEST(SagaUndoTest, CompensationBlockUndoesACompletedSaga) {
  atm::SagaSpec spec("S");
  spec.Then("T1").Then("T2").Then("T3");

  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(translation.ok());

  std::vector<std::string> compensated;
  class Recorder : public atm::SubTxnRunner {
   public:
    explicit Recorder(std::vector<std::string>* out) : out_(out) {}
    Result<bool> Run(const std::string&) override { return true; }
    Result<bool> Compensate(const std::string& name) override {
      out_->push_back(name);
      return true;
    }

   private:
    std::vector<std::string>* out_;
  } recorder(&compensated);

  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &recorder, &programs).ok());
  wfrt::Engine engine(&store, &programs);

  // 1. The saga runs to a clean commit: no compensation.
  auto id = engine.RunToCompletion(translation->root_process);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);
  EXPECT_TRUE(compensated.empty());

  // 2. Later, the user demands the completed saga be undone: instantiate
  //    the compensation block directly with an all-committed State image.
  auto input = data::Container::Create(store.types(), translation->state_type);
  ASSERT_TRUE(input.ok());
  for (const atm::SagaStep& s : spec.steps()) {
    ASSERT_TRUE(
        input->Set(exo::StateField(s.name), data::Value(int64_t{1})).ok());
  }
  auto undo = engine.RunToCompletion(translation->comp_process, &*input);
  ASSERT_TRUE(undo.ok()) << undo.status().ToString();

  // All activities compensated, in reverse order.
  EXPECT_EQ(compensated, (std::vector<std::string>{"T3", "T2", "T1"}));
}

TEST(SagaUndoTest, PartialStateImageCompensatesOnlyCommittedSteps) {
  atm::SagaSpec spec("S2");
  spec.Then("T1").Then("T2").Then("T3");
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(translation.ok());

  std::vector<std::string> compensated;
  class Recorder : public atm::SubTxnRunner {
   public:
    explicit Recorder(std::vector<std::string>* out) : out_(out) {}
    Result<bool> Run(const std::string&) override { return true; }
    Result<bool> Compensate(const std::string& name) override {
      out_->push_back(name);
      return true;
    }

   private:
    std::vector<std::string>* out_;
  } recorder(&compensated);
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &recorder, &programs).ok());
  wfrt::Engine engine(&store, &programs);

  // Only T1 committed (a prefix, as a real saga would leave).
  auto input = data::Container::Create(store.types(), translation->state_type);
  ASSERT_TRUE(input.ok());
  ASSERT_TRUE(input->Set("State_T1", data::Value(int64_t{1})).ok());
  auto undo = engine.RunToCompletion(translation->comp_process, &*input);
  ASSERT_TRUE(undo.ok()) << undo.status().ToString();
  EXPECT_EQ(compensated, (std::vector<std::string>{"T1"}));
}

}  // namespace
}  // namespace exotica
