// Figure 2 reproduction: a linear saga translated to a two-block workflow
// process behaves exactly like the native saga executor — either T1..Tn
// runs, or T1..Tj; Cj..C1 — including reverse-order compensation driven
// by State_* conditions and dead path elimination.

#include <gtest/gtest.h>

#include "atm/saga.h"
#include "atm/subtxn.h"
#include "exotica/blocks.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wfrt/engine.h"

namespace exotica {
namespace {

using atm::SagaSpec;
using atm::ScriptedRunner;
using atm::TraceAction;

SagaSpec LinearSaga(int n) {
  SagaSpec spec("S");
  for (int i = 1; i <= n; ++i) spec.Then("T" + std::to_string(i));
  return spec;
}

struct WorkflowSagaRun {
  bool committed = false;
  bool compensated = false;
  std::vector<std::string> executed;     // forward program calls, in order
  std::vector<std::string> compensations;  // compensation calls, in order
};

// Runs `spec` through translate + engine with a recording runner.
WorkflowSagaRun RunSagaWorkflow(const SagaSpec& spec, ScriptedRunner* runner) {
  WorkflowSagaRun out;
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  EXPECT_TRUE(translation.ok()) << translation.status().ToString();
  if (!translation.ok()) return out;

  // Recording wrapper around the scripted runner.
  class Recorder : public atm::SubTxnRunner {
   public:
    Recorder(ScriptedRunner* inner, WorkflowSagaRun* out)
        : inner_(inner), out_(out) {}
    Result<bool> Run(const std::string& name) override {
      EXO_ASSIGN_OR_RETURN(bool committed, inner_->Run(name));
      if (committed) out_->executed.push_back(name);
      return committed;
    }
    Result<bool> Compensate(const std::string& name) override {
      EXO_ASSIGN_OR_RETURN(bool done, inner_->Compensate(name));
      if (done) out_->compensations.push_back(name);
      return done;
    }

   private:
    ScriptedRunner* inner_;
    WorkflowSagaRun* out_;
  } recorder(runner, &out);

  wfrt::ProgramRegistry programs;
  EXPECT_TRUE(exo::BindSagaPrograms(spec, store, &recorder, &programs).ok());

  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(translation->root_process);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (!id.ok()) return out;

  auto output = engine.OutputOf(*id);
  EXPECT_TRUE(output.ok());
  out.committed = output->Get("RC")->as_long() == 0;
  out.compensated = output->Get("Compensated")->as_long() == 1;
  return out;
}

// F2: every abort point of a 5-step saga, workflow vs native.
class SagaFigure2Test : public ::testing::TestWithParam<int> {};

TEST_P(SagaFigure2Test, WorkflowMatchesNativeExecutor) {
  const int n = 5;
  const int j = GetParam();

  // Native baseline.
  ScriptedRunner native_runner;
  if (j < n) native_runner.AlwaysAbort("T" + std::to_string(j + 1));
  atm::SagaExecutor native(&native_runner);
  auto baseline = native.Execute(LinearSaga(n));
  ASSERT_TRUE(baseline.ok());

  // Workflow implementation.
  ScriptedRunner wf_runner;
  if (j < n) wf_runner.AlwaysAbort("T" + std::to_string(j + 1));
  WorkflowSagaRun run = RunSagaWorkflow(LinearSaga(n), &wf_runner);

  EXPECT_EQ(run.committed, baseline->committed);
  EXPECT_EQ(run.executed, baseline->executed);
  EXPECT_EQ(run.compensations, baseline->compensated);
  // The Compensated flag records that the compensation block RAN — it
  // runs (possibly vacuously) whenever the forward block fails, including
  // j = 0 where nothing needs undoing.
  EXPECT_EQ(run.compensated, !baseline->committed);
}

INSTANTIATE_TEST_SUITE_P(AllAbortPoints, SagaFigure2Test,
                         ::testing::Range(0, 6));

TEST(SagaWorkflowTest, CompensationsRetryViaExitConditions) {
  // The appendix: "compensations ... should be retried until it succeeds.
  // This can be done by using the exit condition of the activities."
  ScriptedRunner runner;
  runner.AlwaysAbort("T3");
  runner.FailCompensationFirst("T1", 3);
  WorkflowSagaRun run = RunSagaWorkflow(LinearSaga(3), &runner);
  EXPECT_FALSE(run.committed);
  EXPECT_EQ(run.compensations, (std::vector<std::string>{"T2", "T1"}));
  EXPECT_EQ(runner.compensation_attempts("T1"), 4);
}

TEST(SagaWorkflowTest, ParallelSagaCompensatesReverseTopologically) {
  // Generalized saga (§4.1 "the same ideas apply to the more general
  // case"): A -> {B, X} -> C with X aborting. B and A committed; their
  // compensations must run with C_B before C_A.
  SagaSpec spec("Par");
  spec.Step("A", {}).Step("B", {"A"}).Step("X", {"A"}).Step("C", {"B", "X"});

  ScriptedRunner runner;
  runner.AlwaysAbort("X");
  WorkflowSagaRun run = RunSagaWorkflow(spec, &runner);
  EXPECT_FALSE(run.committed);
  EXPECT_EQ(run.executed, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(run.compensations, (std::vector<std::string>{"B", "A"}));
}

TEST(SagaWorkflowTest, TranslationRegistersExpectedArtifacts) {
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(LinearSaga(3), &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_TRUE(store.HasProcess("S"));
  EXPECT_TRUE(store.HasProcess("S_FWD"));
  EXPECT_TRUE(store.HasProcess("S_CMP"));
  EXPECT_TRUE(store.types().Has("S_State"));
  EXPECT_TRUE(store.types().Has(exo::kTxnResultType));
  EXPECT_TRUE(store.types().Has(exo::kSagaResultType));
  EXPECT_TRUE(store.HasProgram("T1"));
  EXPECT_TRUE(store.HasProgram("T1_comp"));
  EXPECT_TRUE(store.HasProgram(exo::kRc0Program));

  // The root is the paper's two-block chain.
  auto root = store.FindProcess("S");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->activities().size(), 2u);
  EXPECT_EQ((*root)->control_connectors().size(), 1u);
  EXPECT_EQ((*root)->control_connectors()[0].condition.source(), "RC <> 0");
}

TEST(SagaWorkflowTest, InvalidSpecRefused) {
  wf::DefinitionStore store;
  SagaSpec dup("dup");
  dup.Then("T1").Then("T1");
  EXPECT_TRUE(exo::TranslateSaga(dup, &store).status().IsValidationError());

  SagaSpec badname("badname");
  badname.Then("_T1");  // reserved prefix
  EXPECT_TRUE(
      exo::TranslateSaga(badname, &store).status().IsValidationError());
}

TEST(SagaWorkflowTest, NameCollisionAcrossTranslationsRefused) {
  wf::DefinitionStore store;
  ASSERT_TRUE(exo::TranslateSaga(LinearSaga(2), &store).ok());
  EXPECT_TRUE(exo::TranslateSaga(LinearSaga(2), &store).status()
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace exotica
