// Property tests: for RANDOM sagas / flexible transactions and RANDOM
// abort schedules, the workflow implementation must agree with the
// native executor on outcome, committed set, and compensation order.
// Everything is seeded, so failures reproduce.

#include <gtest/gtest.h>

#include "atm/flex.h"
#include "atm/saga.h"
#include "common/rng.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wfrt/engine.h"

namespace exotica {
namespace {

using atm::FlexStep;
using atm::FlexStepPtr;
using atm::ScriptedRunner;

// ---- shared recording runner ------------------------------------------------

class Recorder : public atm::SubTxnRunner {
 public:
  explicit Recorder(ScriptedRunner* inner) : inner_(inner) {}
  Result<bool> Run(const std::string& name) override {
    EXO_ASSIGN_OR_RETURN(bool committed, inner_->Run(name));
    if (committed) effective_.push_back(name);
    return committed;
  }
  Result<bool> Compensate(const std::string& name) override {
    EXO_ASSIGN_OR_RETURN(bool done, inner_->Compensate(name));
    if (done) {
      compensations_.push_back(name);
      for (auto it = effective_.rbegin(); it != effective_.rend(); ++it) {
        if (*it == name) {
          effective_.erase(std::next(it).base());
          break;
        }
      }
    }
    return done;
  }
  std::vector<std::string> effective_;
  std::vector<std::string> compensations_;

 private:
  ScriptedRunner* inner_;
};

// ---- random sagas -------------------------------------------------------------

atm::SagaSpec RandomSaga(Rng* rng, int* num_steps) {
  int n = static_cast<int>(rng->Uniform(1, 8));
  *num_steps = n;
  atm::SagaSpec spec("S");
  std::vector<std::string> names;
  for (int i = 1; i <= n; ++i) {
    std::string name = "T" + std::to_string(i);
    if (i == 1 || rng->Bernoulli(0.6)) {
      // Linear-ish: depend on the previous step.
      spec.Step(name, i == 1 ? std::vector<std::string>{}
                             : std::vector<std::string>{names.back()});
    } else {
      // Random subset of earlier steps as predecessors (possibly none).
      std::vector<std::string> preds;
      for (const std::string& p : names) {
        if (rng->Bernoulli(0.4)) preds.push_back(p);
      }
      spec.Step(name, std::move(preds));
    }
    names.push_back(name);
  }
  return spec;
}

void ConfigureRandomAborts(Rng* rng, int num_steps, ScriptedRunner* runner) {
  for (int i = 1; i <= num_steps; ++i) {
    if (rng->Bernoulli(0.25)) {
      runner->AlwaysAbort("T" + std::to_string(i));
    }
    if (rng->Bernoulli(0.2)) {
      runner->FailCompensationFirst("T" + std::to_string(i),
                                    static_cast<int>(rng->Uniform(1, 3)));
    }
  }
}

class SagaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SagaPropertyTest, WorkflowAgreesWithNative) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  int num_steps = 0;
  atm::SagaSpec spec = RandomSaga(&rng, &num_steps);
  ASSERT_TRUE(spec.Validate().ok());
  uint64_t abort_seed = rng.generator()();

  // Native.
  Rng abort_rng1(abort_seed);
  ScriptedRunner native_runner;
  ConfigureRandomAborts(&abort_rng1, num_steps, &native_runner);
  atm::SagaExecutor native(&native_runner);
  auto baseline = native.Execute(spec);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Workflow.
  Rng abort_rng2(abort_seed);
  ScriptedRunner wf_scripted;
  ConfigureRandomAborts(&abort_rng2, num_steps, &wf_scripted);
  Recorder recorder(&wf_scripted);

  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(translation.ok()) << translation.status().ToString();
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &recorder, &programs).ok());
  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(translation->root_process);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto out = engine.OutputOf(*id);
  ASSERT_TRUE(out.ok());
  bool committed = out->Get("RC")->as_long() == 0;

  // Outcome always agrees: a saga commits iff every step commits, and the
  // abort schedule is deterministic.
  EXPECT_EQ(committed, baseline->committed);

  if (spec.IsLinear()) {
    // Linear sagas have one schedule: exact equality with the native
    // executor, including compensation order.
    EXPECT_EQ(recorder.compensations_, baseline->compensated);
  } else {
    // Parallel sagas: the native executor stops at the first abort while
    // the workflow lets independent branches finish — both schedules are
    // legal. Check the guarantee itself instead:
    //  (a) compensation respects reverse precedence order;
    //  (b) nothing downstream of an aborted step ever committed.
    auto comp_index = [&](const std::string& name) -> int {
      for (size_t i = 0; i < recorder.compensations_.size(); ++i) {
        if (recorder.compensations_[i] == name) return static_cast<int>(i);
      }
      return -1;
    };
    for (const atm::SagaStep& s : spec.steps()) {
      int si = comp_index(s.name);
      for (const std::string& p : s.predecessors) {
        int pi = comp_index(p);
        if (si >= 0 && pi >= 0) {
          EXPECT_LT(si, pi) << "C_" << s.name << " must run before C_" << p;
        }
        // If the successor committed, the predecessor must have too.
        if (si >= 0) {
          EXPECT_GE(pi, 0) << s.name << " committed without " << p;
        }
      }
    }
  }
  if (committed) {
    EXPECT_EQ(recorder.effective_.size(), static_cast<size_t>(num_steps));
    EXPECT_TRUE(recorder.compensations_.empty());
  } else {
    // Everything committed was compensated: net effect empty.
    EXPECT_TRUE(recorder.effective_.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SagaPropertyTest, ::testing::Range(1, 41));

// ---- random flexible transactions ----------------------------------------------

// Generates a well-formed-by-construction tree:
//   guaranteed(depth)   := Retriable | Seq of guaranteed | Alt(any, guaranteed)
//   wellformed(depth)   := Seq[ compensatable*, pivot?, guaranteed-tail* ]
//                        | Alt(wellformed, guaranteed) | leaf
FlexStepPtr RandomGuaranteed(Rng* rng, int depth, int* counter);
FlexStepPtr RandomWellFormed(Rng* rng, int depth, int* counter);

/// A composite whose every leaf is compensatable — legal anywhere a
/// compensatable leaf is (nested-saga shapes).
FlexStepPtr RandomAllCompensatable(Rng* rng, int depth, int* counter);

std::string NextName(const char* prefix, int* counter) {
  return std::string(prefix) + std::to_string(++*counter);
}

FlexStepPtr RandomGuaranteed(Rng* rng, int depth, int* counter) {
  if (depth <= 0 || rng->Bernoulli(0.5)) {
    return FlexStep::Retriable(NextName("R", counter));
  }
  if (rng->Bernoulli(0.5)) {
    std::vector<FlexStepPtr> children;
    int n = static_cast<int>(rng->Uniform(1, 3));
    for (int i = 0; i < n; ++i) {
      children.push_back(RandomGuaranteed(rng, depth - 1, counter));
    }
    return FlexStep::Seq(std::move(children));
  }
  return FlexStep::Alt(RandomWellFormed(rng, depth - 1, counter),
                       RandomGuaranteed(rng, depth - 1, counter));
}

FlexStepPtr RandomWellFormed(Rng* rng, int depth, int* counter) {
  if (depth <= 0) {
    return rng->Bernoulli(0.5) ? FlexStep::Compensatable(NextName("C", counter))
                               : FlexStep::Pivot(NextName("P", counter));
  }
  if (rng->Bernoulli(0.3)) {
    return FlexStep::Alt(RandomWellFormed(rng, depth - 1, counter),
                         RandomGuaranteed(rng, depth - 1, counter));
  }
  // Seq shaped exactly like the checker's rule: a run of compensatable
  // leaves (safe to abort), then ONE "last failable" element — a pivot
  // leaf or a nested well-formed composite — then a guaranteed tail.
  // (A non-all-compensatable composite earlier in the sequence would be
  // rejected: if a later step failed pre-pivot, its committed
  // non-compensatable work could not be undone.)
  std::vector<FlexStepPtr> children;
  int pre = static_cast<int>(rng->Uniform(0, 2));
  for (int i = 0; i < pre; ++i) {
    if (depth > 0 && rng->Bernoulli(0.3)) {
      // Nested-saga shape: an all-compensatable composite mid-sequence.
      children.push_back(RandomAllCompensatable(rng, depth - 1, counter));
    } else {
      children.push_back(
          FlexStep::Sub(NextName("C", counter), true, rng->Bernoulli(0.3)));
    }
  }
  bool pivot_leaf = rng->Bernoulli(0.6);
  if (pivot_leaf) {
    children.push_back(FlexStep::Pivot(NextName("P", counter)));
  } else {
    children.push_back(RandomWellFormed(rng, depth - 1, counter));
  }
  int tail = static_cast<int>(rng->Uniform(0, 2));
  for (int i = 0; i < tail; ++i) {
    children.push_back(RandomGuaranteed(rng, depth - 1, counter));
  }
  return FlexStep::Seq(std::move(children));
}

FlexStepPtr RandomAllCompensatable(Rng* rng, int depth, int* counter) {
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    return FlexStep::Sub(NextName("C", counter), true, rng->Bernoulli(0.3));
  }
  if (rng->Bernoulli(0.3)) {
    return FlexStep::Alt(RandomAllCompensatable(rng, depth - 1, counter),
                         RandomAllCompensatable(rng, depth - 1, counter));
  }
  std::vector<FlexStepPtr> children;
  int n = static_cast<int>(rng->Uniform(1, 3));
  for (int i = 0; i < n; ++i) {
    children.push_back(RandomAllCompensatable(rng, depth - 1, counter));
  }
  return FlexStep::Seq(std::move(children));
}

class FlexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlexPropertyTest, WorkflowAgreesWithNative) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  int counter = 0;
  atm::FlexSpec spec("F", RandomWellFormed(&rng, 3, &counter));
  ASSERT_TRUE(spec.Validate().ok())
      << spec.Validate().ToString() << "\n" << spec.root().ToString();

  // Random abort schedule: transient aborts everywhere; permanent aborts
  // only for non-retriable subs (a permanently aborting retriable sub
  // would hang both implementations, by design).
  auto configure = [&spec](Rng* r, ScriptedRunner* runner) {
    for (const FlexStep* sub : spec.Subs()) {
      if (!sub->retriable && r->Bernoulli(0.3)) {
        runner->AlwaysAbort(sub->name);
      } else if (r->Bernoulli(0.3)) {
        runner->AbortFirst(sub->name, static_cast<int>(r->Uniform(1, 2)));
      }
    }
  };
  uint64_t abort_seed = rng.generator()();

  Rng r1(abort_seed);
  ScriptedRunner native_runner;
  configure(&r1, &native_runner);
  atm::FlexExecutor native(&native_runner);
  auto baseline = native.Execute(spec);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  Rng r2(abort_seed);
  ScriptedRunner wf_scripted;
  configure(&r2, &wf_scripted);
  Recorder recorder(&wf_scripted);

  wf::DefinitionStore store;
  auto translation = exo::TranslateFlex(spec, &store);
  ASSERT_TRUE(translation.ok())
      << translation.status().ToString() << "\n" << spec.root().ToString();
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindFlexPrograms(spec, store, &recorder, &programs).ok());
  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(translation->root_process);
  ASSERT_TRUE(id.ok()) << id.status().ToString() << "\n"
                       << spec.root().ToString();

  auto out = engine.OutputOf(*id);
  ASSERT_TRUE(out.ok());
  bool committed = out->Get("RC")->as_long() == 0;
  EXPECT_EQ(committed, baseline->committed) << spec.root().ToString();
  EXPECT_EQ(recorder.effective_, baseline->effective)
      << spec.root().ToString();
  EXPECT_EQ(recorder.compensations_,
            Select(baseline->trace, atm::TraceAction::kCompensated))
      << spec.root().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlexPropertyTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace exotica
