// Figure 5 reproduction: the Exotica/FMTM pipeline — user spec → format
// check → translation → FDL emission → FDL import (syntax) → semantic
// validation → executable template → runtime instance.

#include <gtest/gtest.h>

#include "exotica/fmtm.h"
#include "exotica/programs.h"
#include "fdl/parser.h"
#include "wfrt/engine.h"

namespace exotica {
namespace {

constexpr const char* kSagaSpec = R"(
SAGA 'Trip'
  STEP 'Flight' PROGRAM 'reserve_flight' COMPENSATION 'cancel_flight';
  STEP 'Hotel';
  STEP 'Car';
END 'Trip'
)";

constexpr const char* kFlexSpec = R"(
FLEXIBLE 'Fig3'
  SEQ
    SUB 'T1' COMPENSATABLE;
    SUB 'T2' PIVOT;
    ALT
      SEQ
        SUB 'T4' PIVOT;
        ALT
          SEQ
            SUB 'T5' COMPENSATABLE;
            SUB 'T6' COMPENSATABLE;
            SUB 'T8' PIVOT;
          END
          SUB 'T7' RETRIABLE;
        END
      END
      SUB 'T3' RETRIABLE;
    END
  END
END 'Fig3'
)";

TEST(FmtmParseTest, SagaSpecParses) {
  auto out = exo::ParseSpec(kSagaSpec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->kind, exo::ModelKind::kSaga);
  ASSERT_TRUE(out->saga.has_value());
  EXPECT_EQ(out->saga->name(), "Trip");
  ASSERT_EQ(out->saga->steps().size(), 3u);
  EXPECT_EQ(out->saga->steps()[0].program, "reserve_flight");
  EXPECT_EQ(out->saga->steps()[0].compensation_program, "cancel_flight");
  EXPECT_TRUE(out->saga->IsLinear());
}

TEST(FmtmParseTest, SagaPartialOrderClauses) {
  constexpr const char* kSpec = R"(
SAGA 'Par'
  STEP 'A' FIRST;
  STEP 'B' FIRST;
  STEP 'C' AFTER 'A', 'B';
END 'Par')";
  auto out = exo::ParseSpec(kSpec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(out->saga.has_value());
  EXPECT_FALSE(out->saga->IsLinear());
  EXPECT_EQ(out->saga->steps()[2].predecessors,
            (std::vector<std::string>{"A", "B"}));
}

TEST(FmtmParseTest, FlexSpecParsesAndValidates) {
  auto out = exo::ParseSpec(kFlexSpec);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->kind, exo::ModelKind::kFlexible);
  ASSERT_TRUE(out->flex.has_value());
  EXPECT_EQ(out->flex->root().ToString(),
            atm::MakeFigure3Spec().root().ToString());
}

TEST(FmtmParseTest, FormatCheckRejectsIllFormedModels) {
  // The pre-processor's format check (paper §5): a flexible transaction
  // violating the pivot rules is refused before any translation.
  constexpr const char* kBad = R"(
FLEXIBLE 'Bad'
  SEQ
    SUB 'P1' PIVOT;
    SUB 'P2' PIVOT;
  END
END 'Bad')";
  EXPECT_TRUE(exo::ParseSpec(kBad).status().IsValidationError());

  constexpr const char* kDupSaga = R"(
SAGA 'Dup'
  STEP 'T1';
  STEP 'T1';
END 'Dup')";
  EXPECT_TRUE(exo::ParseSpec(kDupSaga).status().IsValidationError());
}

TEST(FmtmParseTest, SyntaxErrorsReported) {
  EXPECT_TRUE(exo::ParseSpec("SAGA missing quotes END").status().IsParseError());
  EXPECT_TRUE(exo::ParseSpec("FLEXIBLE 'X' SUB 'a' END 'Y'").status()
                  .IsParseError());
  EXPECT_TRUE(exo::ParseSpec("").status().IsParseError());
  EXPECT_TRUE(
      exo::ParseSpec("SAGA 'S' STEP 'T1'; END 'S' extra").status().IsParseError());
  EXPECT_TRUE(exo::ParseSpec("FLEXIBLE 'X' SUB 'a' PIVOT RETRIABLE; END 'X'")
                  .status()
                  .IsParseError());
}

TEST(FmtmPipelineTest, SagaSpecCompilesToRunnableProcess) {
  wf::DefinitionStore store;
  auto out = exo::CompileSpec(kSagaSpec, &store);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->root_process, "Trip");
  EXPECT_TRUE(store.HasProcess("Trip"));
  EXPECT_TRUE(store.HasProcess("Trip_FWD"));
  EXPECT_TRUE(store.HasProcess("Trip_CMP"));
  EXPECT_FALSE(out->fdl.empty());

  // The emitted FDL is itself parseable (it went through import already,
  // but pin the property explicitly).
  EXPECT_TRUE(fdl::ParseDocument(out->fdl).ok());

  // And the compiled template actually runs: Hotel refuses, Flight
  // compensates.
  atm::ScriptedRunner runner;
  runner.AlwaysAbort("Hotel");
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(*out->saga, store, &runner, &programs).ok());
  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion("Trip");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto output = engine.OutputOf(*id);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->Get("RC")->as_long(), 1);           // saga aborted
  EXPECT_EQ(output->Get("Compensated")->as_long(), 1);  // compensation ran
}

TEST(FmtmPipelineTest, FlexSpecCompilesToRunnableProcess) {
  wf::DefinitionStore store;
  auto out = exo::CompileSpec(kFlexSpec, &store);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->root_process, "Fig3");
  EXPECT_TRUE(store.HasProcess("Fig3"));

  atm::ScriptedRunner runner;
  runner.AlwaysAbort("T8");  // the appendix scenario
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindFlexPrograms(*out->flex, store, &runner, &programs).ok());
  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion("Fig3");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(engine.OutputOf(*id)->Get("RC")->as_long(), 0);  // p2 committed
}

TEST(FmtmPipelineTest, TwoSpecsShareCommonDefinitions) {
  wf::DefinitionStore store;
  ASSERT_TRUE(exo::CompileSpec(kSagaSpec, &store).ok());
  // A second model in the same store: shared types (TxnResult, ...) are
  // tolerated; new processes register cleanly.
  auto out = exo::CompileSpec(kFlexSpec, &store);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(store.HasProcess("Trip"));
  EXPECT_TRUE(store.HasProcess("Fig3"));
}

TEST(FmtmPipelineTest, NameCollisionSurfaces) {
  wf::DefinitionStore store;
  ASSERT_TRUE(exo::CompileSpec(kSagaSpec, &store).ok());
  EXPECT_TRUE(exo::CompileSpec(kSagaSpec, &store).status().IsAlreadyExists());
}

}  // namespace
}  // namespace exotica
