// Structural checks on the Figure-3 translation: the registered process
// inventory and graph shapes follow rules 1-7 (not just the observable
// behaviour, which flex_workflow_test covers).

#include <gtest/gtest.h>

#include "atm/flex.h"
#include "exotica/blocks.h"
#include "exotica/flex_translate.h"
#include "wf/process.h"

namespace exotica {
namespace {

class FlexStructureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = exo::TranslateFlex(atm::MakeFigure3Spec(), &store_);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    translation_ = *t;
  }

  wf::DefinitionStore store_;
  exo::FlexTranslation translation_;
};

TEST_F(FlexStructureTest, ProcessInventory) {
  // Root sequence, its compensation, the nested alternatives, and the
  // grouped compensatable run {T5, T6} with its block pair.
  for (const char* name : {
           "Figure3",                // root Seq
           "Figure3_CMP",            // root compensation (T1 and deeper)
           "Figure3_B3",             // Alt(p1-subtree, T3)
           "Figure3_B3_P",           // Seq[T4, Alt(...)]
           "Figure3_B3_F",           // retriable T3
           "Figure3_B3_P_B2",        // Alt(Seq[T5,T6,T8], T7)
           "Figure3_B3_P_B2_P",      // Seq[T5,T6,T8]
           "Figure3_B3_P_B2_P_R1F",  // forward block of the {T5,T6} run
           "Figure3_B3_P_B2_P_R1C",  // its compensation block
           "Figure3_B3_P_B2_F",      // retriable T7
       }) {
    EXPECT_TRUE(store_.HasProcess(name)) << name;
  }
  // Every registered process is reported in the translation result.
  for (const std::string& p : translation_.processes) {
    EXPECT_TRUE(store_.HasProcess(p)) << p;
  }
}

TEST_F(FlexStructureTest, RootSequenceShape) {
  auto root = store_.FindProcess("Figure3");
  ASSERT_TRUE(root.ok());
  // Elements: run {T1}, pivot T2, Alt block; plus _FAIL, _CB, _CLEAR.
  EXPECT_TRUE((*root)->HasActivity("_R1"));
  EXPECT_TRUE((*root)->HasActivity("T2"));
  EXPECT_TRUE((*root)->HasActivity("_B3"));
  EXPECT_TRUE((*root)->HasActivity("_FAIL"));
  EXPECT_TRUE((*root)->HasActivity("_CB"));
  EXPECT_TRUE((*root)->HasActivity("_CLEAR"));

  // Rule 3: the pivot's outgoing connectors branch on commit vs abort.
  auto outs = (*root)->OutgoingControl("T2");
  ASSERT_EQ(outs.size(), 2u);
  std::set<std::string> conds;
  for (size_t i : outs) {
    conds.insert((*root)->control_connectors()[i].condition.source());
  }
  EXPECT_TRUE(conds.count("RC = 0"));
  EXPECT_TRUE(conds.count("RC <> 0"));

  // The failure trigger OR-joins every element.
  auto fail = (*root)->FindActivity("_FAIL");
  ASSERT_TRUE(fail.ok());
  EXPECT_EQ((*fail)->join, wf::JoinKind::kOr);
  EXPECT_EQ((*root)->IncomingControl("_FAIL").size(), 3u);
}

TEST_F(FlexStructureTest, RetriableLeavesCarryExitConditions) {
  // Rule 4: T3 and T7 loop until commit via their exit conditions.
  for (const char* process : {"Figure3_B3_F", "Figure3_B3_P_B2_F"}) {
    auto p = store_.FindProcess(process);
    ASSERT_TRUE(p.ok()) << process;
    ASSERT_EQ((*p)->activities().size(), 1u);
    EXPECT_EQ((*p)->activities()[0].exit_condition.source(), "RC = 0")
        << process;
  }
}

TEST_F(FlexStructureTest, RunBlockPairMatchesFigure2) {
  // The {T5, T6} run: forward block chains on commit with a _DONE
  // sentinel; the compensation block has the NOP trigger, State-gated
  // connectors, and retried compensations.
  auto fwd = store_.FindProcess("Figure3_B3_P_B2_P_R1F");
  ASSERT_TRUE(fwd.ok());
  EXPECT_TRUE((*fwd)->HasActivity("T5"));
  EXPECT_TRUE((*fwd)->HasActivity("T6"));
  EXPECT_TRUE((*fwd)->HasActivity("_DONE"));

  auto cmp = store_.FindProcess("Figure3_B3_P_B2_P_R1C");
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE((*cmp)->HasActivity("_NOP"));
  EXPECT_TRUE((*cmp)->HasActivity("C_T5"));
  EXPECT_TRUE((*cmp)->HasActivity("C_T6"));
  // Reverse order: C_T6 precedes C_T5.
  EXPECT_TRUE((*cmp)->HasControlPath("C_T6", "C_T5"));
  EXPECT_FALSE((*cmp)->HasControlPath("C_T5", "C_T6"));
  // State-gated triggers and retried compensations.
  bool found_gate = false;
  for (const wf::ControlConnector& c : (*cmp)->control_connectors()) {
    if (c.from == "_NOP" && c.to == "C_T5") {
      EXPECT_EQ(c.condition.source(), "State_T5 = 1");
      found_gate = true;
    }
  }
  EXPECT_TRUE(found_gate);
  auto c5 = (*cmp)->FindActivity("C_T5");
  ASSERT_TRUE(c5.ok());
  EXPECT_EQ((*c5)->exit_condition.source(), "RC = 0");
  EXPECT_EQ((*c5)->join, wf::JoinKind::kOr);
}

TEST_F(FlexStructureTest, StateTypesFlattenCompensatableLeaves) {
  // The root state type carries exactly the compensatable leaves.
  auto type = store_.types().Find("Figure3_State");
  ASSERT_TRUE(type.ok());
  std::set<std::string> members;
  for (const data::Member& m : (*type)->members()) members.insert(m.name);
  EXPECT_EQ(members, (std::set<std::string>{"RC", "State_T1", "State_T5",
                                            "State_T6"}));
}

}  // namespace
}  // namespace exotica
