// Determinism regression anchors.
//
// The engine promises byte-identical audit traces for identical inputs
// (single-threaded FIFO navigation). These goldens were captured from the
// pre-NavigationPlan engine, so they also pin the refactor to the exact
// event order of the name-keyed implementation: saga compensation
// (Figure 2, T3 aborts) and the flexible transaction's alternative path
// (Figure 3/4, T5 aborts forces p2).
//
// The journal golden below was written by the pre-refactor FileJournal;
// replaying it proves the on-disk format is unchanged across the dense-id
// and group-commit work.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "atm/flex.h"
#include "atm/saga.h"
#include "atm/subtxn.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"

namespace exotica {
namespace {

const char* const kSagaGolden[] = {
    "wf-1|wf-1:instance-started",
    "wf-1|FB:ready",
    "wf-1|FB:started",
    "wf-2|wf-2:instance-started",
    "wf-2|T1:ready",
    "wf-2|T1:started",
    "wf-2|T1:finished",
    "wf-2|T1:terminated",
    "wf-2|T1->T2:true",
    "wf-2|T2:ready",
    "wf-2|T2:started",
    "wf-2|T2:finished",
    "wf-2|T2:terminated",
    "wf-2|T2->T3:true",
    "wf-2|T3:ready",
    "wf-2|T3:started",
    "wf-2|T3:finished",
    "wf-2|T3:terminated",
    "wf-2|T3->_DONE:false",
    "wf-2|_DONE:dead",
    "wf-2|wf-2:instance-finished",
    "wf-1|FB:finished",
    "wf-1|FB:terminated",
    "wf-1|FB->CB:true",
    "wf-1|CB:ready",
    "wf-1|CB:started",
    "wf-3|wf-3:instance-started",
    "wf-3|_NOP:ready",
    "wf-3|_NOP:started",
    "wf-3|_NOP:finished",
    "wf-3|_NOP:terminated",
    "wf-3|_NOP->_CDONE:true",
    "wf-3|_NOP->C_T1:true",
    "wf-3|_NOP->C_T2:true",
    "wf-3|_NOP->C_T3:false",
    "wf-3|_CDONE:ready",
    "wf-3|C_T3:dead",
    "wf-3|C_T3->C_T2:false",
    "wf-3|C_T2:ready",
    "wf-3|_CDONE:started",
    "wf-3|_CDONE:finished",
    "wf-3|_CDONE:terminated",
    "wf-3|C_T2:started",
    "wf-3|C_T2:finished",
    "wf-3|C_T2:terminated",
    "wf-3|C_T2->C_T1:true",
    "wf-3|C_T1:ready",
    "wf-3|C_T1:started",
    "wf-3|C_T1:finished",
    "wf-3|C_T1:terminated",
    "wf-3|wf-3:instance-finished",
    "wf-1|CB:finished",
    "wf-1|CB:terminated",
    "wf-1|wf-1:instance-finished",
};
const char* const kFlexGolden[] = {
    "wf-1|wf-1:instance-started",
    "wf-1|_R1:ready",
    "wf-1|_R1:started",
    "wf-2|wf-2:instance-started",
    "wf-2|T1:ready",
    "wf-2|T1:started",
    "wf-2|T1:finished",
    "wf-2|T1:terminated",
    "wf-2|T1->_DONE:true",
    "wf-2|_DONE:ready",
    "wf-2|_DONE:started",
    "wf-2|_DONE:finished",
    "wf-2|_DONE:terminated",
    "wf-2|wf-2:instance-finished",
    "wf-1|_R1:finished",
    "wf-1|_R1:terminated",
    "wf-1|_R1->T2:true",
    "wf-1|_R1->_FAIL:false",
    "wf-1|T2:ready",
    "wf-1|T2:started",
    "wf-1|T2:finished",
    "wf-1|T2:terminated",
    "wf-1|T2->_B3:true",
    "wf-1|T2->_FAIL:false",
    "wf-1|_B3:ready",
    "wf-1|_B3:started",
    "wf-3|wf-3:instance-started",
    "wf-3|_P:ready",
    "wf-3|_P:started",
    "wf-4|wf-4:instance-started",
    "wf-4|T4:ready",
    "wf-4|T4:started",
    "wf-4|T4:finished",
    "wf-4|T4:terminated",
    "wf-4|T4->_B2:true",
    "wf-4|T4->_FAIL:false",
    "wf-4|_B2:ready",
    "wf-4|_B2:started",
    "wf-5|wf-5:instance-started",
    "wf-5|_P:ready",
    "wf-5|_P:started",
    "wf-6|wf-6:instance-started",
    "wf-6|_R1:ready",
    "wf-6|_R1:started",
    "wf-7|wf-7:instance-started",
    "wf-7|T5:ready",
    "wf-7|T5:started",
    "wf-7|T5:finished",
    "wf-7|T5:terminated",
    "wf-7|T5->T6:false",
    "wf-7|T6:dead",
    "wf-7|T6->_DONE:false",
    "wf-7|_DONE:dead",
    "wf-7|wf-7:instance-finished",
    "wf-6|_R1:finished",
    "wf-6|_R1:terminated",
    "wf-6|_R1->T8:false",
    "wf-6|_R1->_FAIL:true",
    "wf-6|T8:dead",
    "wf-6|T8->_FAIL:false",
    "wf-6|_FAIL:ready",
    "wf-6|_FAIL:started",
    "wf-6|_FAIL:finished",
    "wf-6|_FAIL:terminated",
    "wf-6|_FAIL->_CB:true",
    "wf-6|_CB:ready",
    "wf-6|_CB:started",
    "wf-8|wf-8:instance-started",
    "wf-8|_C0:ready",
    "wf-8|_C0:started",
    "wf-9|wf-9:instance-started",
    "wf-9|_NOP:ready",
    "wf-9|_NOP:started",
    "wf-9|_NOP:finished",
    "wf-9|_NOP:terminated",
    "wf-9|_NOP->_CDONE:true",
    "wf-9|_NOP->C_T5:false",
    "wf-9|_NOP->C_T6:false",
    "wf-9|_CDONE:ready",
    "wf-9|C_T6:dead",
    "wf-9|C_T6->C_T5:false",
    "wf-9|C_T5:dead",
    "wf-9|_CDONE:started",
    "wf-9|_CDONE:finished",
    "wf-9|_CDONE:terminated",
    "wf-9|wf-9:instance-finished",
    "wf-8|_C0:finished",
    "wf-8|_C0:terminated",
    "wf-8|wf-8:instance-finished",
    "wf-6|_CB:finished",
    "wf-6|_CB:terminated",
    "wf-6|_CB->_CLEAR:true",
    "wf-6|_CLEAR:ready",
    "wf-6|_CLEAR:started",
    "wf-6|_CLEAR:finished",
    "wf-6|_CLEAR:terminated",
    "wf-6|wf-6:instance-finished",
    "wf-5|_P:finished",
    "wf-5|_P:terminated",
    "wf-5|_P->_F:true",
    "wf-5|_F:ready",
    "wf-5|_F:started",
    "wf-10|wf-10:instance-started",
    "wf-10|T7:ready",
    "wf-10|T7:started",
    "wf-10|T7:finished",
    "wf-10|T7:terminated",
    "wf-10|wf-10:instance-finished",
    "wf-5|_F:finished",
    "wf-5|_F:terminated",
    "wf-5|wf-5:instance-finished",
    "wf-4|_B2:finished",
    "wf-4|_B2:terminated",
    "wf-4|_B2->_FAIL:false",
    "wf-4|_FAIL:dead",
    "wf-4|_FAIL->_CB:false",
    "wf-4|_CB:dead",
    "wf-4|_CB->_CLEAR:false",
    "wf-4|_CLEAR:dead",
    "wf-4|wf-4:instance-finished",
    "wf-3|_P:finished",
    "wf-3|_P:terminated",
    "wf-3|_P->_F:false",
    "wf-3|_F:dead",
    "wf-3|wf-3:instance-finished",
    "wf-1|_B3:finished",
    "wf-1|_B3:terminated",
    "wf-1|_B3->_FAIL:false",
    "wf-1|_FAIL:dead",
    "wf-1|_FAIL->_CB:false",
    "wf-1|_CB:dead",
    "wf-1|_CB->_CLEAR:false",
    "wf-1|_CLEAR:dead",
    "wf-1|wf-1:instance-finished",
};

std::vector<std::string> TraceOf(const wfrt::Engine& engine) {
  std::vector<std::string> out;
  for (const auto& e : engine.audit().events()) {
    out.push_back(e.instance + "|" + e.Compact());
  }
  return out;
}

template <size_t N>
std::vector<std::string> AsVector(const char* const (&rows)[N]) {
  return std::vector<std::string>(rows, rows + N);
}

TEST(DeterminismTest, SagaCompensationTraceMatchesGolden) {
  atm::SagaSpec spec("S");
  for (int i = 1; i <= 3; ++i) spec.Then("T" + std::to_string(i));
  atm::ScriptedRunner runner;
  runner.AlwaysAbort("T3");

  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());

  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(t->root_process);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(TraceOf(engine), AsVector(kSagaGolden));
}

TEST(DeterminismTest, FlexAlternativePathTraceMatchesGolden) {
  atm::ScriptedRunner runner;
  runner.AlwaysAbort("T5");

  wf::DefinitionStore store;
  auto t = exo::TranslateFlex(atm::MakeFigure3Spec(), &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(
      exo::BindFlexPrograms(atm::MakeFigure3Spec(), store, &runner, &programs)
          .ok());

  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(t->root_process);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(TraceOf(engine), AsVector(kFlexGolden));
}

// Byte image of the saga-compensation journal as written by the
// pre-refactor engine + FileJournal (LinearSaga(3), T3 always aborts).
const char kSeedJournal[] = R"jrn(0	0	wf-1			0	v1:S	
1	1	wf-1	FB		0		
2	2	wf-1	FB		0	1	
3	0	wf-2	FB	wf-1	0	v1:S_FWD	
4	1	wf-2	T1		0		
5	2	wf-2	T1		0	1	
6	3	wf-2	T1		0	RC=0\nCommitted=1\n	
7	4	wf-2	T1		0		
8	7	wf-2	T1	T2	1		
9	1	wf-2	T2		0		
10	2	wf-2	T2		0	1	
11	3	wf-2	T2		0	RC=0\nCommitted=1\n	
12	4	wf-2	T2		0		
13	7	wf-2	T2	T3	1		
14	1	wf-2	T3		0		
15	2	wf-2	T3		0	1	
16	3	wf-2	T3		0	RC=1\nCommitted=0\n	
17	4	wf-2	T3		0		
18	7	wf-2	T3	_DONE	0		
19	6	wf-2	_DONE		0		
20	8	wf-2			0	State_T1=1\nState_T2=1\nState_T3=0\n	
21	3	wf-1	FB		0	State_T1=1\nState_T2=1\nState_T3=0\n	
22	4	wf-1	FB		0		
23	7	wf-1	FB	CB	1		
24	1	wf-1	CB		0		
25	2	wf-1	CB		0	1	
26	0	wf-3	CB	wf-1	0	v1:S_CMP	State_T1=1\nState_T2=1\nState_T3=0\n
27	1	wf-3	_NOP		0		
28	2	wf-3	_NOP		0	1	
29	3	wf-3	_NOP		0	RC=1\nState_T1=1\nState_T2=1\nState_T3=0\n	
30	4	wf-3	_NOP		0		
31	7	wf-3	_NOP	_CDONE	1		
32	7	wf-3	_NOP	C_T1	1		
33	7	wf-3	_NOP	C_T2	1		
34	7	wf-3	_NOP	C_T3	0		
35	1	wf-3	_CDONE		0		
36	6	wf-3	C_T3		0		
37	7	wf-3	C_T3	C_T2	0		
38	1	wf-3	C_T2		0		
39	2	wf-3	_CDONE		0	1	
40	3	wf-3	_CDONE		0	RC=1\n	
41	4	wf-3	_CDONE		0		
42	2	wf-3	C_T2		0	1	
43	3	wf-3	C_T2		0	RC=0\nCommitted=1\n	
44	4	wf-3	C_T2		0		
45	7	wf-3	C_T2	C_T1	1		
46	1	wf-3	C_T1		0		
47	2	wf-3	C_T1		0	1	
48	3	wf-3	C_T1		0	RC=0\nCommitted=1\n	
49	4	wf-3	C_T1		0		
50	8	wf-3			0	RC=1\n	
51	3	wf-1	CB		0	RC=1\n	
52	4	wf-1	CB		0		
53	8	wf-1			0	RC=1\nCompensated=1\n	
)jrn";

TEST(DeterminismTest, PreRefactorJournalReplays) {
  std::string path = ::testing::TempDir() + "/exo_seed_compat.log";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(kSeedJournal, sizeof(kSeedJournal) - 1);
  }

  atm::SagaSpec spec("S");
  for (int i = 1; i <= 3; ++i) spec.Then("T" + std::to_string(i));
  atm::ScriptedRunner runner;
  runner.AlwaysAbort("T3");
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(spec, &store);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(exo::BindSagaPrograms(spec, store, &runner, &programs).ok());

  auto journal = wfjournal::FileJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  wfrt::Engine engine(&store, &programs);
  ASSERT_TRUE(engine.AttachJournal(journal->get()).ok());
  Status rec = engine.Recover();
  ASSERT_TRUE(rec.ok()) << rec.ToString();
  ASSERT_TRUE(engine.Run().ok());

  // The journaled run had already finished: compensated, not committed.
  EXPECT_TRUE(engine.IsFinished("wf-1"));
  EXPECT_EQ(engine.stats().instances_started, 3u);
  auto out = engine.OutputOf("wf-1");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->Get("RC")->as_long(), 0);
  EXPECT_EQ(out->Get("Compensated")->as_long(), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exotica
