// Figure 4 reproduction: the ZNBB94 flexible transaction translated by
// rules 1-7, executed on the workflow engine, compared against the native
// flexible-transaction executor across every abort pattern.

#include <gtest/gtest.h>

#include "atm/flex.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "wfrt/engine.h"

namespace exotica {
namespace {

using atm::FlexExecutor;
using atm::FlexSpec;
using atm::FlexStep;
using atm::ScriptedRunner;

struct WorkflowFlexRun {
  bool committed = false;
  std::vector<std::string> committed_subs;  // in commit order, minus undone
  std::vector<std::string> compensations;   // in execution order
};

// Recording wrapper: tracks commits, compensations, and the net effect.
class Recorder : public atm::SubTxnRunner {
 public:
  explicit Recorder(ScriptedRunner* inner) : inner_(inner) {}

  Result<bool> Run(const std::string& name) override {
    EXO_ASSIGN_OR_RETURN(bool committed, inner_->Run(name));
    if (committed) effective_.push_back(name);
    return committed;
  }
  Result<bool> Compensate(const std::string& name) override {
    EXO_ASSIGN_OR_RETURN(bool done, inner_->Compensate(name));
    if (done) {
      compensations_.push_back(name);
      for (auto it = effective_.rbegin(); it != effective_.rend(); ++it) {
        if (*it == name) {
          effective_.erase(std::next(it).base());
          break;
        }
      }
    }
    return done;
  }

  const std::vector<std::string>& effective() const { return effective_; }
  const std::vector<std::string>& compensations() const {
    return compensations_;
  }

 private:
  ScriptedRunner* inner_;
  std::vector<std::string> effective_;
  std::vector<std::string> compensations_;
};

WorkflowFlexRun RunFlexWorkflow(const FlexSpec& spec, ScriptedRunner* runner) {
  WorkflowFlexRun out;
  wf::DefinitionStore store;
  auto translation = exo::TranslateFlex(spec, &store);
  EXPECT_TRUE(translation.ok()) << translation.status().ToString();
  if (!translation.ok()) return out;

  Recorder recorder(runner);
  wfrt::ProgramRegistry programs;
  EXPECT_TRUE(exo::BindFlexPrograms(spec, store, &recorder, &programs).ok());

  wfrt::Engine engine(&store, &programs);
  auto id = engine.RunToCompletion(translation->root_process);
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (!id.ok()) return out;

  auto output = engine.OutputOf(*id);
  EXPECT_TRUE(output.ok());
  out.committed = output->Get("RC")->as_long() == 0;
  out.committed_subs = recorder.effective();
  out.compensations = recorder.compensations();
  return out;
}

struct AbortPattern {
  const char* name;
  std::vector<std::string> always_abort;
  std::vector<std::pair<std::string, int>> abort_first;
};

class FlexFigure4Test : public ::testing::TestWithParam<AbortPattern> {};

TEST_P(FlexFigure4Test, WorkflowMatchesNativeExecutor) {
  const AbortPattern& p = GetParam();

  auto configure = [&](ScriptedRunner* r) {
    for (const auto& name : p.always_abort) r->AlwaysAbort(name);
    for (const auto& [name, n] : p.abort_first) r->AbortFirst(name, n);
  };

  // Native baseline.
  ScriptedRunner native_runner;
  configure(&native_runner);
  FlexExecutor native(&native_runner);
  auto baseline = native.Execute(atm::MakeFigure3Spec());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Workflow implementation.
  ScriptedRunner wf_runner;
  configure(&wf_runner);
  WorkflowFlexRun run = RunFlexWorkflow(atm::MakeFigure3Spec(), &wf_runner);

  EXPECT_EQ(run.committed, baseline->committed) << p.name;
  EXPECT_EQ(run.committed_subs, baseline->effective) << p.name;
  // Compensation sets must match (order within a parallel-free run is
  // reverse commit order in both implementations).
  auto native_comps = Select(baseline->trace, atm::TraceAction::kCompensated);
  EXPECT_EQ(run.compensations, native_comps) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    AbortPatterns, FlexFigure4Test,
    ::testing::Values(
        AbortPattern{"none", {}, {}},                      // p1
        AbortPattern{"t1", {"T1"}, {}},                    // global abort
        AbortPattern{"t2", {"T2"}, {}},                    // compensate T1
        AbortPattern{"t4", {"T4"}, {}},                    // p3
        AbortPattern{"t4_t3_retries", {"T4"}, {{"T3", 2}}},
        AbortPattern{"t5", {"T5"}, {}},                    // p2
        AbortPattern{"t6", {"T6"}, {}},                    // p2, comp T5
        AbortPattern{"t8", {"T8"}, {}},                    // p2, comp T5,T6
        AbortPattern{"t8_t7_retries", {"T8"}, {{"T7", 3}}},
        AbortPattern{"t5_transient", {}, {{"T5", 1}}},     // p2 anyway
        AbortPattern{"t2_transient", {}, {{"T2", 1}}}),    // aborts anyway
    [](const ::testing::TestParamInfo<AbortPattern>& info) {
      return info.param.name;
    });

TEST(FlexWorkflowTest, AppendixTraceForT8Abort) {
  // The appendix narrative: T1, T2, T4 commit; T5, T6 commit; T8 aborts;
  // T5^-1 and T6^-1 run; then T7 runs until it commits.
  ScriptedRunner runner;
  runner.AlwaysAbort("T8");
  WorkflowFlexRun run = RunFlexWorkflow(atm::MakeFigure3Spec(), &runner);
  EXPECT_TRUE(run.committed);
  EXPECT_EQ(run.committed_subs,
            (std::vector<std::string>{"T1", "T2", "T4", "T7"}));
  EXPECT_EQ(run.compensations, (std::vector<std::string>{"T6", "T5"}));
}

TEST(FlexWorkflowTest, TranslationRejectsIllFormedSpec) {
  std::vector<atm::FlexStepPtr> steps;
  steps.push_back(FlexStep::Pivot("P1"));
  steps.push_back(FlexStep::Pivot("P2"));
  FlexSpec bad("bad", FlexStep::Seq(std::move(steps)));
  wf::DefinitionStore store;
  EXPECT_TRUE(exo::TranslateFlex(bad, &store).status().IsValidationError());
}

TEST(FlexWorkflowTest, BareSubAndNestedAltShapes) {
  // A minimal Alt of two bare subs: primary pivot, fallback retriable.
  FlexSpec spec("Tiny",
                FlexStep::Alt(FlexStep::Pivot("A"), FlexStep::Retriable("B")));
  ASSERT_TRUE(spec.Validate().ok());

  {
    ScriptedRunner runner;  // A commits
    WorkflowFlexRun run = RunFlexWorkflow(spec, &runner);
    EXPECT_TRUE(run.committed);
    EXPECT_EQ(run.committed_subs, (std::vector<std::string>{"A"}));
  }
  {
    ScriptedRunner runner;
    runner.AlwaysAbort("A");
    runner.AbortFirst("B", 2);
    WorkflowFlexRun run = RunFlexWorkflow(spec, &runner);
    EXPECT_TRUE(run.committed);
    EXPECT_EQ(run.committed_subs, (std::vector<std::string>{"B"}));
    EXPECT_EQ(runner.attempts("B"), 3);
  }
}

TEST(FlexWorkflowTest, NestedCompositeCompensatedByParentFailure) {
  // The nested-saga shape: Seq[A1, Seq[B1,B2], A2] with every leaf
  // compensatable. A2's abort must undo the committed COMPOSITE child too
  // — the parent's compensation recurses into the child's compensation
  // process via the flattened State image.
  std::vector<atm::FlexStepPtr> child;
  child.push_back(FlexStep::Compensatable("B1"));
  child.push_back(FlexStep::Compensatable("B2"));
  std::vector<atm::FlexStepPtr> parent;
  parent.push_back(FlexStep::Compensatable("A1"));
  parent.push_back(FlexStep::Seq(std::move(child)));
  parent.push_back(FlexStep::Compensatable("A2"));
  FlexSpec spec("Nested", FlexStep::Seq(std::move(parent)));
  ASSERT_TRUE(spec.Validate().ok());

  ScriptedRunner runner;
  runner.AlwaysAbort("A2");
  WorkflowFlexRun run = RunFlexWorkflow(spec, &runner);
  EXPECT_FALSE(run.committed);
  EXPECT_TRUE(run.committed_subs.empty());
  EXPECT_EQ(run.compensations, (std::vector<std::string>{"B2", "B1", "A1"}));

  // And mid-child failure compensates only the committed prefix.
  ScriptedRunner runner2;
  runner2.AlwaysAbort("B2");
  WorkflowFlexRun run2 = RunFlexWorkflow(spec, &runner2);
  EXPECT_FALSE(run2.committed);
  EXPECT_EQ(run2.compensations, (std::vector<std::string>{"B1", "A1"}));
}

TEST(FlexWorkflowTest, CommittedAlternativeCompensatedByLaterFailure) {
  // Seq[Alt(F, T), P]: the alternative commits via its primary F; the
  // pivot P then aborts, and F must be compensated through the Alt's
  // composite compensation process.
  std::vector<atm::FlexStepPtr> steps;
  steps.push_back(FlexStep::Alt(FlexStep::Compensatable("F"),
                                FlexStep::Sub("T", true, true)));
  steps.push_back(FlexStep::Pivot("P"));
  FlexSpec spec("AltFirst", FlexStep::Seq(std::move(steps)));
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();

  {
    ScriptedRunner runner;
    runner.AlwaysAbort("P");
    WorkflowFlexRun run = RunFlexWorkflow(spec, &runner);
    EXPECT_FALSE(run.committed);
    EXPECT_EQ(run.compensations, (std::vector<std::string>{"F"}));
    EXPECT_TRUE(run.committed_subs.empty());
  }
  {
    // F aborts; the compensatable+retriable fallback T commits; then P
    // aborts: T (not F) is compensated.
    ScriptedRunner runner;
    runner.AlwaysAbort("F");
    runner.AlwaysAbort("P");
    WorkflowFlexRun run = RunFlexWorkflow(spec, &runner);
    EXPECT_FALSE(run.committed);
    EXPECT_EQ(run.compensations, (std::vector<std::string>{"T"}));
  }
}

TEST(FlexWorkflowTest, CompensatableRetriableJoinsTheRun) {
  // Seq[C1, C2, R, C3, P]: R is compensatable+retriable, so the whole
  // prefix is one compensatable story. A pivot abort at the end
  // compensates in reverse commit order across both grouped runs.
  std::vector<atm::FlexStepPtr> steps;
  steps.push_back(FlexStep::Compensatable("C1"));
  steps.push_back(FlexStep::Compensatable("C2"));
  steps.push_back(FlexStep::Sub("R", /*compensatable=*/true, /*retriable=*/true));
  steps.push_back(FlexStep::Compensatable("C3"));
  steps.push_back(FlexStep::Pivot("P"));
  FlexSpec spec("Runs", FlexStep::Seq(std::move(steps)));
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();

  ScriptedRunner runner;
  runner.AlwaysAbort("P");
  WorkflowFlexRun run = RunFlexWorkflow(spec, &runner);
  EXPECT_FALSE(run.committed);
  EXPECT_TRUE(run.committed_subs.empty());
  EXPECT_EQ(run.compensations,
            (std::vector<std::string>{"C3", "R", "C2", "C1"}));
}

}  // namespace
}  // namespace exotica
