#include "common/rng.h"

#include <gtest/gtest.h>

namespace exotica {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

TEST(RngTest, SkewedStaysInRangeAndSkews) {
  Rng rng(4);
  size_t low = 0;
  constexpr size_t kN = 100;
  for (int i = 0; i < 10000; ++i) {
    size_t v = rng.Skewed(kN, 0.9);
    ASSERT_LT(v, kN);
    if (v < kN / 10) ++low;
  }
  // With strong skew most picks land in the low decile.
  EXPECT_GT(low, 5000u);
  EXPECT_EQ(rng.Skewed(1, 0.5), 0u);
}

}  // namespace
}  // namespace exotica
