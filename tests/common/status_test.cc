#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/result.h"

namespace exotica {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::NotFound("thing missing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "thing missing");
  EXPECT_EQ(st.ToString(), "NotFound: thing missing");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(StatusCode::kPending); ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), 15u);
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::IOError("disk on fire").WithContext("writing journal");
  EXPECT_EQ(st.message(), "writing journal: disk on fire");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, CopyIsCheapAndEqualSemantics) {
  Status a = Status::Aborted("x");
  Status b = a;
  EXPECT_TRUE(b.IsAborted());
  EXPECT_EQ(b.message(), "x");
}

Status Fails() { return Status::Timeout("too slow"); }
Status Propagates() {
  EXO_RETURN_NOT_OK(Fails());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates().IsTimeout());
}

Result<int> GiveInt(bool ok) {
  if (!ok) return Status::InvalidArgument("nope");
  return 41;
}

Result<int> UseInt(bool ok) {
  EXO_ASSIGN_OR_RETURN(int v, GiveInt(ok));
  return v + 1;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto good = UseInt(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  auto bad = UseInt(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(GiveInt(false).ValueOr(7), 7);
  EXPECT_EQ(GiveInt(true).ValueOr(7), 41);
}

TEST(ResultTest, MoveOnlyValues) {
  auto make = [](bool ok) -> Result<std::unique_ptr<int>> {
    if (!ok) return Status::NotFound("x");
    return std::make_unique<int>(5);
  };
  auto r = make(true);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace exotica
