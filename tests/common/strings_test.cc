#include "common/strings.h"

#include <gtest/gtest.h>

namespace exotica {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, CaseConversions) {
  EXPECT_EQ(ToUpper("MixedCase_1"), "MIXEDCASE_1");
  EXPECT_EQ(ToLower("MixedCase_1"), "mixedcase_1");
  EXPECT_TRUE(EqualsIgnoreCase("HeLLo", "hEllo"));
  EXPECT_FALSE(EqualsIgnoreCase("hello", "hello "));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("exo_nop_x", "exo_nop_"));
  EXPECT_FALSE(StartsWith("exo", "exo_nop_"));
  EXPECT_TRUE(EndsWith("a.log", ".log"));
  EXPECT_FALSE(EndsWith("log", ".log"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\rf";
  std::string out;
  ASSERT_TRUE(UnescapeQuoted(EscapeQuoted(nasty), &out));
  EXPECT_EQ(out, nasty);
}

TEST(StringsTest, UnescapeRejectsBadEscapes) {
  std::string out;
  EXPECT_FALSE(UnescapeQuoted("bad\\x", &out));
  EXPECT_FALSE(UnescapeQuoted("trailing\\", &out));
}

}  // namespace
}  // namespace exotica
