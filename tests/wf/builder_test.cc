#include "wf/builder.h"

#include <gtest/gtest.h>

namespace exotica::wf {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProgramDeclaration p;
    p.name = "prog";
    ASSERT_TRUE(store_.DeclareProgram(p).ok());
  }

  DefinitionStore store_;
};

TEST_F(BuilderTest, FluentConstructionProducesDefinition) {
  ProcessBuilder b(&store_, "trip", 2);
  b.Description("books a trip")
      .Program("Flight", "prog").WithDescription("reserve flight")
      .Program("Hotel", "prog").Manual().Role("clerk").OrJoin()
      .ExitWhen("RC = 0").NotifyAfter(500, "boss")
      .Connect("Flight", "Hotel", "RC = 0");
  auto p = b.Build();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->name(), "trip");
  EXPECT_EQ(p->version(), 2);
  EXPECT_EQ(p->activities().size(), 2u);
  const Activity& hotel = p->activities()[1];
  EXPECT_EQ(hotel.start_mode, StartMode::kManual);
  EXPECT_EQ(hotel.role, "clerk");
  EXPECT_EQ(hotel.join, JoinKind::kOr);
  EXPECT_EQ(hotel.exit_condition.source(), "RC = 0");
  EXPECT_EQ(hotel.notify_after_micros, 500);
  EXPECT_EQ(hotel.notify_role, "boss");
}

TEST_F(BuilderTest, FirstErrorWinsAndLaterCallsAreNoOps) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog");
  b.Program("A", "prog");  // duplicate: first error
  b.Connect("A", "Ghost");  // would be NotFound, but masked
  Status st = b.Register();
  EXPECT_TRUE(st.IsAlreadyExists()) << st.ToString();
}

TEST_F(BuilderTest, ModifierBeforeActivityFails) {
  ProcessBuilder b(&store_, "p");
  b.Manual();
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST_F(BuilderTest, BadConditionSurfacesAsParseError) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").ExitWhen("RC = ");
  EXPECT_TRUE(b.Build().status().IsParseError());

  ProcessBuilder b2(&store_, "p2");
  b2.Program("A", "prog").Program("B", "prog");
  b2.Connect("A", "B", "((");
  EXPECT_TRUE(b2.Build().status().IsParseError());
}

TEST_F(BuilderTest, RegisterPutsProcessInStore) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog");
  ASSERT_TRUE(b.Register().ok());
  EXPECT_TRUE(store_.HasProcess("p"));
  // Second registration collides.
  ProcessBuilder b2(&store_, "p");
  b2.Program("A", "prog");
  EXPECT_TRUE(b2.Register().IsAlreadyExists());
}

TEST_F(BuilderTest, ProgramShapesInheritedFromDeclaration) {
  data::StructType t("S");
  ASSERT_TRUE(t.AddScalar("X", data::ScalarType::kLong).ok());
  ASSERT_TRUE(store_.types().Register(std::move(t)).ok());
  ProgramDeclaration p;
  p.name = "shaped";
  p.input_type = "S";
  p.output_type = "S";
  ASSERT_TRUE(store_.DeclareProgram(p).ok());

  ProcessBuilder b(&store_, "p");
  b.Program("A", "shaped");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->activities()[0].input_type, "S");
  EXPECT_EQ(def->activities()[0].output_type, "S");
}

}  // namespace
}  // namespace exotica::wf
