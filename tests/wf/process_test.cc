#include "wf/process.h"

#include <gtest/gtest.h>

namespace exotica::wf {
namespace {

ProcessDefinition MakeDiamond() {
  ProcessDefinition p("diamond");
  for (const char* name : {"A", "B", "C", "D"}) {
    Activity a;
    a.name = name;
    a.program = "prog";
    EXPECT_TRUE(p.AddActivity(std::move(a)).ok());
  }
  EXPECT_TRUE(p.AddControlConnector({"A", "B", {}, false}).ok());
  EXPECT_TRUE(p.AddControlConnector({"A", "C", {}, false}).ok());
  EXPECT_TRUE(p.AddControlConnector({"B", "D", {}, false}).ok());
  EXPECT_TRUE(p.AddControlConnector({"C", "D", {}, false}).ok());
  return p;
}

TEST(ProcessTest, DuplicateActivityRejected) {
  ProcessDefinition p("p");
  Activity a;
  a.name = "X";
  ASSERT_TRUE(p.AddActivity(a).ok());
  EXPECT_TRUE(p.AddActivity(a).IsAlreadyExists());
}

TEST(ProcessTest, ConnectorEndpointChecks) {
  ProcessDefinition p = MakeDiamond();
  EXPECT_TRUE(p.AddControlConnector({"A", "Ghost", {}, false}).IsNotFound());
  EXPECT_TRUE(p.AddControlConnector({"Ghost", "A", {}, false}).IsNotFound());
  EXPECT_TRUE(
      p.AddControlConnector({"A", "A", {}, false}).IsValidationError());
  EXPECT_TRUE(p.AddControlConnector({"A", "B", {}, false}).IsAlreadyExists());
}

TEST(ProcessTest, TopologyQueries) {
  ProcessDefinition p = MakeDiamond();
  EXPECT_EQ(p.StartActivities(), (std::vector<std::string>{"A"}));
  EXPECT_EQ(p.OutgoingControl("A").size(), 2u);
  EXPECT_EQ(p.IncomingControl("D").size(), 2u);
  EXPECT_TRUE(p.HasControlPath("A", "D"));
  EXPECT_TRUE(p.HasControlPath("A", "A"));
  EXPECT_FALSE(p.HasControlPath("D", "A"));
  EXPECT_FALSE(p.HasControlPath("B", "C"));

  auto topo = p.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ((*topo)[0], "A");
  EXPECT_EQ((*topo)[3], "D");
}

TEST(ProcessTest, CycleDetected) {
  ProcessDefinition p("cyclic");
  for (const char* name : {"A", "B"}) {
    Activity a;
    a.name = name;
    ASSERT_TRUE(p.AddActivity(std::move(a)).ok());
  }
  ASSERT_TRUE(p.AddControlConnector({"A", "B", {}, false}).ok());
  ASSERT_TRUE(p.AddControlConnector({"B", "A", {}, false}).ok());
  EXPECT_TRUE(p.TopologicalOrder().status().IsValidationError());
}

TEST(ProcessTest, DataConnectorEndpointRules) {
  ProcessDefinition p = MakeDiamond();
  DataConnector bad_from;
  bad_from.from = DataEndpoint::ProcessOutput();
  bad_from.to = DataEndpoint::Of("A");
  EXPECT_TRUE(p.AddDataConnector(bad_from).IsValidationError());

  DataConnector bad_to;
  bad_to.from = DataEndpoint::Of("A");
  bad_to.to = DataEndpoint::ProcessInput();
  EXPECT_TRUE(p.AddDataConnector(bad_to).IsValidationError());

  DataConnector good;
  good.from = DataEndpoint::Of("A");
  good.to = DataEndpoint::Of("B");
  good.mapping.Add("RC", "RC");
  EXPECT_TRUE(p.AddDataConnector(good).ok());
  EXPECT_EQ(p.IncomingData(DataEndpoint::Of("B")).size(), 1u);
  EXPECT_EQ(p.OutgoingData(DataEndpoint::Of("A")).size(), 1u);
}

TEST(DefinitionStoreTest, ProgramDeclarations) {
  DefinitionStore store;
  ProgramDeclaration decl;
  decl.name = "p";
  ASSERT_TRUE(store.DeclareProgram(decl).ok());
  EXPECT_TRUE(store.DeclareProgram(decl).IsAlreadyExists());
  EXPECT_TRUE(store.HasProgram("p"));
  EXPECT_FALSE(store.HasProgram("q"));
  EXPECT_TRUE(store.FindProgram("q").status().IsNotFound());

  ProgramDeclaration bad;
  bad.name = "bad";
  bad.input_type = "Ghost";
  EXPECT_TRUE(store.DeclareProgram(bad).IsValidationError());
}

TEST(DefinitionStoreTest, ProcessRegistrationValidates) {
  DefinitionStore store;
  ProcessDefinition empty("empty");
  EXPECT_TRUE(store.AddProcess(empty).IsValidationError());
  EXPECT_FALSE(store.HasProcess("empty"));
  EXPECT_TRUE(store.RemoveProcess("empty").IsNotFound());
}

}  // namespace
}  // namespace exotica::wf
