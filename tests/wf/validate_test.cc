#include "wf/validate.h"

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wf/process.h"

namespace exotica::wf {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProgramDeclaration p;
    p.name = "prog";
    ASSERT_TRUE(store_.DeclareProgram(p).ok());
  }

  DefinitionStore store_;
};

TEST_F(ValidateTest, AcceptsMinimalProcess) {
  ProcessBuilder b(&store_, "ok");
  b.Program("A", "prog");
  EXPECT_TRUE(b.Build().ok());
}

TEST_F(ValidateTest, UnknownProgramRejected) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "ghost");
  EXPECT_TRUE(b.Build().status().IsNotFound());
}

TEST_F(ValidateTest, ContainerShapeMismatchWithProgramRejected) {
  data::StructType t("Other");
  ASSERT_TRUE(t.AddScalar("X", data::ScalarType::kLong).ok());
  ASSERT_TRUE(store_.types().Register(std::move(t)).ok());

  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").Containers("Other", "Other");
  EXPECT_TRUE(b.Build().status().IsValidationError());
}

TEST_F(ValidateTest, UnknownContainerTypeRejected) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").Containers("Ghost", "_Default");
  EXPECT_FALSE(b.Build().ok());
}

TEST_F(ValidateTest, TransitionConditionIdentifiersChecked) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").Program("B", "prog");
  b.Connect("A", "B", "Bogus = 1");
  EXPECT_TRUE(b.Build().status().IsValidationError());
}

TEST_F(ValidateTest, ExitConditionIdentifiersChecked) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").ExitWhen("Bogus = 1");
  EXPECT_TRUE(b.Build().status().IsValidationError());
}

TEST_F(ValidateTest, OtherwiseNeedsConditionedSibling) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").Program("B", "prog").Program("C", "prog");
  b.Otherwise("A", "B");
  EXPECT_TRUE(b.Build().status().IsValidationError());

  ProcessBuilder b2(&store_, "p2");
  b2.Program("A", "prog").Program("B", "prog").Program("C", "prog");
  b2.Connect("A", "B", "RC = 0");
  b2.Otherwise("A", "C");
  EXPECT_TRUE(b2.Build().ok());
}

TEST_F(ValidateTest, DataConnectorRequiresControlPath) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").Program("B", "prog");
  // No control connector A -> B.
  b.MapData("A", "B", {{"RC", "RC"}});
  EXPECT_TRUE(b.Build().status().IsValidationError());
}

TEST_F(ValidateTest, DataConnectorTypeChecked) {
  data::StructType t("S");
  ASSERT_TRUE(t.AddScalar("Name", data::ScalarType::kString).ok());
  ASSERT_TRUE(store_.types().Register(std::move(t)).ok());
  ProgramDeclaration p;
  p.name = "sprog";
  p.output_type = "S";
  ASSERT_TRUE(store_.DeclareProgram(p).ok());

  ProcessBuilder b(&store_, "p");
  b.Program("A", "sprog").Program("B", "prog");
  b.Connect("A", "B");
  b.MapData("A", "B", {{"Name", "RC"}});  // string -> long
  EXPECT_TRUE(b.Build().status().IsValidationError());
}

TEST_F(ValidateTest, EmptyMappingRejected) {
  ProcessBuilder b(&store_, "p");
  b.Program("A", "prog").Program("B", "prog");
  b.Connect("A", "B");
  b.MapData("A", "B", {});
  EXPECT_TRUE(b.Build().status().IsValidationError());
}

TEST_F(ValidateTest, SubprocessMustBeRegisteredFirst) {
  ProcessBuilder b(&store_, "parent");
  b.Block("B", "child");
  EXPECT_TRUE(b.Build().status().IsNotFound());

  ProcessBuilder child(&store_, "child");
  child.Program("X", "prog");
  ASSERT_TRUE(child.Register().ok());

  ProcessBuilder b2(&store_, "parent");
  b2.Block("B", "child");
  EXPECT_TRUE(b2.Build().ok());
}

TEST_F(ValidateTest, DirectRecursionRejected) {
  ProcessBuilder child(&store_, "selfref");
  child.Block("B", "selfref");
  EXPECT_TRUE(child.Build().status().IsValidationError());
}

TEST_F(ValidateTest, CyclicControlFlowRejected) {
  ProcessDefinition p("cyclic");
  for (const char* name : {"A", "B"}) {
    Activity a;
    a.name = name;
    a.program = "prog";
    ASSERT_TRUE(p.AddActivity(std::move(a)).ok());
  }
  ASSERT_TRUE(p.AddControlConnector({"A", "B", {}, false}).ok());
  ASSERT_TRUE(p.AddControlConnector({"B", "A", {}, false}).ok());
  EXPECT_TRUE(ValidateProcess(p, store_).IsValidationError());
}

}  // namespace
}  // namespace exotica::wf
