// Flexible transactions: the Figure-3 example's three paths, the
// well-formedness checker, and the native executor.

#include "atm/flex.h"

#include <gtest/gtest.h>

namespace exotica::atm {
namespace {

using S = FlexStep;

TEST(FlexSpecTest, Figure3SpecIsWellFormed) {
  FlexSpec spec = MakeFigure3Spec();
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
  EXPECT_EQ(spec.Subs().size(), 8u);
  EXPECT_EQ(spec.root().ToString(),
            "Seq[T1(c), T2(p), Alt(Seq[T4(p), Alt(Seq[T5(c), T6(c), T8(p)], "
            "T7(r))], T3(r))]");
}

TEST(FlexSpecTest, StructuralValidation) {
  // Duplicate names.
  std::vector<FlexStepPtr> dup;
  dup.push_back(S::Compensatable("T1"));
  dup.push_back(S::Compensatable("T1"));
  EXPECT_TRUE(
      FlexSpec("dup", S::Seq(std::move(dup))).Validate().IsValidationError());

  // Empty names.
  std::vector<FlexStepPtr> unnamed;
  unnamed.push_back(S::Compensatable(""));
  EXPECT_TRUE(FlexSpec("anon", S::Seq(std::move(unnamed)))
                  .Validate()
                  .IsValidationError());
}

TEST(FlexSpecTest, NonRetriableAfterPivotRejected) {
  // Seq[P(pivot), C(compensatable)]: after P commits nothing may fail, but
  // C can abort.
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Pivot("P"));
  steps.push_back(S::Compensatable("C"));
  Status st = FlexSpec("bad", S::Seq(std::move(steps))).Validate();
  EXPECT_TRUE(st.IsValidationError()) << st.ToString();
}

TEST(FlexSpecTest, RetriableAfterPivotAccepted) {
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Pivot("P"));
  steps.push_back(S::Retriable("R"));
  EXPECT_TRUE(FlexSpec("ok", S::Seq(std::move(steps))).Validate().ok());
}

TEST(FlexSpecTest, TwoPivotsInSequenceRejected) {
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Pivot("P1"));
  steps.push_back(S::Pivot("P2"));
  EXPECT_TRUE(FlexSpec("twopivots", S::Seq(std::move(steps)))
                  .Validate()
                  .IsValidationError());
}

TEST(FlexSpecTest, SecondPivotBehindGuaranteedAlternativeAccepted) {
  // Seq[P1, Alt(P2, R)]: after P1, the Alt is guaranteed via retriable R.
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Pivot("P1"));
  steps.push_back(S::Alt(S::Pivot("P2"), S::Retriable("R")));
  EXPECT_TRUE(FlexSpec("ok2", S::Seq(std::move(steps))).Validate().ok());
}

TEST(FlexSpecTest, AltAfterPivotNeedsGuaranteedFallback) {
  // Fallback is a pivot: not guaranteed.
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Pivot("P1"));
  steps.push_back(S::Alt(S::Pivot("P2"), S::Pivot("P3")));
  EXPECT_TRUE(FlexSpec("bad2", S::Seq(std::move(steps)))
                  .Validate()
                  .IsValidationError());
}

TEST(FlexSpecTest, NonCompensatableBeforeLaterFailureRejected) {
  // R commits (retriable, non-compensatable), then the pivot P may abort:
  // the global abort would have to undo R, which is impossible.
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Retriable("R"));
  steps.push_back(S::Pivot("P"));
  Status st = FlexSpec("bad3", S::Seq(std::move(steps))).Validate();
  EXPECT_TRUE(st.IsValidationError()) << st.ToString();
}

TEST(FlexSpecTest, CompensatableAndRetriableLeafAllowedPrePivot) {
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Sub("CR", /*compensatable=*/true, /*retriable=*/true));
  steps.push_back(S::Pivot("P"));
  EXPECT_TRUE(FlexSpec("ok3", S::Seq(std::move(steps))).Validate().ok());
}

TEST(FlexStepTest, Predicates) {
  EXPECT_TRUE(S::Pivot("p")->is_pivot());
  EXPECT_FALSE(S::Retriable("r")->is_pivot());
  EXPECT_TRUE(S::Retriable("r")->Guaranteed());
  EXPECT_FALSE(S::Pivot("p")->Guaranteed());

  auto alt = S::Alt(S::Pivot("p"), S::Retriable("r"));
  EXPECT_TRUE(alt->Guaranteed());
  EXPECT_TRUE(alt->HasPivot());
  EXPECT_FALSE(alt->AllCompensatable());

  auto clone = alt->Clone();
  EXPECT_EQ(clone->ToString(), alt->ToString());
}

// ---- Figure-3 execution: every meaningful abort pattern --------------------

struct Fig3Case {
  const char* name;
  std::vector<std::string> always_abort;   // permanently aborting subs
  std::vector<std::pair<std::string, int>> abort_first;  // transient aborts
  bool want_committed;
  std::vector<std::string> want_effective;  // final committed-and-kept set
};

class Figure3Test : public ::testing::TestWithParam<Fig3Case> {};

TEST_P(Figure3Test, TakesTheExpectedPath) {
  const Fig3Case& c = GetParam();
  ScriptedRunner runner;
  for (const auto& name : c.always_abort) runner.AlwaysAbort(name);
  for (const auto& [name, n] : c.abort_first) runner.AbortFirst(name, n);

  FlexExecutor executor(&runner);
  auto outcome = executor.Execute(MakeFigure3Spec());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->committed, c.want_committed);
  EXPECT_EQ(outcome->effective, c.want_effective);
}

INSTANTIATE_TEST_SUITE_P(
    Paths, Figure3Test,
    ::testing::Values(
        // No failures: preferred path p1 = {T1,T2,T4,T5,T6,T8}.
        Fig3Case{"p1", {}, {}, true, {"T1", "T2", "T4", "T5", "T6", "T8"}},
        // T1 aborts: the whole transaction aborts.
        Fig3Case{"t1_aborts", {"T1"}, {}, false, {}},
        // T2 aborts: compensate T1; transaction aborts.
        Fig3Case{"t2_aborts", {"T2"}, {}, false, {}},
        // T5 aborts: compensate nothing committed in p1 yet beyond T5
        // (it aborted), fall back to T7 -> p2 = {T1,T2,T4,T7}.
        Fig3Case{"p2_via_t5", {"T5"}, {}, true, {"T1", "T2", "T4", "T7"}},
        // T6 aborts: compensate T5, then T7 -> p2.
        Fig3Case{"p2_via_t6", {"T6"}, {}, true, {"T1", "T2", "T4", "T7"}},
        // T8 aborts (the paper's appendix walk-through): compensate T5 and
        // T6, then run T7 until it commits -> p2.
        Fig3Case{"p2_via_t8", {"T8"}, {}, true, {"T1", "T2", "T4", "T7"}},
        // T8 aborts and T7 needs three tries: still p2.
        Fig3Case{"p2_t7_retries",
                 {"T8"},
                 {{"T7", 2}},
                 true,
                 {"T1", "T2", "T4", "T7"}}),
    [](const ::testing::TestParamInfo<Fig3Case>& info) {
      return info.param.name;
    });

TEST(Figure3PathTest, Path3IsACommitNotAnAbort) {
  // When T4 aborts, T3 runs until it commits and the transaction COMMITS
  // via p3 = {T1,T2,T3}.
  ScriptedRunner runner;
  runner.AlwaysAbort("T4");
  FlexExecutor executor(&runner);
  auto outcome = executor.Execute(MakeFigure3Spec());
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->committed);
  EXPECT_EQ(outcome->effective, (std::vector<std::string>{"T1", "T2", "T3"}));

  ScriptedRunner runner2;
  runner2.AlwaysAbort("T4");
  runner2.AbortFirst("T3", 3);
  auto outcome2 = FlexExecutor(&runner2).Execute(MakeFigure3Spec());
  ASSERT_TRUE(outcome2.ok());
  EXPECT_TRUE(outcome2->committed);
  EXPECT_EQ(outcome2->effective, (std::vector<std::string>{"T1", "T2", "T3"}));
  EXPECT_EQ(runner2.attempts("T3"), 4);
}

TEST(FlexExecutorTest, CompensationOrderIsReverseCommitOrder) {
  ScriptedRunner runner;
  runner.AlwaysAbort("T8");
  FlexExecutor executor(&runner);
  auto outcome = executor.Execute(MakeFigure3Spec());
  ASSERT_TRUE(outcome.ok());
  auto compensated = Select(outcome->trace, TraceAction::kCompensated);
  EXPECT_EQ(compensated, (std::vector<std::string>{"T6", "T5"}));
}

TEST(FlexExecutorTest, GlobalAbortCompensatesEverythingCommitted) {
  ScriptedRunner runner;
  runner.AlwaysAbort("T2");
  FlexExecutor executor(&runner);
  auto outcome = executor.Execute(MakeFigure3Spec());
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->committed);
  auto compensated = Select(outcome->trace, TraceAction::kCompensated);
  EXPECT_EQ(compensated, (std::vector<std::string>{"T1"}));
  EXPECT_TRUE(outcome->effective.empty());
}

TEST(FlexExecutorTest, RetriableRetryCapErrors) {
  ScriptedRunner runner;
  runner.AlwaysAbort("T4");
  runner.AlwaysAbort("T3");  // the guaranteed fallback never succeeds
  FlexExecutor::Options opts;
  opts.max_retriable_retries = 10;
  FlexExecutor executor(&runner, opts);
  auto outcome = executor.Execute(MakeFigure3Spec());
  EXPECT_TRUE(outcome.status().IsFailedPrecondition());
}

TEST(FlexExecutorTest, NestedSagasEmbedAsAllCompensatableTrees) {
  // The paper (§4.1) notes sagas were generalized to nested form
  // [GMGK+90]. A nested saga is exactly a flexible-transaction tree whose
  // leaves are all compensatable: the child saga Seq[B1,B2] sits as one
  // step of the parent Seq[A1, child, A2].
  std::vector<FlexStepPtr> child;
  child.push_back(S::Compensatable("B1"));
  child.push_back(S::Compensatable("B2"));
  std::vector<FlexStepPtr> parent;
  parent.push_back(S::Compensatable("A1"));
  parent.push_back(S::Seq(std::move(child)));
  parent.push_back(S::Compensatable("A2"));
  FlexSpec spec("Nested", S::Seq(std::move(parent)));
  ASSERT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();

  // A2 aborts: the whole nested structure compensates in reverse commit
  // order, crossing the child boundary.
  ScriptedRunner runner;
  runner.AlwaysAbort("A2");
  FlexExecutor executor(&runner);
  auto outcome = executor.Execute(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->committed);
  EXPECT_EQ(Select(outcome->trace, TraceAction::kCompensated),
            (std::vector<std::string>{"B2", "B1", "A1"}));

  // B2 aborts mid-child: only the committed prefix compensates.
  ScriptedRunner runner2;
  runner2.AlwaysAbort("B2");
  auto outcome2 = FlexExecutor(&runner2).Execute(spec);
  ASSERT_TRUE(outcome2.ok());
  EXPECT_FALSE(outcome2->committed);
  EXPECT_EQ(Select(outcome2->trace, TraceAction::kCompensated),
            (std::vector<std::string>{"B1", "A1"}));
}

TEST(FlexExecutorTest, InvalidSpecRefusedBeforeExecution) {
  std::vector<FlexStepPtr> steps;
  steps.push_back(S::Pivot("P1"));
  steps.push_back(S::Pivot("P2"));
  FlexSpec bad("bad", S::Seq(std::move(steps)));
  ScriptedRunner runner;
  FlexExecutor executor(&runner);
  EXPECT_TRUE(executor.Execute(bad).status().IsValidationError());
}

}  // namespace
}  // namespace exotica::atm
