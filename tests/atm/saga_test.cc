// Native saga executor: the GMS87 guarantee — either T1..Tn runs, or
// T1..Tj; Cj..C1 for some 0 <= j < n (paper §4.1).

#include "atm/saga.h"

#include <gtest/gtest.h>

#include "txn/multidb.h"

namespace exotica::atm {
namespace {

SagaSpec LinearSaga(int n) {
  SagaSpec spec("S");
  for (int i = 1; i <= n; ++i) spec.Then("T" + std::to_string(i));
  return spec;
}

TEST(SagaSpecTest, ValidationCatchesProblems) {
  EXPECT_TRUE(SagaSpec("empty").Validate().IsValidationError());

  SagaSpec dup("dup");
  dup.Then("T1").Then("T1");
  EXPECT_TRUE(dup.Validate().IsValidationError());

  SagaSpec ghost("ghost");
  ghost.Step("T1", {"T9"});
  EXPECT_TRUE(ghost.Validate().IsValidationError());

  SagaSpec self("self");
  self.Step("T1", {"T1"});
  EXPECT_TRUE(self.Validate().IsValidationError());

  SagaSpec cyc("cyc");
  cyc.Step("A", {"B"}).Step("B", {"A"});
  EXPECT_TRUE(cyc.Validate().IsValidationError());

  EXPECT_TRUE(LinearSaga(3).Validate().ok());
}

TEST(SagaSpecTest, LinearityDetection) {
  EXPECT_TRUE(LinearSaga(4).IsLinear());
  SagaSpec par("par");
  par.Step("A", {}).Step("B", {}).Step("C", {"A", "B"});
  EXPECT_FALSE(par.IsLinear());
  EXPECT_TRUE(par.Validate().ok());
}

TEST(SagaSpecTest, ProgramNameDefaults) {
  SagaSpec s("s");
  s.Then("T1");
  EXPECT_EQ(SagaSpec::ProgramOf(s.steps()[0]), "T1");
  EXPECT_EQ(SagaSpec::CompensationProgramOf(s.steps()[0]), "T1_comp");
  s.Then("T2").WithPrograms("book", "unbook");
  EXPECT_EQ(SagaSpec::ProgramOf(s.steps()[1]), "book");
  EXPECT_EQ(SagaSpec::CompensationProgramOf(s.steps()[1]), "unbook");
}

// The headline guarantee, checked at every abort point j of a 5-step
// linear saga.
class SagaGuaranteeTest : public ::testing::TestWithParam<int> {};

TEST_P(SagaGuaranteeTest, EitherAllOrPrefixCompensatedInReverse) {
  const int n = 5;
  const int j = GetParam();  // steps before the aborting one
  ScriptedRunner runner;
  if (j < n) runner.AlwaysAbort("T" + std::to_string(j + 1));

  SagaExecutor executor(&runner);
  auto outcome = executor.Execute(LinearSaga(n));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  if (j == n) {
    EXPECT_TRUE(outcome->committed);
    EXPECT_EQ(outcome->executed.size(), static_cast<size_t>(n));
    EXPECT_TRUE(outcome->compensated.empty());
    return;
  }
  EXPECT_FALSE(outcome->committed);
  // T1..Tj committed.
  std::vector<std::string> want_executed;
  for (int i = 1; i <= j; ++i) want_executed.push_back("T" + std::to_string(i));
  EXPECT_EQ(outcome->executed, want_executed);
  // Cj..C1 in reverse order.
  std::vector<std::string> want_compensated(want_executed.rbegin(),
                                            want_executed.rend());
  EXPECT_EQ(outcome->compensated, want_compensated);
}

INSTANTIATE_TEST_SUITE_P(AllAbortPoints, SagaGuaranteeTest,
                         ::testing::Range(0, 6));

TEST(SagaExecutorTest, CompensationRetriedUntilSuccess) {
  ScriptedRunner runner;
  runner.AlwaysAbort("T3");
  runner.FailCompensationFirst("T1", 4);
  SagaExecutor executor(&runner);
  auto outcome = executor.Execute(LinearSaga(3));
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->committed);
  EXPECT_EQ(runner.compensation_attempts("T1"), 5);
  // The failed compensation attempts show in the trace.
  int failures = 0;
  for (const TraceEvent& e : outcome->trace) {
    if (e.action == TraceAction::kCompensationFailed) ++failures;
  }
  EXPECT_EQ(failures, 4);
}

TEST(SagaExecutorTest, CompensationRetryCapIsAnError) {
  ScriptedRunner runner;
  runner.AlwaysAbort("T2");
  runner.FailCompensationFirst("T1", 1000000);
  SagaExecutor::Options opts;
  opts.max_compensation_retries = 10;
  SagaExecutor executor(&runner, opts);
  auto outcome = executor.Execute(LinearSaga(2));
  EXPECT_TRUE(outcome.status().IsFailedPrecondition());
}

TEST(SagaExecutorTest, ParallelSagaCompensatesCommittedInReverse) {
  // A and B are independent; C needs both. B aborts: only A compensates.
  SagaSpec spec("par");
  spec.Step("A", {}).Step("B", {"A"}).Step("X", {"A"}).Step("C", {"B", "X"});
  ScriptedRunner runner;
  runner.AlwaysAbort("X");
  SagaExecutor executor(&runner);
  auto outcome = executor.Execute(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->committed);
  EXPECT_EQ(outcome->executed, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(outcome->compensated, (std::vector<std::string>{"B", "A"}));
}

TEST(SagaExecutorTest, RunsAgainstRealMultiDatabase) {
  txn::MultiDatabase mdb;
  ASSERT_TRUE(mdb.AddSite("bank").ok());
  ASSERT_TRUE(mdb.AddSite("airline").ok());

  MultiDbRunner runner(&mdb);
  ASSERT_TRUE(runner
                  .Register({"Pay", "bank",
                             [](txn::Transaction& t) {
                               return t.Put("balance",
                                            data::Value(int64_t{-100}));
                             },
                             [](txn::Transaction& t) {
                               return t.Put("balance", data::Value(int64_t{0}));
                             }})
                  .ok());
  ASSERT_TRUE(runner
                  .Register({"Book", "airline",
                             [](txn::Transaction& t) {
                               return t.Put("seat", data::Value("12A"));
                             },
                             [](txn::Transaction& t) { return t.Erase("seat"); }})
                  .ok());

  SagaSpec spec("trip");
  spec.Then("Pay").Then("Book");

  // Airline refuses: Pay must be compensated.
  (*mdb.site("airline"))->FailNextCommits(1);
  SagaExecutor executor(&runner);
  auto outcome = executor.Execute(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->committed);
  EXPECT_EQ((*mdb.site("bank"))->ReadCommitted("balance")->as_long(), 0);
  EXPECT_TRUE((*mdb.site("airline"))->ReadCommitted("seat")->is_null());

  // Second try succeeds end to end.
  auto retry = executor.Execute(spec);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->committed);
  EXPECT_EQ((*mdb.site("bank"))->ReadCommitted("balance")->as_long(), -100);
  EXPECT_EQ((*mdb.site("airline"))->ReadCommitted("seat")->as_string(), "12A");
}

TEST(MultiDbRunnerTest, MissingPiecesSurface) {
  txn::MultiDatabase mdb;
  ASSERT_TRUE(mdb.AddSite("s").ok());
  MultiDbRunner runner(&mdb);
  EXPECT_TRUE(runner.Run("ghost").status().IsNotFound());
  EXPECT_TRUE(
      runner.Register({"x", "nosite", [](txn::Transaction&) { return Status::OK(); },
                       nullptr})
          .IsNotFound());
  ASSERT_TRUE(
      runner.Register({"nc", "s", [](txn::Transaction&) { return Status::OK(); },
                       nullptr})
          .ok());
  EXPECT_TRUE(runner.Compensate("nc").status().IsFailedPrecondition());
}

}  // namespace
}  // namespace exotica::atm
