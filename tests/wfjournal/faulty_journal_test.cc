// FaultyJournal decorator: injected append/flush faults leave exactly the
// on-disk states a real crash would — a clean prefix (ENOSPC), a torn tail
// (short write), or garbage *before* well-formed records (misdirected
// write) — and FileJournal::Open() distinguishes the recoverable ones
// (truncate-and-continue) from real corruption.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "wf/builder.h"
#include "wfjournal/faulty.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"
#include "../testutil.h"

namespace exotica {
namespace {

using wfjournal::FaultyJournal;
using wfjournal::FileJournal;
using wfjournal::MemoryJournal;
using wfjournal::Record;

Record Rec(const std::string& instance, wfjournal::EventType type,
           const std::string& activity = "") {
  Record r;
  r.instance = instance;
  r.type = type;
  r.activity = activity;
  return r;
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(FaultyJournalTest, AppendErrorLosesOnlyTheArmedRecord) {
  MemoryJournal mem;
  FaultyJournal faulty(&mem);
  faulty.FailAppendAt(2, FaultyJournal::FaultMode::kAppendError);

  for (int i = 0; i < 5; ++i) {
    Status st = faulty.Append(
        Rec("wf-1", wfjournal::EventType::kActivityReady,
            "A" + std::to_string(i)));
    if (i == 2) {
      EXPECT_TRUE(st.IsIOError()) << st.ToString();
      EXPECT_NE(st.ToString().find("ENOSPC"), std::string::npos);
    } else {
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }

  // The journal holds exactly the records whose appends succeeded, with
  // contiguous seq numbers — the state a real ENOSPC leaves behind.
  EXPECT_EQ(faulty.faults_injected(), 1u);
  auto all = mem.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);
  EXPECT_EQ((*all)[2].activity, "A3");
  for (size_t i = 0; i < all->size(); ++i) {
    EXPECT_EQ((*all)[i].seq, i);
  }
}

TEST(FaultyJournalTest, ShortWriteLeavesTornTailThatOpenTruncates) {
  std::string path = TempPath("exo_faulty_short.log");
  {
    auto journal = FileJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    FaultyJournal faulty(journal->get(), path);
    faulty.FailAppendAt(3, FaultyJournal::FaultMode::kShortWrite);

    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(faulty
                      .Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                  "A" + std::to_string(i)))
                      .ok());
    }
    Status st = faulty.Append(
        Rec("wf-1", wfjournal::EventType::kActivityFinished, "A3"));
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
    EXPECT_EQ(faulty.faults_injected(), 1u);
  }

  // Reopen: the torn tail is a crash mid-write of a batch — truncated
  // away, the prefix survives, and the journal accepts new appends with
  // continuous seq numbers.
  auto reopened = FileJournal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 3u);
  ASSERT_TRUE((*reopened)
                  ->Append(Rec("wf-1", wfjournal::EventType::kActivityFinished,
                               "A3"))
                  .ok());
  ASSERT_TRUE((*reopened)->Flush().ok());

  auto all = (*reopened)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);
  EXPECT_EQ((*all)[3].seq, 3u);
  EXPECT_EQ((*all)[3].activity, "A3");
}

TEST(FaultyJournalTest, GarbageBeforeValidRecordsIsCorruption) {
  std::string path = TempPath("exo_faulty_garbage.log");
  {
    auto journal = FileJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    FaultyJournal faulty(journal->get(), path);
    faulty.FailAppendAt(1, FaultyJournal::FaultMode::kGarbage);

    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(faulty
                      .Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                  "A" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(faulty.Flush().ok());
    EXPECT_EQ(faulty.faults_injected(), 1u);
  }

  // Garbage followed by well-formed records is NOT a torn tail: silently
  // dropping it would discard the valid suffix too. Open must refuse.
  auto reopened = FileJournal::Open(path);
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status().ToString();
}

TEST(FaultyJournalTest, GarbageAtTailAloneIsTruncatedLikeATear) {
  std::string path = TempPath("exo_faulty_tail.log");
  {
    auto journal = FileJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE((*journal)
                      ->Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                   "A" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE((*journal)->Flush().ok());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x7f!!corrupt-block!!\x01\x02\x03\n";
  }

  // With nothing valid after it, the bad final line is indistinguishable
  // from a torn batch tail: truncate and continue.
  auto reopened = FileJournal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 2u);
}

TEST(FaultyJournalTest, FlushFaultFiresOnceAndIsNotForwarded) {
  MemoryJournal mem;
  FaultyJournal faulty(&mem);
  faulty.FailFlushAt(0);

  Status st = faulty.Flush();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(faulty.Flush().ok());
  EXPECT_EQ(faulty.faults_injected(), 1u);
  EXPECT_EQ(faulty.flushes(), 2u);
}

TEST(FaultyJournalTest, FaultIndexCountsAcrossSegmentRotation) {
  std::string path = TempPath("exo_faulty_rotate.log");
  std::remove((path + ".2").c_str());
  auto journal = FileJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  FaultyJournal faulty(journal->get(), path);
  faulty.FailAppendAt(3, FaultyJournal::FaultMode::kAppendError);

  // Appends 0-1 land in the base segment, 2-4 in the rotated one; the
  // armed index keeps counting across the rotation and fires on the
  // fourth append overall.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(faulty
                    .Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                "A" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(faulty.RotateSegment().ok());
  for (int i = 2; i < 5; ++i) {
    Status st = faulty.Append(
        Rec("wf-1", wfjournal::EventType::kActivityReady,
            "A" + std::to_string(i)));
    EXPECT_EQ(st.ok(), i != 3) << i << ": " << st.ToString();
  }
  EXPECT_EQ(faulty.faults_injected(), 1u);
  auto all = (*journal)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);  // A3 lost, seqs stay contiguous
  EXPECT_EQ((*all)[3].activity, "A4");
  EXPECT_EQ((*all)[3].seq, 3u);
  std::remove(path.c_str());
  std::remove((path + ".2").c_str());
}

TEST(FaultyJournalTest, ShortWriteAfterRotationTearsTheActiveSegment) {
  std::string path = TempPath("exo_faulty_segshort.log");
  std::remove((path + ".1").c_str());
  {
    auto journal = FileJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    FaultyJournal faulty(journal->get(), path);
    ASSERT_TRUE(faulty
                    .Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                "A0"))
                    .ok());
    ASSERT_TRUE(faulty.RotateSegment().ok());
    ASSERT_TRUE(faulty
                    .Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                "A1"))
                    .ok());
    faulty.FailAppendAt(2, FaultyJournal::FaultMode::kShortWrite);
    Status st = faulty.Append(
        Rec("wf-1", wfjournal::EventType::kActivityFinished, "A2"));
    EXPECT_TRUE(st.IsIOError()) << st.ToString();
  }

  // The torn bytes must land in the *active* segment file, where Open's
  // torn-tail rule applies; the sealed base segment stays pristine.
  auto reopened = FileJournal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 2u);
  EXPECT_EQ((*reopened)->segment_count(), 2u);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(FaultyJournalTest, TruncateFaultFiresOnceAndIsNotForwarded) {
  MemoryJournal mem;
  FaultyJournal faulty(&mem);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(faulty
                    .Append(Rec("wf-1", wfjournal::EventType::kActivityReady,
                                "A" + std::to_string(i)))
                    .ok());
  }
  faulty.FailTruncateAt(0);

  // The armed truncate fails without reaching the inner journal — the
  // crash window after a snapshot commits but before truncation runs.
  auto dropped = faulty.TruncateBefore(3);
  EXPECT_TRUE(dropped.status().IsIOError()) << dropped.status().ToString();
  EXPECT_EQ(mem.first_seq(), 0u);
  EXPECT_EQ(faulty.faults_injected(), 1u);

  dropped = faulty.TruncateBefore(3);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 3u);
  EXPECT_EQ(mem.first_seq(), 3u);
  EXPECT_EQ(faulty.truncates(), 2u);
}

TEST(FaultyJournalTest, EngineSurfacesInjectedFaultAndRecoversFromPrefix) {
  wf::DefinitionStore store;
  ASSERT_TRUE(test::DeclareDefaultProgram(&store, "prog").ok());
  wf::ProcessBuilder b(&store, "two_step");
  b.Program("A", "prog");
  b.Program("B", "prog");
  b.Connect("A", "B", "RC = 0");
  b.MapToOutput("B", {{"RC", "RC"}});
  ASSERT_TRUE(b.Register().ok());

  MemoryJournal mem;
  std::string id;
  {
    wfrt::ProgramRegistry programs;
    ASSERT_TRUE(test::BindConstRc(&programs, "prog", 0).ok());
    FaultyJournal faulty(&mem);
    faulty.FailAppendAt(4, FaultyJournal::FaultMode::kAppendError);
    wfrt::Engine engine(&store, &programs);
    ASSERT_TRUE(engine.AttachJournal(&faulty).ok());
    auto started = engine.StartProcess("two_step");
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    id = *started;
    Status run = engine.Run();
    EXPECT_TRUE(run.IsIOError()) << run.ToString();
  }

  // Recovery from the surviving prefix (the inner journal) re-runs the
  // in-flight step and finishes the instance — §3.3 forward recovery.
  wfrt::ProgramRegistry programs;
  ASSERT_TRUE(test::BindConstRc(&programs, "prog", 0).ok());
  wfrt::Engine engine(&store, &programs);
  ASSERT_TRUE(engine.AttachJournal(&mem).ok());
  ASSERT_TRUE(engine.Recover().ok());
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_TRUE(engine.IsFinished(id));
  auto out = engine.OutputOf(id);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Get("RC")->as_long(), 0);
}

}  // namespace
}  // namespace exotica
