#include "wfjournal/journal.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace exotica::wfjournal {
namespace {

Record MakeRecord(EventType type, const std::string& inst) {
  Record r;
  r.type = type;
  r.instance = inst;
  r.activity = "A";
  r.to = "B";
  r.flag = true;
  r.payload = "RC=0\nState_1=1\n";
  r.extra = "tab\there";
  return r;
}

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  Record r = MakeRecord(EventType::kConnectorEval, "wf-3");
  r.seq = 17;
  auto decoded = Record::Decode(r.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 17u);
  EXPECT_EQ(decoded->type, EventType::kConnectorEval);
  EXPECT_EQ(decoded->instance, "wf-3");
  EXPECT_EQ(decoded->activity, "A");
  EXPECT_EQ(decoded->to, "B");
  EXPECT_TRUE(decoded->flag);
  EXPECT_EQ(decoded->payload, r.payload);
  EXPECT_EQ(decoded->extra, r.extra);
}

TEST(JournalRecordTest, DecodeRejectsMalformedLines) {
  EXPECT_TRUE(Record::Decode("").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("1\t2\t3").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("x\t0\ti\ta\tb\t0\tp\te").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("0\t99\ti\ta\tb\t0\tp\te").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("0\t0\ti\ta\tb\t7\tp\te").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("0\t0\ti\ta\tb\t0\tbad\\x\te").status().IsCorruption());
}

TEST(MemoryJournalTest, AppendAssignsSequence) {
  MemoryJournal j;
  ASSERT_TRUE(j.Append(MakeRecord(EventType::kInstanceStart, "wf-1")).ok());
  ASSERT_TRUE(j.Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  auto all = j.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].seq, 0u);
  EXPECT_EQ((*all)[1].seq, 1u);
  EXPECT_EQ(j.size(), 2u);
}

TEST(MemoryJournalTest, TruncateSimulatesCrash) {
  MemoryJournal j;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(j.Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  j.TruncateTo(2);
  EXPECT_EQ(j.size(), 2u);
  j.TruncateTo(10);  // no-op
  EXPECT_EQ(j.size(), 2u);
}

TEST(FileJournalTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/exo_journal_test.log";
  std::remove(path.c_str());
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kInstanceStart, "wf-1")).ok());
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ((*j)->size(), 2u);
    auto all = (*j)->ReadAll();
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 2u);
    EXPECT_EQ((*all)[1].type, EventType::kActivityReady);
    // Appending continues the sequence.
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
    auto again = (*j)->ReadAll();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ((*again)[2].seq, 2u);
  }
  std::remove(path.c_str());
}

// Byte size of the journal file right now (0 if absent).
uint64_t FileSize(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  fseek(f, 0, SEEK_END);
  long n = ftell(f);
  fclose(f);
  return n < 0 ? 0 : static_cast<uint64_t>(n);
}

TEST(FileJournalTest, GroupCommitBuffersUntilFlush) {
  std::string path = ::testing::TempDir() + "/exo_journal_group.log";
  std::remove(path.c_str());
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  // Nothing reaches the file until Flush().
  EXPECT_EQ(FileSize(path), 0u);
  EXPECT_EQ((*j)->size(), 3u);
  ASSERT_TRUE((*j)->Flush().ok());
  uint64_t flushed = FileSize(path);
  EXPECT_GT(flushed, 0u);
  // Readers see buffered appends regardless of flush state.
  ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
  auto all = (*j)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);
  EXPECT_EQ((*all)[3].type, EventType::kActivityDead);
  std::remove(path.c_str());
}

TEST(FileJournalTest, DestructorFlushesBufferedAppends) {
  std::string path = ::testing::TempDir() + "/exo_journal_dtor.log";
  std::remove(path.c_str());
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kInstanceStart, "wf-1")).ok());
    EXPECT_EQ(FileSize(path), 0u);
  }
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->size(), 1u);
  std::remove(path.c_str());
}

TEST(FileJournalTest, FsyncEachWritesThrough) {
  std::string path = ::testing::TempDir() + "/exo_journal_fsync.log";
  std::remove(path.c_str());
  auto j = FileJournal::Open(path, /*fsync_each=*/true);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kInstanceStart, "wf-1")).ok());
  EXPECT_GT(FileSize(path), 0u);  // durable without any Flush()
  std::remove(path.c_str());
}

TEST(FileJournalTest, TornTailTruncatedOnOpen) {
  std::string path = ::testing::TempDir() + "/exo_journal_torn.log";
  std::remove(path.c_str());
  std::string full;
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    }
  }
  // Simulate a crash mid-write: append half of a fourth record, no newline.
  {
    FILE* f = fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    fputs("3\t1\twf-1\tA", f);
    fclose(f);
  }
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ((*j)->size(), 3u);
  // Appends land where the tear was cut, keeping seqs contiguous.
  ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
  ASSERT_TRUE((*j)->Flush().ok());
  auto all = (*j)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 4u);
  EXPECT_EQ((*all)[3].seq, 3u);
  EXPECT_EQ((*all)[3].type, EventType::kActivityDead);
  std::remove(path.c_str());
}

TEST(FileJournalTest, GarbageBeforeValidRecordsIsCorruption) {
  std::string path = ::testing::TempDir() + "/exo_journal_mid.log";
  std::remove(path.c_str());
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    Record r = MakeRecord(EventType::kInstanceStart, "wf-1");
    r.seq = 0;
    fprintf(f, "%s\n", r.Encode().c_str());
    fputs("not a record\n", f);  // garbage in the middle...
    r.seq = 1;
    fprintf(f, "%s\n", r.Encode().c_str());  // ...with valid data after it
    fclose(f);
  }
  // A torn tail only exists at the end of the file; this is corruption.
  EXPECT_TRUE(FileJournal::Open(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(FileJournalTest, VisitStreamsAndStopsOnVisitorError) {
  std::string path = ::testing::TempDir() + "/exo_journal_visit.log";
  std::remove(path.c_str());
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  int seen = 0;
  ASSERT_TRUE((*j)->Visit([&seen](const Record&) {
    ++seen;
    return Status::OK();
  }).ok());
  EXPECT_EQ(seen, 5);
  seen = 0;
  Status st = (*j)->Visit([&seen](const Record&) {
    ++seen;
    return seen == 3 ? Status::Aborted("stop") : Status::OK();
  });
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(seen, 3);
  std::remove(path.c_str());
}

TEST(MemoryJournalTest, TruncateBeforeDropsPrefixKeepsSeqs) {
  MemoryJournal j;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(j.Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  auto dropped = j.TruncateBefore(3);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 3u);
  EXPECT_EQ(j.first_seq(), 3u);
  EXPECT_EQ(j.size(), 5u);  // next seq unchanged
  auto all = j.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].seq, 3u);
  // Appends continue the original numbering.
  ASSERT_TRUE(j.Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
  all = j.ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->back().seq, 5u);
  // Truncating behind the retained range is a no-op.
  dropped = j.TruncateBefore(1);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0u);
}

// Removes the base file and any `path.<n>` segments.
void RemoveSegments(const std::string& path) {
  std::remove(path.c_str());
  for (uint64_t n = 0; n < 4096; ++n) {
    std::remove((path + "." + std::to_string(n)).c_str());
  }
}

TEST(SegmentedJournalTest, RotateKeepsSequenceAndSurvivesReopen) {
  std::string path = ::testing::TempDir() + "/exo_journal_rotate.log";
  RemoveSegments(path);
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    }
    ASSERT_TRUE((*j)->RotateSegment().ok());
    EXPECT_EQ((*j)->segment_count(), 2u);
    EXPECT_EQ((*j)->active_path(), path + ".3");
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          (*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
    }
    auto all = (*j)->ReadAll();
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ((*all)[i].seq, i);
  }
  // Reopen discovers both segments and continues the sequence.
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ((*j)->size(), 5u);
  EXPECT_EQ((*j)->segment_count(), 2u);
  ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  auto all = (*j)->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->back().seq, 5u);
  RemoveSegments(path);
}

TEST(SegmentedJournalTest, RotateWithEmptyActiveSegmentIsNoOp) {
  std::string path = ::testing::TempDir() + "/exo_journal_rotate2.log";
  RemoveSegments(path);
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  ASSERT_TRUE((*j)->RotateSegment().ok());
  ASSERT_TRUE((*j)->RotateSegment().ok());  // nothing appended in between
  EXPECT_EQ((*j)->segment_count(), 2u);
  RemoveSegments(path);
}

TEST(SegmentedJournalTest, TruncateBeforeDeletesWholeSegmentsOnly) {
  std::string path = ::testing::TempDir() + "/exo_journal_trunc.log";
  RemoveSegments(path);
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  ASSERT_TRUE((*j)->RotateSegment().ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
  }
  ASSERT_TRUE((*j)->Flush().ok());
  // seq 4 is mid-active-segment: only the base segment (0..2) is behind it.
  auto dropped = (*j)->TruncateBefore(4);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 3u);
  EXPECT_EQ((*j)->first_seq(), 3u);
  EXPECT_EQ((*j)->segment_count(), 1u);
  EXPECT_EQ(FileSize(path), 0u);  // base segment unlinked
  auto all = (*j)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].seq, 3u);
  RemoveSegments(path);
}

TEST(SegmentedJournalTest, ReopensAfterTruncationWithoutBaseFile) {
  std::string path = ::testing::TempDir() + "/exo_journal_nobase.log";
  RemoveSegments(path);
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    }
    ASSERT_TRUE((*j)->RotateSegment().ok());
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
    ASSERT_TRUE((*j)->Flush().ok());
    ASSERT_TRUE((*j)->TruncateBefore(3).ok());
  }
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ((*j)->size(), 4u);
  EXPECT_EQ((*j)->first_seq(), 3u);
  auto all = (*j)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].seq, 3u);
  RemoveSegments(path);
}

TEST(SegmentedJournalTest, TornTailInActiveSegmentTruncatedOnOpen) {
  std::string path = ::testing::TempDir() + "/exo_journal_segtorn.log";
  RemoveSegments(path);
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    ASSERT_TRUE((*j)->RotateSegment().ok());
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  {
    FILE* f = fopen((path + ".1").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    fputs("2\t1\twf-1\tA", f);  // half a record, no newline
    fclose(f);
  }
  auto j = FileJournal::Open(path);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ((*j)->size(), 2u);
  ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
  ASSERT_TRUE((*j)->Flush().ok());
  auto all = (*j)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 3u);
  EXPECT_EQ(all->back().seq, 2u);
  RemoveSegments(path);
}

TEST(SegmentedJournalTest, TornTailBehindActiveSegmentIsCorruption) {
  std::string path = ::testing::TempDir() + "/exo_journal_segmid.log";
  RemoveSegments(path);
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    ASSERT_TRUE((*j)->RotateSegment().ok());
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  {
    FILE* f = fopen(path.c_str(), "ab");  // damage the *base* segment
    ASSERT_NE(f, nullptr);
    fputs("1\t1\twf-1\tA", f);
    fclose(f);
  }
  EXPECT_TRUE(FileJournal::Open(path).status().IsCorruption());
  RemoveSegments(path);
}

TEST(SegmentedJournalTest, MissingMiddleSegmentIsCorruption) {
  std::string path = ::testing::TempDir() + "/exo_journal_seggap.log";
  RemoveSegments(path);
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    }
    ASSERT_TRUE((*j)->RotateSegment().ok());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
    }
    ASSERT_TRUE((*j)->RotateSegment().ok());
    ASSERT_TRUE(
        (*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  // A vanished *middle* segment leaves a seq gap no truncation could
  // produce (truncation only ever drops a prefix). Open must refuse.
  std::remove((path + ".2").c_str());
  EXPECT_TRUE(FileJournal::Open(path).status().IsCorruption());
  RemoveSegments(path);
}

TEST(FileJournalTest, DetectsSeqGapCorruption) {
  std::string path = ::testing::TempDir() + "/exo_journal_gap.log";
  std::remove(path.c_str());
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    Record r = MakeRecord(EventType::kInstanceStart, "wf-1");
    r.seq = 5;  // gap: first record should be 0
    fprintf(f, "%s\n", r.Encode().c_str());
    fclose(f);
  }
  auto j = FileJournal::Open(path);
  EXPECT_TRUE(j.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exotica::wfjournal
