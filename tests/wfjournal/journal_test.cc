#include "wfjournal/journal.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace exotica::wfjournal {
namespace {

Record MakeRecord(EventType type, const std::string& inst) {
  Record r;
  r.type = type;
  r.instance = inst;
  r.activity = "A";
  r.to = "B";
  r.flag = true;
  r.payload = "RC=0\nState_1=1\n";
  r.extra = "tab\there";
  return r;
}

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  Record r = MakeRecord(EventType::kConnectorEval, "wf-3");
  r.seq = 17;
  auto decoded = Record::Decode(r.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 17u);
  EXPECT_EQ(decoded->type, EventType::kConnectorEval);
  EXPECT_EQ(decoded->instance, "wf-3");
  EXPECT_EQ(decoded->activity, "A");
  EXPECT_EQ(decoded->to, "B");
  EXPECT_TRUE(decoded->flag);
  EXPECT_EQ(decoded->payload, r.payload);
  EXPECT_EQ(decoded->extra, r.extra);
}

TEST(JournalRecordTest, DecodeRejectsMalformedLines) {
  EXPECT_TRUE(Record::Decode("").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("1\t2\t3").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("x\t0\ti\ta\tb\t0\tp\te").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("0\t99\ti\ta\tb\t0\tp\te").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("0\t0\ti\ta\tb\t7\tp\te").status().IsCorruption());
  EXPECT_TRUE(Record::Decode("0\t0\ti\ta\tb\t0\tbad\\x\te").status().IsCorruption());
}

TEST(MemoryJournalTest, AppendAssignsSequence) {
  MemoryJournal j;
  ASSERT_TRUE(j.Append(MakeRecord(EventType::kInstanceStart, "wf-1")).ok());
  ASSERT_TRUE(j.Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  auto all = j.ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].seq, 0u);
  EXPECT_EQ((*all)[1].seq, 1u);
  EXPECT_EQ(j.size(), 2u);
}

TEST(MemoryJournalTest, TruncateSimulatesCrash) {
  MemoryJournal j;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(j.Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  j.TruncateTo(2);
  EXPECT_EQ(j.size(), 2u);
  j.TruncateTo(10);  // no-op
  EXPECT_EQ(j.size(), 2u);
}

TEST(FileJournalTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/exo_journal_test.log";
  std::remove(path.c_str());
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kInstanceStart, "wf-1")).ok());
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityReady, "wf-1")).ok());
  }
  {
    auto j = FileJournal::Open(path);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ((*j)->size(), 2u);
    auto all = (*j)->ReadAll();
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 2u);
    EXPECT_EQ((*all)[1].type, EventType::kActivityReady);
    // Appending continues the sequence.
    ASSERT_TRUE((*j)->Append(MakeRecord(EventType::kActivityDead, "wf-1")).ok());
    auto again = (*j)->ReadAll();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ((*again)[2].seq, 2u);
  }
  std::remove(path.c_str());
}

TEST(FileJournalTest, DetectsSeqGapCorruption) {
  std::string path = ::testing::TempDir() + "/exo_journal_gap.log";
  std::remove(path.c_str());
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    Record r = MakeRecord(EventType::kInstanceStart, "wf-1");
    r.seq = 5;  // gap: first record should be 0
    fprintf(f, "%s\n", r.Encode().c_str());
    fclose(f);
  }
  auto j = FileJournal::Open(path);
  EXPECT_TRUE(j.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exotica::wfjournal
