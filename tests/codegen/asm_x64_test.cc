// Byte-exact encoding tests for the in-tree x86-64 assembler, checked
// against hand-assembled reference bytes (Intel SDM encodings), plus
// execution round trips through the W^X ExecArena for the trickier
// codepaths (SIB forms, rel32 fixups, cqo/idiv, SSE2).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codegen/asm_x64.h"
#include "codegen/exec_arena.h"

namespace exotica::codegen {
namespace {

std::vector<uint8_t> Emit(void (*build)(Assembler*)) {
  Assembler as;
  build(&as);
  EXPECT_TRUE(as.Finalize());
  EXPECT_TRUE(as.ok());
  return as.code();
}

TEST(AsmX64Test, MovImmediatePicksTheShortestForm) {
  // 32-bit zero-extending form, no REX needed for rax.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_ri(Reg::rax, 42); }),
            (std::vector<uint8_t>{0xB8, 0x2A, 0x00, 0x00, 0x00}));
  // High register: REX.B.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_ri(Reg::r13, 7); }),
            (std::vector<uint8_t>{0x41, 0xBD, 0x07, 0x00, 0x00, 0x00}));
  // Negative values sign-extend through the C7 form.
  EXPECT_EQ(Emit([](Assembler* as) {
              as->mov_ri(Reg::rax, static_cast<uint64_t>(-1));
            }),
            (std::vector<uint8_t>{0x48, 0xC7, 0xC0, 0xFF, 0xFF, 0xFF, 0xFF}));
  // Full 64-bit immediate.
  EXPECT_EQ(Emit([](Assembler* as) {
              as->mov_ri(Reg::rcx, 0x123456789ABCDEF0ull);
            }),
            (std::vector<uint8_t>{0x48, 0xB9, 0xF0, 0xDE, 0xBC, 0x9A, 0x78,
                                  0x56, 0x34, 0x12}));
}

TEST(AsmX64Test, MemoryOperandsEncodeSibAndDispCorrectly) {
  // Plain [rbx].
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_rm(Reg::rax, Reg::rbx, 0); }),
            (std::vector<uint8_t>{0x48, 0x8B, 0x03}));
  // rsp base always takes a SIB byte.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_rm(Reg::rcx, Reg::rsp, 8); }),
            (std::vector<uint8_t>{0x48, 0x8B, 0x4C, 0x24, 0x08}));
  // rbp/r13 base cannot use mod 00 — disp8 zero instead.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_rm(Reg::rax, Reg::rbp, 0); }),
            (std::vector<uint8_t>{0x48, 0x8B, 0x45, 0x00}));
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_rm(Reg::rax, Reg::r13, 0); }),
            (std::vector<uint8_t>{0x49, 0x8B, 0x45, 0x00}));
  // Store with a high source register.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_mr(Reg::rbx, 40, Reg::r13); }),
            (std::vector<uint8_t>{0x4C, 0x89, 0x6B, 0x28}));
  // Wide displacement → mod 10 + disp32.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_rm(Reg::rax, Reg::rbx, 0x200); }),
            (std::vector<uint8_t>{0x48, 0x8B, 0x83, 0x00, 0x02, 0x00, 0x00}));
}

TEST(AsmX64Test, ByteOperationsForceRexForSplBplSilDil) {
  // al needs no REX.
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_mr8(Reg::rsp, 0, Reg::rax); }),
            (std::vector<uint8_t>{0x88, 0x04, 0x24}));
  // sil requires the bare REX 0x40 (otherwise the encoding means dh).
  EXPECT_EQ(Emit([](Assembler* as) { as->mov_mr8(Reg::rsp, 0, Reg::rsi); }),
            (std::vector<uint8_t>{0x40, 0x88, 0x34, 0x24}));
  EXPECT_EQ(Emit([](Assembler* as) { as->movzx_rm8(Reg::rax, Reg::r14, 16); }),
            (std::vector<uint8_t>{0x41, 0x0F, 0xB6, 0x46, 0x10}));
  EXPECT_EQ(Emit([](Assembler* as) { as->setcc(Cond::e, Reg::rax); }),
            (std::vector<uint8_t>{0x0F, 0x94, 0xC0}));
  EXPECT_EQ(Emit([](Assembler* as) { as->setcc(Cond::np, Reg::rcx); }),
            (std::vector<uint8_t>{0x0F, 0x9B, 0xC1}));
  EXPECT_EQ(Emit([](Assembler* as) { as->or_r8r8(Reg::r12, Reg::rax); }),
            (std::vector<uint8_t>{0x41, 0x08, 0xC4}));
}

TEST(AsmX64Test, ScaledIndexFormsUseSibScale8) {
  // mov dword [rdx + r13*8], imm32.
  EXPECT_EQ(Emit([](Assembler* as) {
              as->mov_mi32_idx8(Reg::rdx, Reg::r13, 0, 7);
            }),
            (std::vector<uint8_t>{0x42, 0xC7, 0x04, 0xEA, 0x07, 0x00, 0x00,
                                  0x00}));
  // mov byte [rdx + r13*8 + 4], al.
  EXPECT_EQ(Emit([](Assembler* as) {
              as->mov_mr8_idx8(Reg::rdx, Reg::r13, 4, Reg::rax);
            }),
            (std::vector<uint8_t>{0x42, 0x88, 0x44, 0xEA, 0x04}));
}

TEST(AsmX64Test, StackAndCallEncodings) {
  EXPECT_EQ(Emit([](Assembler* as) { as->push_r(Reg::rbp); }),
            (std::vector<uint8_t>{0x55}));
  EXPECT_EQ(Emit([](Assembler* as) { as->push_r(Reg::r12); }),
            (std::vector<uint8_t>{0x41, 0x54}));
  EXPECT_EQ(Emit([](Assembler* as) { as->pop_r(Reg::r14); }),
            (std::vector<uint8_t>{0x41, 0x5E}));
  EXPECT_EQ(Emit([](Assembler* as) { as->sub_ri(Reg::rsp, 16); }),
            (std::vector<uint8_t>{0x48, 0x83, 0xEC, 0x10}));
  EXPECT_EQ(Emit([](Assembler* as) { as->sub_ri(Reg::rsp, 128); }),
            (std::vector<uint8_t>{0x48, 0x81, 0xEC, 0x80, 0x00, 0x00, 0x00}));
  EXPECT_EQ(Emit([](Assembler* as) { as->call_m(Reg::rbx, 80); }),
            (std::vector<uint8_t>{0xFF, 0x53, 0x50}));
  EXPECT_EQ(Emit([](Assembler* as) { as->xor_rr32(Reg::r12, Reg::r12); }),
            (std::vector<uint8_t>{0x45, 0x31, 0xE4}));
  EXPECT_EQ(Emit([](Assembler* as) { as->inc_r(Reg::r13); }),
            (std::vector<uint8_t>{0x49, 0xFF, 0xC5}));
  EXPECT_EQ(Emit([](Assembler* as) { as->cqo(); }),
            (std::vector<uint8_t>{0x48, 0x99}));
  EXPECT_EQ(Emit([](Assembler* as) { as->idiv_r(Reg::rcx); }),
            (std::vector<uint8_t>{0x48, 0xF7, 0xF9}));
  EXPECT_EQ(Emit([](Assembler* as) { as->test_mi8(Reg::rbx, 48, 1); }),
            (std::vector<uint8_t>{0xF6, 0x43, 0x30, 0x01}));
  EXPECT_EQ(Emit([](Assembler* as) { as->cmp_mi8(Reg::rax, 3, 7); }),
            (std::vector<uint8_t>{0x80, 0x78, 0x03, 0x07}));
  EXPECT_EQ(Emit([](Assembler* as) { as->cmp_mi32(Reg::rdi, 8, 5); }),
            (std::vector<uint8_t>{0x48, 0x81, 0x7F, 0x08, 0x05, 0x00, 0x00,
                                  0x00}));
}

TEST(AsmX64Test, SseEncodingsPutMandatoryPrefixBeforeRex) {
  EXPECT_EQ(Emit([](Assembler* as) { as->ucomisd_xx(Xmm::xmm0, Xmm::xmm1); }),
            (std::vector<uint8_t>{0x66, 0x0F, 0x2E, 0xC1}));
  EXPECT_EQ(Emit([](Assembler* as) { as->movsd_xm(Xmm::xmm0, Reg::rsp, 0); }),
            (std::vector<uint8_t>{0xF2, 0x0F, 0x10, 0x04, 0x24}));
  EXPECT_EQ(Emit([](Assembler* as) { as->movsd_mx(Reg::rsp, 0, Xmm::xmm0); }),
            (std::vector<uint8_t>{0xF2, 0x0F, 0x11, 0x04, 0x24}));
  EXPECT_EQ(
      Emit([](Assembler* as) { as->cvtsi2sd_xm(Xmm::xmm0, Reg::rsp, 8); }),
      (std::vector<uint8_t>{0xF2, 0x48, 0x0F, 0x2A, 0x44, 0x24, 0x08}));
  EXPECT_EQ(Emit([](Assembler* as) { as->addsd_xm(Xmm::xmm0, Reg::rsp, 8); }),
            (std::vector<uint8_t>{0xF2, 0x0F, 0x58, 0x44, 0x24, 0x08}));
  EXPECT_EQ(Emit([](Assembler* as) { as->xorpd_xx(Xmm::xmm2, Xmm::xmm2); }),
            (std::vector<uint8_t>{0x66, 0x0F, 0x57, 0xD2}));
}

TEST(AsmX64Test, ForwardJumpFixupPatchesRel32) {
  Assembler as;
  Assembler::Label l = as.NewLabel();
  as.jmp(l);
  as.ret();
  as.Bind(l);
  as.mov_ri(Reg::rax, 1);
  ASSERT_TRUE(as.Finalize());
  // jmp rel32 skips exactly the one-byte ret.
  EXPECT_EQ(as.code()[0], 0xE9);
  EXPECT_EQ(as.code()[1], 0x01);
  EXPECT_EQ(as.code()[5], 0xC3);
}

TEST(AsmX64Test, UnboundLabelPoisonsFinalize) {
  Assembler as;
  Assembler::Label l = as.NewLabel();
  as.jmp(l);
  EXPECT_FALSE(as.Finalize());
  EXPECT_FALSE(as.ok());
}

#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))

using Fn2 = int64_t (*)(int64_t, int64_t);

Fn2 Seal(const Assembler& as, std::unique_ptr<ExecArena>* arena) {
  *arena = ExecArena::Build(as.size());
  if (!*arena) return nullptr;
  const void* p = (*arena)->Add(as.code());
  if (p == nullptr || !(*arena)->Finalize()) return nullptr;
  return reinterpret_cast<Fn2>(reinterpret_cast<uintptr_t>(p));
}

TEST(AsmX64ExecTest, StackFrameLoadAddStoreRoundTrip) {
  Assembler as;
  as.sub_ri(Reg::rsp, 16);
  as.mov_mr(Reg::rsp, 0, Reg::rdi);
  as.mov_mr(Reg::rsp, 8, Reg::rsi);
  as.mov_rm(Reg::rax, Reg::rsp, 0);
  as.add_rm(Reg::rax, Reg::rsp, 8);
  as.add_ri(Reg::rsp, 16);
  as.ret();
  ASSERT_TRUE(as.Finalize());
  std::unique_ptr<ExecArena> arena;
  Fn2 fn = Seal(as, &arena);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(2, 40), 42);
  EXPECT_EQ(fn(-10, 3), -7);
}

TEST(AsmX64ExecTest, ConditionalBranchAndNegate) {
  // abs(x) through test / jcc(ns) / neg_m64.
  Assembler as;
  Assembler::Label skip = as.NewLabel();
  as.sub_ri(Reg::rsp, 8);
  as.mov_mr(Reg::rsp, 0, Reg::rdi);
  as.test_rr(Reg::rdi, Reg::rdi);
  as.jcc(Cond::ns, skip);
  as.neg_m64(Reg::rsp, 0);
  as.Bind(skip);
  as.mov_rm(Reg::rax, Reg::rsp, 0);
  as.add_ri(Reg::rsp, 8);
  as.ret();
  ASSERT_TRUE(as.Finalize());
  std::unique_ptr<ExecArena> arena;
  Fn2 fn = Seal(as, &arena);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(-5, 0), 5);
  EXPECT_EQ(fn(7, 0), 7);
  EXPECT_EQ(fn(0, 0), 0);
}

TEST(AsmX64ExecTest, SignedDivisionTruncatesTowardZero) {
  Assembler as;
  as.mov_rr(Reg::rax, Reg::rdi);
  as.mov_rr(Reg::rcx, Reg::rsi);
  as.cqo();
  as.idiv_r(Reg::rcx);
  as.ret();
  ASSERT_TRUE(as.Finalize());
  std::unique_ptr<ExecArena> arena;
  Fn2 fn = Seal(as, &arena);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn(42, 5), 8);
  EXPECT_EQ(fn(-7, 2), -3);
  EXPECT_EQ(fn(7, -2), -3);
}

TEST(AsmX64ExecTest, ScalarDoubleArithmetic) {
  // fn(a, b) = a + b over doubles (SysV passes them in xmm0/xmm1).
  Assembler as;
  as.sub_ri(Reg::rsp, 8);
  as.movsd_mx(Reg::rsp, 0, Xmm::xmm1);
  as.addsd_xm(Xmm::xmm0, Reg::rsp, 0);
  as.add_ri(Reg::rsp, 8);
  as.ret();
  ASSERT_TRUE(as.Finalize());
  std::unique_ptr<ExecArena> arena = ExecArena::Build(as.size());
  ASSERT_NE(arena, nullptr);
  const void* p = arena->Add(as.code());
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(arena->Finalize());
  auto fn = reinterpret_cast<double (*)(double, double)>(
      reinterpret_cast<uintptr_t>(p));
  EXPECT_EQ(fn(1.5, 2.25), 3.75);
  EXPECT_EQ(fn(-1.0, 1.0), 0.0);
}

TEST(AsmX64ExecTest, ArenaRefusesWritesAfterSeal) {
  auto arena = ExecArena::Build(64);
  ASSERT_NE(arena, nullptr);
  const std::vector<uint8_t> code = {0xC3};  // ret
  ASSERT_NE(arena->Add(code), nullptr);
  ASSERT_TRUE(arena->Finalize());
  EXPECT_TRUE(arena->finalized());
  EXPECT_EQ(arena->Add(code), nullptr);
}

TEST(AsmX64ExecTest, ArenaAlignsEntriesTo16Bytes) {
  auto arena = ExecArena::Build(256);
  ASSERT_NE(arena, nullptr);
  const std::vector<uint8_t> code = {0xC3};
  const void* a = arena->Add(code);
  const void* b = arena->Add(code);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) - reinterpret_cast<uintptr_t>(a),
            16u);
}

#endif  // x86-64 unix

}  // namespace
}  // namespace exotica::codegen
