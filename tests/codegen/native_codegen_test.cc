// Unit tests for the native step/condition emitter (step_jit.h): exact
// value and Status parity between NativeCondition and the typed VM on
// handwritten conditions (the differential test covers the randomized
// corpus), and plan-level NativeStepUnit compilation — one entry per
// activity, per-activity bailout for conditions the emitter cannot
// lower, min_slots propagation, and the sealed-arena bookkeeping.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "codegen/step_jit.h"
#include "data/container.h"
#include "expr/compile.h"
#include "expr/parser.h"
#include "wf/builder.h"
#include "../testutil.h"

namespace exotica::codegen {
namespace {

using data::ScalarType;
using data::Value;
using test::BindConstRc;
using test::DeclareDefaultProgram;

class NativeCodegenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!NativeCodegenAvailable()) {
      GTEST_SKIP() << "native codegen unavailable on this build/platform";
    }
    data::StructType t("Probe");
    ASSERT_TRUE(t.AddScalar("l", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("lz", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("ln", ScalarType::kLong).ok());
    ASSERT_TRUE(t.AddScalar("f", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("g", ScalarType::kFloat).ok());
    ASSERT_TRUE(t.AddScalar("b", ScalarType::kBool).ok());
    ASSERT_TRUE(reg_.Register(std::move(t)).ok());
  }

  data::Container MakeProbe() {
    auto c = data::Container::Create(reg_, "Probe");
    EXPECT_TRUE(c.ok());
    data::Container container = std::move(*c);
    EXPECT_TRUE(container.Set("l", Value(int64_t{7})).ok());
    EXPECT_TRUE(container.Set("lz", Value(int64_t{0})).ok());
    // "ln" stays unwritten: null read.
    EXPECT_TRUE(container.Set("f", Value(2.5)).ok());
    EXPECT_TRUE(container.Set("g", Value(-0.5)).ok());
    EXPECT_TRUE(container.Set("b", Value(true)).ok());
    return container;
  }

  /// Compiles `source` against the Probe container; the condition must be
  /// typed (the emitter only accepts typed programs) and the native
  /// compile must succeed.
  struct Compiled {
    expr::CompiledCondition prog;
    std::unique_ptr<NativeCondition> native;
  };
  Compiled MustCompile(const std::string& source,
                       const data::Container& container) {
    auto node = expr::Parse(source);
    EXPECT_TRUE(node.ok()) << source;
    auto prog = expr::ConditionCompiler::Compile(node->get(), container);
    EXPECT_TRUE(prog.ok()) << source << ": " << prog.status().ToString();
    EXPECT_TRUE(prog->typed()) << source << " did not monomorphize";
    auto native = NativeCondition::Compile(*prog);
    EXPECT_NE(native, nullptr) << source;
    return Compiled{std::move(*prog), std::move(native)};
  }

  data::TypeRegistry reg_;
};

TEST_F(NativeCodegenTest, AvailabilityProbeIsStable) {
  // The probe result is cached; repeated calls must agree (and we only
  // reach here when the fixture saw it available).
  EXPECT_TRUE(NativeCodegenAvailable());
  EXPECT_TRUE(NativeCodegenAvailable());
}

TEST_F(NativeCodegenTest, HandwrittenConditionsMatchTypedVmExactly) {
  data::Container container = MakeProbe();
  // Success paths across every lowered kernel: long arithmetic, float
  // arithmetic with int widening, all six comparisons in both domains,
  // NaN-safe forms, negation, not, and short-circuit and/or.
  const char* kSources[] = {
      "l + 2 * l - 3",
      "l / 2",
      "l % 3",
      "-l + 10",
      "f + g",
      "f * g - 1.5",
      "f / g",
      "-f",
      "l = 7", "l != 7", "l < 8", "l <= 7", "l > 6", "l >= 7",
      "f = 2.5", "f != 2.5", "f < g", "f <= g", "f > g", "f >= g",
      "l < f", "f >= l",
      "b", "not b",
      "b and l = 7", "b or l = 0", "not b or f > 0",
      "l = 7 and f > 0 and not (g > 0)",
      // Error paths: null read (ln unwritten, no default), division and
      // modulo by zero in both operand orders reached through loads.
      "ln + 1", "1 + ln", "not (ln = 0)",
      "l / lz", "l % lz", "f / (lz + 0)",
      "b and ln = 1",   // error on the taken branch
      "b or ln = 1",    // short-circuits: no error
  };
  for (const char* source : kSources) {
    SCOPED_TRACE(source);
    Compiled c = MustCompile(source, container);
    Result<Value> vm = c.prog.Evaluate(container);
    Result<Value> nat = c.native->Evaluate(container);
    ASSERT_EQ(vm.ok(), nat.ok())
        << "vm: " << (vm.ok() ? vm->ToString() : vm.status().ToString())
        << "\nnative: "
        << (nat.ok() ? nat->ToString() : nat.status().ToString());
    if (vm.ok()) {
      EXPECT_EQ(*vm, *nat);
    } else {
      EXPECT_EQ(vm.status().ToString(), nat.status().ToString());
    }
  }
}

TEST_F(NativeCodegenTest, EvaluateBoolMatchesIncludingNonBooleanError) {
  data::Container container = MakeProbe();
  for (const char* source : {"l > 3", "not b", "l + 1", "f", "ln = 0"}) {
    SCOPED_TRACE(source);
    Compiled c = MustCompile(source, container);
    Result<bool> vm = c.prog.EvaluateBool(container);
    Result<bool> nat = c.native->EvaluateBool(container);
    ASSERT_EQ(vm.ok(), nat.ok());
    if (vm.ok()) {
      EXPECT_EQ(*vm, *nat);
    } else {
      // "condition did not evaluate to a boolean: ..." and the null-read
      // message must match byte for byte.
      EXPECT_EQ(vm.status().ToString(), nat.status().ToString());
    }
  }
}

TEST_F(NativeCodegenTest, UndersizedContainerRaisesTheVmLayoutError) {
  // Compile against a fully written container, evaluate against a fresh
  // one whose value vector is shorter (nothing written): Run()'s
  // min_slots_ guard must reproduce CompiledCondition's exact
  // bound-layout error instead of reading out of bounds.
  data::Container full = MakeProbe();
  Compiled c = MustCompile("b and l = 7", full);

  data::StructType small("Small");
  ASSERT_TRUE(small.AddScalar("x", ScalarType::kLong).ok());
  ASSERT_TRUE(reg_.Register(std::move(small)).ok());
  auto sc = data::Container::Create(reg_, "Small");
  ASSERT_TRUE(sc.ok());

  Result<Value> vm = c.prog.Evaluate(*sc);
  Result<Value> nat = c.native->Evaluate(*sc);
  ASSERT_FALSE(vm.ok());
  ASSERT_FALSE(nat.ok());
  EXPECT_EQ(vm.status().ToString(), nat.status().ToString());
}

class NativeStepUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!NativeCodegenAvailable()) {
      GTEST_SKIP() << "native codegen unavailable on this build/platform";
    }
  }

  wf::DefinitionStore store_;
  wfrt::ProgramRegistry programs_;
};

TEST_F(NativeStepUnitTest, FullyTypedDiamondCompilesEveryActivity) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "p").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "p", 0).ok());
  wf::ProcessBuilder b(&store_, "diamond");
  b.Program("A", "p").Program("B", "p").Program("C", "p");
  b.Program("D", "p").OrJoin();
  b.Connect("A", "B", "RC = 0");
  b.Otherwise("A", "C");
  b.Connect("B", "D");
  b.Connect("C", "D");
  ASSERT_TRUE(b.Register().ok());

  auto def = store_.FindProcess("diamond");
  ASSERT_TRUE(def.ok());
  const auto& unit = (*def)->plan().native_unit();
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->activity_count(), 4u);
  EXPECT_EQ(unit->programs_compiled(), 4u);
  EXPECT_EQ(unit->bailouts(), 0u);
  EXPECT_GT(unit->code_bytes(), 0u);
  for (uint32_t aid = 0; aid < unit->activity_count(); ++aid) {
    EXPECT_NE(unit->entry(aid), nullptr) << "activity " << aid;
  }
  // A's condition reads RC from _Default, so its sweep demands at least
  // one readable slot; the unconditioned activities demand none.
  EXPECT_GE(unit->min_slots(0), 1u);
  EXPECT_EQ(unit->min_slots(1), 0u);
}

TEST_F(NativeStepUnitTest, TreeWalkConditionBailsOutJustThatActivity) {
  ASSERT_TRUE(DeclareDefaultProgram(&store_, "q").ok());
  ASSERT_TRUE(BindConstRc(&programs_, "q", 0).ok());
  wf::ProcessBuilder b(&store_, "mixed");
  b.Program("A", "q").Program("B", "q").Program("C", "q");
  // String comparison never gets a typed program — the plan keeps a
  // kTree/untyped step for A and the emitter must bail on A only.
  b.Connect("A", "B", "RC < \"x\"");
  b.Otherwise("A", "C");
  b.Connect("B", "C", "RC = 0");
  ASSERT_TRUE(b.Register().ok());

  auto def = store_.FindProcess("mixed");
  ASSERT_TRUE(def.ok());
  const auto& unit = (*def)->plan().native_unit();
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->activity_count(), 3u);
  EXPECT_EQ(unit->bailouts(), 1u);
  EXPECT_EQ(unit->programs_compiled(), 2u);
  EXPECT_EQ(unit->entry(0), nullptr);   // A: bailed
  EXPECT_NE(unit->entry(1), nullptr);   // B: typed condition, compiled
  EXPECT_NE(unit->entry(2), nullptr);   // C: sink
}

}  // namespace
}  // namespace exotica::codegen
