#include "txn/tpc.h"

#include <gtest/gtest.h>

namespace exotica::txn {
namespace {

using data::Value;

class TpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mdb_.AddSite("a").ok());
    ASSERT_TRUE(mdb_.AddSite("b").ok());
  }

  TpcBranch Write(const std::string& site, const std::string& key, int64_t v) {
    return {site, [key, v](Transaction& t) { return t.Put(key, Value(v)); }};
  }

  MultiDatabase mdb_;
};

TEST_F(TpcTest, CommitsAtomicallyAcrossSites) {
  TwoPhaseCommit tpc(&mdb_);
  auto out = tpc.Execute({Write("a", "x", 1), Write("b", "y", 2)});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->committed);
  EXPECT_EQ((*mdb_.site("a"))->ReadCommitted("x")->as_long(), 1);
  EXPECT_EQ((*mdb_.site("b"))->ReadCommitted("y")->as_long(), 2);
  EXPECT_EQ(tpc.stats().globals_committed, 1u);
}

TEST_F(TpcTest, NoVoteAbortsEverywhere) {
  (*mdb_.site("b"))->FailNextCommits(1);  // b votes NO at prepare
  TwoPhaseCommit tpc(&mdb_);
  auto out = tpc.Execute({Write("a", "x", 1), Write("b", "y", 2)});
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->committed);
  EXPECT_EQ(out->failed_branch, 1);
  // Atomicity: neither write installed — unlike the bare multidatabase
  // (MultiDatabaseTest.NoGlobalAtomicity).
  EXPECT_TRUE((*mdb_.site("a"))->ReadCommitted("x")->is_null());
  EXPECT_TRUE((*mdb_.site("b"))->ReadCommitted("y")->is_null());
}

TEST_F(TpcTest, BodyFailureAbortsEverywhere) {
  TwoPhaseCommit tpc(&mdb_);
  auto out = tpc.Execute(
      {Write("a", "x", 1),
       {"b", [](Transaction&) { return Status::Aborted("no stock"); }}});
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->committed);
  EXPECT_EQ(out->failed_branch, 1);
  EXPECT_TRUE((*mdb_.site("a"))->ReadCommitted("x")->is_null());
}

TEST_F(TpcTest, PreparedTransactionsCannotRefuseCommit) {
  // Arm a single fault: it fires at prepare of the FIRST branch if it
  // were evaluated at commit time it could break phase 2. With two
  // faults armed on 'a', the first kills prepare; re-running with zero
  // faults after a prepared vote must commit.
  Site* a = *mdb_.site("a");
  auto t = a->Begin();
  ASSERT_TRUE(t->Put("k", Value(int64_t{1})).ok());
  ASSERT_TRUE(t->Prepare().ok());
  // Fault armed AFTER the vote: too late, the site promised.
  a->FailNextCommits(1);
  EXPECT_TRUE(t->Commit().ok());
  EXPECT_EQ(a->ReadCommitted("k")->as_long(), 1);
}

TEST_F(TpcTest, NoWorkAfterPrepare) {
  Site* a = *mdb_.site("a");
  auto t = a->Begin();
  ASSERT_TRUE(t->Put("k", Value(int64_t{1})).ok());
  ASSERT_TRUE(t->Prepare().ok());
  EXPECT_TRUE(t->Put("k2", Value(int64_t{2})).IsFailedPrecondition());
  EXPECT_TRUE(t->Get("k").status().IsFailedPrecondition());
  EXPECT_TRUE(t->Prepare().IsFailedPrecondition());
  EXPECT_TRUE(t->Abort().ok());  // coordinator may still decide abort
  EXPECT_TRUE(a->ReadCommitted("k")->is_null());
}

TEST_F(TpcTest, InDoubtTransactionsPresumedAbortAtRestart) {
  Site* a = *mdb_.site("a");
  auto t = a->Begin();
  ASSERT_TRUE(t->Put("k", Value(int64_t{1})).ok());
  ASSERT_TRUE(t->Prepare().ok());
  // Crash with the vote logged but no outcome: in-doubt.
  a->Crash();
  EXPECT_EQ(a->wal().InDoubt().size(), 1u);
  ASSERT_TRUE(a->Restart().ok());
  // Presumed abort: the write is not installed.
  EXPECT_TRUE(a->ReadCommitted("k")->is_null());
  (void)t->Abort();
}

TEST_F(TpcTest, EmptyGlobalRejected) {
  TwoPhaseCommit tpc(&mdb_);
  EXPECT_TRUE(tpc.Execute({}).status().IsInvalidArgument());
}

TEST_F(TpcTest, UnknownSiteSurfaces) {
  TwoPhaseCommit tpc(&mdb_);
  EXPECT_TRUE(tpc.Execute({Write("ghost", "x", 1)}).status().IsNotFound());
}

}  // namespace
}  // namespace exotica::txn
