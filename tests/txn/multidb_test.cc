#include "txn/multidb.h"

#include <gtest/gtest.h>

namespace exotica::txn {
namespace {

using data::Value;

TEST(MultiDatabaseTest, SitesAreIndependent) {
  MultiDatabase mdb;
  ASSERT_TRUE(mdb.AddSite("bank").ok());
  ASSERT_TRUE(mdb.AddSite("airline").ok());
  EXPECT_TRUE(mdb.AddSite("bank").IsAlreadyExists());
  EXPECT_TRUE(mdb.AddSite("").IsInvalidArgument());
  EXPECT_EQ(mdb.SiteNames(), (std::vector<std::string>{"bank", "airline"}));

  auto bank = mdb.site("bank");
  auto airline = mdb.site("airline");
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(airline.ok());
  EXPECT_TRUE(mdb.site("ghost").status().IsNotFound());

  {
    auto t = (*bank)->Begin();
    ASSERT_TRUE(t->Put("balance", Value(int64_t{100})).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  // Same key on the other site is a different object.
  EXPECT_TRUE((*airline)->ReadCommitted("balance")->is_null());
  EXPECT_EQ((*bank)->ReadCommitted("balance")->as_long(), 100);
}

TEST(MultiDatabaseTest, NoGlobalAtomicity) {
  // The defining property of the environment (paper §4.2): one site can
  // commit while the other unilaterally aborts, and nothing in the
  // substrate prevents the resulting partial state.
  MultiDatabase mdb;
  ASSERT_TRUE(mdb.AddSite("s1").ok());
  ASSERT_TRUE(mdb.AddSite("s2").ok());
  (*mdb.site("s2"))->FailNextCommits(1);

  auto t1 = (*mdb.site("s1"))->Begin();
  auto t2 = (*mdb.site("s2"))->Begin();
  ASSERT_TRUE(t1->Put("x", Value(int64_t{1})).ok());
  ASSERT_TRUE(t2->Put("y", Value(int64_t{2})).ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().IsAborted());

  EXPECT_EQ((*mdb.site("s1"))->ReadCommitted("x")->as_long(), 1);
  EXPECT_TRUE((*mdb.site("s2"))->ReadCommitted("y")->is_null());
}

TEST(MultiDatabaseTest, AggregateStats) {
  MultiDatabase mdb;
  ASSERT_TRUE(mdb.AddSite("a").ok());
  ASSERT_TRUE(mdb.AddSite("b").ok());
  for (const char* name : {"a", "b"}) {
    auto t = (*mdb.site(name))->Begin();
    ASSERT_TRUE(t->Put("k", Value(int64_t{1})).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  SiteStats agg = mdb.AggregateStats();
  EXPECT_EQ(agg.begins, 2u);
  EXPECT_EQ(agg.commits, 2u);
  EXPECT_EQ(agg.writes, 2u);
}

}  // namespace
}  // namespace exotica::txn
