#include "txn/site.h"

#include <thread>

#include <gtest/gtest.h>

namespace exotica::txn {
namespace {

using data::Value;

TEST(SiteTest, CommitMakesWritesVisible) {
  Site site("s1");
  auto t = site.Begin();
  ASSERT_TRUE(t->Put("a", Value(int64_t{1})).ok());
  ASSERT_TRUE(t->Put("b", Value("x")).ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(*site.ReadCommitted("a"), Value(int64_t{1}));
  EXPECT_EQ(*site.ReadCommitted("b"), Value("x"));
  EXPECT_EQ(site.stats().commits, 1u);
}

TEST(SiteTest, AbortRollsBack) {
  Site site("s1");
  {
    auto t = site.Begin();
    ASSERT_TRUE(t->Put("a", Value(int64_t{1})).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto t = site.Begin();
  ASSERT_TRUE(t->Put("a", Value(int64_t{2})).ok());
  ASSERT_TRUE(t->Put("c", Value(int64_t{3})).ok());
  ASSERT_TRUE(t->Erase("a").ok());
  ASSERT_TRUE(t->Abort().ok());
  EXPECT_EQ(*site.ReadCommitted("a"), Value(int64_t{1}));
  EXPECT_TRUE(site.ReadCommitted("c")->is_null());
}

TEST(SiteTest, DestructorAbortsActiveTransaction) {
  Site site("s1");
  { auto t = site.Begin(); ASSERT_TRUE(t->Put("a", Value(int64_t{9})).ok()); }
  EXPECT_TRUE(site.ReadCommitted("a")->is_null());
  EXPECT_EQ(site.stats().aborts, 1u);
}

TEST(SiteTest, ReadYourOwnWrites) {
  Site site("s1");
  auto t = site.Begin();
  ASSERT_TRUE(t->Put("a", Value(int64_t{5})).ok());
  EXPECT_EQ(*t->Get("a"), Value(int64_t{5}));
  ASSERT_TRUE(t->Erase("a").ok());
  EXPECT_TRUE(t->Get("a")->is_null());
  ASSERT_TRUE(t->Commit().ok());
}

TEST(SiteTest, OperationsAfterCommitRejected) {
  Site site("s1");
  auto t = site.Begin();
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_TRUE(t->Put("a", Value(int64_t{1})).IsFailedPrecondition());
  EXPECT_TRUE(t->Get("a").status().IsFailedPrecondition());
  EXPECT_TRUE(t->Commit().IsFailedPrecondition());
  EXPECT_TRUE(t->Abort().IsFailedPrecondition());
}

TEST(SiteTest, ForcedUnilateralAbortAtCommit) {
  Site site("s1");
  site.FailNextCommits(1);
  auto t = site.Begin();
  ASSERT_TRUE(t->Put("a", Value(int64_t{1})).ok());
  Status st = t->Commit();
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_TRUE(site.ReadCommitted("a")->is_null());
  EXPECT_EQ(site.stats().unilateral_aborts, 1u);

  // Next commit succeeds.
  auto t2 = site.Begin();
  ASSERT_TRUE(t2->Put("a", Value(int64_t{2})).ok());
  EXPECT_TRUE(t2->Commit().ok());
}

TEST(SiteTest, ProbabilisticAbortIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Site site("s", {});
    site.SetCommitFailureRate(0.5, seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 50; ++i) {
      auto t = site.Begin();
      EXPECT_TRUE(t->Put("k", Value(int64_t{i})).ok());
      outcomes.push_back(t->Commit().ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SiteTest, CrashLosesStoreRestartRecoversFromWal) {
  Site site("s1");
  {
    auto t = site.Begin();
    ASSERT_TRUE(t->Put("a", Value(int64_t{1})).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto in_flight = site.Begin();
  ASSERT_TRUE(in_flight->Put("b", Value(int64_t{2})).ok());

  site.Crash();
  EXPECT_TRUE(site.ReadCommitted("a").status().IsFailedPrecondition());
  // The in-flight handle is poisoned.
  EXPECT_TRUE(in_flight->Put("c", Value(int64_t{3})).IsAborted());

  ASSERT_TRUE(site.Restart().ok());
  EXPECT_EQ(*site.ReadCommitted("a"), Value(int64_t{1}));
  EXPECT_TRUE(site.ReadCommitted("b")->is_null());  // loser's write gone
  EXPECT_TRUE(site.Restart().IsFailedPrecondition());
  (void)in_flight->Abort();
}

TEST(SiteTest, ConflictingWritersSerialize) {
  Site site("s1");
  {
    auto t = site.Begin();
    ASSERT_TRUE(t->Put("counter", Value(int64_t{0})).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&site] {
      for (int j = 0; j < kIncrements; ++j) {
        while (true) {
          auto t = site.Begin();
          auto v = t->Get("counter");
          if (!v.ok()) continue;  // deadlock/timeout: retry
          Status w = t->Put("counter", Value(v->as_long() + 1));
          if (!w.ok()) continue;
          if (t->Commit().ok()) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(site.ReadCommitted("counter")->as_long(), kThreads * kIncrements);
}

}  // namespace
}  // namespace exotica::txn
