#include "txn/wal.h"

#include <gtest/gtest.h>

namespace exotica::txn {
namespace {

using data::Value;

WalRecord Update(uint64_t txn, const std::string& key, Value before,
                 Value after) {
  WalRecord r;
  r.txn = txn;
  r.type = WalRecordType::kUpdate;
  r.key = key;
  r.before = std::move(before);
  r.after = std::move(after);
  return r;
}

WalRecord Mark(uint64_t txn, WalRecordType type) {
  WalRecord r;
  r.txn = txn;
  r.type = type;
  return r;
}

TEST(WalTest, LsnsAreSequential) {
  WriteAheadLog wal;
  EXPECT_EQ(wal.Append(Mark(1, WalRecordType::kBegin)), 0u);
  EXPECT_EQ(wal.Append(Mark(1, WalRecordType::kCommit)), 1u);
  EXPECT_EQ(wal.size(), 2u);
}

TEST(WalTest, ReplayAppliesOnlyCommitted) {
  WriteAheadLog wal;
  wal.Append(Mark(1, WalRecordType::kBegin));
  wal.Append(Update(1, "a", Value(), Value(int64_t{1})));
  wal.Append(Mark(1, WalRecordType::kCommit));

  wal.Append(Mark(2, WalRecordType::kBegin));
  wal.Append(Update(2, "b", Value(), Value(int64_t{2})));
  wal.Append(Mark(2, WalRecordType::kAbort));

  wal.Append(Mark(3, WalRecordType::kBegin));
  wal.Append(Update(3, "c", Value(), Value(int64_t{3})));
  // txn 3 in-flight at crash: loser.

  auto store = wal.Replay();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.at("a"), Value(int64_t{1}));
}

TEST(WalTest, ReplayHonorsDeletes) {
  WriteAheadLog wal;
  wal.Append(Mark(1, WalRecordType::kBegin));
  wal.Append(Update(1, "a", Value(), Value(int64_t{1})));
  wal.Append(Mark(1, WalRecordType::kCommit));
  wal.Append(Mark(2, WalRecordType::kBegin));
  wal.Append(Update(2, "a", Value(int64_t{1}), Value()));  // delete
  wal.Append(Mark(2, WalRecordType::kCommit));
  EXPECT_TRUE(wal.Replay().empty());
}

TEST(WalTest, ReplayLastCommittedWins) {
  WriteAheadLog wal;
  for (uint64_t t = 1; t <= 3; ++t) {
    wal.Append(Mark(t, WalRecordType::kBegin));
    wal.Append(Update(t, "k", Value(), Value(static_cast<int64_t>(t))));
    wal.Append(Mark(t, WalRecordType::kCommit));
  }
  EXPECT_EQ(wal.Replay().at("k"), Value(int64_t{3}));
}

}  // namespace
}  // namespace exotica::txn
