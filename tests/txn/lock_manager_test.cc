#include "txn/lock_manager.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

namespace exotica::txn {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "k", LockMode::kShared));
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

TEST(LockManagerTest, ExclusiveBlocksOthersUntilRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    Status st = lm.Acquire(2, "k", LockMode::kShared);
    EXPECT_TRUE(st.ok()) << st.ToString();
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, ReentrantAcquisition) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kShared).ok());
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

TEST(LockManagerTest, UpgradeWhenSoleSharedHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, TimeoutExpires) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "k", LockMode::kExclusive).ok());
  Status st = lm.Acquire(2, "k", LockMode::kShared, 20000);  // 20ms
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_EQ(lm.stats().timeouts, 1u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, TwoTxnDeadlockDetected) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, "b", LockMode::kExclusive).ok());

  std::atomic<int> outcome{0};  // 1 = T1 got b, 2 = T1 deadlocked
  std::thread t1([&] {
    Status st = lm.Acquire(1, "b", LockMode::kExclusive);
    if (st.ok()) outcome = 1;
    else if (st.IsDeadlock()) outcome = 2;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // T2 now requests "a": either T1 is already waiting (cycle -> T2 gets
  // Deadlock) or the timing worked out. In this arrangement T1 blocks on
  // b, so T2's request must be refused as a deadlock.
  Status st2 = lm.Acquire(2, "a", LockMode::kExclusive);
  EXPECT_TRUE(st2.IsDeadlock()) << st2.ToString();
  lm.ReleaseAll(2);
  t1.join();
  EXPECT_EQ(outcome.load(), 1);  // T1 proceeds after T2 released
  lm.ReleaseAll(1);
  EXPECT_GE(lm.stats().deadlocks, 1u);
}

TEST(LockManagerTest, StatsCountAcquisitions) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, "b", LockMode::kExclusive).ok());
  EXPECT_EQ(lm.stats().acquisitions, 2u);
  lm.ReleaseAll(1);
}

TEST(LockManagerTest, ConcurrentCountersUnderContention) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        TxnId id = static_cast<TxnId>(t * kIters + i + 1);
        Status st = lm.Acquire(id, "hot", LockMode::kExclusive, 1000000);
        if (st.ok()) {
          ++successes;
          lm.ReleaseAll(id);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), kThreads * kIters);
  EXPECT_EQ(lm.LockedKeyCount(), 0u);
}

}  // namespace
}  // namespace exotica::txn
