file(REMOVE_RECURSE
  "CMakeFiles/fmtm.dir/fmtm_cli.cpp.o"
  "CMakeFiles/fmtm.dir/fmtm_cli.cpp.o.d"
  "fmtm"
  "fmtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
