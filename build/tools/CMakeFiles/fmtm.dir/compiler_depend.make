# Empty compiler generated dependencies file for fmtm.
# This may be replaced when dependencies are built.
