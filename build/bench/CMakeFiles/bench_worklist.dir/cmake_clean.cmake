file(REMOVE_RECURSE
  "CMakeFiles/bench_worklist.dir/bench_worklist.cpp.o"
  "CMakeFiles/bench_worklist.dir/bench_worklist.cpp.o.d"
  "bench_worklist"
  "bench_worklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
