# Empty compiler generated dependencies file for bench_worklist.
# This may be replaced when dependencies are built.
