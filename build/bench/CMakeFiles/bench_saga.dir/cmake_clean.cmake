file(REMOVE_RECURSE
  "CMakeFiles/bench_saga.dir/bench_saga.cpp.o"
  "CMakeFiles/bench_saga.dir/bench_saga.cpp.o.d"
  "bench_saga"
  "bench_saga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_saga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
