# Empty dependencies file for bench_saga.
# This may be replaced when dependencies are built.
