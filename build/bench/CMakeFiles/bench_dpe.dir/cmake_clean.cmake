file(REMOVE_RECURSE
  "CMakeFiles/bench_dpe.dir/bench_dpe.cpp.o"
  "CMakeFiles/bench_dpe.dir/bench_dpe.cpp.o.d"
  "bench_dpe"
  "bench_dpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
