# Empty dependencies file for bench_dpe.
# This may be replaced when dependencies are built.
