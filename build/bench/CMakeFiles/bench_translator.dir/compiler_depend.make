# Empty compiler generated dependencies file for bench_translator.
# This may be replaced when dependencies are built.
