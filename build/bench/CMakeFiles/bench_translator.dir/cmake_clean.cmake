file(REMOVE_RECURSE
  "CMakeFiles/bench_translator.dir/bench_translator.cpp.o"
  "CMakeFiles/bench_translator.dir/bench_translator.cpp.o.d"
  "bench_translator"
  "bench_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
