file(REMOVE_RECURSE
  "CMakeFiles/bench_flex.dir/bench_flex.cpp.o"
  "CMakeFiles/bench_flex.dir/bench_flex.cpp.o.d"
  "bench_flex"
  "bench_flex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
