# Empty dependencies file for bench_flex.
# This may be replaced when dependencies are built.
