# Empty compiler generated dependencies file for order_saga.
# This may be replaced when dependencies are built.
