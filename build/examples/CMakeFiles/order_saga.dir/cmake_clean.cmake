file(REMOVE_RECURSE
  "CMakeFiles/order_saga.dir/order_saga.cpp.o"
  "CMakeFiles/order_saga.dir/order_saga.cpp.o.d"
  "order_saga"
  "order_saga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_saga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
