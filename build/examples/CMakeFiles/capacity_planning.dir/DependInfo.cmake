
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planning.cpp" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o" "gcc" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exotica/CMakeFiles/exo_exotica.dir/DependInfo.cmake"
  "/root/repo/build/src/wfrt/CMakeFiles/exo_wfrt.dir/DependInfo.cmake"
  "/root/repo/build/src/wfsim/CMakeFiles/exo_wfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fdl/CMakeFiles/exo_fdl.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/exo_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/exo_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/exo_org.dir/DependInfo.cmake"
  "/root/repo/build/src/wfjournal/CMakeFiles/exo_wfjournal.dir/DependInfo.cmake"
  "/root/repo/build/src/wf/CMakeFiles/exo_wf.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/exo_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
