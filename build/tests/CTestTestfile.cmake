# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/wf_test[1]_include.cmake")
include("/root/repo/build/tests/org_test[1]_include.cmake")
include("/root/repo/build/tests/wfjournal_test[1]_include.cmake")
include("/root/repo/build/tests/wfrt_test[1]_include.cmake")
include("/root/repo/build/tests/wfsim_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/atm_test[1]_include.cmake")
include("/root/repo/build/tests/fdl_test[1]_include.cmake")
include("/root/repo/build/tests/exotica_test[1]_include.cmake")
