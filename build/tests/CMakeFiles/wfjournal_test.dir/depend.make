# Empty dependencies file for wfjournal_test.
# This may be replaced when dependencies are built.
