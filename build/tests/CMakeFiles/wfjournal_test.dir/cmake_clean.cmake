file(REMOVE_RECURSE
  "CMakeFiles/wfjournal_test.dir/wfjournal/journal_test.cc.o"
  "CMakeFiles/wfjournal_test.dir/wfjournal/journal_test.cc.o.d"
  "wfjournal_test"
  "wfjournal_test.pdb"
  "wfjournal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfjournal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
