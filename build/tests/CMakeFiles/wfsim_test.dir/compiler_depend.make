# Empty compiler generated dependencies file for wfsim_test.
# This may be replaced when dependencies are built.
