file(REMOVE_RECURSE
  "CMakeFiles/wfsim_test.dir/wfsim/sim_test.cc.o"
  "CMakeFiles/wfsim_test.dir/wfsim/sim_test.cc.o.d"
  "wfsim_test"
  "wfsim_test.pdb"
  "wfsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
