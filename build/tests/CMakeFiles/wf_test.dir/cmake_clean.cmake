file(REMOVE_RECURSE
  "CMakeFiles/wf_test.dir/wf/builder_test.cc.o"
  "CMakeFiles/wf_test.dir/wf/builder_test.cc.o.d"
  "CMakeFiles/wf_test.dir/wf/process_test.cc.o"
  "CMakeFiles/wf_test.dir/wf/process_test.cc.o.d"
  "CMakeFiles/wf_test.dir/wf/validate_test.cc.o"
  "CMakeFiles/wf_test.dir/wf/validate_test.cc.o.d"
  "wf_test"
  "wf_test.pdb"
  "wf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
