# Empty dependencies file for exotica_test.
# This may be replaced when dependencies are built.
