file(REMOVE_RECURSE
  "CMakeFiles/exotica_test.dir/exotica/flex_structure_test.cc.o"
  "CMakeFiles/exotica_test.dir/exotica/flex_structure_test.cc.o.d"
  "CMakeFiles/exotica_test.dir/exotica/flex_workflow_test.cc.o"
  "CMakeFiles/exotica_test.dir/exotica/flex_workflow_test.cc.o.d"
  "CMakeFiles/exotica_test.dir/exotica/fmtm_test.cc.o"
  "CMakeFiles/exotica_test.dir/exotica/fmtm_test.cc.o.d"
  "CMakeFiles/exotica_test.dir/exotica/property_test.cc.o"
  "CMakeFiles/exotica_test.dir/exotica/property_test.cc.o.d"
  "CMakeFiles/exotica_test.dir/exotica/saga_undo_test.cc.o"
  "CMakeFiles/exotica_test.dir/exotica/saga_undo_test.cc.o.d"
  "CMakeFiles/exotica_test.dir/exotica/saga_workflow_test.cc.o"
  "CMakeFiles/exotica_test.dir/exotica/saga_workflow_test.cc.o.d"
  "exotica_test"
  "exotica_test.pdb"
  "exotica_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exotica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
