file(REMOVE_RECURSE
  "CMakeFiles/wfrt_test.dir/wfrt/async_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/async_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/audit_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/audit_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/block_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/block_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/dpe_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/dpe_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/engine_errors_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/engine_errors_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/engine_property_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/engine_property_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/engine_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/engine_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/fleet_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/fleet_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/lifecycle_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/lifecycle_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/manual_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/manual_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/recovery_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/recovery_test.cc.o.d"
  "CMakeFiles/wfrt_test.dir/wfrt/versioning_test.cc.o"
  "CMakeFiles/wfrt_test.dir/wfrt/versioning_test.cc.o.d"
  "wfrt_test"
  "wfrt_test.pdb"
  "wfrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
