# Empty compiler generated dependencies file for wfrt_test.
# This may be replaced when dependencies are built.
