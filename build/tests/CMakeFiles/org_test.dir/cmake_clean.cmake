file(REMOVE_RECURSE
  "CMakeFiles/org_test.dir/org/directory_test.cc.o"
  "CMakeFiles/org_test.dir/org/directory_test.cc.o.d"
  "CMakeFiles/org_test.dir/org/worklist_test.cc.o"
  "CMakeFiles/org_test.dir/org/worklist_test.cc.o.d"
  "org_test"
  "org_test.pdb"
  "org_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/org_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
