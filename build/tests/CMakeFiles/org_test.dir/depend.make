# Empty dependencies file for org_test.
# This may be replaced when dependencies are built.
