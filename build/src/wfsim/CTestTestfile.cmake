# CMake generated Testfile for 
# Source directory: /root/repo/src/wfsim
# Build directory: /root/repo/build/src/wfsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
