file(REMOVE_RECURSE
  "CMakeFiles/exo_wfsim.dir/sim.cc.o"
  "CMakeFiles/exo_wfsim.dir/sim.cc.o.d"
  "libexo_wfsim.a"
  "libexo_wfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_wfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
