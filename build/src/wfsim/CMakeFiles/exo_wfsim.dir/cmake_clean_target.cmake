file(REMOVE_RECURSE
  "libexo_wfsim.a"
)
