# Empty compiler generated dependencies file for exo_wfsim.
# This may be replaced when dependencies are built.
