
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wf/builder.cc" "src/wf/CMakeFiles/exo_wf.dir/builder.cc.o" "gcc" "src/wf/CMakeFiles/exo_wf.dir/builder.cc.o.d"
  "/root/repo/src/wf/process.cc" "src/wf/CMakeFiles/exo_wf.dir/process.cc.o" "gcc" "src/wf/CMakeFiles/exo_wf.dir/process.cc.o.d"
  "/root/repo/src/wf/validate.cc" "src/wf/CMakeFiles/exo_wf.dir/validate.cc.o" "gcc" "src/wf/CMakeFiles/exo_wf.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/exo_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
