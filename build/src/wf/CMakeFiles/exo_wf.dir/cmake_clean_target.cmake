file(REMOVE_RECURSE
  "libexo_wf.a"
)
