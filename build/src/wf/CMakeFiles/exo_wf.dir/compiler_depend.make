# Empty compiler generated dependencies file for exo_wf.
# This may be replaced when dependencies are built.
