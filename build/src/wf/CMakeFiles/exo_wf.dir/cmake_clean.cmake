file(REMOVE_RECURSE
  "CMakeFiles/exo_wf.dir/builder.cc.o"
  "CMakeFiles/exo_wf.dir/builder.cc.o.d"
  "CMakeFiles/exo_wf.dir/process.cc.o"
  "CMakeFiles/exo_wf.dir/process.cc.o.d"
  "CMakeFiles/exo_wf.dir/validate.cc.o"
  "CMakeFiles/exo_wf.dir/validate.cc.o.d"
  "libexo_wf.a"
  "libexo_wf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
