# Empty compiler generated dependencies file for exo_atm.
# This may be replaced when dependencies are built.
