
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/flex.cc" "src/atm/CMakeFiles/exo_atm.dir/flex.cc.o" "gcc" "src/atm/CMakeFiles/exo_atm.dir/flex.cc.o.d"
  "/root/repo/src/atm/saga.cc" "src/atm/CMakeFiles/exo_atm.dir/saga.cc.o" "gcc" "src/atm/CMakeFiles/exo_atm.dir/saga.cc.o.d"
  "/root/repo/src/atm/subtxn.cc" "src/atm/CMakeFiles/exo_atm.dir/subtxn.cc.o" "gcc" "src/atm/CMakeFiles/exo_atm.dir/subtxn.cc.o.d"
  "/root/repo/src/atm/trace.cc" "src/atm/CMakeFiles/exo_atm.dir/trace.cc.o" "gcc" "src/atm/CMakeFiles/exo_atm.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/exo_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
