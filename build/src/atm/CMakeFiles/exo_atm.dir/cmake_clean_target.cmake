file(REMOVE_RECURSE
  "libexo_atm.a"
)
