file(REMOVE_RECURSE
  "CMakeFiles/exo_atm.dir/flex.cc.o"
  "CMakeFiles/exo_atm.dir/flex.cc.o.d"
  "CMakeFiles/exo_atm.dir/saga.cc.o"
  "CMakeFiles/exo_atm.dir/saga.cc.o.d"
  "CMakeFiles/exo_atm.dir/subtxn.cc.o"
  "CMakeFiles/exo_atm.dir/subtxn.cc.o.d"
  "CMakeFiles/exo_atm.dir/trace.cc.o"
  "CMakeFiles/exo_atm.dir/trace.cc.o.d"
  "libexo_atm.a"
  "libexo_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
