
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wfrt/audit.cc" "src/wfrt/CMakeFiles/exo_wfrt.dir/audit.cc.o" "gcc" "src/wfrt/CMakeFiles/exo_wfrt.dir/audit.cc.o.d"
  "/root/repo/src/wfrt/engine.cc" "src/wfrt/CMakeFiles/exo_wfrt.dir/engine.cc.o" "gcc" "src/wfrt/CMakeFiles/exo_wfrt.dir/engine.cc.o.d"
  "/root/repo/src/wfrt/fleet.cc" "src/wfrt/CMakeFiles/exo_wfrt.dir/fleet.cc.o" "gcc" "src/wfrt/CMakeFiles/exo_wfrt.dir/fleet.cc.o.d"
  "/root/repo/src/wfrt/program.cc" "src/wfrt/CMakeFiles/exo_wfrt.dir/program.cc.o" "gcc" "src/wfrt/CMakeFiles/exo_wfrt.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/exo_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/wf/CMakeFiles/exo_wf.dir/DependInfo.cmake"
  "/root/repo/build/src/org/CMakeFiles/exo_org.dir/DependInfo.cmake"
  "/root/repo/build/src/wfjournal/CMakeFiles/exo_wfjournal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
