file(REMOVE_RECURSE
  "CMakeFiles/exo_wfrt.dir/audit.cc.o"
  "CMakeFiles/exo_wfrt.dir/audit.cc.o.d"
  "CMakeFiles/exo_wfrt.dir/engine.cc.o"
  "CMakeFiles/exo_wfrt.dir/engine.cc.o.d"
  "CMakeFiles/exo_wfrt.dir/fleet.cc.o"
  "CMakeFiles/exo_wfrt.dir/fleet.cc.o.d"
  "CMakeFiles/exo_wfrt.dir/program.cc.o"
  "CMakeFiles/exo_wfrt.dir/program.cc.o.d"
  "libexo_wfrt.a"
  "libexo_wfrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_wfrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
