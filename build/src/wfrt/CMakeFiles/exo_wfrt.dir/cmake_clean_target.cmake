file(REMOVE_RECURSE
  "libexo_wfrt.a"
)
