# Empty compiler generated dependencies file for exo_wfrt.
# This may be replaced when dependencies are built.
