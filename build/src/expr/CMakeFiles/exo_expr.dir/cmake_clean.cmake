file(REMOVE_RECURSE
  "CMakeFiles/exo_expr.dir/ast.cc.o"
  "CMakeFiles/exo_expr.dir/ast.cc.o.d"
  "CMakeFiles/exo_expr.dir/condition.cc.o"
  "CMakeFiles/exo_expr.dir/condition.cc.o.d"
  "CMakeFiles/exo_expr.dir/eval.cc.o"
  "CMakeFiles/exo_expr.dir/eval.cc.o.d"
  "CMakeFiles/exo_expr.dir/lexer.cc.o"
  "CMakeFiles/exo_expr.dir/lexer.cc.o.d"
  "CMakeFiles/exo_expr.dir/parser.cc.o"
  "CMakeFiles/exo_expr.dir/parser.cc.o.d"
  "libexo_expr.a"
  "libexo_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
