# Empty compiler generated dependencies file for exo_expr.
# This may be replaced when dependencies are built.
