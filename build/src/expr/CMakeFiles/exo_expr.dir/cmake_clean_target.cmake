file(REMOVE_RECURSE
  "libexo_expr.a"
)
