file(REMOVE_RECURSE
  "CMakeFiles/exo_data.dir/container.cc.o"
  "CMakeFiles/exo_data.dir/container.cc.o.d"
  "CMakeFiles/exo_data.dir/types.cc.o"
  "CMakeFiles/exo_data.dir/types.cc.o.d"
  "CMakeFiles/exo_data.dir/value.cc.o"
  "CMakeFiles/exo_data.dir/value.cc.o.d"
  "libexo_data.a"
  "libexo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
