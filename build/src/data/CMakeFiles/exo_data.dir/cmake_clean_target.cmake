file(REMOVE_RECURSE
  "libexo_data.a"
)
