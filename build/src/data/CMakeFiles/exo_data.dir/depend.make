# Empty dependencies file for exo_data.
# This may be replaced when dependencies are built.
