file(REMOVE_RECURSE
  "libexo_exotica.a"
)
