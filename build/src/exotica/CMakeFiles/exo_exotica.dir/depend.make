# Empty dependencies file for exo_exotica.
# This may be replaced when dependencies are built.
