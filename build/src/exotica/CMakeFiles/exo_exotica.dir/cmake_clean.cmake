file(REMOVE_RECURSE
  "CMakeFiles/exo_exotica.dir/blocks.cc.o"
  "CMakeFiles/exo_exotica.dir/blocks.cc.o.d"
  "CMakeFiles/exo_exotica.dir/flex_translate.cc.o"
  "CMakeFiles/exo_exotica.dir/flex_translate.cc.o.d"
  "CMakeFiles/exo_exotica.dir/fmtm.cc.o"
  "CMakeFiles/exo_exotica.dir/fmtm.cc.o.d"
  "CMakeFiles/exo_exotica.dir/programs.cc.o"
  "CMakeFiles/exo_exotica.dir/programs.cc.o.d"
  "CMakeFiles/exo_exotica.dir/saga_translate.cc.o"
  "CMakeFiles/exo_exotica.dir/saga_translate.cc.o.d"
  "libexo_exotica.a"
  "libexo_exotica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_exotica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
