file(REMOVE_RECURSE
  "libexo_org.a"
)
