file(REMOVE_RECURSE
  "CMakeFiles/exo_org.dir/directory.cc.o"
  "CMakeFiles/exo_org.dir/directory.cc.o.d"
  "CMakeFiles/exo_org.dir/worklist.cc.o"
  "CMakeFiles/exo_org.dir/worklist.cc.o.d"
  "libexo_org.a"
  "libexo_org.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_org.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
