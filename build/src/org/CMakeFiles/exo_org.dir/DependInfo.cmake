
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/org/directory.cc" "src/org/CMakeFiles/exo_org.dir/directory.cc.o" "gcc" "src/org/CMakeFiles/exo_org.dir/directory.cc.o.d"
  "/root/repo/src/org/worklist.cc" "src/org/CMakeFiles/exo_org.dir/worklist.cc.o" "gcc" "src/org/CMakeFiles/exo_org.dir/worklist.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
