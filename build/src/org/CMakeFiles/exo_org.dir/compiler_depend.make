# Empty compiler generated dependencies file for exo_org.
# This may be replaced when dependencies are built.
