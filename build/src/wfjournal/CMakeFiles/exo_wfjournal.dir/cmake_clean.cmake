file(REMOVE_RECURSE
  "CMakeFiles/exo_wfjournal.dir/journal.cc.o"
  "CMakeFiles/exo_wfjournal.dir/journal.cc.o.d"
  "libexo_wfjournal.a"
  "libexo_wfjournal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_wfjournal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
