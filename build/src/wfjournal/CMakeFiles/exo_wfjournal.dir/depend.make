# Empty dependencies file for exo_wfjournal.
# This may be replaced when dependencies are built.
