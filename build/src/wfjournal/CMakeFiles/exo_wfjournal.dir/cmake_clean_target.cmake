file(REMOVE_RECURSE
  "libexo_wfjournal.a"
)
