file(REMOVE_RECURSE
  "libexo_common.a"
)
