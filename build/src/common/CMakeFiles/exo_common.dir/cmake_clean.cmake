file(REMOVE_RECURSE
  "CMakeFiles/exo_common.dir/clock.cc.o"
  "CMakeFiles/exo_common.dir/clock.cc.o.d"
  "CMakeFiles/exo_common.dir/logging.cc.o"
  "CMakeFiles/exo_common.dir/logging.cc.o.d"
  "CMakeFiles/exo_common.dir/status.cc.o"
  "CMakeFiles/exo_common.dir/status.cc.o.d"
  "CMakeFiles/exo_common.dir/strings.cc.o"
  "CMakeFiles/exo_common.dir/strings.cc.o.d"
  "libexo_common.a"
  "libexo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
