# Empty compiler generated dependencies file for exo_common.
# This may be replaced when dependencies are built.
