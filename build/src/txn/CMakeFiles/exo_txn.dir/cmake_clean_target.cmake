file(REMOVE_RECURSE
  "libexo_txn.a"
)
