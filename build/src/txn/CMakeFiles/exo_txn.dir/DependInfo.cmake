
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/lock_manager.cc" "src/txn/CMakeFiles/exo_txn.dir/lock_manager.cc.o" "gcc" "src/txn/CMakeFiles/exo_txn.dir/lock_manager.cc.o.d"
  "/root/repo/src/txn/multidb.cc" "src/txn/CMakeFiles/exo_txn.dir/multidb.cc.o" "gcc" "src/txn/CMakeFiles/exo_txn.dir/multidb.cc.o.d"
  "/root/repo/src/txn/site.cc" "src/txn/CMakeFiles/exo_txn.dir/site.cc.o" "gcc" "src/txn/CMakeFiles/exo_txn.dir/site.cc.o.d"
  "/root/repo/src/txn/tpc.cc" "src/txn/CMakeFiles/exo_txn.dir/tpc.cc.o" "gcc" "src/txn/CMakeFiles/exo_txn.dir/tpc.cc.o.d"
  "/root/repo/src/txn/wal.cc" "src/txn/CMakeFiles/exo_txn.dir/wal.cc.o" "gcc" "src/txn/CMakeFiles/exo_txn.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exo_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
