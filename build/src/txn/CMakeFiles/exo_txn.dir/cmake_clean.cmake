file(REMOVE_RECURSE
  "CMakeFiles/exo_txn.dir/lock_manager.cc.o"
  "CMakeFiles/exo_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/exo_txn.dir/multidb.cc.o"
  "CMakeFiles/exo_txn.dir/multidb.cc.o.d"
  "CMakeFiles/exo_txn.dir/site.cc.o"
  "CMakeFiles/exo_txn.dir/site.cc.o.d"
  "CMakeFiles/exo_txn.dir/tpc.cc.o"
  "CMakeFiles/exo_txn.dir/tpc.cc.o.d"
  "CMakeFiles/exo_txn.dir/wal.cc.o"
  "CMakeFiles/exo_txn.dir/wal.cc.o.d"
  "libexo_txn.a"
  "libexo_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
