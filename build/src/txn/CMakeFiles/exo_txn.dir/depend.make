# Empty dependencies file for exo_txn.
# This may be replaced when dependencies are built.
