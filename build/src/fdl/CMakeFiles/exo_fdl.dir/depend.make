# Empty dependencies file for exo_fdl.
# This may be replaced when dependencies are built.
