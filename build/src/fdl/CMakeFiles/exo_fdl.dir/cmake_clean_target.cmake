file(REMOVE_RECURSE
  "libexo_fdl.a"
)
