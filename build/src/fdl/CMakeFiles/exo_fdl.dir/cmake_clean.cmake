file(REMOVE_RECURSE
  "CMakeFiles/exo_fdl.dir/dot.cc.o"
  "CMakeFiles/exo_fdl.dir/dot.cc.o.d"
  "CMakeFiles/exo_fdl.dir/export.cc.o"
  "CMakeFiles/exo_fdl.dir/export.cc.o.d"
  "CMakeFiles/exo_fdl.dir/import.cc.o"
  "CMakeFiles/exo_fdl.dir/import.cc.o.d"
  "CMakeFiles/exo_fdl.dir/lexer.cc.o"
  "CMakeFiles/exo_fdl.dir/lexer.cc.o.d"
  "CMakeFiles/exo_fdl.dir/parser.cc.o"
  "CMakeFiles/exo_fdl.dir/parser.cc.o.d"
  "libexo_fdl.a"
  "libexo_fdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exo_fdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
