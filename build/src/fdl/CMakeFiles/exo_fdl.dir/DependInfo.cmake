
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fdl/dot.cc" "src/fdl/CMakeFiles/exo_fdl.dir/dot.cc.o" "gcc" "src/fdl/CMakeFiles/exo_fdl.dir/dot.cc.o.d"
  "/root/repo/src/fdl/export.cc" "src/fdl/CMakeFiles/exo_fdl.dir/export.cc.o" "gcc" "src/fdl/CMakeFiles/exo_fdl.dir/export.cc.o.d"
  "/root/repo/src/fdl/import.cc" "src/fdl/CMakeFiles/exo_fdl.dir/import.cc.o" "gcc" "src/fdl/CMakeFiles/exo_fdl.dir/import.cc.o.d"
  "/root/repo/src/fdl/lexer.cc" "src/fdl/CMakeFiles/exo_fdl.dir/lexer.cc.o" "gcc" "src/fdl/CMakeFiles/exo_fdl.dir/lexer.cc.o.d"
  "/root/repo/src/fdl/parser.cc" "src/fdl/CMakeFiles/exo_fdl.dir/parser.cc.o" "gcc" "src/fdl/CMakeFiles/exo_fdl.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exo_data.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/exo_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/wf/CMakeFiles/exo_wf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
