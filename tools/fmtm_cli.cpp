// fmtm — the Exotica/FMTM command line.
//
//   fmtm compile <spec-file>              print the emitted FDL
//   fmtm check <fdl-file>                 parse + import + validate FDL
//   fmtm dot <spec-file>                  print a Graphviz rendering of
//                                         the translated process (the
//                                         paper's Figure 2 / Figure 4)
//   fmtm run <spec-file> [--abort A,B]    compile and execute the model,
//                                         aborting the named
//                                         subtransactions, and print the
//                                         execution trace
//
// The spec language is described in src/exotica/fmtm.h (SAGA ... END /
// FLEXIBLE ... END).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "atm/subtxn.h"
#include "common/strings.h"
#include "exotica/fmtm.h"
#include "exotica/programs.h"
#include "fdl/dot.h"
#include "fdl/import.h"
#include "wfrt/engine.h"

using namespace exotica;  // NOLINT: tool brevity

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int Fail(const Status& st) {
  std::fprintf(stderr, "fmtm: %s\n", st.ToString().c_str());
  return 1;
}

int Compile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  wf::DefinitionStore store;
  auto out = exo::CompileSpec(*text, &store);
  if (!out.ok()) return Fail(out.status());
  std::fputs(out->fdl.c_str(), stdout);
  std::fprintf(stderr,
               "fmtm: %s model '%s' compiled into %zu process(es)\n",
               exo::ModelKindName(out->kind), out->root_process.c_str(),
               out->processes.size());
  return 0;
}

int Check(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  wf::DefinitionStore store;
  auto names = fdl::ImportFdl(*text, &store);
  if (!names.ok()) return Fail(names.status());
  std::printf("OK: %zu process(es) imported and validated:\n", names->size());
  for (const std::string& n : *names) {
    auto p = store.FindProcess(n);
    std::printf("  %-24s %zu activities, %zu control connectors\n",
                n.c_str(), (*p)->activities().size(),
                (*p)->control_connectors().size());
  }
  return 0;
}

int Dot(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  wf::DefinitionStore store;
  auto out = exo::CompileSpec(*text, &store);
  if (!out.ok()) return Fail(out.status());
  auto dot = fdl::ExportDot(store, out->root_process);
  if (!dot.ok()) return Fail(dot.status());
  std::fputs(dot->c_str(), stdout);
  return 0;
}

// Runner that prints every subtransaction event and aborts the listed
// names (always).
class NarratingRunner : public atm::SubTxnRunner {
 public:
  explicit NarratingRunner(std::vector<std::string> abort_list)
      : abort_list_(std::move(abort_list)) {}

  Result<bool> Run(const std::string& name) override {
    bool abort = false;
    for (const std::string& a : abort_list_) abort = abort || a == name;
    std::printf("  %-12s -> %s\n", name.c_str(),
                abort ? "ABORTED" : "committed");
    return !abort;
  }
  Result<bool> Compensate(const std::string& name) override {
    std::printf("  %-12s -> compensated\n", name.c_str());
    return true;
  }

 private:
  std::vector<std::string> abort_list_;
};

int Run(const std::string& path, const std::string& abort_csv) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  wf::DefinitionStore store;
  auto out = exo::CompileSpec(*text, &store);
  if (!out.ok()) return Fail(out.status());

  std::vector<std::string> aborts;
  if (!abort_csv.empty()) aborts = Split(abort_csv, ',');
  NarratingRunner runner(std::move(aborts));

  wfrt::ProgramRegistry programs;
  wfrt::EngineOptions opts;
  opts.max_exit_retries = 100;  // an always-aborting retriable would hang
  Status bind = out->kind == exo::ModelKind::kSaga
                    ? exo::BindSagaPrograms(*out->saga, store, &runner,
                                            &programs)
                    : exo::BindFlexPrograms(*out->flex, store, &runner,
                                            &programs);
  if (!bind.ok()) return Fail(bind);

  std::printf("running %s '%s':\n", exo::ModelKindName(out->kind),
              out->root_process.c_str());
  wfrt::Engine engine(&store, &programs, opts);
  auto id = engine.RunToCompletion(out->root_process);
  if (!id.ok()) return Fail(id.status());
  auto output = engine.OutputOf(*id);
  if (!output.ok()) return Fail(output.status());
  bool committed = output->Get("RC")->as_long() == 0;
  std::printf("outcome: %s\n", committed ? "COMMITTED" : "ABORTED");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() >= 2 && args[0] == "compile") return Compile(args[1]);
  if (args.size() >= 2 && args[0] == "check") return Check(args[1]);
  if (args.size() >= 2 && args[0] == "dot") return Dot(args[1]);
  if (args.size() >= 2 && args[0] == "run") {
    std::string abort_csv;
    for (size_t i = 2; i + 1 < args.size(); ++i) {
      if (args[i] == "--abort") abort_csv = args[i + 1];
    }
    return Run(args[1], abort_csv);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  fmtm compile <spec-file>\n"
               "  fmtm check <fdl-file>\n"
               "  fmtm dot <spec-file>\n"
               "  fmtm run <spec-file> [--abort T1,T2,...]\n");
  return 2;
}
