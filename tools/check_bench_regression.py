#!/usr/bin/env python3
"""Bench-regression gate for the conditioned-chain navigation numbers.

Compares a fresh bench_navigation run against the committed
BENCH_cond.json baseline. Absolute times are not comparable across
machines, so the check is ratio-based: the fresh run re-measures both
sides of each head-to-head (tree-walk vm:0 vs compiled VM vm:1) and the
resulting speedup must not drop more than --tolerance (default 10%)
below the baseline's recorded speedup. A drop means a change slowed the
compiled path relative to the tree-walk reference — the regression the
gate exists to catch.

Optionally (--min-step-speedup R) also requires the fused step-program
chain (BM_StepChainNavigation step:1) to beat the same run's
interpreted-VM conditioned chain (vm:1) by at least R on the best chain
length — the compilation-ladder acceptance number tracked in
BENCH_step.json.

Optionally (--recovery-fresh FILE) gates the snapshot-recovery numbers
from a fresh bench_recovery run (RecoverAfterHistory rows): with
checkpoints on, recovering at 10x the history must stay flat —
t(history:100/snap:1) / t(history:10/snap:1) <= --max-snapshot-flatness
(default 1.2) — and the checkpointed recovery must beat full replay at
the long history by at least --min-snapshot-speedup (default 2.0).
These ratios come from one run on one machine, so they need no
committed baseline. The sharded-recovery speedup is deliberately NOT
gated: it tracks the machine's core count.

Optionally (--layout-fresh FILE) gates the instance-layout numbers from
a fresh bench_navigation PackedChain run (plus PackedStartInstance rows
if present in the same file or in --layout-spinup-fresh). The headline
gate is spin-up: the packed SoA hot/cold layout must beat legacy AoS
StartProcess by at least --min-packed-spinup (default 1.15) at n:100 —
that is where the layout removes the per-activity struct copy outright.
On the n:1000 fused chain the packed layout is gated as a no-regression
floor (--min-packed-speedup, default 0.90): the chain's settle sweep
was already O(1) before the split, so navigation only has the smaller
dense-plane/prototype-sourcing win to show — measured ~1.0-1.1x,
within run-to-run noise, so the floor is wide (recorded, not gated
high — see docs/specs/instance_layout.md). Single-run ratio gates, no
committed baseline.

Optionally (--native-fresh FILE) gates the native-codegen numbers from
a fresh bench_navigation NativeChain/NativeConditionedChain run: the
x86-64 step functions (native:1) must beat the threaded-code
interpreter (native:0) by at least --min-native-speedup (default 1.15)
at n:100 on the better of the two chain shapes. Single-run ratio gate,
no committed baseline; only meaningful on emitter-enabled builds (an
EXOTICA_NATIVE_CODEGEN=OFF build runs threaded code in both arms and
the ratio sits at ~1.0, so that configuration must not pass this flag).

Usage:
  build/bench/bench_navigation --benchmark_format=json \
      --benchmark_filter='ConditionedChain|StepChain' \
      --benchmark_repetitions=3 > fresh_nav.json
  build/bench/bench_recovery --benchmark_format=json \
      --benchmark_filter='RecoverAfterHistory' \
      --benchmark_repetitions=3 > fresh_recovery.json
  build/bench/bench_navigation --benchmark_format=json \
      --benchmark_filter='PackedChain' \
      --benchmark_repetitions=3 > fresh_layout.json
  tools/check_bench_regression.py --baseline BENCH_cond.json \
      --fresh fresh_nav.json [--tolerance 0.10] [--min-step-speedup 1.2] \
      [--recovery-fresh fresh_recovery.json] \
      [--layout-fresh fresh_layout.json]

Exit status: 0 = all gates pass, 1 = regression, 2 = missing data.
"""

import argparse
import json
import sys


def median_times(bench_json):
    """run_name -> representative real_time.

    Prefers the 'median' aggregate (repetition runs); falls back to the
    mean of raw iteration entries so a plain single-rep smoke run works.
    """
    medians = {}
    raw = {}
    for b in bench_json.get("benchmarks", []):
        name = b.get("run_name", b.get("name"))
        if b.get("aggregate_name") == "median":
            medians[name] = b["real_time"]
        elif b.get("run_type") != "aggregate":
            raw.setdefault(name, []).append(b["real_time"])
    for name, times in raw.items():
        medians.setdefault(name, sum(times) / len(times))
    return medians


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_cond.json (summary holds the "
                         "conditioned_chain_*_speedup_vm ratios)")
    ap.add_argument("--fresh", required=True,
                    help="google-benchmark JSON from a fresh "
                         "bench_navigation run (ConditionedChain, and "
                         "StepChain if --min-step-speedup is used)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative drop in the vm speedup "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--min-step-speedup", type=float, default=None,
                    help="if set, require step:1 vs vm:1 >= R on the "
                         "best chain length")
    ap.add_argument("--recovery-fresh", default=None,
                    help="google-benchmark JSON from a fresh "
                         "bench_recovery RecoverAfterHistory run; "
                         "enables the snapshot-recovery gates")
    ap.add_argument("--max-snapshot-flatness", type=float, default=1.2,
                    help="max allowed t(history:100)/t(history:10) with "
                         "snapshots on (default 1.2)")
    ap.add_argument("--min-snapshot-speedup", type=float, default=2.0,
                    help="min required snap:0/snap:1 recovery speedup at "
                         "history:100 (default 2.0)")
    ap.add_argument("--layout-fresh", default=None,
                    help="google-benchmark JSON from a fresh "
                         "bench_navigation PackedChain run; enables the "
                         "instance-layout gates")
    ap.add_argument("--layout-spinup-fresh", default=None,
                    help="google-benchmark JSON from a fresh bench_fleet "
                         "PackedStartInstance run (optional; spin-up gate "
                         "is skipped when its rows are absent)")
    ap.add_argument("--min-packed-speedup", type=float, default=0.90,
                    help="no-regression floor for packed:0/packed:1 on "
                         "the n:1000 fused chain (default 0.90; the "
                         "ratio is ~1.0-1.1 but swings with machine "
                         "noise)")
    ap.add_argument("--min-packed-spinup", type=float, default=1.15,
                    help="min required packed:0/packed:1 StartInstance "
                         "speedup at n:100 — the headline layout gate "
                         "(default 1.15)")
    ap.add_argument("--native-fresh", default=None,
                    help="google-benchmark JSON from a fresh "
                         "bench_navigation NativeChain/"
                         "NativeConditionedChain run; enables the "
                         "native-codegen gate (emitter builds only)")
    ap.add_argument("--min-native-speedup", type=float, default=1.15,
                    help="min required native:0/native:1 speedup at "
                         "n:100 on the better chain shape (default 1.15)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_summary = baseline.get("summary", {})
    times = median_times(fresh)

    def ratio(base_key, test_key):
        base, test = times.get(base_key), times.get(test_key)
        if base is None or test is None or test == 0:
            return None
        return base / test

    failures = []
    checked = 0
    for n in (100, 1000):
        key = f"conditioned_chain_{n}_speedup_vm"
        base_speedup = base_summary.get(key)
        if base_speedup is None:
            continue
        fresh_speedup = ratio(
            f"BM_ConditionedChainNavigation/n:{n}/vm:0",
            f"BM_ConditionedChainNavigation/n:{n}/vm:1")
        if fresh_speedup is None:
            print(f"MISSING {key}: fresh run has no n:{n} vm rows")
            return 2
        checked += 1
        floor = (1.0 - args.tolerance) * base_speedup
        verdict = "ok" if fresh_speedup >= floor else "REGRESSION"
        print(f"{verdict} {key}: fresh {fresh_speedup:.3f} vs baseline "
              f"{base_speedup:.3f} (floor {floor:.3f})")
        if fresh_speedup < floor:
            failures.append(key)

    if checked == 0:
        print("MISSING: baseline summary has no conditioned_chain keys")
        return 2

    if args.min_step_speedup is not None:
        ladder = {}
        for n in (100, 1000):
            r = ratio(f"BM_ConditionedChainNavigation/n:{n}/vm:1",
                      f"BM_StepChainNavigation/n:{n}/step:1")
            if r is not None:
                ladder[n] = r
        if not ladder:
            print("MISSING: fresh run has no StepChain step:1 rows")
            return 2
        best_n = max(ladder, key=ladder.get)
        best = ladder[best_n]
        verdict = "ok" if best >= args.min_step_speedup else "REGRESSION"
        print(f"{verdict} step ladder: best {best:.3f}x at n:{best_n} "
              f"(all: {({k: round(v, 3) for k, v in ladder.items()})}), "
              f"required >= {args.min_step_speedup}")
        if best < args.min_step_speedup:
            failures.append("step_ladder")

    if args.recovery_fresh is not None:
        with open(args.recovery_fresh) as f:
            recovery = json.load(f)
        rec_times = median_times(recovery)

        def rec_ratio(base_key, test_key):
            base, test = rec_times.get(base_key), rec_times.get(test_key)
            if base is None or test is None or test == 0:
                return None
            return base / test

        flatness = rec_ratio("BM_RecoverAfterHistory/history:100/snap:1",
                             "BM_RecoverAfterHistory/history:10/snap:1")
        speedup = rec_ratio("BM_RecoverAfterHistory/history:100/snap:0",
                            "BM_RecoverAfterHistory/history:100/snap:1")
        if flatness is None or speedup is None:
            print("MISSING: recovery run has no RecoverAfterHistory "
                  "history/snap rows")
            return 2
        verdict = "ok" if flatness <= args.max_snapshot_flatness \
            else "REGRESSION"
        print(f"{verdict} snapshot flatness: 10x history costs "
              f"{flatness:.3f}x with checkpoints on, required <= "
              f"{args.max_snapshot_flatness}")
        if flatness > args.max_snapshot_flatness:
            failures.append("snapshot_flatness")
        verdict = "ok" if speedup >= args.min_snapshot_speedup \
            else "REGRESSION"
        print(f"{verdict} snapshot speedup: checkpointed recovery beats "
              f"full replay {speedup:.3f}x at history:100, required >= "
              f"{args.min_snapshot_speedup}")
        if speedup < args.min_snapshot_speedup:
            failures.append("snapshot_speedup")

    if args.layout_fresh is not None:
        with open(args.layout_fresh) as f:
            layout = json.load(f)
        lay_times = median_times(layout)
        if args.layout_spinup_fresh is not None:
            with open(args.layout_spinup_fresh) as f:
                lay_times.update(median_times(json.load(f)))

        def lay_ratio(base_key, test_key):
            base, test = lay_times.get(base_key), lay_times.get(test_key)
            if base is None or test is None or test == 0:
                return None
            return base / test

        packed = lay_ratio("BM_PackedChainNavigation/n:1000/packed:0",
                           "BM_PackedChainNavigation/n:1000/packed:1")
        if packed is None:
            print("MISSING: layout run has no PackedChainNavigation "
                  "n:1000 packed rows")
            return 2
        verdict = "ok" if packed >= args.min_packed_speedup else "REGRESSION"
        print(f"{verdict} packed navigation floor: SoA vs AoS "
              f"{packed:.3f}x on the n:1000 fused chain, required >= "
              f"{args.min_packed_speedup}")
        if packed < args.min_packed_speedup:
            failures.append("packed_layout")
        spinup = lay_ratio("BM_PackedStartInstance/n:100/packed:0",
                           "BM_PackedStartInstance/n:100/packed:1")
        if spinup is not None:
            verdict = "ok" if spinup >= args.min_packed_spinup \
                else "REGRESSION"
            print(f"{verdict} packed spin-up: {spinup:.3f}x vs legacy "
                  f"at n:100, required >= {args.min_packed_spinup}")
            if spinup < args.min_packed_spinup:
                failures.append("packed_spinup")

    if args.native_fresh is not None:
        with open(args.native_fresh) as f:
            native = json.load(f)
        nat_times = median_times(native)

        def nat_ratio(base_key, test_key):
            base, test = nat_times.get(base_key), nat_times.get(test_key)
            if base is None or test is None or test == 0:
                return None
            return base / test

        shapes = {}
        for bench in ("BM_NativeChainNavigation",
                      "BM_NativeConditionedChain"):
            r = nat_ratio(f"{bench}/n:100/native:0",
                          f"{bench}/n:100/native:1")
            if r is not None:
                shapes[bench] = r
        if not shapes:
            print("MISSING: native run has no NativeChain n:100 rows")
            return 2
        best_shape = max(shapes, key=shapes.get)
        best = shapes[best_shape]
        verdict = "ok" if best >= args.min_native_speedup else "REGRESSION"
        print(f"{verdict} native codegen: best {best:.3f}x at n:100 "
              f"({best_shape}; all: "
              f"{({k: round(v, 3) for k, v in shapes.items()})}), "
              f"required >= {args.min_native_speedup}")
        if best < args.min_native_speedup:
            failures.append("native_codegen")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
