#!/usr/bin/env python3
"""Bench-regression gate for the conditioned-chain navigation numbers.

Compares a fresh bench_navigation run against the committed
BENCH_cond.json baseline. Absolute times are not comparable across
machines, so the check is ratio-based: the fresh run re-measures both
sides of each head-to-head (tree-walk vm:0 vs compiled VM vm:1) and the
resulting speedup must not drop more than --tolerance (default 10%)
below the baseline's recorded speedup. A drop means a change slowed the
compiled path relative to the tree-walk reference — the regression the
gate exists to catch.

Optionally (--min-step-speedup R) also requires the fused step-program
chain (BM_StepChainNavigation step:1) to beat the same run's
interpreted-VM conditioned chain (vm:1) by at least R on the best chain
length — the compilation-ladder acceptance number tracked in
BENCH_step.json.

Usage:
  build/bench/bench_navigation --benchmark_format=json \
      --benchmark_filter='ConditionedChain|StepChain' \
      --benchmark_repetitions=3 > fresh_nav.json
  tools/check_bench_regression.py --baseline BENCH_cond.json \
      --fresh fresh_nav.json [--tolerance 0.10] [--min-step-speedup 1.2]

Exit status: 0 = all gates pass, 1 = regression, 2 = missing data.
"""

import argparse
import json
import sys


def median_times(bench_json):
    """run_name -> representative real_time.

    Prefers the 'median' aggregate (repetition runs); falls back to the
    mean of raw iteration entries so a plain single-rep smoke run works.
    """
    medians = {}
    raw = {}
    for b in bench_json.get("benchmarks", []):
        name = b.get("run_name", b.get("name"))
        if b.get("aggregate_name") == "median":
            medians[name] = b["real_time"]
        elif b.get("run_type") != "aggregate":
            raw.setdefault(name, []).append(b["real_time"])
    for name, times in raw.items():
        medians.setdefault(name, sum(times) / len(times))
    return medians


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_cond.json (summary holds the "
                         "conditioned_chain_*_speedup_vm ratios)")
    ap.add_argument("--fresh", required=True,
                    help="google-benchmark JSON from a fresh "
                         "bench_navigation run (ConditionedChain, and "
                         "StepChain if --min-step-speedup is used)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative drop in the vm speedup "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--min-step-speedup", type=float, default=None,
                    help="if set, require step:1 vs vm:1 >= R on the "
                         "best chain length")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_summary = baseline.get("summary", {})
    times = median_times(fresh)

    def ratio(base_key, test_key):
        base, test = times.get(base_key), times.get(test_key)
        if base is None or test is None or test == 0:
            return None
        return base / test

    failures = []
    checked = 0
    for n in (100, 1000):
        key = f"conditioned_chain_{n}_speedup_vm"
        base_speedup = base_summary.get(key)
        if base_speedup is None:
            continue
        fresh_speedup = ratio(
            f"BM_ConditionedChainNavigation/n:{n}/vm:0",
            f"BM_ConditionedChainNavigation/n:{n}/vm:1")
        if fresh_speedup is None:
            print(f"MISSING {key}: fresh run has no n:{n} vm rows")
            return 2
        checked += 1
        floor = (1.0 - args.tolerance) * base_speedup
        verdict = "ok" if fresh_speedup >= floor else "REGRESSION"
        print(f"{verdict} {key}: fresh {fresh_speedup:.3f} vs baseline "
              f"{base_speedup:.3f} (floor {floor:.3f})")
        if fresh_speedup < floor:
            failures.append(key)

    if checked == 0:
        print("MISSING: baseline summary has no conditioned_chain keys")
        return 2

    if args.min_step_speedup is not None:
        ladder = {}
        for n in (100, 1000):
            r = ratio(f"BM_ConditionedChainNavigation/n:{n}/vm:1",
                      f"BM_StepChainNavigation/n:{n}/step:1")
            if r is not None:
                ladder[n] = r
        if not ladder:
            print("MISSING: fresh run has no StepChain step:1 rows")
            return 2
        best_n = max(ladder, key=ladder.get)
        best = ladder[best_n]
        verdict = "ok" if best >= args.min_step_speedup else "REGRESSION"
        print(f"{verdict} step ladder: best {best:.3f}x at n:{best_n} "
              f"(all: {({k: round(v, 3) for k, v in ladder.items()})}), "
              f"required >= {args.min_step_speedup}")
        if best < args.min_step_speedup:
            failures.append("step_ladder")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
