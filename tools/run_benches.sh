#!/usr/bin/env bash
# Runs the navigation-critical benchmarks (-O2 Release build) and merges
# their JSON into one file for before/after comparisons.
#
# Usage: tools/run_benches.sh [output.json]
#   BUILD_DIR=build-release  tools/run_benches.sh   # override build dir
#
# The output has one top-level key per benchmark binary, each holding the
# raw Google Benchmark JSON (context + benchmarks array).

set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_nav.json}"
BUILD_DIR="${BUILD_DIR:-build}"
BENCHES=(bench_navigation bench_fleet bench_recovery)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${BENCHES[@]}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for b in "${BENCHES[@]}"; do
  echo "== $b ==" >&2
  "$BUILD_DIR/bench/$b" --benchmark_format=json \
    --benchmark_min_time=0.2 > "$tmpdir/$b.json"
done

python3 - "$OUT" "$tmpdir" "${BENCHES[@]}" <<'EOF'
import json, sys
out_path, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for b in benches:
    with open(f"{tmpdir}/{b}.json") as f:
        merged[b] = json.load(f)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}")
EOF
