#!/usr/bin/env bash
# Runs the navigation-critical benchmarks (-O2 Release build) and merges
# their JSON into one file for before/after comparisons.
#
# Usage: tools/run_benches.sh [output.json]
#   BUILD_DIR=build-release  tools/run_benches.sh   # override build dir
#   FAULTS_OUT=faults.json   tools/run_benches.sh   # override faults file
#
# The output has one top-level key per benchmark binary, each holding the
# raw Google Benchmark JSON (context + benchmarks array). The fault-
# injection benchmarks (bench_recovery under FaultPlan/FaultyJournal) are
# additionally emitted on their own into BENCH_faults.json so the
# robustness numbers can be tracked separately from the navigation ones.

set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_nav.json}"
FAULTS_OUT="${FAULTS_OUT:-BENCH_faults.json}"
BUILD_DIR="${BUILD_DIR:-build}"
BENCHES=(bench_navigation bench_fleet bench_recovery)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${BENCHES[@]}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for b in "${BENCHES[@]}"; do
  echo "== $b ==" >&2
  "$BUILD_DIR/bench/$b" --benchmark_format=json \
    --benchmark_min_time=0.2 > "$tmpdir/$b.json"
done

echo "== bench_recovery (injected faults) ==" >&2
"$BUILD_DIR/bench/bench_recovery" --benchmark_format=json \
  --benchmark_filter='Fault' \
  --benchmark_min_time=0.2 > "$tmpdir/bench_faults.json"

python3 - "$OUT" "$tmpdir" "${BENCHES[@]}" <<'EOF'
import json, sys
out_path, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for b in benches:
    with open(f"{tmpdir}/{b}.json") as f:
        merged[b] = json.load(f)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}")
EOF

python3 - "$FAULTS_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_faults.json") as f:
    merged = {"bench_recovery_faults": json.load(f)}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}")
EOF
