#!/usr/bin/env bash
# Runs the navigation-critical benchmarks (-O2 Release build) and merges
# their JSON into one file for before/after comparisons.
#
# Usage: tools/run_benches.sh [output.json]
#   BUILD_DIR=build-release  tools/run_benches.sh   # override build dir
#   FAULTS_OUT=faults.json   tools/run_benches.sh   # override faults file
#   FLEET_OUT=fleet.json     tools/run_benches.sh   # override fleet file
#   COND_OUT=cond.json       tools/run_benches.sh   # override condition file
#   STEP_OUT=step.json       tools/run_benches.sh   # override step file
#   RECOVERY_OUT=rec.json    tools/run_benches.sh   # override recovery file
#   LAYOUT_OUT=layout.json   tools/run_benches.sh   # override layout file
#   NATIVE_OUT=native.json   tools/run_benches.sh   # override native file
#
# The output has one top-level key per benchmark binary, each holding the
# raw Google Benchmark JSON (context + benchmarks array). The fault-
# injection benchmarks (bench_recovery under FaultPlan/FaultyJournal) are
# additionally emitted on their own into BENCH_faults.json so the
# robustness numbers can be tracked separately from the navigation ones.
# The scheduler head-to-heads (bench_fleet's SkewedBatch and
# StartInstance, static vs stealing / legacy vs arena) are likewise
# emitted into BENCH_fleet.json, with aggregate repetitions so the
# speedup ratios are robust to scheduling noise. The condition-VM
# head-to-heads (bench_condition plus bench_navigation's
# ConditionedChain, tree-walk vs compiled VM) land in BENCH_cond.json
# the same way. The compilation-ladder upper rungs — typed condition
# programs (ConditionEval vm:2) and the fused step programs
# (StepChainNavigation) — land in BENCH_step.json, with ladder speedups
# measured against the same run's interpreted-VM conditioned chain so
# they compare like with like on this machine. The snapshot-recovery
# head-to-heads (bench_recovery's RecoverAfterHistory with/without
# checkpoints and FleetRecoverSharded 1-vs-4 shards) land in
# BENCH_recovery.json; note the sharded speedup tracks the machine's
# core count (a 1-core box reports ~1.0). The instance-layout
# head-to-heads (PackedChainNavigation and PackedStartInstance, packed
# SoA hot/cold split vs the legacy AoS runtime vector, plus the skewed
# steal batch for cost-aware-victim context) land in BENCH_layout.json.
# The native-codegen head-to-heads (NativeChainNavigation and
# NativeConditionedChain, x86-64 step functions vs the threaded-code
# interpreter on the same fused plans) land in BENCH_native.json; on
# builds without the emitter both arms run threaded code and the ratios
# collapse to ~1.

set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_nav.json}"
FAULTS_OUT="${FAULTS_OUT:-BENCH_faults.json}"
FLEET_OUT="${FLEET_OUT:-BENCH_fleet.json}"
COND_OUT="${COND_OUT:-BENCH_cond.json}"
STEP_OUT="${STEP_OUT:-BENCH_step.json}"
RECOVERY_OUT="${RECOVERY_OUT:-BENCH_recovery.json}"
LAYOUT_OUT="${LAYOUT_OUT:-BENCH_layout.json}"
NATIVE_OUT="${NATIVE_OUT:-BENCH_native.json}"
BUILD_DIR="${BUILD_DIR:-build}"
BENCHES=(bench_navigation bench_fleet bench_recovery bench_condition)

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${BENCHES[@]}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for b in "${BENCHES[@]}"; do
  echo "== $b ==" >&2
  "$BUILD_DIR/bench/$b" --benchmark_format=json \
    --benchmark_min_time=0.2 > "$tmpdir/$b.json"
done

echo "== bench_recovery (injected faults) ==" >&2
"$BUILD_DIR/bench/bench_recovery" --benchmark_format=json \
  --benchmark_filter='Fault' \
  --benchmark_min_time=0.2 > "$tmpdir/bench_faults.json"

# Spin-up first: the skewed-batch benchmark spends most of its wall
# clock in sleeps, which lets the frequency governor downclock and
# taints any timing run after it.
echo "== bench_fleet (arena spin-up) ==" >&2
"$BUILD_DIR/bench/bench_fleet" --benchmark_format=json \
  --benchmark_filter='StartInstance' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_fleet_spinup.json"

echo "== bench_condition (tree-walk vs VM) ==" >&2
"$BUILD_DIR/bench/bench_condition" --benchmark_format=json \
  --benchmark_filter='BM_ConditionEval' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_cond_eval.json"

echo "== bench_navigation (conditioned chain, tree-walk vs VM) ==" >&2
"$BUILD_DIR/bench/bench_navigation" --benchmark_format=json \
  --benchmark_filter='ConditionedChain' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_cond_nav.json"

echo "== bench_navigation (fused step programs) ==" >&2
"$BUILD_DIR/bench/bench_navigation" --benchmark_format=json \
  --benchmark_filter='StepChain' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_step_nav.json"

echo "== bench_recovery (snapshot + sharded recovery) ==" >&2
"$BUILD_DIR/bench/bench_recovery" --benchmark_format=json \
  --benchmark_filter='RecoverAfterHistory|FleetRecoverSharded' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_recovery_snap.json"

echo "== bench_navigation (packed vs legacy layout) ==" >&2
"$BUILD_DIR/bench/bench_navigation" --benchmark_format=json \
  --benchmark_filter='PackedChain' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_layout_nav.json"

echo "== bench_navigation (native codegen vs threaded code) ==" >&2
"$BUILD_DIR/bench/bench_navigation" --benchmark_format=json \
  --benchmark_filter='NativeChain|NativeConditionedChain' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_native_nav.json"

echo "== bench_fleet (packed spin-up) ==" >&2
"$BUILD_DIR/bench/bench_fleet" --benchmark_format=json \
  --benchmark_filter='PackedStartInstance' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_layout_spinup.json"

echo "== bench_fleet (scheduler head-to-head) ==" >&2
"$BUILD_DIR/bench/bench_fleet" --benchmark_format=json \
  --benchmark_filter='SkewedBatch' \
  --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
  > "$tmpdir/bench_fleet_sched.json"

python3 - "$OUT" "$tmpdir" "${BENCHES[@]}" <<'EOF'
import json, sys
out_path, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for b in benches:
    with open(f"{tmpdir}/{b}.json") as f:
        merged[b] = json.load(f)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}")
EOF

python3 - "$FAULTS_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_faults.json") as f:
    merged = {"bench_recovery_faults": json.load(f)}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}")
EOF

python3 - "$FLEET_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_fleet_sched.json") as f:
    sched = json.load(f)
with open(f"{tmpdir}/bench_fleet_spinup.json") as f:
    spinup = json.load(f)

# Headline speedups from the median aggregates: static vs stealing on the
# skewed batch, legacy vs arena on spin-up.
medians = {}
for b in sched.get("benchmarks", []) + spinup.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

summary = {}
def speedup(name, base_key, test_key):
    base, test = medians.get(base_key), medians.get(test_key)
    if base and test:
        summary[name] = round(base["real_time"] / test["real_time"], 3)

speedup("skewed_batch_speedup_stealing",
        "BM_FleetSkewedBatch/stealing:0/real_time",
        "BM_FleetSkewedBatch/stealing:1/real_time")
speedup("start_instance_speedup_arena",
        "BM_FleetStartInstance/arena:0",
        "BM_FleetStartInstance/arena:1")

merged = {"bench_fleet_scheduler": sched, "bench_fleet_spinup": spinup,
          "summary": summary}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}: {summary}")
EOF

python3 - "$RECOVERY_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_recovery_snap.json") as f:
    rec = json.load(f)

# Headline ratios from the median aggregates. The acceptance number is
# recovery_snapshot_flatness: with checkpoints on, recovery at 10x the
# history must stay flat (<= 1.2x) while full replay grows ~linearly
# (recovery_full_replay_growth). recovery_sharded_speedup is wall-clock
# 1-shard vs 4-shard parallel replay and tracks the core count.
medians = {}
for b in rec.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

summary = {}
def ratio(name, base_key, test_key):
    base, test = medians.get(base_key), medians.get(test_key)
    if base and test:
        summary[name] = round(base["real_time"] / test["real_time"], 3)

for n in (10, 100):
    ratio(f"recovery_snapshot_speedup_{n}",
          f"BM_RecoverAfterHistory/history:{n}/snap:0",
          f"BM_RecoverAfterHistory/history:{n}/snap:1")
ratio("recovery_snapshot_flatness",
      "BM_RecoverAfterHistory/history:100/snap:1",
      "BM_RecoverAfterHistory/history:10/snap:1")
ratio("recovery_full_replay_growth",
      "BM_RecoverAfterHistory/history:100/snap:0",
      "BM_RecoverAfterHistory/history:10/snap:0")
ratio("recovery_sharded_speedup",
      "BM_FleetRecoverSharded/shards:1",
      "BM_FleetRecoverSharded/shards:4")

merged = {"bench_snapshot_recovery": rec, "summary": summary}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}: {summary}")
EOF

python3 - "$LAYOUT_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_layout_nav.json") as f:
    nav = json.load(f)
with open(f"{tmpdir}/bench_layout_spinup.json") as f:
    spinup = json.load(f)
with open(f"{tmpdir}/bench_fleet_sched.json") as f:
    sched = json.load(f)

# Headline speedups from the median aggregates: packed SoA hot/cold
# layout (packed:1) vs the legacy AoS runtime vector (packed:0), on the
# fully fused conditioned chain and on raw spin-up. The headline gate is
# packed_start_instance_100_speedup (measured 1.15-1.21x; gated >= 1.08x
# in CI with noise margin — spin-up is where the layout eliminates the
# per-activity struct copy outright); packed_chain_1000_speedup is gated
# as a wide no-regression floor since the settle sweep was already O(1)
# before the split and the ratio sits inside machine noise (see
# docs/specs/instance_layout.md). The skewed steal batch rides along for
# cost-aware-victim context: its median "stolen" counter shows stealing
# still drains the loaded engine with the cost-weighted victim pick in
# place.
medians = {}
for b in (nav.get("benchmarks", []) + spinup.get("benchmarks", []) +
          sched.get("benchmarks", [])):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

summary = {}
def speedup(name, base_key, test_key):
    base, test = medians.get(base_key), medians.get(test_key)
    if base and test:
        summary[name] = round(base["real_time"] / test["real_time"], 3)

for n in (100, 1000):
    speedup(f"packed_chain_{n}_speedup",
            f"BM_PackedChainNavigation/n:{n}/packed:0",
            f"BM_PackedChainNavigation/n:{n}/packed:1")
for n in (20, 100):
    speedup(f"packed_start_instance_{n}_speedup",
            f"BM_PackedStartInstance/n:{n}/packed:0",
            f"BM_PackedStartInstance/n:{n}/packed:1")
speedup("skewed_batch_speedup_stealing",
        "BM_FleetSkewedBatch/stealing:0/real_time",
        "BM_FleetSkewedBatch/stealing:1/real_time")

merged = {"bench_layout_navigation": nav, "bench_layout_spinup": spinup,
          "bench_fleet_scheduler": sched, "summary": summary}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}: {summary}")
EOF

python3 - "$COND_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_cond_eval.json") as f:
    micro = json.load(f)
with open(f"{tmpdir}/bench_cond_nav.json") as f:
    nav = json.load(f)

# Headline speedups from the median aggregates: tree-walk (vm:0) vs
# compiled VM (vm:1), per expression shape and end-to-end.
medians = {}
for b in micro.get("benchmarks", []) + nav.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

summary = {}
def speedup(name, base_key, test_key):
    base, test = medians.get(base_key), medians.get(test_key)
    if base and test:
        summary[name] = round(base["real_time"] / test["real_time"], 3)

for expr, label in [(0, "trivial"), (1, "guard"), (2, "wide")]:
    speedup(f"condition_eval_speedup_vm_{label}",
            f"BM_ConditionEval/expr:{expr}/vm:0",
            f"BM_ConditionEval/expr:{expr}/vm:1")
for n in (100, 1000):
    speedup(f"conditioned_chain_{n}_speedup_vm",
            f"BM_ConditionedChainNavigation/n:{n}/vm:0",
            f"BM_ConditionedChainNavigation/n:{n}/vm:1")

merged = {"bench_condition_eval": micro, "bench_conditioned_navigation": nav,
          "summary": summary}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}: {summary}")
EOF

python3 - "$STEP_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_cond_eval.json") as f:
    micro = json.load(f)
with open(f"{tmpdir}/bench_cond_nav.json") as f:
    nav = json.load(f)
with open(f"{tmpdir}/bench_step_nav.json") as f:
    step = json.load(f)

# Headline speedups from the median aggregates, one per ladder rung:
# typed programs vs tree-walk and vs the generic VM (micro), step fusion
# vs the interpreted sweep over the same typed programs (A/B), and the
# acceptance number — the fully fused chain vs this run's interpreted-VM
# conditioned chain, i.e. what BENCH_cond.json's vm:1 series measures.
medians = {}
for b in (micro.get("benchmarks", []) + nav.get("benchmarks", []) +
          step.get("benchmarks", [])):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

summary = {}
def speedup(name, base_key, test_key):
    base, test = medians.get(base_key), medians.get(test_key)
    if base and test:
        summary[name] = round(base["real_time"] / test["real_time"], 3)

for expr, label in [(0, "trivial"), (1, "guard"), (2, "wide")]:
    speedup(f"condition_eval_speedup_typed_{label}",
            f"BM_ConditionEval/expr:{expr}/vm:0",
            f"BM_ConditionEval/expr:{expr}/vm:2")
    speedup(f"condition_eval_speedup_typed_vs_generic_{label}",
            f"BM_ConditionEval/expr:{expr}/vm:1",
            f"BM_ConditionEval/expr:{expr}/vm:2")
for n in (100, 1000):
    speedup(f"step_chain_{n}_speedup_fused",
            f"BM_StepChainNavigation/n:{n}/step:0",
            f"BM_StepChainNavigation/n:{n}/step:1")
    speedup(f"conditioned_chain_{n}_speedup_ladder",
            f"BM_ConditionedChainNavigation/n:{n}/vm:1",
            f"BM_StepChainNavigation/n:{n}/step:1")

merged = {"bench_step_navigation": step, "summary": summary}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}: {summary}")
EOF

python3 - "$NATIVE_OUT" "$tmpdir" <<'EOF'
import json, sys
out_path, tmpdir = sys.argv[1], sys.argv[2]
with open(f"{tmpdir}/bench_native_nav.json") as f:
    nav = json.load(f)

# Headline speedups from the median aggregates: the native x86-64 step
# functions (native:1) vs the threaded-code interpreter (native:0) on
# the same fused plans. native_chain prices the sweep scaffold (simple
# guard conditions), native_conditioned_chain additionally prices the
# lowered eight-clause arithmetic condition on every hop. The CI acceptance number is
# the best n:100 ratio >= 1.15 (check_bench_regression.py
# --native-fresh); on emitter-less builds both arms are threaded code
# and the ratios sit at ~1.0.
medians = {}
for b in nav.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        medians[b["run_name"]] = b

summary = {}
def speedup(name, base_key, test_key):
    base, test = medians.get(base_key), medians.get(test_key)
    if base and test:
        summary[name] = round(base["real_time"] / test["real_time"], 3)

for n in (100, 1000):
    speedup(f"native_chain_{n}_speedup",
            f"BM_NativeChainNavigation/n:{n}/native:0",
            f"BM_NativeChainNavigation/n:{n}/native:1")
    speedup(f"native_conditioned_chain_{n}_speedup",
            f"BM_NativeConditionedChain/n:{n}/native:0",
            f"BM_NativeConditionedChain/n:{n}/native:1")

merged = {"bench_native_navigation": nav, "summary": summary}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {out_path}: {summary}")
EOF
