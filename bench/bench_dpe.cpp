// Experiment E1: dead path elimination cost (paper §3.2). DPE is the
// mechanism behind both translations (saga abort cut-off, flexible-path
// switching), so its cost scales every failure path.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace exotica::bench {
namespace {

// First activity fails; DPE sweeps the remaining chain of length N.
void BM_DpeChainSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  SetupConstProgram(&store, &programs, "fail", 1);
  SetupConstProgram(&store, &programs, "ok", 0);

  wf::ProcessBuilder b(&store, "deadchain");
  b.Program("A0", "fail");
  for (int i = 1; i < n; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i), "RC = 0");
  }
  if (!b.Register().ok()) std::abort();

  uint64_t dead = 0;
  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion("deadchain");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    dead += engine.stats().dead_path_terminations;
  }
  state.counters["dead/s"] =
      benchmark::Counter(static_cast<double>(dead), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DpeChainSweep)->Arg(10)->Arg(100)->Arg(1000);

// Binary tree of depth D rooted at a failing activity: 2^(D+1)-2 dead.
void BM_DpeTreeSweep(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  SetupConstProgram(&store, &programs, "fail", 1);
  SetupConstProgram(&store, &programs, "ok", 0);

  wf::ProcessBuilder b(&store, "deadtree");
  b.Program("n1", "fail");
  int total = (1 << (depth + 1)) - 1;
  for (int i = 2; i <= total; ++i) {
    b.Program("n" + std::to_string(i), "ok");
    b.Connect("n" + std::to_string(i / 2), "n" + std::to_string(i), "RC = 0");
  }
  if (!b.Register().ok()) std::abort();

  uint64_t dead = 0;
  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion("deadtree");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    dead += engine.stats().dead_path_terminations;
  }
  state.counters["dead/s"] =
      benchmark::Counter(static_cast<double>(dead), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DpeTreeSweep)->Arg(4)->Arg(8)->Arg(12);

// Live vs dead execution of the same graph: the relative cost of DPE
// termination vs actually running the activities.
void BM_DpeVsLiveChain(benchmark::State& state) {
  const int n = 500;
  const bool fail_first = state.range(0) == 1;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  SetupConstProgram(&store, &programs, "fail", 1);
  SetupConstProgram(&store, &programs, "ok", 0);

  wf::ProcessBuilder b(&store, "line");
  b.Program("A0", fail_first ? "fail" : "ok");
  for (int i = 1; i < n; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i), "RC = 0");
  }
  if (!b.Register().ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion("line");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.SetLabel(fail_first ? "dead-path" : "live-path");
}
BENCHMARK(BM_DpeVsLiveChain)->Arg(0)->Arg(1);

}  // namespace
}  // namespace exotica::bench
