// Experiment E3: worklists and staff resolution (paper §3.3) — the cost
// of posting an item to a role with R members, claim withdrawal, and the
// load-balancing claim pattern.

#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "org/worklist.h"

namespace exotica::bench {
namespace {

void BuildOrg(org::Directory* dir, int members) {
  (void)dir->AddRole("clerk");
  (void)dir->AddRole("boss");
  (void)dir->AddPerson("theboss", 9, {"boss"});
  for (int i = 0; i < members; ++i) {
    (void)dir->AddPerson("p" + std::to_string(i), 1, {"clerk"});
  }
}

void BM_StaffResolution(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  org::Directory dir;
  BuildOrg(&dir, members);
  // A fifth of the staff is absent with substitutes.
  for (int i = 0; i < members; i += 5) {
    (void)dir.SetAbsent("p" + std::to_string(i), true,
                        "p" + std::to_string((i + 1) % members));
  }
  for (auto _ : state) {
    auto staff = dir.ResolveStaff("clerk");
    if (!staff.ok()) state.SkipWithError(staff.status().ToString().c_str());
    benchmark::DoNotOptimize(staff->size());
  }
  state.counters["resolutions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaffResolution)->Arg(10)->Arg(100)->Arg(1000);

void BM_PostClaimComplete(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  org::Directory dir;
  BuildOrg(&dir, members);
  ManualClock clock;
  org::WorklistService service(&dir, &clock);

  int64_t i = 0;
  for (auto _ : state) {
    auto id = service.Post("wf-1", "A", "clerk");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    std::string person = "p" + std::to_string(i++ % members);
    if (!service.Claim(*id, person).ok()) state.SkipWithError("claim");
    if (!service.Complete(*id, person).ok()) state.SkipWithError("complete");
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PostClaimComplete)->Arg(10)->Arg(100);

// The §3.3 load-balancing pattern: K items posted to the role; every
// member claims greedily from their worklist until the pool drains.
void BM_LoadBalancingDrain(benchmark::State& state) {
  const int members = 10;
  const int items = static_cast<int>(state.range(0));
  org::Directory dir;
  BuildOrg(&dir, members);
  ManualClock clock;

  for (auto _ : state) {
    org::WorklistService service(&dir, &clock);
    for (int i = 0; i < items; ++i) {
      auto id = service.Post("wf-1", "A" + std::to_string(i), "clerk");
      if (!id.ok()) state.SkipWithError("post");
    }
    int drained = 0;
    while (drained < items) {
      for (int m = 0; m < members && drained < items; ++m) {
        std::string person = "p" + std::to_string(m);
        auto list = service.WorklistOf(person);
        if (list.empty()) continue;
        if (service.Claim(list[0]->id, person).ok()) {
          (void)service.Complete(list[0]->id, person);
          ++drained;
        }
      }
    }
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * items,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LoadBalancingDrain)->Arg(50)->Arg(500);

// Deadline scanning cost over a large posted set.
void BM_DeadlineScan(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  org::Directory dir;
  BuildOrg(&dir, 20);
  ManualClock clock;
  org::WorklistService service(&dir, &clock);
  for (int i = 0; i < items; ++i) {
    (void)service.Post("wf-1", "A" + std::to_string(i), "clerk",
                       /*deadline=*/1000000000, "boss");
  }
  for (auto _ : state) {
    auto notes = service.CheckDeadlines();
    benchmark::DoNotOptimize(notes.size());
  }
  state.counters["scans/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DeadlineScan)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace exotica::bench
