// Experiment E5: what coordinating through the WFMS costs relative to the
// hand-written native executor when the subtransactions do REAL work
// against the multidatabase substrate. The paper's implicit claim: the
// workflow route is viable — the overhead is a modest constant on top of
// the transactional work itself.

#include <benchmark/benchmark.h>

#include "atm/saga.h"
#include "atm/flex.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "txn/multidb.h"
#include "txn/tpc.h"
#include "wfrt/engine.h"

namespace exotica::bench {
namespace {

using atm::MultiDbRunner;
using atm::SagaSpec;
using data::Value;

// A 4-step travel saga over three autonomous sites, with real reads and
// writes per step.
SagaSpec TravelSaga() {
  SagaSpec spec("Travel");
  spec.Then("Pay").Then("Flight").Then("Hotel").Then("Car");
  return spec;
}

void RegisterTravelSubTxns(txn::MultiDatabase* mdb, MultiDbRunner* runner) {
  (void)mdb->AddSite("bank");
  (void)mdb->AddSite("airline");
  (void)mdb->AddSite("agency");
  auto write = [](const char* key, int64_t v) {
    return [key, v](txn::Transaction& t) { return t.Put(key, Value(v)); };
  };
  auto erase = [](const char* key) {
    return [key](txn::Transaction& t) { return t.Erase(key); };
  };
  (void)runner->Register({"Pay", "bank", write("charge", 100), write("charge", 0)});
  (void)runner->Register({"Flight", "airline", write("seat", 12), erase("seat")});
  (void)runner->Register({"Hotel", "agency", write("room", 5), erase("room")});
  (void)runner->Register({"Car", "agency", write("car", 9), erase("car")});
}

void BM_TravelSagaNative(benchmark::State& state) {
  const bool fail = state.range(0) == 1;
  txn::MultiDatabase mdb;
  MultiDbRunner runner(&mdb);
  RegisterTravelSubTxns(&mdb, &runner);
  SagaSpec spec = TravelSaga();

  for (auto _ : state) {
    if (fail) (*mdb.site("agency"))->FailNextCommits(1);  // Hotel refuses once
    atm::SagaExecutor executor(&runner);
    auto outcome = executor.Execute(spec);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
  }
  state.SetLabel(fail ? "hotel-refuses" : "all-commit");
}
BENCHMARK(BM_TravelSagaNative)->Arg(0)->Arg(1);

void BM_TravelSagaWorkflow(benchmark::State& state) {
  const bool fail = state.range(0) == 1;
  txn::MultiDatabase mdb;
  MultiDbRunner runner(&mdb);
  RegisterTravelSubTxns(&mdb, &runner);
  SagaSpec spec = TravelSaga();

  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  if (!translation.ok()) std::abort();
  wfrt::ProgramRegistry programs;
  if (!exo::BindSagaPrograms(spec, store, &runner, &programs).ok()) std::abort();

  for (auto _ : state) {
    if (fail) (*mdb.site("agency"))->FailNextCommits(1);
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.SetLabel(fail ? "hotel-refuses" : "all-commit");
}
BENCHMARK(BM_TravelSagaWorkflow)->Arg(0)->Arg(1);

// Figure-3 flexible transaction over a real multidatabase.
void RegisterFig3SubTxns(txn::MultiDatabase* mdb, MultiDbRunner* runner) {
  (void)mdb->AddSite("s1");
  (void)mdb->AddSite("s2");
  for (const char* name : {"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"}) {
    std::string key = name;
    const char* site = key > "T4" ? "s2" : "s1";
    (void)runner->Register(
        {name, site,
         [key](txn::Transaction& t) { return t.Put(key, Value(int64_t{1})); },
         [key](txn::Transaction& t) { return t.Erase(key); }});
  }
}

void BM_Fig3FlexNativeOnMultiDb(benchmark::State& state) {
  txn::MultiDatabase mdb;
  MultiDbRunner runner(&mdb);
  RegisterFig3SubTxns(&mdb, &runner);
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  for (auto _ : state) {
    atm::FlexExecutor executor(&runner);
    auto outcome = executor.Execute(spec);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
  }
}
BENCHMARK(BM_Fig3FlexNativeOnMultiDb);

void BM_Fig3FlexWorkflowOnMultiDb(benchmark::State& state) {
  txn::MultiDatabase mdb;
  MultiDbRunner runner(&mdb);
  RegisterFig3SubTxns(&mdb, &runner);
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  wf::DefinitionStore store;
  auto translation = exo::TranslateFlex(spec, &store);
  if (!translation.ok()) std::abort();
  wfrt::ProgramRegistry programs;
  if (!exo::BindFlexPrograms(spec, store, &runner, &programs).ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
}
BENCHMARK(BM_Fig3FlexWorkflowOnMultiDb);

// Ablation: the same 4-branch travel booking as ONE global transaction
// under presumed-abort 2PC (the protocol the paper says real
// multidatabases cannot run). Atomic, but the sites hold locks through
// both phases and a crashed coordinator leaves in-doubt branches — the
// trade the saga avoids.
void BM_TravelGlobal2pc(benchmark::State& state) {
  const bool fail = state.range(0) == 1;
  txn::MultiDatabase mdb;
  (void)mdb.AddSite("bank");
  (void)mdb.AddSite("airline");
  (void)mdb.AddSite("agency");
  auto write = [](const char* key, int64_t v) {
    return [key, v](txn::Transaction& t) { return t.Put(key, Value(v)); };
  };
  std::vector<txn::TpcBranch> branches = {
      {"bank", write("charge", 100)},
      {"airline", write("seat", 12)},
      {"agency", write("room", 5)},
      {"agency", write("car", 9)},
  };
  txn::TwoPhaseCommit tpc(&mdb);
  for (auto _ : state) {
    if (fail) (*mdb.site("agency"))->FailNextCommits(1);  // votes NO once
    auto out = tpc.Execute(branches);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.SetLabel(fail ? "agency-votes-no" : "all-commit");
}
BENCHMARK(BM_TravelGlobal2pc)->Arg(0)->Arg(1);

}  // namespace
}  // namespace exotica::bench
