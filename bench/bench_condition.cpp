// Condition evaluation head-to-head: the tree-walk evaluator vs the
// compiled-condition VM on the same expressions and container states.
// The micro benchmark isolates pure evaluation cost (no navigation); the
// expressions range from the trivial guard every connector carries to the
// wide multi-clause predicates transaction-model translations emit.

#include <benchmark/benchmark.h>

#include <string>

#include "data/container.h"
#include "data/types.h"
#include "expr/compile.h"
#include "expr/condition.h"
#include "expr/eval.h"
#include "expr/vm.h"

namespace exotica::bench {
namespace {

// Index-matched expression set over the "Wide" type below.
constexpr const char* kExprs[] = {
    // 0: the ubiquitous connector guard — one load, one compare.
    "f0 = 0",
    // 1: the shape transition conditions take after translation — a
    // short-circuit chain with a negation.
    "f0 >= 0 AND f0 < 100 AND NOT (f0 = 9)",
    // 2: wide predicate: arithmetic, mixed fields, nested boolean
    // structure across eight members.
    "(f0 + f1 * 2 > f2 OR f3 = 1) AND (f4 - f5 <= f6 + 3) "
    "AND NOT (f7 = 5 OR f1 > f0 + f2)",
};

data::TypeRegistry* WideRegistry() {
  static data::TypeRegistry* reg = [] {
    auto* r = new data::TypeRegistry();
    data::StructType t("Wide");
    for (int i = 0; i < 8; ++i) {
      if (!t.AddScalar("f" + std::to_string(i), data::ScalarType::kLong,
                       data::Value(int64_t{i}))
               .ok()) {
        std::abort();
      }
    }
    if (!r->Register(std::move(t)).ok()) std::abort();
    return r;
  }();
  return reg;
}

// args: {expression index, evaluator}. Reported as evals/s.
// Evaluator 0 = tree-walk, 1 = generic VM (operand-kind dispatch per op),
// 2 = typed monomorphic VM (the "Wide" members are all longs, so every
// expression above types statically).
void BM_ConditionEval(benchmark::State& state) {
  const auto expr_idx = static_cast<size_t>(state.range(0));
  const int evaluator = static_cast<int>(state.range(1));

  auto container = data::Container::Create(*WideRegistry(), "Wide");
  if (!container.ok()) std::abort();
  for (int i = 0; i < 8; ++i) {
    if (!container->Set("f" + std::to_string(i), data::Value(int64_t{i}))
             .ok()) {
      std::abort();
    }
  }

  auto cond = expr::Condition::Compile(kExprs[expr_idx]);
  if (!cond.ok()) std::abort();
  auto prog = expr::ConditionCompiler::Compile(cond->root(), *container);
  if (!prog.ok()) std::abort();
  if (evaluator == 2 && !prog->typed()) std::abort();

  if (evaluator == 2) {
    for (auto _ : state) {
      auto r = prog->EvaluateBool(*container);  // runs the typed program
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      benchmark::DoNotOptimize(r);
    }
  } else if (evaluator == 1) {
    for (auto _ : state) {
      auto r = prog->EvaluateBoolGeneric(*container);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      benchmark::DoNotOptimize(r);
    }
  } else {
    for (auto _ : state) {
      expr::ContainerResolver resolver(*container);
      auto r = cond->Evaluate(resolver);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConditionEval)
    ->ArgNames({"expr", "vm"})
    ->Args({0, 0})->Args({0, 1})->Args({0, 2})
    ->Args({1, 0})->Args({1, 1})->Args({1, 2})
    ->Args({2, 0})->Args({2, 1})->Args({2, 2});

// Compilation cost itself: what plan registration pays per condition.
void BM_ConditionCompile(benchmark::State& state) {
  const auto expr_idx = static_cast<size_t>(state.range(0));
  auto container = data::Container::Create(*WideRegistry(), "Wide");
  if (!container.ok()) std::abort();
  auto cond = expr::Condition::Compile(kExprs[expr_idx]);
  if (!cond.ok()) std::abort();

  for (auto _ : state) {
    auto prog = expr::ConditionCompiler::Compile(cond->root(), *container);
    if (!prog.ok()) state.SkipWithError(prog.status().ToString().c_str());
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_ConditionCompile)->ArgName("expr")->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace exotica::bench
