// Experiment E2: forward recovery cost — journal replay + resume time as
// a function of journal length, the journaling write amplification, and
// (E2b) navigation throughput under injected program/journal faults.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "wfjournal/faulty.h"
#include "wfjournal/journal.h"
#include "wfrt/faults.h"
#include "wfrt/fleet.h"
#include "bench_common.h"

namespace exotica::bench {
namespace {

// Builds a journal by running `instances` chain-of-n processes to
// completion.
wfjournal::MemoryJournal BuildJournal(wf::DefinitionStore* store,
                                      wfrt::ProgramRegistry* programs, int n,
                                      int instances) {
  std::string process = SetupChainProcess(store, programs, n);
  wfjournal::MemoryJournal journal;
  wfrt::Engine engine(store, programs);
  if (!engine.AttachJournal(&journal).ok()) std::abort();
  for (int i = 0; i < instances; ++i) {
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) std::abort();
  }
  return journal;
}

// Full replay of a journal of finished instances.
void BM_RecoverFinishedInstances(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  wfjournal::MemoryJournal journal =
      BuildJournal(&store, &programs, /*n=*/20, instances);

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&journal).ok()) std::abort();
    Status st = engine.Recover();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * journal.size(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RecoverFinishedInstances)->Arg(1)->Arg(10)->Arg(100);

// Crash mid-instance at a fixed fraction of the journal, then recover +
// re-run to completion: the paper's resume-from-failure-point scenario.
void BM_RecoverAndResume(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  wfjournal::MemoryJournal full =
      BuildJournal(&store, &programs, n, /*instances=*/1);
  auto records = full.ReadAll();
  if (!records.ok()) std::abort();
  const uint64_t cut = full.size() / 2;

  for (auto _ : state) {
    state.PauseTiming();
    wfjournal::MemoryJournal journal;
    for (uint64_t i = 0; i < cut; ++i) (void)journal.Append((*records)[i]);
    state.ResumeTiming();

    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&journal).ok()) std::abort();
    Status st = engine.Recover();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    st = engine.Run();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["journal_cut"] = static_cast<double>(cut);
}
BENCHMARK(BM_RecoverAndResume)->Arg(10)->Arg(100)->Arg(500);

// Journal write amplification: records appended per activity navigated.
void BM_JournalAmplification(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  uint64_t records = 0, activities = 0;
  for (auto _ : state) {
    wfjournal::MemoryJournal journal;
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&journal).ok()) std::abort();
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    records += journal.size();
    activities += engine.stats().activities_executed;
  }
  state.counters["records_per_activity"] =
      static_cast<double>(records) / static_cast<double>(activities);
}
BENCHMARK(BM_JournalAmplification)->Arg(10)->Arg(100);

// File-journal durability cost: with and without fsync per record.
void BM_FileJournalAppend(benchmark::State& state) {
  const bool fsync_each = state.range(0) == 1;
  std::string path = "/tmp/exo_bench_journal.log";
  std::remove(path.c_str());
  auto journal = wfjournal::FileJournal::Open(path, fsync_each);
  if (!journal.ok()) std::abort();

  wfjournal::Record r;
  r.type = wfjournal::EventType::kActivityFinished;
  r.instance = "wf-1";
  r.activity = "A";
  r.payload = "RC=0\n";
  for (auto _ : state) {
    Status st = (*journal)->Append(r);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel(fsync_each ? "fsync-each" : "buffered");
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  std::remove(path.c_str());
}
BENCHMARK(BM_FileJournalAppend)->Arg(0)->Arg(1);

// E2c: snapshot checkpoints flatten recovery cost against history
// length. The journal holds `history` finished instances plus one live
// suspended one; with snap:1 a checkpoint truncates the finished history
// behind a snapshot, so replay cost tracks the live set, not the past.
void BM_RecoverAfterHistory(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  const bool snapshot = state.range(1) == 1;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, 20);

  wfjournal::MemoryJournal journal;
  {
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&journal).ok()) std::abort();
    for (int i = 0; i < history; ++i) {
      if (!engine.RunToCompletion(process).ok()) std::abort();
    }
    auto live = engine.StartProcess(process);
    if (!live.ok()) std::abort();
    if (!engine.SuspendInstance(*live).ok()) std::abort();
    if (!engine.Run().ok()) std::abort();
    if (snapshot && !engine.Checkpoint().ok()) std::abort();
  }

  uint64_t replayed = 0;
  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&journal).ok()) std::abort();
    Status st = engine.Recover();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    replayed = engine.stats().recovery_records_replayed;
  }
  state.counters["records_replayed"] = static_cast<double>(replayed);
  state.counters["journal_records"] =
      static_cast<double>(journal.size() - journal.first_seq());
}
BENCHMARK(BM_RecoverAfterHistory)
    ->ArgsProduct({{10, 100}, {0, 1}})
    ->ArgNames({"history", "snap"});

// E2c: parallel sharded recovery — the same total history replays across
// 1 vs 4 per-engine journal shards, one recovery thread per shard.
void BM_FleetRecoverSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  // Large enough that replay work dwarfs the per-iteration thread
  // spawn/join cost the parallel path pays.
  const int kTotalInstances = 1024;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, 20);

  // Build each shard's history directly on its engine: deterministic
  // shard contents, no steal traffic muddying the comparison.
  std::vector<std::unique_ptr<wfjournal::MemoryJournal>> owned;
  std::vector<wfjournal::Journal*> journals;
  for (int e = 0; e < shards; ++e) {
    owned.push_back(std::make_unique<wfjournal::MemoryJournal>());
    journals.push_back(owned.back().get());
  }
  {
    wfrt::EngineFleet fleet(&store, &programs, shards);
    if (!fleet.AttachJournals(journals).ok()) std::abort();
    for (int e = 0; e < shards; ++e) {
      for (int i = 0; i < kTotalInstances / shards; ++i) {
        if (!fleet.engine(e)->RunToCompletion(process).ok()) std::abort();
      }
      auto live = fleet.engine(e)->StartProcess(process);
      if (!live.ok()) std::abort();
      if (!fleet.engine(e)->SuspendInstance(*live).ok()) std::abort();
      if (!fleet.engine(e)->Run().ok()) std::abort();
    }
  }

  uint64_t replayed = 0;
  for (auto _ : state) {
    wfrt::EngineFleet fleet(&store, &programs, shards);
    if (!fleet.AttachJournals(journals).ok()) std::abort();
    auto report = fleet.Recover();
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    replayed = report->records_replayed;
  }
  state.counters["records_replayed"] = static_cast<double>(replayed);
}
BENCHMARK(BM_FleetRecoverSharded)->Arg(1)->Arg(4)->ArgName("shards");

// E2b: navigation throughput with a deterministic transient-fault rate —
// the retry tax of the paper's restart-from-the-beginning model. Arg is
// the per-attempt crash probability in per-mille.
void BM_NavigationUnderTransientFaults(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, 50);

  wfrt::FaultPlan plan(1234);
  wfrt::FaultProfile profile;
  profile.transient_probability = rate;
  plan.SetDefaultProfile(profile);
  if (!plan.Instrument(&programs).ok()) std::abort();

  uint64_t activities = 0, retries = 0;
  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    activities += engine.stats().activities_executed;
    retries += engine.stats().retries;
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(activities), benchmark::Counter::kIsRate);
  state.counters["retry_ratio"] =
      static_cast<double>(retries) / static_cast<double>(activities);
}
BENCHMARK(BM_NavigationUnderTransientFaults)->Arg(0)->Arg(50)->Arg(200);

// E2b: the full crash-recover-resume cycle when the journal device fails
// mid-run — engine 1 dies on an injected append error at the journal
// midpoint, engine 2 replays the surviving prefix and finishes the work.
void BM_RecoveryUnderJournalFaults(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  // Reference append count for the midpoint fault.
  uint64_t total = 0;
  {
    wfjournal::MemoryJournal mem;
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&mem).ok()) std::abort();
    if (!engine.RunToCompletion(process).ok()) std::abort();
    total = mem.size();
  }

  for (auto _ : state) {
    wfjournal::MemoryJournal mem;
    wfjournal::FaultyJournal faulty(&mem);
    faulty.FailAppendAt(total / 2, wfjournal::FaultyJournal::FaultMode::kAppendError);
    {
      wfrt::Engine engine(&store, &programs);
      if (!engine.AttachJournal(&faulty).ok()) std::abort();
      auto id = engine.StartProcess(process);
      if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
      (void)engine.Run();  // dies on the injected fault
    }
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&mem).ok()) std::abort();
    Status st = engine.Recover();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    st = engine.Run();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["journal_records"] = static_cast<double>(total);
}
BENCHMARK(BM_RecoveryUnderJournalFaults)->Arg(50)->Arg(200);

}  // namespace
}  // namespace exotica::bench
