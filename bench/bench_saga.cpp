// Experiment F2/E5/E6: the Figure-2 saga — native executor vs the
// workflow implementation, swept over saga length and abort point. The
// structural claim to reproduce: both give identical outcomes; the
// workflow route pays a bounded constant factor of navigation overhead.

#include <benchmark/benchmark.h>

#include "atm/saga.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "bench_common.h"

namespace exotica::bench {
namespace {

using atm::SagaSpec;
using atm::ScriptedRunner;

SagaSpec LinearSaga(int n) {
  SagaSpec spec("S");
  for (int i = 1; i <= n; ++i) spec.Then("T" + std::to_string(i));
  return spec;
}

SagaSpec ParallelSaga(int width) {
  // Fork-join: Start -> {B1..Bw} -> End.
  SagaSpec spec("P");
  spec.Step("Start", {});
  std::vector<std::string> mids;
  for (int i = 1; i <= width; ++i) {
    std::string name = "B" + std::to_string(i);
    spec.Step(name, {"Start"});
    mids.push_back(name);
  }
  spec.Step("End", mids);
  return spec;
}

// Native saga execution, no failures.
void BM_SagaNative(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SagaSpec spec = LinearSaga(n);
  for (auto _ : state) {
    ScriptedRunner runner;
    atm::SagaExecutor executor(&runner);
    auto outcome = executor.Execute(spec);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    benchmark::DoNotOptimize(outcome->committed);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SagaNative)->Arg(5)->Arg(20)->Arg(100);

// Workflow saga execution, no failures (translation amortized).
void BM_SagaWorkflow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SagaSpec spec = LinearSaga(n);
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  if (!translation.ok()) std::abort();

  for (auto _ : state) {
    ScriptedRunner runner;
    wfrt::ProgramRegistry programs;
    if (!exo::BindSagaPrograms(spec, store, &runner, &programs).ok()) {
      std::abort();
    }
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SagaWorkflow)->Arg(5)->Arg(20)->Arg(100);

// Abort-point sweep on a 10-step saga: cost of the compensation path as a
// function of how far the saga got (Figure-2 failure series).
void BM_SagaWorkflowAbortAt(benchmark::State& state) {
  const int n = 10;
  const int j = static_cast<int>(state.range(0));  // abort at step j+1
  SagaSpec spec = LinearSaga(n);
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  if (!translation.ok()) std::abort();

  for (auto _ : state) {
    ScriptedRunner runner;
    if (j < n) runner.AlwaysAbort("T" + std::to_string(j + 1));
    wfrt::ProgramRegistry programs;
    if (!exo::BindSagaPrograms(spec, store, &runner, &programs).ok()) {
      std::abort();
    }
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.SetLabel(j == n ? "commit" : "abort@T" + std::to_string(j + 1));
}
BENCHMARK(BM_SagaWorkflowAbortAt)->DenseRange(0, 10, 2);

// Native abort-point sweep for the overhead comparison.
void BM_SagaNativeAbortAt(benchmark::State& state) {
  const int n = 10;
  const int j = static_cast<int>(state.range(0));
  SagaSpec spec = LinearSaga(n);
  for (auto _ : state) {
    ScriptedRunner runner;
    if (j < n) runner.AlwaysAbort("T" + std::to_string(j + 1));
    atm::SagaExecutor executor(&runner);
    auto outcome = executor.Execute(spec);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
  }
  state.SetLabel(j == n ? "commit" : "abort@T" + std::to_string(j + 1));
}
BENCHMARK(BM_SagaNativeAbortAt)->DenseRange(0, 10, 2);

// Generalized (parallel) saga via workflow: width sweep.
void BM_ParallelSagaWorkflow(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  SagaSpec spec = ParallelSaga(w);
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  if (!translation.ok()) std::abort();

  for (auto _ : state) {
    ScriptedRunner runner;
    wfrt::ProgramRegistry programs;
    if (!exo::BindSagaPrograms(spec, store, &runner, &programs).ok()) {
      std::abort();
    }
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (w + 2),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSagaWorkflow)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace exotica::bench
