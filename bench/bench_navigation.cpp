// Experiment F1/E1 substrate: raw navigation cost of the workflow engine —
// the per-activity and per-connector overhead every translated transaction
// model pays. Counters report activities navigated per second.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace exotica::bench {
namespace {

// Sequential chain of N activities: one instance end to end.
void BM_ChainNavigation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChainNavigation)->Arg(1)->Arg(10)->Arg(20)->Arg(100)->Arg(1000);

// Fan-out of width W from one source: parallel-branch navigation.
void BM_FanOutNavigation(benchmark::State& state) {
  const int w = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  SetupConstProgram(&store, &programs, "ok", 0);
  wf::ProcessBuilder b(&store, "fan");
  b.Program("Root", "ok");
  for (int i = 0; i < w; ++i) {
    b.Program("L" + std::to_string(i), "ok");
    b.Connect("Root", "L" + std::to_string(i), "RC = 0");
  }
  if (!b.Register().ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion("fan");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (w + 1),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FanOutNavigation)->Arg(8)->Arg(64)->Arg(256);

// Data-connector cost: chain where every hop copies K fields.
void BM_DataFlowNavigation(benchmark::State& state) {
  const int fields = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;

  data::StructType t("Wide");
  for (int i = 0; i < fields; ++i) {
    (void)t.AddScalar("f" + std::to_string(i), data::ScalarType::kLong,
                      data::Value(int64_t{i}));
  }
  if (!store.types().Register(std::move(t)).ok()) std::abort();
  wf::ProgramDeclaration decl;
  decl.name = "wide";
  decl.input_type = "Wide";
  decl.output_type = "Wide";
  if (!store.DeclareProgram(decl).ok()) std::abort();
  if (!programs.Bind("wide",
                     [](const data::Container& in, data::Container* out,
                        const wfrt::ProgramContext&) -> Status {
                       for (const std::string& p : in.paths()) {
                         EXO_ASSIGN_OR_RETURN(data::Value v, in.Get(p));
                         EXO_RETURN_NOT_OK(out->Set(p, v));
                       }
                       return Status::OK();
                     })
           .ok()) {
    std::abort();
  }

  constexpr int kHops = 10;
  wf::ProcessBuilder b(&store, "wideflow");
  wf::ProcessBuilder::FieldPairs pairs;
  for (int i = 0; i < fields; ++i) {
    pairs.emplace_back("f" + std::to_string(i), "f" + std::to_string(i));
  }
  for (int i = 0; i < kHops; ++i) {
    b.Program("A" + std::to_string(i), "wide");
    if (i > 0) {
      b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i));
      b.MapData("A" + std::to_string(i - 1), "A" + std::to_string(i), pairs);
    }
  }
  if (!b.Register().ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion("wideflow");
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["fields/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * fields * (kHops - 1),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DataFlowNavigation)->Arg(1)->Arg(16)->Arg(64);

// Builds the conditioned chain: N activities, a three-clause
// short-circuit condition on every hop.
std::string SetupConditionedChain(wf::DefinitionStore* store,
                                  wfrt::ProgramRegistry* programs, int n) {
  SetupConstProgram(store, programs, "ok", 0);
  std::string process = "cchain" + std::to_string(n);
  wf::ProcessBuilder b(store, process);
  for (int i = 0; i < n; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    if (i > 0) {
      b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i),
                "RC >= 0 AND RC < 100 AND NOT (RC = 9)");
    }
  }
  if (!b.Register().ok()) std::abort();
  return process;
}

// Chain with a non-trivial condition on every hop: each transition pays
// a three-clause short-circuit evaluation, through the compiled VM
// (vm:1) or the tree-walk reference (vm:0). Typed programs and step
// fusion are pinned OFF so this series keeps measuring exactly what the
// committed BENCH_cond.json baseline measured; the ladder's upper rungs
// are BM_StepChainNavigation's business.
void BM_ConditionedChainNavigation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_vm = state.range(1) != 0;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupConditionedChain(&store, &programs, n);

  wfrt::EngineOptions options;
  options.use_condition_vm = use_vm;
  options.use_typed_conditions = false;
  options.use_step_programs = false;
  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, options);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConditionedChainNavigation)
    ->ArgNames({"n", "vm"})
    ->Args({100, 0})->Args({100, 1})
    ->Args({1000, 0})->Args({1000, 1});

// The same conditioned chain at the top of the compilation ladder: typed
// condition programs plus (step:1) the fused per-activity step programs,
// vs (step:0) the interpreted sweep over the same typed programs. Against
// BM_ConditionedChainNavigation/vm:1 this isolates the two new rungs.
void BM_StepChainNavigation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_step = state.range(1) != 0;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupConditionedChain(&store, &programs, n);

  wfrt::EngineOptions options;  // condition VM + typed programs on
  options.use_step_programs = use_step;
  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, options);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StepChainNavigation)
    ->ArgNames({"n", "step"})
    ->Args({100, 0})->Args({100, 1})
    ->Args({1000, 0})->Args({1000, 1});

// Instance-layout A/B on the fully fused chain (condition VM + typed
// programs + step programs all on, i.e. what the engine ships with):
// packed:1 runs the SoA hot/cold split, packed:0 the legacy
// vector<ActivityRuntime>. Audit is off in both arms — trail bookkeeping
// is layout-independent string traffic that would otherwise be ~2/3 of
// the runtime and bury the navigation cost this pair isolates: the
// packed arm's dense hot block and arena-prototype container sourcing
// vs the legacy arm's ~144-byte struct strides and per-attempt
// type-registry walks.
void BM_PackedChainNavigation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool packed = state.range(1) != 0;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupConditionedChain(&store, &programs, n);

  wfrt::EngineOptions options;  // full compilation ladder on
  options.packed_instance_state = packed;
  options.audit_enabled = false;

  // One fleet-style shared arena: per-engine arena rebuild is
  // layout-neutral setup cost that would dilute the A/B signal.
  auto def = store.FindProcess(process);
  if (!def.ok()) std::abort();
  auto arena = wfrt::InstanceArena::Build(**def, store.types());
  if (!arena.ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, options);
    engine.ShareArena(*def, &*arena);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PackedChainNavigation)
    ->ArgNames({"n", "packed"})
    ->Args({100, 0})->Args({100, 1})
    ->Args({1000, 0})->Args({1000, 1});

// Native-codegen A/B on the trivially connected chain (native:1 runs the
// x86-64 step functions CompileStepPrograms emitted at plan build,
// native:0 pins the threaded-code interpreter on the same fused step
// programs). Same methodology as the packed pair above: audit off and a
// fleet-style shared arena, so the toggle isolates dispatch + sweep cost.
// On builds without the emitter both arms run threaded code and the
// ratio collapses to ~1 — the regression gate skips it there.
void BM_NativeChainNavigation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_native = state.range(1) != 0;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  wfrt::EngineOptions options;  // full compilation ladder on
  options.use_native_step_programs = use_native;
  options.audit_enabled = false;

  auto def = store.FindProcess(process);
  if (!def.ok()) std::abort();
  auto arena = wfrt::InstanceArena::Build(**def, store.types());
  if (!arena.ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, options);
    engine.ShareArena(*def, &*arena);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NativeChainNavigation)
    ->ArgNames({"n", "native"})
    ->Args({100, 0})->Args({100, 1})
    ->Args({1000, 0})->Args({1000, 1});

// Chain whose every hop evaluates an eight-clause arithmetic condition —
// the shape where the condition *body* (imul/add/mod chains feeding
// comparisons) dominates the sweep, which is exactly the work the native
// rung lowers to straight-line machine code while the threaded path
// interprets it one typed instruction at a time.
std::string SetupArithChain(wf::DefinitionStore* store,
                            wfrt::ProgramRegistry* programs, int n) {
  SetupConstProgram(store, programs, "ok", 0);
  std::string process = "achain" + std::to_string(n);
  wf::ProcessBuilder b(store, process);
  for (int i = 0; i < n; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    if (i > 0) {
      b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i),
                "RC * 3 + 7 >= 0 AND (RC + 11) % 13 <> 12 AND "
                "RC * 5 - 2 < 100 AND RC * RC >= 0 AND NOT (RC = 9) AND "
                "(RC + 1) * (RC + 2) >= 2 AND RC - 100 < 0 AND "
                "RC * 2 + 1 > 0");
    }
  }
  if (!b.Register().ok()) std::abort();
  return process;
}

// The same A/B on the arithmetic-conditioned chain: every hop runs the
// eight-clause typed condition, natively lowered (straight-line imul/idiv
// arithmetic and short-circuit jumps) vs the typed VM loop the
// interpreter calls per instruction. This is the pair that prices the
// condition-body lowering rather than just the sweep scaffold.
void BM_NativeConditionedChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_native = state.range(1) != 0;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupArithChain(&store, &programs, n);

  wfrt::EngineOptions options;  // full compilation ladder on
  options.use_native_step_programs = use_native;
  options.audit_enabled = false;

  auto def = store.FindProcess(process);
  if (!def.ok()) std::abort();
  auto arena = wfrt::InstanceArena::Build(**def, store.types());
  if (!arena.ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, options);
    engine.ShareArena(*def, &*arena);
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NativeConditionedChain)
    ->ArgNames({"n", "native"})
    ->Args({100, 0})->Args({100, 1})
    ->Args({1000, 0})->Args({1000, 1});

// Journaling overhead: the same chain with an attached journal.
void BM_ChainWithJournal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  for (auto _ : state) {
    wfjournal::MemoryJournal journal;
    wfrt::Engine engine(&store, &programs);
    if (!engine.AttachJournal(&journal).ok()) std::abort();
    auto id = engine.RunToCompletion(process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    benchmark::DoNotOptimize(journal.size());
  }
  state.counters["activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChainWithJournal)->Arg(10)->Arg(100)->Arg(1000);

// Block nesting depth: one activity per level, D levels.
void BM_NestedBlocks(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  SetupConstProgram(&store, &programs, "ok", 0);

  wf::ProcessBuilder leaf(&store, "lvl0");
  leaf.Program("X", "ok");
  if (!leaf.Register().ok()) std::abort();
  for (int d = 1; d <= depth; ++d) {
    wf::ProcessBuilder b(&store, "lvl" + std::to_string(d));
    b.Block("B", "lvl" + std::to_string(d - 1));
    if (!b.Register().ok()) std::abort();
  }
  std::string root = "lvl" + std::to_string(depth);

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(root);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["levels/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * (depth + 1),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NestedBlocks)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace exotica::bench
