// Experiment E4: the transaction substrate — per-site strict-2PL
// throughput, contention behaviour, deadlock handling, and WAL restart
// recovery. These numbers bound what any transaction model built on the
// substrate can achieve.

#include <benchmark/benchmark.h>

#include <thread>

#include "common/rng.h"
#include "txn/multidb.h"

namespace exotica::bench {
namespace {

using data::Value;
using txn::Site;

// Single-threaded read-modify-write transactions, uniform keys.
void BM_SiteRmw(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  Site site("s");
  {
    auto t = site.Begin();
    for (int i = 0; i < keys; ++i) {
      (void)t->Put("k" + std::to_string(i), Value(int64_t{0}));
    }
    (void)t->Commit();
  }
  Rng rng(7);
  for (auto _ : state) {
    std::string key = "k" + std::to_string(rng.Uniform(0, keys - 1));
    auto t = site.Begin();
    auto v = t->Get(key);
    if (!v.ok()) state.SkipWithError(v.status().ToString().c_str());
    if (!t->Put(key, Value(v->as_long() + 1)).ok()) {
      state.SkipWithError("put failed");
    }
    if (!t->Commit().ok()) state.SkipWithError("commit failed");
  }
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SiteRmw)->Arg(16)->Arg(1024)->Arg(65536);

// Multi-threaded counter increments with skewed access: contention sweep.
// theta = range(1)/100.
void BM_SiteContention(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const double theta = static_cast<double>(state.range(1)) / 100.0;
  constexpr int kKeys = 256;
  constexpr int kTxnPerThread = 200;

  for (auto _ : state) {
    state.PauseTiming();
    Site site("s", {/*lock_timeout_micros=*/200000});
    {
      auto t = site.Begin();
      for (int i = 0; i < kKeys; ++i) {
        (void)t->Put("k" + std::to_string(i), Value(int64_t{0}));
      }
      (void)t->Commit();
    }
    state.ResumeTiming();

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&site, w, theta] {
        Rng rng(static_cast<uint64_t>(w) + 1);
        for (int i = 0; i < kTxnPerThread; ++i) {
          while (true) {
            std::string key = "k" + std::to_string(rng.Skewed(kKeys, theta));
            auto t = site.Begin();
            auto v = t->Get(key);
            if (!v.ok()) continue;
            if (!t->Put(key, Value(v->as_long() + 1)).ok()) continue;
            if (t->Commit().ok()) break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    state.PauseTiming();
    txn::SiteStats stats = site.stats();
    state.counters["aborts"] += static_cast<double>(stats.aborts);
    state.counters["deadlocks"] +=
        static_cast<double>(site.locks().stats().deadlocks);
    state.ResumeTiming();
  }
  state.counters["txn/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * threads * kTxnPerThread,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SiteContention)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 90})
    ->Args({8, 0})
    ->Args({8, 90})
    ->UseRealTime();

// WAL restart recovery as a function of history length.
void BM_SiteRecovery(benchmark::State& state) {
  const int history = static_cast<int>(state.range(0));
  Site site("s");
  Rng rng(3);
  for (int i = 0; i < history; ++i) {
    auto t = site.Begin();
    (void)t->Put("k" + std::to_string(rng.Uniform(0, 127)),
                 Value(static_cast<int64_t>(i)));
    (void)t->Commit();
  }
  for (auto _ : state) {
    site.Crash();
    Status st = site.Restart();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * site.wal().size(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SiteRecovery)->Arg(100)->Arg(10000)->Arg(100000);

// Unilateral-abort rate sweep: commit cost when the site says no with
// probability p = range(0)%.
void BM_SiteUnilateralAborts(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  Site site("s");
  site.SetCommitFailureRate(p, 11);
  int64_t committed = 0;
  for (auto _ : state) {
    auto t = site.Begin();
    (void)t->Put("k", Value(int64_t{1}));
    if (t->Commit().ok()) ++committed;
  }
  state.counters["commit_rate"] =
      static_cast<double>(committed) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SiteUnilateralAborts)->Arg(0)->Arg(10)->Arg(50);

}  // namespace
}  // namespace exotica::bench
