// Fleet scaling: instance throughput vs engine count, with and without
// data-site contention — the scaling dimension FlowMark-style deployments
// rely on (concurrency across instances, not within one).

#include <benchmark/benchmark.h>

#include "atm/saga.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "txn/multidb.h"
#include "wfrt/fleet.h"
#include "bench_common.h"

namespace exotica::bench {
namespace {

// Pure navigation: no shared resources at all.
void BM_FleetNavigationScaling(benchmark::State& state) {
  const int engines = static_cast<int>(state.range(0));
  constexpr int kInstances = 64;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, 20);

  for (auto _ : state) {
    wfrt::EngineFleet fleet(&store, &programs, engines);
    auto result = fleet.RunBatch(process, kInstances);
    if (!result.ok() || !result->ok()) {
      state.SkipWithError("batch failed");
    }
  }
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kInstances,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetNavigationScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// Sagas over a shared multidatabase: engines contend on the sites.
void BM_FleetSagaScaling(benchmark::State& state) {
  const int engines = static_cast<int>(state.range(0));
  constexpr int kInstances = 32;

  txn::MultiDatabase mdb;
  (void)mdb.AddSite("a");
  (void)mdb.AddSite("b");
  atm::MultiDbRunner runner(&mdb);
  int key_counter = 0;
  auto body = [&key_counter](txn::Transaction& t) {
    // Distinct keys: contention on the site, not on one row.
    return t.Put("k" + std::to_string(key_counter++ % 64),
                 data::Value(int64_t{1}));
  };
  (void)runner.Register({"T1", "a", body, [](txn::Transaction& t) {
                           return t.Put("c", data::Value(int64_t{0}));
                         }});
  (void)runner.Register({"T2", "b", body, [](txn::Transaction& t) {
                           return t.Put("c", data::Value(int64_t{0}));
                         }});

  atm::SagaSpec spec("S");
  spec.Then("T1").Then("T2");
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  if (!translation.ok()) std::abort();
  wfrt::ProgramRegistry programs;
  if (!exo::BindSagaPrograms(spec, store, &runner, &programs).ok()) std::abort();

  for (auto _ : state) {
    wfrt::EngineFleet fleet(&store, &programs, engines);
    auto result = fleet.RunBatch(translation->root_process, kInstances);
    if (!result.ok() || !result->ok()) {
      state.SkipWithError("batch failed");
    }
  }
  state.counters["sagas/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kInstances,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetSagaScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace exotica::bench
