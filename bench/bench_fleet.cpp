// Fleet scaling: instance throughput vs engine count, with and without
// data-site contention — the scaling dimension FlowMark-style deployments
// rely on (concurrency across instances, not within one). Plus the two
// schedulers head-to-head on a skewed batch, and arena vs legacy
// instance spin-up.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "atm/flex.h"
#include "atm/saga.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "exotica/saga_translate.h"
#include "txn/multidb.h"
#include "wfrt/fleet.h"
#include "bench_common.h"

namespace exotica::bench {
namespace {

// Pure navigation: no shared resources at all.
void BM_FleetNavigationScaling(benchmark::State& state) {
  const int engines = static_cast<int>(state.range(0));
  constexpr int kInstances = 64;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, 20);

  for (auto _ : state) {
    wfrt::EngineFleet fleet(&store, &programs, engines);
    auto result = fleet.RunBatch(process, kInstances);
    if (!result.ok() || !result->ok()) {
      state.SkipWithError("batch failed");
    }
  }
  state.counters["instances/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kInstances,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetNavigationScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// Sagas over a shared multidatabase: engines contend on the sites.
void BM_FleetSagaScaling(benchmark::State& state) {
  const int engines = static_cast<int>(state.range(0));
  constexpr int kInstances = 32;

  txn::MultiDatabase mdb;
  (void)mdb.AddSite("a");
  (void)mdb.AddSite("b");
  atm::MultiDbRunner runner(&mdb);
  int key_counter = 0;
  auto body = [&key_counter](txn::Transaction& t) {
    // Distinct keys: contention on the site, not on one row.
    return t.Put("k" + std::to_string(key_counter++ % 64),
                 data::Value(int64_t{1}));
  };
  (void)runner.Register({"T1", "a", body, [](txn::Transaction& t) {
                           return t.Put("c", data::Value(int64_t{0}));
                         }});
  (void)runner.Register({"T2", "b", body, [](txn::Transaction& t) {
                           return t.Put("c", data::Value(int64_t{0}));
                         }});

  atm::SagaSpec spec("S");
  spec.Then("T1").Then("T2");
  wf::DefinitionStore store;
  auto translation = exo::TranslateSaga(spec, &store);
  if (!translation.ok()) std::abort();
  wfrt::ProgramRegistry programs;
  if (!exo::BindSagaPrograms(spec, store, &runner, &programs).ok()) std::abort();

  for (auto _ : state) {
    wfrt::EngineFleet fleet(&store, &programs, engines);
    auto result = fleet.RunBatch(translation->root_process, kInstances);
    if (!result.ok() || !result->ok()) {
      state.SkipWithError("batch failed");
    }
  }
  state.counters["sagas/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kInstances,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetSagaScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// A runner whose every subtransaction sleeps: workflow "work" that
// occupies wall clock without occupying the CPU, so engine threads
// overlap even on one core.
class SleepRunner : public atm::SubTxnRunner {
 public:
  explicit SleepRunner(int64_t micros) : micros_(micros) {}
  Result<bool> Run(const std::string&) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros_));
    return true;
  }
  Result<bool> Compensate(const std::string&) override { return true; }

 private:
  int64_t micros_;
};

// Skewed batch: four heavy flexible transactions (Figure 3, every
// subtransaction a multi-ms sleep) interleaved with twelve light sagas
// as [heavy, light, light, light] x 4. Greedy seed assignment is
// count-fair and breaks ties toward the lowest-index engine, so this
// ordering lands every heavy flex on engine 0 — four instances each,
// wildly different cost. Stealing drains engine 0's backlog onto the
// idle peers. range(0) toggles the scheduler.
void BM_FleetSkewedBatch(benchmark::State& state) {
  const bool stealing = state.range(0) != 0;
  constexpr int kEngines = 4;

  atm::FlexSpec flex = atm::MakeFigure3Spec();
  SleepRunner heavy_runner(1000);
  atm::SagaSpec light("Light");
  light.Then("L1").Then("L2");
  SleepRunner light_runner(500);

  wf::DefinitionStore store;
  auto ft = exo::TranslateFlex(flex, &store);
  auto lt = exo::TranslateSaga(light, &store);
  if (!ft.ok() || !lt.ok()) std::abort();
  wfrt::ProgramRegistry programs;
  if (!exo::BindFlexPrograms(flex, store, &heavy_runner, &programs).ok() ||
      !exo::BindSagaPrograms(light, store, &light_runner, &programs).ok()) {
    std::abort();
  }

  std::vector<wfrt::EngineFleet::BatchSeed> seeds;
  for (int i = 0; i < kEngines; ++i) {
    seeds.push_back({ft->root_process, nullptr});
    for (int j = 0; j < 3; ++j) {
      seeds.push_back({lt->root_process, nullptr});
    }
  }

  wfrt::FleetOptions fo;
  fo.work_stealing = stealing;
  fo.steal_slice = 1;  // serve thieves after every pop: sleeps dominate

  for (auto _ : state) {
    wfrt::EngineFleet fleet(&store, &programs, kEngines, {}, fo);
    auto result = fleet.RunBatch(seeds);
    if (!result.ok() || !result->ok()) {
      state.SkipWithError("batch failed");
      break;
    }
    state.counters["stolen"] = static_cast<double>(
        result->aggregate.instances_stolen);
  }
  state.counters["batches/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetSkewedBatch)
    ->Arg(0)->Arg(1)
    ->ArgName("stealing")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Instance spin-up: StartProcess throughput with the per-plan arena
// (one preformatted copy) vs the legacy per-activity container walk.
// range(0) toggles the arena.
void BM_FleetStartInstance(benchmark::State& state) {
  constexpr int kBatch = 256;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, 20);

  wfrt::EngineOptions eo;
  eo.spinup_arena = state.range(0) != 0;

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, eo);
    for (int i = 0; i < kBatch; ++i) {
      auto id = engine.StartProcess(process);
      if (!id.ok()) {
        state.SkipWithError("start failed");
        break;
      }
    }
    benchmark::DoNotOptimize(engine.stats().instances_started);
  }
  state.counters["starts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetStartInstance)->Arg(0)->Arg(1)->ArgName("arena");

// Spin-up layout A/B with the arena on (the shipping configuration):
// packed:1 copies one preformatted byte block plus a default-constructed
// cold vector, packed:0 copies the full ActivityRuntime vector with its
// container refcount traffic. Audit is off in both arms (layout-neutral
// string traffic). Kept separate from BM_FleetStartInstance so its
// arena:0/arena:1 series stays comparable to committed baselines.
void BM_PackedStartInstance(benchmark::State& state) {
  constexpr int kBatch = 256;
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  wfrt::EngineOptions eo;
  eo.packed_instance_state = state.range(1) != 0;
  eo.audit_enabled = false;

  // One fleet-style shared arena, as in BM_PackedChainNavigation: the
  // per-engine arena rebuild is layout-neutral and would dilute the A/B.
  auto def = store.FindProcess(process);
  if (!def.ok()) std::abort();
  auto arena = wfrt::InstanceArena::Build(**def, store.types());
  if (!arena.ok()) std::abort();

  for (auto _ : state) {
    wfrt::Engine engine(&store, &programs, eo);
    engine.ShareArena(*def, &*arena);
    for (int i = 0; i < kBatch; ++i) {
      auto id = engine.StartProcess(process);
      if (!id.ok()) {
        state.SkipWithError("start failed");
        break;
      }
    }
    benchmark::DoNotOptimize(engine.stats().instances_started);
  }
  state.counters["starts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PackedStartInstance)
    ->ArgNames({"n", "packed"})
    ->Args({20, 0})->Args({20, 1})
    ->Args({100, 0})->Args({100, 1});

}  // namespace
}  // namespace exotica::bench

// Custom main (instead of benchmark_main) so the execution environment
// lands in the JSON context: scheduling benchmarks are meaningless
// without knowing how many CPUs backed the worker threads.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "num_cpus_available",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("thread_pinning", "none (OS scheduler)");
  benchmark::AddCustomContext("fleet_worker_model",
                              "one thread per engine, sleeps overlap");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
