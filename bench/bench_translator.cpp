// Experiment F5/E7: the Exotica/FMTM pipeline of Figure 5 — cost of each
// stage (spec parse + format check, translation, FDL emission, FDL
// import with syntax + semantic checks) as the model size grows.

#include <benchmark/benchmark.h>

#include "exotica/fmtm.h"
#include "exotica/saga_translate.h"
#include "fdl/export.h"
#include "fdl/import.h"
#include "fdl/parser.h"

namespace exotica::bench {
namespace {

std::string SagaSpecText(int n) {
  std::string out = "SAGA 'S'\n";
  for (int i = 1; i <= n; ++i) {
    out += "  STEP 'T" + std::to_string(i) + "';\n";
  }
  out += "END 'S'\n";
  return out;
}

void BM_SpecParse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string spec = SagaSpecText(n);
  for (auto _ : state) {
    auto out = exo::ParseSpec(spec);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out->root_process);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpecParse)->Arg(5)->Arg(50)->Arg(500);

void BM_SagaTranslate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto parsed = exo::ParseSpec(SagaSpecText(n));
  if (!parsed.ok()) std::abort();
  for (auto _ : state) {
    wf::DefinitionStore store;
    auto t = exo::TranslateSaga(*parsed->saga, &store);
    if (!t.ok()) state.SkipWithError(t.status().ToString().c_str());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SagaTranslate)->Arg(5)->Arg(50)->Arg(500);

void BM_FdlExport(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto parsed = exo::ParseSpec(SagaSpecText(n));
  if (!parsed.ok()) std::abort();
  wf::DefinitionStore store;
  auto t = exo::TranslateSaga(*parsed->saga, &store);
  if (!t.ok()) std::abort();

  size_t bytes = 0;
  for (auto _ : state) {
    auto fdl = fdl::ExportClosure(store, {t->root_process});
    if (!fdl.ok()) state.SkipWithError(fdl.status().ToString().c_str());
    bytes = fdl->size();
    benchmark::DoNotOptimize(fdl->data());
  }
  state.counters["fdl_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FdlExport)->Arg(5)->Arg(50)->Arg(500);

void BM_FdlImport(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto parsed = exo::ParseSpec(SagaSpecText(n));
  if (!parsed.ok()) std::abort();
  wf::DefinitionStore scratch;
  auto t = exo::TranslateSaga(*parsed->saga, &scratch);
  if (!t.ok()) std::abort();
  auto fdl_text = fdl::ExportClosure(scratch, {t->root_process});
  if (!fdl_text.ok()) std::abort();

  for (auto _ : state) {
    wf::DefinitionStore store;
    auto names = fdl::ImportFdl(*fdl_text, &store);
    if (!names.ok()) state.SkipWithError(names.status().ToString().c_str());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FdlImport)->Arg(5)->Arg(50)->Arg(500);

// The whole Figure-5 pipeline end to end.
void BM_FullPipeline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::string spec = SagaSpecText(n);
  for (auto _ : state) {
    wf::DefinitionStore store;
    auto out = exo::CompileSpec(spec, &store);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullPipeline)->Arg(5)->Arg(50)->Arg(500);

// Flexible model through the pipeline, with nesting depth as the size
// parameter.
void BM_FullPipelineFlex(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  std::string spec = "FLEXIBLE 'F'\n";
  int counter = 0;
  std::string open, close;
  for (int d = 0; d < depth; ++d) {
    ++counter;
    open += "SEQ SUB 'C" + std::to_string(counter) +
            "' COMPENSATABLE; SUB 'P" + std::to_string(counter) +
            "' PIVOT; ALT ";
    close = " SUB 'R" + std::to_string(counter) + "' RETRIABLE; END END" + close;
  }
  spec += open + "SUB 'Last' RETRIABLE;" + close + "\nEND 'F'\n";
  for (auto _ : state) {
    wf::DefinitionStore store;
    auto out = exo::CompileSpec(spec, &store);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
  }
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_FullPipelineFlex)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace exotica::bench
