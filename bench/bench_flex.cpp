// Experiment F3/F4: the Figure-3 flexible transaction — native executor
// vs the rules-1-7 workflow translation, across the paper's three
// execution paths (p1, p2, p3) and the global-abort cases.

#include <benchmark/benchmark.h>

#include "atm/flex.h"
#include "exotica/flex_translate.h"
#include "exotica/programs.h"
#include "bench_common.h"

namespace exotica::bench {
namespace {

using atm::FlexExecutor;
using atm::ScriptedRunner;

// Scenario index: 0 = p1 (no aborts), 1 = p2 (T8 aborts), 2 = p3 (T4
// aborts), 3 = global abort (T2 aborts).
const char* ScenarioLabel(int scenario) {
  switch (scenario) {
    case 0: return "p1-preferred";
    case 1: return "p2-via-T8-abort";
    case 2: return "p3-via-T4-abort";
    case 3: return "global-abort-T2";
  }
  return "?";
}

void Configure(ScriptedRunner* runner, int scenario) {
  switch (scenario) {
    case 0: break;
    case 1: runner->AlwaysAbort("T8"); break;
    case 2: runner->AlwaysAbort("T4"); break;
    case 3: runner->AlwaysAbort("T2"); break;
  }
}

void BM_Figure3Native(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  for (auto _ : state) {
    ScriptedRunner runner;
    Configure(&runner, scenario);
    FlexExecutor executor(&runner);
    auto outcome = executor.Execute(spec);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    benchmark::DoNotOptimize(outcome->committed);
  }
  state.SetLabel(ScenarioLabel(scenario));
}
BENCHMARK(BM_Figure3Native)->DenseRange(0, 3);

void BM_Figure3Workflow(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  atm::FlexSpec spec = atm::MakeFigure3Spec();
  wf::DefinitionStore store;
  auto translation = exo::TranslateFlex(spec, &store);
  if (!translation.ok()) std::abort();

  for (auto _ : state) {
    ScriptedRunner runner;
    Configure(&runner, scenario);
    wfrt::ProgramRegistry programs;
    if (!exo::BindFlexPrograms(spec, store, &runner, &programs).ok()) {
      std::abort();
    }
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.SetLabel(ScenarioLabel(scenario));
}
BENCHMARK(BM_Figure3Workflow)->DenseRange(0, 3);

// Depth sweep: nested alternatives Alt(Seq[C, P, <inner>], R) — how the
// translated process scales with the alternative-nesting depth.
atm::FlexStepPtr NestedAlt(int depth, int* counter) {
  using S = atm::FlexStep;
  auto sub_name = [&](const char* prefix) {
    return std::string(prefix) + std::to_string(++*counter);
  };
  if (depth == 0) {
    return S::Retriable(sub_name("R"));
  }
  std::vector<atm::FlexStepPtr> seq;
  seq.push_back(S::Compensatable(sub_name("C")));
  seq.push_back(S::Pivot(sub_name("P")));
  seq.push_back(NestedAlt(depth - 1, counter));
  return S::Alt(S::Seq(std::move(seq)), S::Retriable(sub_name("F")));
}

void BM_NestedFlexWorkflow(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  int counter = 0;
  atm::FlexSpec spec("Nested", NestedAlt(depth, &counter));
  if (!spec.Validate().ok()) std::abort();
  wf::DefinitionStore store;
  auto translation = exo::TranslateFlex(spec, &store);
  if (!translation.ok()) std::abort();

  for (auto _ : state) {
    ScriptedRunner runner;
    wfrt::ProgramRegistry programs;
    if (!exo::BindFlexPrograms(spec, store, &runner, &programs).ok()) {
      std::abort();
    }
    wfrt::Engine engine(&store, &programs);
    auto id = engine.RunToCompletion(translation->root_process);
    if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
  }
  state.counters["subs"] = static_cast<double>(counter);
}
BENCHMARK(BM_NestedFlexWorkflow)->Arg(1)->Arg(3)->Arg(6);

}  // namespace
}  // namespace exotica::bench
