// Simulation throughput (§3.3 "simulation" feature): virtual executions
// per second vs process size, branching, and role contention.

#include <benchmark/benchmark.h>

#include "wfsim/sim.h"
#include "bench_common.h"

namespace exotica::bench {
namespace {

void BM_SimulateChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  wfsim::SimConfig cfg;
  cfg.trials = 100;
  cfg.default_profile.duration = wfsim::DurationModel::Exponential(1000);

  for (auto _ : state) {
    auto r = wfsim::Simulate(store, process, cfg);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->MakespanMean());
  }
  state.counters["virtual_activities/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * cfg.trials * n,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateChain)->Arg(10)->Arg(100);

void BM_SimulateVsExecute(benchmark::State& state) {
  // How much faster is simulating a process than executing it (with
  // no-op programs — the engine's floor)?
  const int n = 50;
  const bool simulate = state.range(0) == 1;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  std::string process = SetupChainProcess(&store, &programs, n);

  if (simulate) {
    wfsim::SimConfig cfg;
    cfg.trials = 1;
    for (auto _ : state) {
      auto r = wfsim::Simulate(store, process, cfg);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  } else {
    for (auto _ : state) {
      wfrt::Engine engine(&store, &programs);
      auto id = engine.RunToCompletion(process);
      if (!id.ok()) state.SkipWithError(id.status().ToString().c_str());
    }
  }
  state.SetLabel(simulate ? "simulate" : "execute");
}
BENCHMARK(BM_SimulateVsExecute)->Arg(0)->Arg(1);

void BM_SimulateRoleContention(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  constexpr int kWidth = 16;
  wf::DefinitionStore store;
  wfrt::ProgramRegistry programs;
  SetupConstProgram(&store, &programs, "ok", 0);

  wf::ProcessBuilder b(&store, "reviews");
  b.Program("Start", "ok");
  for (int i = 0; i < kWidth; ++i) {
    b.Program("R" + std::to_string(i), "ok").Manual().Role("reviewer");
    b.Connect("Start", "R" + std::to_string(i));
  }
  if (!b.Register().ok()) std::abort();

  wfsim::SimConfig cfg;
  cfg.trials = 200;
  cfg.default_profile.duration = wfsim::DurationModel::Exponential(1000);
  cfg.role_capacity["reviewer"] = capacity;

  Micros mean = 0;
  for (auto _ : state) {
    auto r = wfsim::Simulate(store, "reviews", cfg);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    mean = r->MakespanMean();
  }
  state.counters["mean_makespan_us"] = static_cast<double>(mean);
}
BENCHMARK(BM_SimulateRoleContention)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace exotica::bench
