// Shared helpers for the benchmark harness.

#ifndef EXOTICA_BENCH_BENCH_COMMON_H_
#define EXOTICA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "data/container.h"
#include "wf/builder.h"
#include "wf/process.h"
#include "wfrt/engine.h"
#include "wfrt/program.h"

namespace exotica::bench {

/// Declares and binds a constant-RC program.
inline void SetupConstProgram(wf::DefinitionStore* store,
                              wfrt::ProgramRegistry* programs,
                              const std::string& name, int64_t rc) {
  if (!store->HasProgram(name)) {
    wf::ProgramDeclaration decl;
    decl.name = name;
    Status st = store->DeclareProgram(std::move(decl));
    if (!st.ok()) std::abort();
  }
  if (!programs->IsBound(name)) {
    Status st = programs->Bind(
        name, [rc](const data::Container&, data::Container* output,
                   const wfrt::ProgramContext&) {
          return output->Set("RC", data::Value(rc));
        });
    if (!st.ok()) std::abort();
  }
}

/// Registers a linear chain process "chain<n>" of n constant activities.
inline std::string SetupChainProcess(wf::DefinitionStore* store,
                                     wfrt::ProgramRegistry* programs, int n) {
  SetupConstProgram(store, programs, "ok", 0);
  std::string name = "chain" + std::to_string(n);
  if (store->HasProcess(name)) return name;
  wf::ProcessBuilder b(store, name);
  for (int i = 0; i < n; ++i) {
    b.Program("A" + std::to_string(i), "ok");
    if (i > 0) b.Connect("A" + std::to_string(i - 1), "A" + std::to_string(i),
                         "RC = 0");
  }
  Status st = b.Register();
  if (!st.ok()) std::abort();
  return name;
}

}  // namespace exotica::bench

#endif  // EXOTICA_BENCH_BENCH_COMMON_H_
