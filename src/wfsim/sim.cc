#include "wfsim/sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "data/container.h"
#include "expr/eval.h"

namespace exotica::wfsim {

Micros DurationModel::Sample(Rng* rng) const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return a >= b ? a : rng->Uniform(a, b);
    case Kind::kExponential: {
      double u = rng->NextDouble();
      if (u <= 0.0) u = 1e-12;
      return static_cast<Micros>(-static_cast<double>(a) * std::log(u));
    }
  }
  return 0;
}

int64_t ActivityProfile::SampleRc(Rng* rng) const {
  double u = rng->NextDouble();
  double acc = 0.0;
  for (const auto& [rc, p] : rc_distribution) {
    acc += p;
    if (u < acc) return rc;
  }
  return rc_distribution.empty() ? 0 : rc_distribution.back().first;
}

Micros SimResult::MakespanMean() const {
  if (makespans.empty()) return 0;
  long double sum = 0;
  for (Micros m : makespans) sum += static_cast<long double>(m);
  return static_cast<Micros>(sum / static_cast<long double>(makespans.size()));
}

Micros SimResult::MakespanPercentile(double p) const {
  if (makespans.empty()) return 0;
  double idx = p * static_cast<double>(makespans.size() - 1);
  return makespans[static_cast<size_t>(idx)];
}

Micros SimResult::MakespanMax() const {
  return makespans.empty() ? 0 : makespans.back();
}

namespace {

using wf::ActivityState;

/// One virtual execution of one process tree.
class Trial {
 public:
  Trial(const wf::DefinitionStore& store, const SimConfig& config, Rng* rng,
        SimResult* result)
      : store_(store), config_(config), rng_(rng), result_(result) {}

  /// Runs the root process; returns the makespan.
  Result<Micros> Run(const wf::ProcessDefinition* root) {
    EXO_RETURN_NOT_OK(Spawn(root, 0, -1, ""));
    EXO_RETURN_NOT_OK(Loop());
    return finish_time_;
  }

 private:
  struct SimActivity {
    ActivityState state = ActivityState::kWaiting;
    std::map<size_t, bool> incoming;
    int attempts = 0;
    int crashes = 0;
    int64_t rc = 0;
    Micros queued_at = 0;  ///< manual: when it entered the role queue
  };

  struct SimInstance {
    const wf::ProcessDefinition* def = nullptr;
    std::map<std::string, SimActivity> acts;
    bool finished = false;
    int parent = -1;
    std::string parent_activity;
  };

  struct Event {
    Micros at;
    uint64_t seq;
    int instance;
    std::string activity;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  const ActivityProfile& ProfileOf(const std::string& name) const {
    auto it = config_.profiles.find(name);
    return it == config_.profiles.end() ? config_.default_profile : it->second;
  }

  int RoleCapacity(const std::string& role) {
    auto it = config_.role_capacity.find(role);
    return it == config_.role_capacity.end() ? 1 : it->second;
  }

  Status Spawn(const wf::ProcessDefinition* def, Micros now, int parent,
               const std::string& parent_activity) {
    SimInstance inst;
    inst.def = def;
    inst.parent = parent;
    inst.parent_activity = parent_activity;
    for (const wf::Activity& a : def->activities()) {
      inst.acts.emplace(a.name, SimActivity{});
    }
    instances_.push_back(std::move(inst));
    int idx = static_cast<int>(instances_.size()) - 1;
    for (const std::string& name : def->StartActivities()) {
      EXO_RETURN_NOT_OK(MakeReady(idx, name, now));
    }
    return Status::OK();
  }

  Status MakeReady(int idx, const std::string& name, Micros now) {
    SimInstance& inst = instances_[idx];
    EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                         inst.def->FindActivity(name));
    inst.acts[name].state = ActivityState::kReady;
    if (def->start_mode == wf::StartMode::kManual) {
      // Queue for a person in the role.
      std::string role = def->role;
      int& available = role_available_.try_emplace(role, RoleCapacity(role))
                           .first->second;
      if (available > 0) {
        --available;
        return StartActivity(idx, name, now);
      }
      inst.acts[name].queued_at = now;
      role_queue_[role].push_back({idx, name});
      return Status::OK();
    }
    return StartActivity(idx, name, now);
  }

  Status StartActivity(int idx, const std::string& name, Micros now) {
    SimInstance& inst = instances_[idx];
    SimActivity& act = inst.acts[name];
    act.state = ActivityState::kRunning;
    ++act.attempts;
    EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                         inst.def->FindActivity(name));
    ActivityStats& stats = result_->activities[name];
    ++stats.executions;

    if (def->is_process()) {
      // Block: the child runs; completion is driven by the child's
      // finish, not a sampled duration.
      EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* sub,
                           store_.FindProcess(def->subprocess));
      return Spawn(sub, now, idx, name);
    }
    Micros duration = ProfileOf(name).duration.Sample(rng_);
    stats.busy_micros += duration;
    if (def->start_mode == wf::StartMode::kManual) {
      RoleStats& rs = result_->roles[def->role];
      rs.capacity = RoleCapacity(def->role);
      rs.busy_micros += duration;
    }
    events_.push(Event{now + duration, seq_++, idx, name});
    return Status::OK();
  }

  Status CompleteActivity(int idx, const std::string& name, Micros now) {
    SimInstance& inst = instances_[idx];
    SimActivity& act = inst.acts[name];
    EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                         inst.def->FindActivity(name));
    const ActivityProfile& profile = ProfileOf(name);

    // Injected crash: the attempt's time is spent but it produces no RC;
    // re-run from the beginning (the engine's at-least-once restart).
    if (!def->is_process() && profile.crash_probability > 0.0 &&
        rng_->NextDouble() < profile.crash_probability) {
      ++act.crashes;
      ++result_->activities[name].crashes;
      if (def->start_mode == wf::StartMode::kManual) {
        EXO_RETURN_NOT_OK(ReleaseRole(def->role, now));
      }
      if (config_.max_crash_retries > 0 &&
          act.crashes >= config_.max_crash_retries) {
        return Status::FailedPrecondition(
            "simulated activity " + name + " exceeded crash retries");
      }
      return MakeReady(idx, name, now);
    }

    act.rc = profile.SampleRc(rng_);

    int64_t rc = act.rc;
    int attempts = act.attempts;

    // Release the person before the exit-condition check; a rescheduled
    // manual activity queues again. (May start a queued waiter, which can
    // spawn instances — use the local copies afterwards.)
    if (def->start_mode == wf::StartMode::kManual) {
      EXO_RETURN_NOT_OK(ReleaseRole(def->role, now));
    }

    // Exit condition over an RC-only view of the output container.
    if (!def->exit_condition.is_trivial()) {
      EXO_ASSIGN_OR_RETURN(bool ok, EvalCondition(def->exit_condition, *def,
                                                  rc));
      if (!ok) {
        if (attempts >= config_.max_exit_retries) {
          return Status::FailedPrecondition(
              "simulated activity " + name + " exceeded exit retries");
        }
        return MakeReady(idx, name, now);
      }
    }
    return Terminate(idx, name, now);
  }

  Status ReleaseRole(const std::string& role, Micros now) {
    auto q = role_queue_.find(role);
    if (q != role_queue_.end() && !q->second.empty()) {
      auto [widx, wname] = q->second.front();
      q->second.pop_front();
      SimActivity& waiter = instances_[widx].acts[wname];
      Micros waited = now - waiter.queued_at;
      result_->activities[wname].queue_micros += waited;
      result_->roles[role].queue_micros += waited;
      return StartActivity(widx, wname, now);
    }
    ++role_available_[role];
    return Status::OK();
  }

  Result<bool> EvalCondition(const expr::Condition& condition,
                             const wf::Activity& def, int64_t rc) {
    EXO_ASSIGN_OR_RETURN(data::Container out,
                         data::Container::Create(store_.types(),
                                                 def.output_type));
    if (out.HasPath("RC")) {
      EXO_RETURN_NOT_OK(out.Set("RC", data::Value(rc)));
    }
    expr::ContainerResolver resolver(out);
    Result<bool> r = condition.Evaluate(resolver);
    // Data flow is not simulated: conditions over unset members are
    // design-time unknowns and evaluate false, like the engine's lenient
    // mode.
    if (!r.ok()) return false;
    return r;
  }

  Status Terminate(int idx, const std::string& name, Micros now) {
    SimInstance& inst = instances_[idx];
    inst.acts[name].state = ActivityState::kTerminated;
    EXO_RETURN_NOT_OK(EvaluateOutgoing(idx, name, /*all_false=*/false, now));
    return CheckCompletion(idx, now);
  }

  Status MarkDead(int idx, const std::string& name, Micros now) {
    SimInstance& inst = instances_[idx];
    inst.acts[name].state = ActivityState::kDead;
    ++result_->activities[name].dead;
    EXO_RETURN_NOT_OK(EvaluateOutgoing(idx, name, /*all_false=*/true, now));
    return CheckCompletion(idx, now);
  }

  Status EvaluateOutgoing(int idx, const std::string& name, bool all_false,
                          Micros now) {
    SimInstance& inst = instances_[idx];
    const auto& connectors = inst.def->control_connectors();
    std::vector<size_t> outs = inst.def->OutgoingControl(name);
    bool any_true = false;
    std::vector<std::pair<size_t, bool>> fresh;
    for (size_t i : outs) {
      const wf::ControlConnector& c = connectors[i];
      if (c.is_otherwise) continue;
      bool value = false;
      if (!all_false) {
        EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                             inst.def->FindActivity(name));
        EXO_ASSIGN_OR_RETURN(value, EvalCondition(c.condition, *def,
                                                  inst.acts[name].rc));
      }
      any_true = any_true || value;
      fresh.emplace_back(i, value);
    }
    for (size_t i : outs) {
      const wf::ControlConnector& c = connectors[i];
      if (!c.is_otherwise) continue;
      fresh.emplace_back(i, all_false ? false : !any_true);
    }
    for (auto [i, value] : fresh) {
      EXO_RETURN_NOT_OK(Deliver(idx, connectors[i].to, i, value, now));
    }
    return Status::OK();
  }

  Status Deliver(int idx, const std::string& target, size_t connector,
                 bool value, Micros now) {
    SimInstance& inst = instances_[idx];
    SimActivity& act = inst.acts[target];
    act.incoming[connector] = value;
    if (act.state != ActivityState::kWaiting) return Status::OK();
    std::vector<size_t> incoming = inst.def->IncomingControl(target);
    size_t evaluated = 0, trues = 0;
    for (size_t i : incoming) {
      auto it = act.incoming.find(i);
      if (it == act.incoming.end()) continue;
      ++evaluated;
      if (it->second) ++trues;
    }
    if (evaluated < incoming.size()) return Status::OK();
    EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                         inst.def->FindActivity(target));
    bool start = def->join == wf::JoinKind::kAnd ? trues == incoming.size()
                                                 : trues > 0;
    return start ? MakeReady(idx, target, now) : MarkDead(idx, target, now);
  }

  Status CheckCompletion(int idx, Micros now) {
    SimInstance& inst = instances_[idx];
    if (inst.finished) return Status::OK();
    for (const auto& [name, act] : inst.acts) {
      (void)name;
      if (act.state != ActivityState::kTerminated &&
          act.state != ActivityState::kDead) {
        return Status::OK();
      }
    }
    inst.finished = true;
    if (inst.parent < 0) {
      finish_time_ = now;
      return Status::OK();
    }
    // Block continuation: the parent activity completes now.
    int pidx = inst.parent;
    std::string pact = inst.parent_activity;
    return CompleteActivity(pidx, pact, now);
  }

  Status Loop() {
    while (!events_.empty()) {
      Event e = events_.top();
      events_.pop();
      EXO_RETURN_NOT_OK(CompleteActivity(e.instance, e.activity, e.at));
    }
    if (!instances_.empty() && !instances_[0].finished) {
      return Status::Internal("simulation deadlocked: root never finished");
    }
    return Status::OK();
  }

  const wf::DefinitionStore& store_;
  const SimConfig& config_;
  Rng* rng_;
  SimResult* result_;

  // deque: references to instances stay valid while new ones are spawned.
  std::deque<SimInstance> instances_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  uint64_t seq_ = 0;
  std::map<std::string, int> role_available_;
  std::map<std::string, std::deque<std::pair<int, std::string>>> role_queue_;
  Micros finish_time_ = 0;
};

}  // namespace

Result<SimResult> Simulate(const wf::DefinitionStore& store,
                           const std::string& process_name,
                           const SimConfig& config) {
  EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* root,
                       store.FindProcess(process_name));
  if (config.trials <= 0) {
    return Status::InvalidArgument("trials must be positive");
  }
  for (const auto& [name, profile] : config.profiles) {
    (void)name;
    double total = 0;
    for (const auto& [rc, p] : profile.rc_distribution) {
      (void)rc;
      if (p < 0) return Status::InvalidArgument("negative RC probability");
      total += p;
    }
    if (total < 0.999 || total > 1.001) {
      return Status::InvalidArgument(
          "RC distribution for " + name + " sums to " + std::to_string(total));
    }
  }

  SimResult result;
  result.trials = config.trials;
  Rng rng(config.seed);
  for (int t = 0; t < config.trials; ++t) {
    Trial trial(store, config, &rng, &result);
    EXO_ASSIGN_OR_RETURN(Micros makespan, trial.Run(root));
    result.makespans.push_back(makespan);
  }
  std::sort(result.makespans.begin(), result.makespans.end());
  return result;
}

}  // namespace exotica::wfsim
