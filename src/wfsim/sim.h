// Workflow simulation (paper §3.3: WFMSs "provide a great deal of
// support for organizational aspects, user interface, monitoring,
// accounting, simulation, distribution, and heterogeneity").
//
// A discrete-event simulator over process definitions: activities take
// stochastic (virtual) time and report stochastic return codes; manual
// activities queue for role capacity (how many people hold the role).
// The simulator mirrors the engine's navigation semantics — transition
// conditions over the RC, all-evaluated AND/OR joins, dead path
// elimination, exit-condition loops, blocks — but runs thousands of
// virtual instances per second of wall time, answering the design-time
// questions (makespan percentiles, bottleneck roles, path frequencies)
// that the runtime engine cannot.

#ifndef EXOTICA_WFSIM_SIM_H_
#define EXOTICA_WFSIM_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "wf/process.h"

namespace exotica::wfsim {

/// \brief How long an activity takes (virtual time).
struct DurationModel {
  enum class Kind : int { kFixed = 0, kUniform = 1, kExponential = 2 };
  Kind kind = Kind::kFixed;
  Micros a = 0;  ///< fixed value / uniform lo / exponential mean
  Micros b = 0;  ///< uniform hi

  static DurationModel Fixed(Micros value) {
    return DurationModel{Kind::kFixed, value, 0};
  }
  static DurationModel Uniform(Micros lo, Micros hi) {
    return DurationModel{Kind::kUniform, lo, hi};
  }
  static DurationModel Exponential(Micros mean) {
    return DurationModel{Kind::kExponential, mean, 0};
  }

  Micros Sample(Rng* rng) const;
};

/// \brief Stochastic behaviour of one activity.
struct ActivityProfile {
  DurationModel duration = DurationModel::Fixed(0);
  /// Distribution over the RC the activity reports; probabilities must
  /// sum to ~1. Default: always RC = 0.
  std::vector<std::pair<int64_t, double>> rc_distribution = {{0, 1.0}};

  /// Probability that an attempt crashes (the engine's program-crash
  /// fault class): the time is spent but no RC is produced and the
  /// activity re-runs from the beginning — the same fault model the
  /// runtime's FaultPlan injects, so design-time makespans account for
  /// retry amplification.
  double crash_probability = 0.0;

  int64_t SampleRc(Rng* rng) const;
};

/// \brief Simulation setup.
struct SimConfig {
  /// Profiles by activity name (shared across subprocesses); activities
  /// without an entry use `default_profile`.
  std::map<std::string, ActivityProfile> profiles;
  ActivityProfile default_profile;

  /// Role capacities for manual activities (people holding the role).
  /// Manual activities whose role is missing here are treated as having
  /// capacity 1.
  std::map<std::string, int> role_capacity;

  uint64_t seed = 42;
  int trials = 1000;

  /// Cap on exit-condition reschedules per activity per instance.
  int max_exit_retries = 1000;

  /// Cap on crash retries per activity per instance (mirrors the
  /// runtime's RetryPolicy::max_attempts); 0 = unlimited.
  int max_crash_retries = 64;
};

/// \brief Per-activity aggregate over all trials.
struct ActivityStats {
  uint64_t executions = 0;     ///< times the activity actually ran
  uint64_t dead = 0;           ///< trials where it was dead-path-eliminated
  uint64_t crashes = 0;        ///< attempts lost to injected crashes
  Micros busy_micros = 0;      ///< total virtual time spent executing
  Micros queue_micros = 0;     ///< manual: total time waiting for a person
};

/// \brief Per-role utilization.
struct RoleStats {
  int capacity = 0;
  Micros busy_micros = 0;   ///< person-time consumed
  Micros queue_micros = 0;  ///< work-item waiting time
};

/// \brief Simulation output.
struct SimResult {
  int trials = 0;
  std::vector<Micros> makespans;  ///< per trial, sorted ascending

  Micros MakespanMean() const;
  Micros MakespanPercentile(double p) const;  ///< p in [0,1]
  Micros MakespanMax() const;

  std::map<std::string, ActivityStats> activities;
  std::map<std::string, RoleStats> roles;
};

/// \brief Runs `trials` independent virtual executions of `process_name`.
Result<SimResult> Simulate(const wf::DefinitionStore& store,
                           const std::string& process_name,
                           const SimConfig& config);

}  // namespace exotica::wfsim

#endif  // EXOTICA_WFSIM_SIM_H_
