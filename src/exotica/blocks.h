// Shared building blocks for the Exotica/FMTM translators: the paper's
// Figure-2 forward/compensation block pattern, reused by both the saga
// translation (§4.1) and the compensatable-run grouping of the flexible
// transaction translation (§4.2, rule 5).

#ifndef EXOTICA_EXOTICA_BLOCKS_H_
#define EXOTICA_EXOTICA_BLOCKS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wf/process.h"

namespace exotica::exo {

/// Shared container type of every subtransaction program:
///   RC        0 = committed, nonzero = aborted
///   Committed 1 = committed, 0 = not (feeds the State_* block outputs)
inline constexpr const char* kTxnResultType = "TxnResult";

/// Output container type of translated composite steps:
///   RC  0 = completed, 1 = failed with all committed compensatable work
///       already compensated (clean rollback). Defaults to 1 so a dead
///       path reads as failure.
inline constexpr const char* kFlexResultType = "FlexResult";

/// Names of the constant helper programs (bound by BindHelperPrograms).
inline constexpr const char* kRc0Program = "exo_rc0";
inline constexpr const char* kRc1Program = "exo_rc1";

/// \brief One step of a forward/compensation block pair.
struct BlockStep {
  std::string name;                       ///< subtransaction name (T1, ...)
  std::string program;                    ///< forward program
  std::string compensation_program;       ///< empty = not compensatable
  std::vector<std::string> predecessors;  ///< within the block
  /// Retriable subtransactions get exit condition "RC = 0" in the forward
  /// block, so the engine re-runs them until they commit.
  bool retriable = false;
};

/// \brief Rejects step/subtransaction names that cannot appear as
/// condition identifiers (State_<name> must lex as an identifier).
Status CheckStepName(const std::string& name);

/// \brief The state field for a step: "State_<name>".
std::string StateField(const std::string& step_name);

/// \brief NOP (copy) program name for a state type.
std::string NopProgramFor(const std::string& state_type);

/// \brief Registers (or verifies) the shared TxnResult / FlexResult types
/// and the kRc0/kRc1 program declarations in `store`.
Status EnsureSharedDefinitions(wf::DefinitionStore* store);

/// \brief Registers the block state type `type_name`:
///   RC : LONG DEFAULT 1; State_<step> : LONG DEFAULT 0 for each step.
Status RegisterStateType(wf::DefinitionStore* store,
                         const std::string& type_name,
                         const std::vector<BlockStep>& steps);

/// \brief Declares `program` with the given shapes, or verifies an
/// existing declaration matches.
Status DeclareProgramChecked(wf::DefinitionStore* store,
                             const std::string& program,
                             const std::string& input_type,
                             const std::string& output_type,
                             const std::string& description = "");

/// \brief Builds and registers the forward block (paper Figure 2, left):
/// one activity per step, control connectors along the predecessor edges
/// with transition condition "RC = 0", each step's Committed flag mapped
/// to the block output State_<step>, and a terminal "_DONE" sentinel
/// (AND-join over the sink steps) whose RC=0 constant marks full success —
/// the block output RC defaults to 1, so any abort leaves RC <> 0.
Status BuildForwardProcess(wf::DefinitionStore* store,
                           const std::string& process_name,
                           const std::string& state_type,
                           const std::vector<BlockStep>& steps);

/// \brief Builds and registers the compensation block (paper Figure 2,
/// right): a NOP start activity copying the incoming State_* image,
/// control connectors NOP -> C_<step> with condition "State_<step> = 1",
/// the forward predecessor edges reversed between the compensation
/// activities (OR-joins), and exit condition "RC = 0" on every
/// compensation so it retries until it succeeds. A "_CDONE" constant
/// activity sets the block output RC to 1, marking "compensation ran".
/// Steps without a compensation program are skipped (their State can
/// never demand compensation in a well-formed model).
Status BuildCompensationProcess(wf::DefinitionStore* store,
                                const std::string& process_name,
                                const std::string& state_type,
                                const std::vector<BlockStep>& steps);

}  // namespace exotica::exo

#endif  // EXOTICA_EXOTICA_BLOCKS_H_
