#include "exotica/saga_translate.h"

#include "exotica/blocks.h"
#include "wf/builder.h"

namespace exotica::exo {

namespace {

Status EnsureSagaResultType(wf::DefinitionStore* store) {
  if (store->types().Has(kSagaResultType)) return Status::OK();
  data::StructType t(kSagaResultType);
  EXO_RETURN_NOT_OK(
      t.AddScalar("RC", data::ScalarType::kLong, data::Value(int64_t{1})));
  EXO_RETURN_NOT_OK(t.AddScalar("Compensated", data::ScalarType::kLong,
                                data::Value(int64_t{0})));
  return store->types().Register(std::move(t));
}

}  // namespace

Result<SagaTranslation> TranslateSaga(const atm::SagaSpec& spec,
                                      wf::DefinitionStore* store) {
  EXO_RETURN_NOT_OK(spec.Validate());
  EXO_RETURN_NOT_OK(EnsureSharedDefinitions(store));
  EXO_RETURN_NOT_OK(EnsureSagaResultType(store));

  SagaTranslation names;
  names.root_process = spec.name();
  names.forward_process = spec.name() + "_FWD";
  names.comp_process = spec.name() + "_CMP";
  names.state_type = spec.name() + "_State";

  // The block steps mirror the spec's partial order.
  std::vector<BlockStep> steps;
  steps.reserve(spec.steps().size());
  for (const atm::SagaStep& s : spec.steps()) {
    BlockStep b;
    b.name = s.name;
    b.program = atm::SagaSpec::ProgramOf(s);
    b.compensation_program = atm::SagaSpec::CompensationProgramOf(s);
    b.predecessors = s.predecessors;
    steps.push_back(std::move(b));
  }

  EXO_RETURN_NOT_OK(RegisterStateType(store, names.state_type, steps));
  EXO_RETURN_NOT_OK(BuildForwardProcess(store, names.forward_process,
                                        names.state_type, steps));
  EXO_RETURN_NOT_OK(BuildCompensationProcess(store, names.comp_process,
                                             names.state_type, steps));

  // Root: forward block, then — only when the forward block reports a
  // failure — the compensation block (Figure 2).
  wf::ProcessBuilder b(store, names.root_process);
  b.Description("saga " + spec.name() + " (Exotica translation)");
  b.OutputType(kSagaResultType);
  b.Block("FB", names.forward_process);
  b.Block("CB", names.comp_process);
  b.Connect("FB", "CB", "RC <> 0");

  // State image flows into the compensation block; outcome flags flow to
  // the process output.
  wf::ProcessBuilder::FieldPairs state_fields;
  for (const BlockStep& s : steps) {
    state_fields.emplace_back(StateField(s.name), StateField(s.name));
  }
  b.MapData("FB", "CB", state_fields);
  b.MapToOutput("FB", {{"RC", "RC"}});
  b.MapToOutput("CB", {{"RC", "Compensated"}});

  EXO_RETURN_NOT_OK(b.Register());
  return names;
}

}  // namespace exotica::exo
