// Runtime bindings for translated processes: the generic helper programs
// the translators declare (NOP copiers, RC constants) and the bridge that
// turns named subtransactions into workflow programs.

#ifndef EXOTICA_EXOTICA_PROGRAMS_H_
#define EXOTICA_EXOTICA_PROGRAMS_H_

#include <string>

#include "common/status.h"
#include "atm/flex.h"
#include "atm/saga.h"
#include "atm/subtxn.h"
#include "wf/process.h"
#include "wfrt/program.h"

namespace exotica::exo {

/// \brief Binds every helper program declared in `store`:
/// "exo_rc0"/"exo_rc1" (RC constants) and "exo_nop_*" (same-path copy).
/// Already-bound names are left alone, so this is safe to call after each
/// translation.
Status BindHelperPrograms(const wf::DefinitionStore& store,
                          wfrt::ProgramRegistry* programs);

/// \brief A program that runs the named subtransaction through `runner`
/// and reports the outcome in the output container:
///   RC = 0 / Committed = 1 when the subtransaction committed,
///   RC = 1 / Committed = 0 when it aborted.
/// An infrastructure error from the runner is returned as a program crash
/// (the engine reschedules the activity).
wfrt::ProgramFn MakeSubTxnProgram(atm::SubTxnRunner* runner,
                                  std::string subtxn_name,
                                  bool compensation);

/// \brief Binds the forward and compensation programs of every saga step
/// to `runner`. Helper programs are bound too.
Status BindSagaPrograms(const atm::SagaSpec& spec,
                        const wf::DefinitionStore& store,
                        atm::SubTxnRunner* runner,
                        wfrt::ProgramRegistry* programs);

/// \brief Binds the programs of every subtransaction in a flexible
/// transaction to `runner`. Helper programs are bound too.
Status BindFlexPrograms(const atm::FlexSpec& spec,
                        const wf::DefinitionStore& store,
                        atm::SubTxnRunner* runner,
                        wfrt::ProgramRegistry* programs);

}  // namespace exotica::exo

#endif  // EXOTICA_EXOTICA_PROGRAMS_H_
