// Flexible transaction → workflow translation (paper §4.2, Figure 4,
// rules 1–7).
//
// The translation is compositional over the FlexStep tree. Every step
// becomes a registered subprocess honouring one contract on its output
// container (type FlexResult):
//
//   RC = 0   the step completed (its path committed);
//   RC = 1   the step failed, and every compensatable subtransaction it
//            committed has already been compensated (clean rollback).
//
// With that contract:
//  * a subtransaction (rule 1) is a single program activity; retriable
//    ones carry exit condition "RC = 0" (rule 4);
//  * a sequence chains its elements with transition condition "RC = 0"
//    (rule 2); maximal runs of compensatable subtransactions are grouped
//    into forward blocks with matching compensation blocks (rules 5–6);
//    every element also feeds a "_FAIL" OR-joined trigger via "RC <> 0"
//    connectors, behind which the compensation blocks run in reverse
//    order (rule 7) before the sequence reports RC = 1;
//  * a pivot's two outgoing connectors ("RC = 0" forward, "RC <> 0" to
//    the failure trigger) are exactly rule 3's branching point;
//  * an alternative runs its primary block and, when that reports a clean
//    failure, its fallback block — path switching by dead path
//    elimination, rule 7.
//
// Well-formedness (FlexSpec::Validate) guarantees the clean-rollback
// contract is achievable: a sequence can only fail before its pivot, so
// compensating its runs never undoes a committed pivot.

#ifndef EXOTICA_EXOTICA_FLEX_TRANSLATE_H_
#define EXOTICA_EXOTICA_FLEX_TRANSLATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "atm/flex.h"
#include "wf/process.h"

namespace exotica::exo {

/// \brief Names of the artifacts a flexible-transaction translation
/// registers.
struct FlexTranslation {
  std::string root_process;              ///< spec name
  std::vector<std::string> processes;    ///< every registered process
};

/// \brief Translates `spec` into workflow definitions registered in
/// `store`.
Result<FlexTranslation> TranslateFlex(const atm::FlexSpec& spec,
                                      wf::DefinitionStore* store);

}  // namespace exotica::exo

#endif  // EXOTICA_EXOTICA_FLEX_TRANSLATE_H_
