// Saga → workflow translation (paper §4.1, Figure 2).
//
// The saga's subtransactions become a forward block; its compensations
// become a compensation block with a NOP trigger; the root process chains
// the two with the transition condition "forward block failed". Linear
// sagas use the chain order; generalized (parallel) sagas use the spec's
// partial order, compensated along the reversed edges.

#ifndef EXOTICA_EXOTICA_SAGA_TRANSLATE_H_
#define EXOTICA_EXOTICA_SAGA_TRANSLATE_H_

#include <string>

#include "common/result.h"
#include "atm/saga.h"
#include "wf/process.h"

namespace exotica::exo {

/// Output container type of a translated saga root process:
///   RC          0 = saga committed, 1 = saga aborted
///   Compensated 1 = the compensation block ran
inline constexpr const char* kSagaResultType = "SagaResult";

/// \brief Names of the artifacts a saga translation registers.
struct SagaTranslation {
  std::string root_process;     ///< spec name
  std::string forward_process;  ///< "<name>_FWD"
  std::string comp_process;     ///< "<name>_CMP"
  std::string state_type;       ///< "<name>_State"
};

/// \brief Translates `spec` into workflow definitions registered in
/// `store`. Fails if the spec is invalid or any name collides.
Result<SagaTranslation> TranslateSaga(const atm::SagaSpec& spec,
                                      wf::DefinitionStore* store);

}  // namespace exotica::exo

#endif  // EXOTICA_EXOTICA_SAGA_TRANSLATE_H_
