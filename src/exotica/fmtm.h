// Exotica/FMTM: the pre-processor of the paper's §5 / Figure 5.
//
// The user writes a high-level specification naming the advanced
// transaction model and its subtransactions:
//
//   SAGA 'Trip'
//     STEP 'T1' PROGRAM 'reserve_flight' COMPENSATION 'cancel_flight';
//     STEP 'T2';                     -- linear: follows the previous step
//     STEP 'T3' AFTER 'T1';          -- explicit partial order
//     STEP 'T4' FIRST;               -- an independent start step
//   END 'Trip'
//
//   FLEXIBLE 'Fig3'
//     SEQ
//       SUB 'T1' COMPENSATABLE;
//       SUB 'T2' PIVOT;
//       ALT
//         SEQ
//           SUB 'T4' PIVOT;
//           ALT
//             SEQ SUB 'T5' COMPENSATABLE; SUB 'T6' COMPENSATABLE;
//                 SUB 'T8' PIVOT; END
//             SUB 'T7' RETRIABLE;
//           END
//         END
//         SUB 'T3' RETRIABLE;
//       END
//     END
//   END 'Fig3'
//
// CompileSpec runs the full Figure-5 pipeline: format check (spec parse +
// model validation / well-formedness), translation to workflow processes,
// FDL emission, FDL import with syntax checking, and semantic validation
// into executable process templates registered in the target store.

#ifndef EXOTICA_EXOTICA_FMTM_H_
#define EXOTICA_EXOTICA_FMTM_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "atm/flex.h"
#include "atm/saga.h"
#include "wf/process.h"

namespace exotica::exo {

enum class ModelKind : int { kSaga = 0, kFlexible = 1 };

const char* ModelKindName(ModelKind kind);

/// \brief Everything the pipeline produced.
struct FmtmOutput {
  ModelKind kind = ModelKind::kSaga;
  std::string root_process;
  std::vector<std::string> processes;  ///< all registered processes
  std::string fdl;                     ///< the emitted FDL document

  /// The parsed model spec, for binding subtransaction programs
  /// (BindSagaPrograms / BindFlexPrograms).
  std::optional<atm::SagaSpec> saga;
  std::optional<atm::FlexSpec> flex;
};

/// \brief Parses a model specification (either SAGA or FLEXIBLE).
Result<FmtmOutput> ParseSpec(const std::string& spec_text);

/// \brief Full pipeline: spec text → validated model → translation → FDL →
/// import into `store`. On success the root process (and its blocks) are
/// registered and ready to instantiate.
Result<FmtmOutput> CompileSpec(const std::string& spec_text,
                               wf::DefinitionStore* store);

}  // namespace exotica::exo

#endif  // EXOTICA_EXOTICA_FMTM_H_
