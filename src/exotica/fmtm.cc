#include "exotica/fmtm.h"

#include "common/strings.h"
#include "exotica/flex_translate.h"
#include "exotica/saga_translate.h"
#include "fdl/export.h"
#include "fdl/import.h"
#include "fdl/lexer.h"

namespace exotica::exo {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSaga: return "SAGA";
    case ModelKind::kFlexible: return "FLEXIBLE";
  }
  return "?";
}

namespace {

using fdl::FdlToken;
using fdl::FdlTokenKind;

class SpecParser {
 public:
  explicit SpecParser(std::vector<FdlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<FmtmOutput> Run() {
    FmtmOutput out;
    if (PeekKeyword("SAGA")) {
      EXO_ASSIGN_OR_RETURN(atm::SagaSpec saga, ParseSaga());
      out.kind = ModelKind::kSaga;
      out.root_process = saga.name();
      out.saga = std::move(saga);
    } else if (PeekKeyword("FLEXIBLE")) {
      EXO_ASSIGN_OR_RETURN(atm::FlexSpec flex, ParseFlexible());
      out.kind = ModelKind::kFlexible;
      out.root_process = flex.name();
      out.flex = std::move(flex);
    } else {
      return Error("specification must start with SAGA or FLEXIBLE");
    }
    if (Peek().kind != FdlTokenKind::kEnd) {
      return Error("trailing input after the specification");
    }
    return out;
  }

 private:
  const FdlToken& Peek() const { return tokens_[pos_]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == FdlTokenKind::kKeyword && Peek().text == kw;
  }

  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) return Error(std::string("expected ") + kw);
    return Status::OK();
  }

  Status Expect(FdlTokenKind kind) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + FdlTokenKindName(kind));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectName() {
    if (Peek().kind != FdlTokenKind::kName) {
      return Error("expected a quoted name");
    }
    std::string name = Peek().text;
    ++pos_;
    return name;
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat(
        "%s at line %d (near %s '%s') in model specification", what.c_str(),
        Peek().line, FdlTokenKindName(Peek().kind), Peek().text.c_str()));
  }

  Result<atm::SagaSpec> ParseSaga() {
    EXO_RETURN_NOT_OK(ExpectKeyword("SAGA"));
    EXO_ASSIGN_OR_RETURN(std::string name, ExpectName());
    atm::SagaSpec spec(name);
    while (!PeekKeyword("END")) {
      EXO_RETURN_NOT_OK(ExpectKeyword("STEP"));
      EXO_ASSIGN_OR_RETURN(std::string step_name, ExpectName());

      std::vector<std::string> predecessors;
      bool explicit_order = false;
      std::string program, compensation;
      while (Peek().kind == FdlTokenKind::kKeyword && !PeekKeyword("END")) {
        if (AcceptKeyword("AFTER")) {
          explicit_order = true;
          EXO_ASSIGN_OR_RETURN(std::string p, ExpectName());
          predecessors.push_back(std::move(p));
          while (Peek().kind == FdlTokenKind::kComma) {
            ++pos_;
            EXO_ASSIGN_OR_RETURN(std::string q, ExpectName());
            predecessors.push_back(std::move(q));
          }
        } else if (AcceptKeyword("FIRST")) {
          explicit_order = true;
        } else if (AcceptKeyword("PROGRAM")) {
          EXO_ASSIGN_OR_RETURN(program, ExpectName());
        } else if (AcceptKeyword("COMPENSATION")) {
          EXO_ASSIGN_OR_RETURN(compensation, ExpectName());
        } else {
          return Error("unexpected clause in STEP");
        }
      }
      EXO_RETURN_NOT_OK(Expect(FdlTokenKind::kSemicolon));

      if (explicit_order) {
        spec.Step(step_name, std::move(predecessors));
      } else {
        spec.Then(step_name);  // linear: follows the previous step
      }
      if (!program.empty() || !compensation.empty()) {
        spec.WithPrograms(program, compensation);
      }
    }
    EXO_RETURN_NOT_OK(ExpectKeyword("END"));
    EXO_ASSIGN_OR_RETURN(std::string end_name, ExpectName());
    if (end_name != name) {
      return Status::ParseError("END '" + end_name +
                                "' does not match SAGA '" + name + "'");
    }
    // Format check, per the paper: "The pre-processor checks that the
    // user specification meets the format of the advanced transaction
    // model specified."
    EXO_RETURN_NOT_OK(spec.Validate());
    return spec;
  }

  Result<atm::FlexStepPtr> ParseFlexStep() {
    if (AcceptKeyword("SUB")) {
      EXO_ASSIGN_OR_RETURN(std::string name, ExpectName());
      bool compensatable = false, retriable = false, pivot = false;
      std::string program, compensation;
      while (Peek().kind == FdlTokenKind::kKeyword) {
        if (AcceptKeyword("COMPENSATABLE")) {
          compensatable = true;
        } else if (AcceptKeyword("RETRIABLE")) {
          retriable = true;
        } else if (AcceptKeyword("PIVOT")) {
          pivot = true;
        } else if (AcceptKeyword("PROGRAM")) {
          EXO_ASSIGN_OR_RETURN(program, ExpectName());
        } else if (AcceptKeyword("COMPENSATION")) {
          EXO_ASSIGN_OR_RETURN(compensation, ExpectName());
        } else {
          return Error("unexpected flag on SUB");
        }
      }
      EXO_RETURN_NOT_OK(Expect(FdlTokenKind::kSemicolon));
      if (pivot && (compensatable || retriable)) {
        return Status::ParseError("SUB '" + name +
                                  "': PIVOT excludes other flags");
      }
      atm::FlexStepPtr sub = atm::FlexStep::Sub(name, compensatable, retriable);
      sub->program = program;
      sub->compensation_program = compensation;
      return sub;
    }
    if (AcceptKeyword("SEQ")) {
      std::vector<atm::FlexStepPtr> children;
      while (!PeekKeyword("END")) {
        EXO_ASSIGN_OR_RETURN(atm::FlexStepPtr child, ParseFlexStep());
        children.push_back(std::move(child));
      }
      EXO_RETURN_NOT_OK(ExpectKeyword("END"));
      if (children.empty()) return Error("SEQ needs at least one step");
      return atm::FlexStep::Seq(std::move(children));
    }
    if (AcceptKeyword("ALT")) {
      EXO_ASSIGN_OR_RETURN(atm::FlexStepPtr primary, ParseFlexStep());
      EXO_ASSIGN_OR_RETURN(atm::FlexStepPtr fallback, ParseFlexStep());
      EXO_RETURN_NOT_OK(ExpectKeyword("END"));
      return atm::FlexStep::Alt(std::move(primary), std::move(fallback));
    }
    return Error("expected SUB, SEQ or ALT");
  }

  Result<atm::FlexSpec> ParseFlexible() {
    EXO_RETURN_NOT_OK(ExpectKeyword("FLEXIBLE"));
    EXO_ASSIGN_OR_RETURN(std::string name, ExpectName());
    EXO_ASSIGN_OR_RETURN(atm::FlexStepPtr root, ParseFlexStep());
    EXO_RETURN_NOT_OK(ExpectKeyword("END"));
    EXO_ASSIGN_OR_RETURN(std::string end_name, ExpectName());
    if (end_name != name) {
      return Status::ParseError("END '" + end_name +
                                "' does not match FLEXIBLE '" + name + "'");
    }
    atm::FlexSpec spec(name, std::move(root));
    // Format check: structural + well-formedness rules.
    EXO_RETURN_NOT_OK(spec.Validate());
    return spec;
  }

  std::vector<FdlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FmtmOutput> ParseSpec(const std::string& spec_text) {
  EXO_ASSIGN_OR_RETURN(std::vector<FdlToken> tokens,
                       fdl::TokenizeFdl(spec_text));
  return SpecParser(std::move(tokens)).Run();
}

Result<FmtmOutput> CompileSpec(const std::string& spec_text,
                               wf::DefinitionStore* store) {
  EXO_ASSIGN_OR_RETURN(FmtmOutput out, ParseSpec(spec_text));

  // Translate into a scratch store, then round-trip through FDL into the
  // target store — the paper's Figure-5 pipeline: the pre-processor's
  // output *is* FDL, which the import module syntax-checks and the
  // translator semantic-checks into executable templates.
  wf::DefinitionStore scratch;
  if (out.kind == ModelKind::kSaga) {
    EXO_ASSIGN_OR_RETURN(SagaTranslation t, TranslateSaga(*out.saga, &scratch));
    out.root_process = t.root_process;
  } else {
    EXO_ASSIGN_OR_RETURN(FlexTranslation t, TranslateFlex(*out.flex, &scratch));
    out.root_process = t.root_process;
  }
  EXO_ASSIGN_OR_RETURN(out.fdl,
                       fdl::ExportClosure(scratch, {out.root_process}));
  EXO_ASSIGN_OR_RETURN(out.processes, fdl::ImportFdl(out.fdl, store));
  return out;
}

}  // namespace exotica::exo
