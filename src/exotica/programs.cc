#include "exotica/programs.h"

#include "common/strings.h"
#include "exotica/blocks.h"

namespace exotica::exo {

namespace {

wfrt::ProgramFn MakeConstRcProgram(int64_t rc) {
  return [rc](const data::Container& input, data::Container* output,
              const wfrt::ProgramContext& context) -> Status {
    (void)input;
    (void)context;
    return output->Set("RC", data::Value(rc));
  };
}

wfrt::ProgramFn MakeZeroStatesProgram() {
  return [](const data::Container& input, data::Container* output,
            const wfrt::ProgramContext& context) -> Status {
    (void)input;
    (void)context;
    for (const std::string& path : output->paths()) {
      if (StartsWith(path, "State_")) {
        EXO_RETURN_NOT_OK(output->Set(path, data::Value(int64_t{0})));
      }
    }
    return Status::OK();
  };
}

wfrt::ProgramFn MakeCopyProgram() {
  return [](const data::Container& input, data::Container* output,
            const wfrt::ProgramContext& context) -> Status {
    (void)context;
    for (const std::string& path : input.paths()) {
      if (!output->HasPath(path)) continue;
      EXO_ASSIGN_OR_RETURN(data::Value v, input.Get(path));
      EXO_RETURN_NOT_OK(output->Set(path, v));
    }
    return Status::OK();
  };
}

Status BindIfUnbound(wfrt::ProgramRegistry* programs, const std::string& name,
                     wfrt::ProgramFn fn) {
  if (programs->IsBound(name)) return Status::OK();
  return programs->Bind(name, std::move(fn));
}

}  // namespace

Status BindHelperPrograms(const wf::DefinitionStore& store,
                          wfrt::ProgramRegistry* programs) {
  for (const std::string& name : store.ProgramNames()) {
    if (name == kRc0Program) {
      EXO_RETURN_NOT_OK(BindIfUnbound(programs, name, MakeConstRcProgram(0)));
    } else if (name == kRc1Program) {
      EXO_RETURN_NOT_OK(BindIfUnbound(programs, name, MakeConstRcProgram(1)));
    } else if (StartsWith(name, "exo_nop_")) {
      EXO_RETURN_NOT_OK(BindIfUnbound(programs, name, MakeCopyProgram()));
    } else if (StartsWith(name, "exo_zero_")) {
      EXO_RETURN_NOT_OK(BindIfUnbound(programs, name, MakeZeroStatesProgram()));
    }
  }
  return Status::OK();
}

wfrt::ProgramFn MakeSubTxnProgram(atm::SubTxnRunner* runner,
                                  std::string subtxn_name, bool compensation) {
  return [runner, subtxn_name, compensation](
             const data::Container& input, data::Container* output,
             const wfrt::ProgramContext& context) -> Status {
    (void)input;
    (void)context;
    Result<bool> committed = compensation ? runner->Compensate(subtxn_name)
                                          : runner->Run(subtxn_name);
    if (!committed.ok()) return committed.status();
    EXO_RETURN_NOT_OK(
        output->Set("RC", data::Value(int64_t{*committed ? 0 : 1})));
    EXO_RETURN_NOT_OK(
        output->Set("Committed", data::Value(int64_t{*committed ? 1 : 0})));
    return Status::OK();
  };
}

Status BindSagaPrograms(const atm::SagaSpec& spec,
                        const wf::DefinitionStore& store,
                        atm::SubTxnRunner* runner,
                        wfrt::ProgramRegistry* programs) {
  for (const atm::SagaStep& step : spec.steps()) {
    EXO_RETURN_NOT_OK(
        BindIfUnbound(programs, atm::SagaSpec::ProgramOf(step),
                      MakeSubTxnProgram(runner, step.name, false)));
    EXO_RETURN_NOT_OK(
        BindIfUnbound(programs, atm::SagaSpec::CompensationProgramOf(step),
                      MakeSubTxnProgram(runner, step.name, true)));
  }
  return BindHelperPrograms(store, programs);
}

Status BindFlexPrograms(const atm::FlexSpec& spec,
                        const wf::DefinitionStore& store,
                        atm::SubTxnRunner* runner,
                        wfrt::ProgramRegistry* programs) {
  for (const atm::FlexStep* sub : spec.Subs()) {
    std::string program = sub->program.empty() ? sub->name : sub->program;
    EXO_RETURN_NOT_OK(BindIfUnbound(
        programs, program, MakeSubTxnProgram(runner, sub->name, false)));
    if (sub->compensatable) {
      std::string comp = sub->compensation_program.empty()
                             ? sub->name + "_comp"
                             : sub->compensation_program;
      EXO_RETURN_NOT_OK(BindIfUnbound(
          programs, comp, MakeSubTxnProgram(runner, sub->name, true)));
    }
  }
  return BindHelperPrograms(store, programs);
}

}  // namespace exotica::exo
