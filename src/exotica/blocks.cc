#include "exotica/blocks.h"

#include <cctype>
#include <set>

#include "common/strings.h"
#include "wf/builder.h"

namespace exotica::exo {

namespace {

/// Registers `type` unless an identical type already exists.
Status RegisterOrVerifyType(wf::DefinitionStore* store, data::StructType type) {
  if (!store->types().Has(type.name())) {
    return store->types().Register(std::move(type));
  }
  EXO_ASSIGN_OR_RETURN(const data::StructType* existing,
                       store->types().Find(type.name()));
  const auto& a = existing->members();
  const auto& b = type.members();
  bool same = a.size() == b.size();
  for (size_t i = 0; same && i < a.size(); ++i) {
    same = a[i].name == b[i].name && a[i].scalar == b[i].scalar &&
           a[i].struct_type == b[i].struct_type &&
           a[i].default_value == b[i].default_value;
  }
  if (!same) {
    return Status::AlreadyExists("structure type " + type.name() +
                                 " already registered with a different shape");
  }
  return Status::OK();
}

}  // namespace

Status CheckStepName(const std::string& name) {
  if (name.empty()) {
    return Status::ValidationError("subtransaction name may not be empty");
  }
  if (name[0] == '_') {
    return Status::ValidationError("subtransaction name " + name +
                                   " may not start with '_' (reserved)");
  }
  if (!std::isalpha(static_cast<unsigned char>(name[0]))) {
    return Status::ValidationError("subtransaction name " + name +
                                   " must start with a letter");
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return Status::ValidationError(
          "subtransaction name " + name +
          " must be an identifier (letters, digits, '_') so that State_" +
          name + " is usable in conditions");
    }
  }
  return Status::OK();
}

std::string StateField(const std::string& step_name) {
  return "State_" + step_name;
}

std::string NopProgramFor(const std::string& state_type) {
  return "exo_nop_" + state_type;
}

Status DeclareProgramChecked(wf::DefinitionStore* store,
                             const std::string& program,
                             const std::string& input_type,
                             const std::string& output_type,
                             const std::string& description) {
  if (!store->HasProgram(program)) {
    wf::ProgramDeclaration decl;
    decl.name = program;
    decl.description = description;
    decl.input_type = input_type;
    decl.output_type = output_type;
    return store->DeclareProgram(std::move(decl));
  }
  EXO_ASSIGN_OR_RETURN(const wf::ProgramDeclaration* decl,
                       store->FindProgram(program));
  if (decl->input_type != input_type || decl->output_type != output_type) {
    return Status::AlreadyExists(StrFormat(
        "program %s already declared with containers (%s/%s), need (%s/%s)",
        program.c_str(), decl->input_type.c_str(), decl->output_type.c_str(),
        input_type.c_str(), output_type.c_str()));
  }
  return Status::OK();
}

Status EnsureSharedDefinitions(wf::DefinitionStore* store) {
  data::StructType txn_result(kTxnResultType);
  EXO_RETURN_NOT_OK(txn_result.AddScalar("RC", data::ScalarType::kLong,
                                         data::Value(int64_t{1})));
  EXO_RETURN_NOT_OK(txn_result.AddScalar("Committed", data::ScalarType::kLong,
                                         data::Value(int64_t{0})));
  EXO_RETURN_NOT_OK(RegisterOrVerifyType(store, std::move(txn_result)));

  data::StructType flex_result(kFlexResultType);
  EXO_RETURN_NOT_OK(flex_result.AddScalar("RC", data::ScalarType::kLong,
                                          data::Value(int64_t{1})));
  EXO_RETURN_NOT_OK(RegisterOrVerifyType(store, std::move(flex_result)));

  EXO_RETURN_NOT_OK(DeclareProgramChecked(
      store, kRc0Program, data::TypeRegistry::kDefaultTypeName,
      data::TypeRegistry::kDefaultTypeName, "constant: sets RC = 0"));
  EXO_RETURN_NOT_OK(DeclareProgramChecked(
      store, kRc1Program, data::TypeRegistry::kDefaultTypeName,
      data::TypeRegistry::kDefaultTypeName, "constant: sets RC = 1"));
  return Status::OK();
}

Status RegisterStateType(wf::DefinitionStore* store,
                         const std::string& type_name,
                         const std::vector<BlockStep>& steps) {
  data::StructType type(type_name);
  EXO_RETURN_NOT_OK(
      type.AddScalar("RC", data::ScalarType::kLong, data::Value(int64_t{1})));
  for (const BlockStep& s : steps) {
    EXO_RETURN_NOT_OK(CheckStepName(s.name));
    EXO_RETURN_NOT_OK(type.AddScalar(StateField(s.name), data::ScalarType::kLong,
                                     data::Value(int64_t{0})));
  }
  return RegisterOrVerifyType(store, std::move(type));
}

Status BuildForwardProcess(wf::DefinitionStore* store,
                           const std::string& process_name,
                           const std::string& state_type,
                           const std::vector<BlockStep>& steps) {
  wf::ProcessBuilder b(store, process_name);
  b.Description("forward block (Exotica translation)");
  b.OutputType(state_type);

  std::set<std::string> has_successor;
  for (const BlockStep& s : steps) {
    for (const std::string& p : s.predecessors) has_successor.insert(p);
  }

  for (const BlockStep& s : steps) {
    EXO_RETURN_NOT_OK(DeclareProgramChecked(
        store, s.program, data::TypeRegistry::kDefaultTypeName,
        kTxnResultType));
    b.Program(s.name, s.program);
    if (s.retriable) b.ExitWhen("RC = 0");
    // The step's commit flag feeds the block state; an abort or a dead
    // path leaves the default 0.
    b.MapToOutput(s.name, {{"Committed", StateField(s.name)}});
  }

  // Full-success sentinel: AND join over the sink steps.
  b.Program("_DONE", kRc0Program);
  b.MapToOutput("_DONE", {{"RC", "RC"}});

  for (const BlockStep& s : steps) {
    for (const std::string& p : s.predecessors) {
      b.Connect(p, s.name, "RC = 0");
    }
    if (has_successor.count(s.name) == 0) {
      b.Connect(s.name, "_DONE", "RC = 0");
    }
  }
  return b.Register();
}

Status BuildCompensationProcess(wf::DefinitionStore* store,
                                const std::string& process_name,
                                const std::string& state_type,
                                const std::vector<BlockStep>& steps) {
  const std::string nop_program = NopProgramFor(state_type);
  EXO_RETURN_NOT_OK(DeclareProgramChecked(
      store, nop_program, state_type, state_type,
      "copies the incoming State image (compensation trigger)"));

  wf::ProcessBuilder b(store, process_name);
  b.Description("compensation block (Exotica translation)");
  b.InputType(state_type);

  // The NOP trigger: copies the state image so the State_* transition
  // conditions can be evaluated over its output container.
  b.Program("_NOP", nop_program).Containers(state_type, state_type);
  wf::ProcessBuilder::FieldPairs nop_fields;
  nop_fields.emplace_back("RC", "RC");
  for (const BlockStep& s : steps) {
    nop_fields.emplace_back(StateField(s.name), StateField(s.name));
  }
  b.MapFromInput("_NOP", nop_fields);

  // "Compensation ran" marker: block output RC = 1 whenever the block
  // actually executes.
  b.Program("_CDONE", kRc1Program);
  b.Connect("_NOP", "_CDONE");
  b.MapToOutput("_CDONE", {{"RC", "RC"}});

  std::set<std::string> compensated;
  for (const BlockStep& s : steps) {
    if (s.compensation_program.empty()) continue;
    EXO_RETURN_NOT_OK(DeclareProgramChecked(
        store, s.compensation_program, data::TypeRegistry::kDefaultTypeName,
        kTxnResultType));
    std::string comp_name = "C_" + s.name;
    b.Program(comp_name, s.compensation_program)
        .OrJoin()
        .ExitWhen("RC = 0");  // compensations retry until they succeed
    b.Connect("_NOP", comp_name, StateField(s.name) + " = 1");
    compensated.insert(s.name);
  }

  // Reverse the forward edges between compensation activities.
  for (const BlockStep& s : steps) {
    if (compensated.count(s.name) == 0) continue;
    for (const std::string& p : s.predecessors) {
      if (compensated.count(p) == 0) continue;
      b.Connect("C_" + s.name, "C_" + p);
    }
  }
  return b.Register();
}

}  // namespace exotica::exo
