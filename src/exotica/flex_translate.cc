#include "exotica/flex_translate.h"

#include <map>

#include "exotica/blocks.h"
#include "wf/builder.h"

namespace exotica::exo {

namespace {

std::string ProgramOf(const atm::FlexStep& sub) {
  return sub.program.empty() ? sub.name : sub.program;
}

std::string CompensationProgramOf(const atm::FlexStep& sub) {
  return sub.compensation_program.empty() ? sub.name + "_comp"
                                          : sub.compensation_program;
}

/// Compensatable leaves of a step, left to right.
void CollectCompensatable(const atm::FlexStep& step,
                          std::vector<const atm::FlexStep*>* out) {
  switch (step.kind) {
    case atm::FlexStep::Kind::kSub:
      if (step.compensatable) out->push_back(&step);
      return;
    case atm::FlexStep::Kind::kSeq:
      for (const atm::FlexStepPtr& c : step.children) {
        CollectCompensatable(*c, out);
      }
      return;
    case atm::FlexStep::Kind::kAlt:
      CollectCompensatable(*step.primary, out);
      CollectCompensatable(*step.fallback, out);
      return;
  }
}

class Translator {
 public:
  Translator(wf::DefinitionStore* store, FlexTranslation* out)
      : store_(store), out_(out) {}

  /// What a translated step exposes to its parent.
  struct StepArtifacts {
    std::string process;        ///< forward process (output = state_type)
    std::string comp_process;   ///< compensation process; empty if no
                                ///< compensatable leaves
    std::string state_type;     ///< {RC def 1} + State_<leaf> fields
    std::vector<std::string> state_fields;  ///< State_<leaf> names
  };

  /// Translates `step`; registers processes under `process_name` and
  /// returns the artifact names.
  ///
  /// Forward-process contract on the output container:
  ///   RC = 0        the step completed;
  ///   RC = 1        the step failed cleanly — every compensatable leaf it
  ///                 committed has been compensated;
  ///   State_<leaf>  1 iff the leaf's effects are currently in place
  ///                 (committed and not compensated).
  ///
  /// The compensation process takes the state image as its input
  /// container and undoes every leaf whose State field is 1, retrying
  /// each compensating transaction until it succeeds.
  Result<StepArtifacts> TranslateStep(const atm::FlexStep& step,
                                      const std::string& process_name) {
    switch (step.kind) {
      case atm::FlexStep::Kind::kSub:
        return TranslateSub(step, process_name);
      case atm::FlexStep::Kind::kSeq:
        return TranslateSeq(step, process_name);
      case atm::FlexStep::Kind::kAlt:
        return TranslateAlt(step, process_name);
    }
    return Status::Internal("unreachable flex step kind");
  }

 private:
  Status Registered(const std::string& name) {
    out_->processes.push_back(name);
    return Status::OK();
  }

  /// Registers the step's state type {RC def 1, State_<leaf> def 0 ...}.
  Status MakeStateType(const std::string& type_name,
                       const std::vector<const atm::FlexStep*>& leaves,
                       std::vector<std::string>* fields) {
    std::vector<BlockStep> steps;
    for (const atm::FlexStep* leaf : leaves) {
      EXO_RETURN_NOT_OK(CheckStepName(leaf->name));
      BlockStep b;
      b.name = leaf->name;
      steps.push_back(std::move(b));
      fields->push_back(StateField(leaf->name));
    }
    return RegisterStateType(store_, type_name, steps);
  }

  /// Declares the zero program for a state type (writes 0 to every
  /// State_* field; bound generically by BindHelperPrograms).
  Result<std::string> ZeroProgramFor(const std::string& state_type) {
    std::string name = "exo_zero_" + state_type;
    EXO_RETURN_NOT_OK(DeclareProgramChecked(
        store_, name, data::TypeRegistry::kDefaultTypeName, state_type,
        "constant: clears every State_* field"));
    return name;
  }

  Result<StepArtifacts> TranslateSub(const atm::FlexStep& sub,
                                     const std::string& process_name) {
    EXO_RETURN_NOT_OK(CheckStepName(sub.name));
    EXO_RETURN_NOT_OK(DeclareProgramChecked(
        store_, ProgramOf(sub), data::TypeRegistry::kDefaultTypeName,
        kTxnResultType));

    StepArtifacts art;
    art.process = process_name;
    art.state_type = process_name + "_State";
    std::vector<const atm::FlexStep*> leaves;
    CollectCompensatable(sub, &leaves);
    EXO_RETURN_NOT_OK(MakeStateType(art.state_type, leaves, &art.state_fields));

    wf::ProcessBuilder b(store_, process_name);
    b.Description("subtransaction " + sub.name + " (Exotica translation)");
    b.OutputType(art.state_type);
    b.Program(sub.name, ProgramOf(sub));
    if (sub.retriable) b.ExitWhen("RC = 0");  // rule 4
    b.MapToOutput(sub.name, {{"RC", "RC"}});
    if (sub.compensatable) {
      b.MapToOutput(sub.name, {{"Committed", StateField(sub.name)}});
    }
    EXO_RETURN_NOT_OK(b.Register());
    EXO_RETURN_NOT_OK(Registered(process_name));

    if (sub.compensatable) {
      art.comp_process = process_name + "_CMP";
      BlockStep step;
      step.name = sub.name;
      step.program = ProgramOf(sub);
      step.compensation_program = CompensationProgramOf(sub);
      EXO_RETURN_NOT_OK(BuildCompensationProcess(store_, art.comp_process,
                                                 art.state_type, {step}));
      EXO_RETURN_NOT_OK(Registered(art.comp_process));
    }
    return art;
  }

  Result<StepArtifacts> TranslateAlt(const atm::FlexStep& alt,
                                     const std::string& process_name) {
    EXO_ASSIGN_OR_RETURN(StepArtifacts primary,
                         TranslateStep(*alt.primary, process_name + "_P"));
    EXO_ASSIGN_OR_RETURN(StepArtifacts fallback,
                         TranslateStep(*alt.fallback, process_name + "_F"));

    StepArtifacts art;
    art.process = process_name;
    art.state_type = process_name + "_State";
    std::vector<const atm::FlexStep*> leaves;
    CollectCompensatable(alt, &leaves);
    EXO_RETURN_NOT_OK(MakeStateType(art.state_type, leaves, &art.state_fields));

    wf::ProcessBuilder b(store_, process_name);
    b.Description("alternative paths (Exotica translation)");
    b.OutputType(art.state_type);
    b.Block("_P", primary.process);
    b.Block("_F", fallback.process);
    // Rule 7: the alternative runs exactly when the preferred path
    // reports a clean failure. A failed primary zeroed its states, so the
    // union image below reflects only surviving work.
    b.Connect("_P", "_F", "RC <> 0");
    b.MapToOutput("_P", {{"RC", "RC"}});
    b.MapToOutput("_F", {{"RC", "RC"}});
    auto map_states = [&b](const char* act, const StepArtifacts& a) {
      if (a.state_fields.empty()) return;
      wf::ProcessBuilder::FieldPairs pairs;
      for (const std::string& f : a.state_fields) pairs.emplace_back(f, f);
      b.MapToOutput(act, pairs);
    };
    map_states("_P", primary);
    map_states("_F", fallback);
    EXO_RETURN_NOT_OK(b.Register());
    EXO_RETURN_NOT_OK(Registered(process_name));

    // Compensation: undo whichever branch's work survives (the state
    // image gates each side; at most one side has nonzero fields).
    if (!art.state_fields.empty()) {
      art.comp_process = process_name + "_CMP";
      wf::ProcessBuilder cb(store_, art.comp_process);
      cb.Description("alternative compensation (Exotica translation)");
      cb.InputType(art.state_type);
      std::string prev;
      for (const StepArtifacts* branch : {&fallback, &primary}) {
        if (branch->comp_process.empty()) continue;
        std::string act = "_C" + std::to_string(cb_counter_++);
        cb.Block(act, branch->comp_process);
        wf::ProcessBuilder::FieldPairs pairs;
        for (const std::string& f : branch->state_fields) {
          pairs.emplace_back(f, f);
        }
        cb.MapFromInput(act, pairs);
        if (!prev.empty()) cb.Connect(prev, act);
        prev = std::move(act);
      }
      EXO_RETURN_NOT_OK(cb.Register());
      EXO_RETURN_NOT_OK(Registered(art.comp_process));
    }
    return art;
  }

  Result<StepArtifacts> TranslateSeq(const atm::FlexStep& seq,
                                     const std::string& process_name) {
    // Elements: maximal runs of compensatable subtransactions collapse
    // into forward blocks (rule 5); plain pivot / retriable leaves are
    // inline activities; composites recurse.
    struct Element {
      std::string activity;
      bool is_block = false;
      std::string subprocess;
      const atm::FlexStep* sub = nullptr;  // plain leaves only
      std::string comp_process;            // empty if nothing to undo
      std::vector<std::string> state_fields;
      std::string comp_input_type;         // comp process input type
    };
    std::vector<Element> elements;
    std::vector<BlockStep> run;
    int counter = 0;

    auto flush_run = [&]() -> Status {
      if (run.empty()) return Status::OK();
      ++counter;
      Element e;
      e.activity = "_R" + std::to_string(counter);
      e.is_block = true;
      e.subprocess = process_name + "_R" + std::to_string(counter) + "F";
      e.comp_process = process_name + "_R" + std::to_string(counter) + "C";
      e.comp_input_type =
          process_name + "_R" + std::to_string(counter) + "_State";
      for (const BlockStep& s : run) {
        e.state_fields.push_back(StateField(s.name));
      }
      EXO_RETURN_NOT_OK(RegisterStateType(store_, e.comp_input_type, run));
      EXO_RETURN_NOT_OK(
          BuildForwardProcess(store_, e.subprocess, e.comp_input_type, run));
      EXO_RETURN_NOT_OK(Registered(e.subprocess));
      EXO_RETURN_NOT_OK(BuildCompensationProcess(store_, e.comp_process,
                                                 e.comp_input_type, run));
      EXO_RETURN_NOT_OK(Registered(e.comp_process));
      run.clear();
      elements.push_back(std::move(e));
      return Status::OK();
    };

    for (const atm::FlexStepPtr& child : seq.children) {
      if (child->kind == atm::FlexStep::Kind::kSub && child->compensatable) {
        EXO_RETURN_NOT_OK(CheckStepName(child->name));
        BlockStep b;
        b.name = child->name;
        b.program = ProgramOf(*child);
        b.compensation_program = CompensationProgramOf(*child);
        if (!run.empty()) b.predecessors.push_back(run.back().name);
        b.retriable = child->retriable;
        run.push_back(std::move(b));
        continue;
      }
      EXO_RETURN_NOT_OK(flush_run());
      ++counter;
      Element e;
      if (child->kind == atm::FlexStep::Kind::kSub) {
        EXO_RETURN_NOT_OK(CheckStepName(child->name));
        e.activity = child->name;
        e.sub = child.get();
      } else {
        e.activity = "_B" + std::to_string(counter);
        e.is_block = true;
        e.subprocess = process_name + "_B" + std::to_string(counter);
        EXO_ASSIGN_OR_RETURN(StepArtifacts child_art,
                             TranslateStep(*child, e.subprocess));
        e.comp_process = child_art.comp_process;
        e.state_fields = child_art.state_fields;
        e.comp_input_type = child_art.state_type;
      }
      elements.push_back(std::move(e));
    }
    EXO_RETURN_NOT_OK(flush_run());

    if (elements.empty()) {
      return Status::ValidationError("sequence " + process_name +
                                     " has no elements");
    }

    StepArtifacts art;
    art.process = process_name;
    art.state_type = process_name + "_State";
    std::vector<const atm::FlexStep*> leaves;
    CollectCompensatable(seq, &leaves);
    EXO_RETURN_NOT_OK(MakeStateType(art.state_type, leaves, &art.state_fields));

    // --- the Seq's compensation process (shared by the internal failure
    // path and by enclosing steps): children's comp blocks in reverse.
    if (!art.state_fields.empty()) {
      art.comp_process = process_name + "_CMP";
      wf::ProcessBuilder cb(store_, art.comp_process);
      cb.Description("sequence compensation (Exotica translation)");
      cb.InputType(art.state_type);
      std::string prev;
      for (auto it = elements.rbegin(); it != elements.rend(); ++it) {
        if (it->comp_process.empty()) continue;
        std::string act = "_C" + std::to_string(cb_counter_++);
        cb.Block(act, it->comp_process);
        wf::ProcessBuilder::FieldPairs pairs;
        for (const std::string& f : it->state_fields) pairs.emplace_back(f, f);
        cb.MapFromInput(act, pairs);
        if (!prev.empty()) cb.Connect(prev, act);
        prev = std::move(act);
      }
      EXO_RETURN_NOT_OK(cb.Register());
      EXO_RETURN_NOT_OK(Registered(art.comp_process));
    }

    // --- the forward process.
    wf::ProcessBuilder b(store_, process_name);
    b.Description("sequence (Exotica translation)");
    b.OutputType(art.state_type);

    for (const Element& e : elements) {
      if (e.is_block) {
        b.Block(e.activity, e.subprocess);
      } else {
        EXO_RETURN_NOT_OK(DeclareProgramChecked(
            store_, ProgramOf(*e.sub), data::TypeRegistry::kDefaultTypeName,
            kTxnResultType));
        b.Program(e.activity, ProgramOf(*e.sub));
        if (e.sub->retriable) b.ExitWhen("RC = 0");
      }
      // Committed work surfaces in the state image as it happens.
      if (!e.state_fields.empty()) {
        wf::ProcessBuilder::FieldPairs pairs;
        for (const std::string& f : e.state_fields) pairs.emplace_back(f, f);
        b.MapToOutput(e.activity, pairs);
      }
    }

    // Rule 2: forward chaining on commit.
    for (size_t i = 0; i + 1 < elements.size(); ++i) {
      b.Connect(elements[i].activity, elements[i + 1].activity, "RC = 0");
    }

    // Rules 3 & 7: any element's abort feeds the failure trigger (an
    // all-evaluated OR join; untaken elements evaluate false by DPE).
    b.Program("_FAIL", kRc1Program).OrJoin();
    for (const Element& e : elements) {
      b.Connect(e.activity, "_FAIL", "RC <> 0");
    }
    b.MapToOutput(elements.back().activity, {{"RC", "RC"}});
    b.MapToOutput("_FAIL", {{"RC", "RC"}});

    // Internal failure path: compensate via the shared comp process, fed
    // the live state image, then zero the exported states (clean-failure
    // contract: a failed Seq leaves nothing committed).
    if (!art.state_fields.empty()) {
      b.Block("_CB", art.comp_process);
      b.Connect("_FAIL", "_CB");
      for (const Element& e : elements) {
        if (e.state_fields.empty()) continue;
        wf::ProcessBuilder::FieldPairs pairs;
        for (const std::string& f : e.state_fields) pairs.emplace_back(f, f);
        b.MapData(e.activity, "_CB", pairs);
      }
      EXO_ASSIGN_OR_RETURN(std::string zero_program,
                           ZeroProgramFor(art.state_type));
      b.Program("_CLEAR", zero_program)
          .Containers(data::TypeRegistry::kDefaultTypeName, art.state_type);
      b.Connect("_CB", "_CLEAR");
      wf::ProcessBuilder::FieldPairs zero_pairs;
      for (const std::string& f : art.state_fields) {
        zero_pairs.emplace_back(f, f);
      }
      b.MapToOutput("_CLEAR", zero_pairs);
    }

    EXO_RETURN_NOT_OK(b.Register());
    EXO_RETURN_NOT_OK(Registered(process_name));
    return art;
  }

  wf::DefinitionStore* store_;
  FlexTranslation* out_;
  int cb_counter_ = 0;
};

}  // namespace

Result<FlexTranslation> TranslateFlex(const atm::FlexSpec& spec,
                                      wf::DefinitionStore* store) {
  EXO_RETURN_NOT_OK(spec.Validate());
  EXO_RETURN_NOT_OK(EnsureSharedDefinitions(store));
  FlexTranslation out;
  out.root_process = spec.name();
  Translator t(store, &out);
  EXO_RETURN_NOT_OK(t.TranslateStep(spec.root(), spec.name()).status());
  return out;
}

}  // namespace exotica::exo
