#include "common/clock.h"

namespace exotica {

SystemClock* SystemClock::Default() {
  static SystemClock clock;
  return &clock;
}

}  // namespace exotica
