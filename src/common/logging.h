// Minimal leveled logger. Off by default in tests/benches; the engine's
// observable record is the audit trail, not the log.

#ifndef EXOTICA_COMMON_LOGGING_H_
#define EXOTICA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace exotica {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Process-wide log sink and threshold.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();
  static void Write(LogLevel level, const std::string& msg);
};

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Write(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace exotica

// The parameter must not be named `level`: the expansion calls
// Logger::level(), which the preprocessor would otherwise rewrite into
// Logger::<severity>().
#define EXO_LOG(severity)                                                 \
  if (static_cast<int>(::exotica::LogLevel::k##severity) <                \
      static_cast<int>(::exotica::Logger::level())) {                     \
  } else                                                                  \
    ::exotica::internal::LogMessage(::exotica::LogLevel::k##severity)     \
        .stream()

#endif  // EXOTICA_COMMON_LOGGING_H_
