// Clock abstraction: real time for production, manual time for tests so
// notification deadlines and timeouts are deterministic.

#ifndef EXOTICA_COMMON_CLOCK_H_
#define EXOTICA_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace exotica {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

/// \brief Source of time for the engine.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
};

/// \brief Wall-clock time.
class SystemClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance.
  static SystemClock* Default();
};

/// \brief Manually advanced clock for deterministic tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}
  Micros NowMicros() const override { return now_.load(std::memory_order_relaxed); }
  void Advance(Micros delta) { now_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(Micros t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

}  // namespace exotica

#endif  // EXOTICA_COMMON_CLOCK_H_
