// Deterministic random number generation. All stochastic behaviour in the
// library (fault injection, abort schedules, workload generators) draws from
// a seeded Rng so every experiment is reproducible.

#ifndef EXOTICA_COMMON_RNG_H_
#define EXOTICA_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace exotica {

/// \brief Seeded pseudo-random source (mt19937_64 under the hood).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> d(0.0, 1.0);
    return d(gen_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipfian-ish skewed pick in [0, n) — used by the txn workload generator.
  /// theta=0 is uniform; theta→1 is highly skewed.
  size_t Skewed(size_t n, double theta) {
    if (n <= 1) return 0;
    // Simple power-law transform concentrating mass near index 0;
    // adequate for conflict-rate sweeps.
    double u = NextDouble();
    double x = std::pow(u, 1.0 / (1.0 - theta * 0.999));
    auto idx = static_cast<size_t>(x * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace exotica

#endif  // EXOTICA_COMMON_RNG_H_
