#include "common/status.h"

namespace exotica {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kDeadlock: return "Deadlock";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kValidationError: return "ValidationError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kPending: return "Pending";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace exotica
