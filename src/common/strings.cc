#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace exotica {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string EscapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

bool UnescapeQuoted(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '\\': out->push_back('\\'); break;
      case '"': out->push_back('"'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      default: return false;
    }
  }
  return true;
}

}  // namespace exotica
