// Status: the error-handling currency of the library.
//
// Follows the Arrow/RocksDB idiom: every fallible operation returns a
// Status (or a Result<T>, see result.h); exceptions never cross library
// boundaries. A Status is cheap to copy in the OK case (no allocation).

#ifndef EXOTICA_COMMON_STATUS_H_
#define EXOTICA_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace exotica {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< caller passed something malformed
  kNotFound = 2,          ///< named entity does not exist
  kAlreadyExists = 3,     ///< unique name/id collision
  kFailedPrecondition = 4,///< operation illegal in current state
  kAborted = 5,           ///< transaction / activity aborted
  kDeadlock = 6,          ///< lock manager chose this txn as victim
  kTimeout = 7,           ///< deadline expired
  kIOError = 8,           ///< journal / log / file failure
  kCorruption = 9,        ///< on-disk or in-log data failed validation
  kParseError = 10,       ///< FDL / spec / expression syntax error
  kValidationError = 11,  ///< semantic check failed (import, well-formedness)
  kUnsupported = 12,      ///< feature intentionally not implemented
  kInternal = 13,         ///< invariant violation; a bug
  kPending = 14,          ///< async operation started; completion comes later
};

/// \brief Human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation: a code plus a message.
///
/// The OK status carries no allocation; error statuses heap-allocate their
/// state. Statuses are immutable once created.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Pending(std::string msg) {
    return Status(StatusCode::kPending, std::move(msg));
  }

  bool ok() const noexcept { return state_ == nullptr; }
  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Message of an error status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsDeadlock() const { return code() == StatusCode::kDeadlock; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsValidationError() const {
    return code() == StatusCode::kValidationError;
  }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsPending() const { return code() == StatusCode::kPending; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy with `context` prepended to the message; OK unchanged.
  Status WithContext(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps copies cheap; Status is immutable so sharing is safe.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace exotica

/// Propagates a non-OK Status to the caller.
#define EXO_RETURN_NOT_OK(expr)                    \
  do {                                             \
    ::exotica::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Propagates with added context.
#define EXO_RETURN_NOT_OK_CTX(expr, ctx)           \
  do {                                             \
    ::exotica::Status _st = (expr);                \
    if (!_st.ok()) return _st.WithContext(ctx);    \
  } while (0)

#endif  // EXOTICA_COMMON_STATUS_H_
