// Small string utilities used across the library.

#ifndef EXOTICA_COMMON_STRINGS_H_
#define EXOTICA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace exotica {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// Uppercases ASCII letters.
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII case-insensitive equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Escapes a string for embedding in a double-quoted literal
/// (used by the FDL printer and the journal codec).
std::string EscapeQuoted(std::string_view s);

/// Inverse of EscapeQuoted. Returns false on a malformed escape.
bool UnescapeQuoted(std::string_view s, std::string* out);

}  // namespace exotica

#endif  // EXOTICA_COMMON_STRINGS_H_
