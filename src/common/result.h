// Result<T>: a value or an error Status, in the Arrow style.

#ifndef EXOTICA_COMMON_RESULT_H_
#define EXOTICA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace exotica {

/// \brief Holds either a successfully-computed T or the Status explaining
/// why none could be produced.
///
/// A Result constructed from an OK status is a programming error (asserted).
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Failure. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Access the value; undefined if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace exotica

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define EXO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define EXO_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define EXO_ASSIGN_OR_RETURN_NAME(a, b) EXO_ASSIGN_OR_RETURN_CONCAT(a, b)

#define EXO_ASSIGN_OR_RETURN(lhs, rexpr) \
  EXO_ASSIGN_OR_RETURN_IMPL(             \
      EXO_ASSIGN_OR_RETURN_NAME(_exo_result_, __COUNTER__), lhs, rexpr)

#endif  // EXOTICA_COMMON_RESULT_H_
