#include "atm/subtxn.h"

namespace exotica::atm {

Status MultiDbRunner::Register(SubTxnDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("subtransaction name may not be empty");
  }
  if (defs_.count(def.name) > 0) {
    return Status::AlreadyExists("subtransaction already registered: " +
                                 def.name);
  }
  if (!multidb_->HasSite(def.site)) {
    return Status::NotFound("subtransaction " + def.name +
                            " references unknown site " + def.site);
  }
  if (!def.body) {
    return Status::InvalidArgument("subtransaction " + def.name +
                                   " has no body");
  }
  defs_.emplace(def.name, std::move(def));
  return Status::OK();
}

Result<bool> MultiDbRunner::Execute(const std::string& name,
                                    bool compensation) {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    return Status::NotFound("subtransaction not registered: " + name);
  }
  const SubTxnDef& def = it->second;
  const SubTxnBody& body = compensation ? def.compensation : def.body;
  if (!body) {
    return Status::FailedPrecondition("subtransaction " + name +
                                      " has no compensating transaction");
  }
  EXO_ASSIGN_OR_RETURN(txn::Site * site, multidb_->site(def.site));
  std::unique_ptr<txn::Transaction> t = site->Begin();
  Status st = body(*t);
  if (!st.ok()) {
    if (t->active()) (void)t->Abort();
    return false;  // logical abort
  }
  Status commit = t->Commit();
  if (commit.IsAborted() || commit.IsDeadlock() || commit.IsTimeout()) {
    return false;  // unilateral / concurrency abort
  }
  EXO_RETURN_NOT_OK(commit);
  return true;
}

Result<bool> MultiDbRunner::Run(const std::string& name) {
  return Execute(name, /*compensation=*/false);
}

Result<bool> MultiDbRunner::Compensate(const std::string& name) {
  return Execute(name, /*compensation=*/true);
}

Result<bool> ScriptedRunner::Run(const std::string& name) {
  int attempt = ++attempts_[name];
  auto it = abort_first_.find(name);
  if (it == abort_first_.end()) return true;
  if (it->second < 0) return false;          // always abort
  return attempt > it->second;               // abort the first N attempts
}

Result<bool> ScriptedRunner::Compensate(const std::string& name) {
  int attempt = ++comp_attempts_[name];
  auto it = comp_fail_first_.find(name);
  if (it == comp_fail_first_.end()) return true;
  if (it->second < 0) return false;
  return attempt > it->second;
}

}  // namespace exotica::atm
