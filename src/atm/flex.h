// Flexible transactions [ELLR90, MRSK92, ZNBB94], as described in paper
// §4.2.
//
// A flexible transaction is a partial order of typed subtransactions —
// compensatable, retriable, pivot (neither), or compensatable+retriable —
// with alternative execution paths in preference order. We model it as a
// tree:
//
//   step := Sub(name, flags)          one subtransaction
//         | Seq(step...)              run in order; a failure fails the Seq
//         | Alt(primary, fallback)    try primary; on failure, compensate
//                                     primary's committed compensatable
//                                     work, then run fallback
//
// The ZNBB94 example of the paper's Figure 3 is
//   Seq[ T1, T2, Alt( Seq[ T4, Alt( Seq[T5, T6, T8], T7 ) ], T3 ) ]
// with paths p1 = {T1,T2,T4,T5,T6,T8}, p2 = {T1,T2,T4,T7},
// p3 = {T1,T2,T3} in that preference order.
//
// Well-formedness (the MRSK92/ZNBB94 rules on this tree):
//  * once a pivot may have committed, every subsequent step in the same
//    sequence must be guaranteed to complete (retriable leaves, sequences
//    of them, or alternatives whose fallback is guaranteed);
//  * any subtransaction that can commit and later need undoing (because a
//    later sibling may still fail before a pivot) must be compensatable;
//  * a pre-pivot leaf must be compensatable or be the pivot itself.

#ifndef EXOTICA_ATM_FLEX_H_
#define EXOTICA_ATM_FLEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "atm/subtxn.h"
#include "atm/trace.h"

namespace exotica::atm {

struct FlexStep;
using FlexStepPtr = std::unique_ptr<FlexStep>;

/// \brief One node of a flexible transaction tree.
struct FlexStep {
  enum class Kind : int { kSub = 0, kSeq = 1, kAlt = 2 };

  Kind kind = Kind::kSub;

  // kSub
  std::string name;
  bool compensatable = false;
  bool retriable = false;
  /// Program names for the Exotica translation (default "<name>" and
  /// "<name>_comp").
  std::string program;
  std::string compensation_program;

  // kSeq
  std::vector<FlexStepPtr> children;

  // kAlt
  FlexStepPtr primary;
  FlexStepPtr fallback;

  /// Pivot = neither retriable nor compensatable.
  bool is_pivot() const {
    return kind == Kind::kSub && !retriable && !compensatable;
  }

  static FlexStepPtr Sub(std::string name, bool compensatable, bool retriable);
  static FlexStepPtr Pivot(std::string name) {
    return Sub(std::move(name), false, false);
  }
  static FlexStepPtr Compensatable(std::string name) {
    return Sub(std::move(name), true, false);
  }
  static FlexStepPtr Retriable(std::string name) {
    return Sub(std::move(name), false, true);
  }
  static FlexStepPtr Seq(std::vector<FlexStepPtr> children);
  static FlexStepPtr Alt(FlexStepPtr primary, FlexStepPtr fallback);

  FlexStepPtr Clone() const;

  /// True if every leaf eventually commits regardless of aborts:
  /// retriable leaves, Seqs of guaranteed steps, Alts with guaranteed
  /// fallback.
  bool Guaranteed() const;

  /// True if a pivot may commit somewhere inside.
  bool HasPivot() const;

  /// True if every leaf inside is compensatable.
  bool AllCompensatable() const;

  /// Leaves in left-to-right order.
  void CollectSubs(std::vector<const FlexStep*>* out) const;

  /// Debug form, e.g. "Seq[T1, T2, Alt(Seq[T4, ...], T3)]".
  std::string ToString() const;
};

/// \brief A named flexible transaction.
class FlexSpec {
 public:
  FlexSpec(std::string name, FlexStepPtr root)
      : name_(std::move(name)), root_(std::move(root)) {}

  const std::string& name() const { return name_; }
  const FlexStep& root() const { return *root_; }

  /// Structural checks (root present, unique non-empty leaf names) plus
  /// the well-formedness rules above. A spec that fails these can strand
  /// committed, uncompensatable work — exactly what the model forbids.
  Status Validate() const;

  /// All leaves, left-to-right.
  std::vector<const FlexStep*> Subs() const;

 private:
  Status CheckStep(const FlexStep& step, bool pivot_before) const;

  std::string name_;
  FlexStepPtr root_;
};

/// \brief Outcome of a flexible transaction execution.
struct FlexOutcome {
  bool committed = false;
  /// Leaves whose effects are in place at the end (committed and not
  /// compensated), in commit order — on success this is the committed
  /// path actually taken.
  std::vector<std::string> effective;
  Trace trace;
};

/// \brief Native flexible-transaction executor (the baseline).
///
/// Deterministic tree walk: Seq children run in order; an Alt runs its
/// primary and, if the primary fails, compensates the primary's committed
/// compensatable subtransactions (in reverse commit order, retrying each
/// compensation until it succeeds) and runs the fallback. Retriable
/// subtransactions are re-run until they commit. A failure that escapes
/// the root compensates everything and reports an aborted transaction.
class FlexExecutor {
 public:
  struct Options {
    int max_retriable_retries = 1000;     ///< 0 = unlimited
    int max_compensation_retries = 1000;  ///< 0 = unlimited
  };

  explicit FlexExecutor(SubTxnRunner* runner) : runner_(runner) {}
  FlexExecutor(SubTxnRunner* runner, Options options)
      : runner_(runner), options_(options) {}

  Result<FlexOutcome> Execute(const FlexSpec& spec);

 private:
  struct Committed {
    const FlexStep* sub;
  };

  /// Runs `step`; true = completed. On false, every committed
  /// compensatable sub the step left behind is still on the stack for the
  /// enclosing Alt (or the root) to compensate.
  Result<bool> Exec(const FlexStep& step, FlexOutcome* outcome,
                    std::vector<const FlexStep*>* comp_stack);

  Status CompensateDownTo(size_t mark, FlexOutcome* outcome,
                          std::vector<const FlexStep*>* comp_stack);

  SubTxnRunner* runner_;
  Options options_;
};

/// \brief Builds the paper's Figure-3 flexible transaction (the ZNBB94
/// example): Seq[T1, T2, Alt(Seq[T4, Alt(Seq[T5,T6,T8], T7)], T3)].
FlexSpec MakeFigure3Spec();

}  // namespace exotica::atm

#endif  // EXOTICA_ATM_FLEX_H_
