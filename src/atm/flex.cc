#include "atm/flex.h"

#include <set>

namespace exotica::atm {

FlexStepPtr FlexStep::Sub(std::string name, bool compensatable,
                          bool retriable) {
  auto s = std::make_unique<FlexStep>();
  s->kind = Kind::kSub;
  s->name = std::move(name);
  s->compensatable = compensatable;
  s->retriable = retriable;
  return s;
}

FlexStepPtr FlexStep::Seq(std::vector<FlexStepPtr> children) {
  auto s = std::make_unique<FlexStep>();
  s->kind = Kind::kSeq;
  s->children = std::move(children);
  return s;
}

FlexStepPtr FlexStep::Alt(FlexStepPtr primary, FlexStepPtr fallback) {
  auto s = std::make_unique<FlexStep>();
  s->kind = Kind::kAlt;
  s->primary = std::move(primary);
  s->fallback = std::move(fallback);
  return s;
}

FlexStepPtr FlexStep::Clone() const {
  auto s = std::make_unique<FlexStep>();
  s->kind = kind;
  s->name = name;
  s->compensatable = compensatable;
  s->retriable = retriable;
  s->program = program;
  s->compensation_program = compensation_program;
  for (const FlexStepPtr& c : children) s->children.push_back(c->Clone());
  if (primary) s->primary = primary->Clone();
  if (fallback) s->fallback = fallback->Clone();
  return s;
}

bool FlexStep::Guaranteed() const {
  switch (kind) {
    case Kind::kSub:
      return retriable;
    case Kind::kSeq:
      for (const FlexStepPtr& c : children) {
        if (!c->Guaranteed()) return false;
      }
      return true;
    case Kind::kAlt:
      return fallback->Guaranteed();
  }
  return false;
}

bool FlexStep::HasPivot() const {
  switch (kind) {
    case Kind::kSub:
      return is_pivot();
    case Kind::kSeq:
      for (const FlexStepPtr& c : children) {
        if (c->HasPivot()) return true;
      }
      return false;
    case Kind::kAlt:
      return primary->HasPivot() || fallback->HasPivot();
  }
  return false;
}

bool FlexStep::AllCompensatable() const {
  switch (kind) {
    case Kind::kSub:
      return compensatable;
    case Kind::kSeq:
      for (const FlexStepPtr& c : children) {
        if (!c->AllCompensatable()) return false;
      }
      return true;
    case Kind::kAlt:
      return primary->AllCompensatable() && fallback->AllCompensatable();
  }
  return false;
}

void FlexStep::CollectSubs(std::vector<const FlexStep*>* out) const {
  switch (kind) {
    case Kind::kSub:
      out->push_back(this);
      return;
    case Kind::kSeq:
      for (const FlexStepPtr& c : children) c->CollectSubs(out);
      return;
    case Kind::kAlt:
      primary->CollectSubs(out);
      fallback->CollectSubs(out);
      return;
  }
}

std::string FlexStep::ToString() const {
  switch (kind) {
    case Kind::kSub: {
      std::string flags;
      if (compensatable) flags += "c";
      if (retriable) flags += "r";
      if (is_pivot()) flags = "p";
      return name + "(" + flags + ")";
    }
    case Kind::kSeq: {
      std::string out = "Seq[";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + "]";
    }
    case Kind::kAlt:
      return "Alt(" + primary->ToString() + ", " + fallback->ToString() + ")";
  }
  return "?";
}

std::vector<const FlexStep*> FlexSpec::Subs() const {
  std::vector<const FlexStep*> out;
  root_->CollectSubs(&out);
  return out;
}

Status FlexSpec::Validate() const {
  if (root_ == nullptr) {
    return Status::ValidationError("flexible transaction " + name_ +
                                   " has no root step");
  }
  std::vector<const FlexStep*> subs = Subs();
  if (subs.empty()) {
    return Status::ValidationError("flexible transaction " + name_ +
                                   " has no subtransactions");
  }
  std::set<std::string> names;
  for (const FlexStep* s : subs) {
    if (s->name.empty()) {
      return Status::ValidationError("flexible transaction " + name_ +
                                     " has an unnamed subtransaction");
    }
    if (!names.insert(s->name).second) {
      return Status::ValidationError("flexible transaction " + name_ +
                                     " has duplicate subtransaction " +
                                     s->name);
    }
  }
  return CheckStep(*root_, /*pivot_before=*/false);
}

Status FlexSpec::CheckStep(const FlexStep& step, bool pivot_before) const {
  switch (step.kind) {
    case FlexStep::Kind::kSub: {
      if (pivot_before && !step.retriable) {
        return Status::ValidationError(
            "subtransaction " + step.name +
            " follows a committed pivot but is not retriable; completion "
            "cannot be guaranteed");
      }
      if (!pivot_before && !step.compensatable && !step.is_pivot() &&
          step.retriable) {
        // Retriable-only leaf before the pivot: it will commit, cannot be
        // undone, and does not end the abort window. Tolerated only when
        // nothing after it can fail — checked by the enclosing Seq rule —
        // so nothing to do here.
      }
      return Status::OK();
    }
    case FlexStep::Kind::kSeq: {
      // Precompute the pivot flag at each child's start.
      std::vector<bool> pivot_at(step.children.size(), pivot_before);
      bool p = pivot_before;
      for (size_t i = 0; i < step.children.size(); ++i) {
        pivot_at[i] = p;
        p = p || step.children[i]->HasPivot();
      }
      // Last pre-pivot child that can fail: everything before it must be
      // fully compensatable (a failure there rolls the transaction back).
      ssize_t last_failable = -1;
      for (size_t i = 0; i < step.children.size(); ++i) {
        if (!pivot_at[i] && !step.children[i]->Guaranteed()) {
          last_failable = static_cast<ssize_t>(i);
        }
      }
      for (ssize_t i = 0; i < last_failable; ++i) {
        const FlexStep& c = *step.children[static_cast<size_t>(i)];
        if (!c.AllCompensatable() && !c.HasPivot()) {
          return Status::ValidationError(
              "step " + c.ToString() +
              " commits non-compensatable work while later steps can still "
              "fail before the pivot");
        }
      }
      for (size_t i = 0; i < step.children.size(); ++i) {
        const FlexStep& c = *step.children[i];
        if (pivot_at[i] && !c.Guaranteed()) {
          return Status::ValidationError(
              "step " + c.ToString() +
              " follows a committed pivot but is not guaranteed to complete");
        }
        EXO_RETURN_NOT_OK(CheckStep(c, pivot_at[i]));
      }
      return Status::OK();
    }
    case FlexStep::Kind::kAlt: {
      if (pivot_before && !step.fallback->Guaranteed()) {
        return Status::ValidationError(
            "alternative " + step.ToString() +
            " follows a committed pivot but its fallback is not guaranteed");
      }
      // Inside an alternative, failures are absorbed by the fallback, so
      // both branches restart the pivot bookkeeping.
      EXO_RETURN_NOT_OK(CheckStep(*step.primary, /*pivot_before=*/false));
      return CheckStep(*step.fallback, /*pivot_before=*/false);
    }
  }
  return Status::Internal("unreachable flex step kind");
}

Result<FlexOutcome> FlexExecutor::Execute(const FlexSpec& spec) {
  EXO_RETURN_NOT_OK(spec.Validate());
  FlexOutcome outcome;
  std::vector<const FlexStep*> comp_stack;
  EXO_ASSIGN_OR_RETURN(bool ok, Exec(spec.root(), &outcome, &comp_stack));
  if (!ok) {
    // Global abort: undo everything that committed.
    EXO_RETURN_NOT_OK(CompensateDownTo(0, &outcome, &comp_stack));
    outcome.committed = false;
    outcome.effective.clear();
    return outcome;
  }
  outcome.committed = true;
  return outcome;
}

Result<bool> FlexExecutor::Exec(const FlexStep& step, FlexOutcome* outcome,
                                std::vector<const FlexStep*>* comp_stack) {
  switch (step.kind) {
    case FlexStep::Kind::kSub: {
      int attempts = 0;
      while (true) {
        EXO_ASSIGN_OR_RETURN(bool committed, runner_->Run(step.name));
        ++attempts;
        if (committed) {
          outcome->trace.push_back({step.name, TraceAction::kCommitted});
          outcome->effective.push_back(step.name);
          if (step.compensatable) comp_stack->push_back(&step);
          return true;
        }
        outcome->trace.push_back({step.name, TraceAction::kAborted});
        if (!step.retriable) return false;
        if (options_.max_retriable_retries > 0 &&
            attempts >= options_.max_retriable_retries) {
          return Status::FailedPrecondition(
              "retriable subtransaction " + step.name + " aborted " +
              std::to_string(attempts) + " times");
        }
        outcome->trace.push_back({step.name, TraceAction::kRetried});
      }
    }
    case FlexStep::Kind::kSeq: {
      for (const FlexStepPtr& c : step.children) {
        EXO_ASSIGN_OR_RETURN(bool ok, Exec(*c, outcome, comp_stack));
        if (!ok) return false;
      }
      return true;
    }
    case FlexStep::Kind::kAlt: {
      size_t mark = comp_stack->size();
      EXO_ASSIGN_OR_RETURN(bool ok, Exec(*step.primary, outcome, comp_stack));
      if (ok) return true;
      EXO_RETURN_NOT_OK(CompensateDownTo(mark, outcome, comp_stack));
      return Exec(*step.fallback, outcome, comp_stack);
    }
  }
  return Status::Internal("unreachable flex step kind");
}

Status FlexExecutor::CompensateDownTo(size_t mark, FlexOutcome* outcome,
                                      std::vector<const FlexStep*>* comp_stack) {
  while (comp_stack->size() > mark) {
    const FlexStep* sub = comp_stack->back();
    int attempts = 0;
    while (true) {
      EXO_ASSIGN_OR_RETURN(bool done, runner_->Compensate(sub->name));
      ++attempts;
      if (done) break;
      outcome->trace.push_back({sub->name, TraceAction::kCompensationFailed});
      if (options_.max_compensation_retries > 0 &&
          attempts >= options_.max_compensation_retries) {
        return Status::FailedPrecondition(
            "compensation of " + sub->name + " failed " +
            std::to_string(attempts) + " times");
      }
    }
    outcome->trace.push_back({sub->name, TraceAction::kCompensated});
    // The sub's effects are gone: drop it from the effective set.
    for (auto it = outcome->effective.rbegin(); it != outcome->effective.rend();
         ++it) {
      if (*it == sub->name) {
        outcome->effective.erase(std::next(it).base());
        break;
      }
    }
    comp_stack->pop_back();
  }
  return Status::OK();
}

FlexSpec MakeFigure3Spec() {
  using S = FlexStep;
  std::vector<FlexStepPtr> p1_members;
  p1_members.push_back(S::Compensatable("T5"));
  p1_members.push_back(S::Compensatable("T6"));
  p1_members.push_back(S::Pivot("T8"));

  std::vector<FlexStepPtr> inner_seq;
  inner_seq.push_back(S::Pivot("T4"));
  inner_seq.push_back(S::Alt(S::Seq(std::move(p1_members)), S::Retriable("T7")));

  std::vector<FlexStepPtr> top;
  top.push_back(S::Compensatable("T1"));
  top.push_back(S::Pivot("T2"));
  top.push_back(S::Alt(S::Seq(std::move(inner_seq)), S::Retriable("T3")));

  return FlexSpec("Figure3", S::Seq(std::move(top)));
}

}  // namespace exotica::atm
