// Sagas [GMS87], as described in paper §4.1.
//
// A linear saga is a sequence of subtransactions T1..Tn with compensating
// transactions C1..Cn and the guarantee that either T1..Tn executes, or
// T1..Tj; Cj..C1 for some 0 <= j < n. The generalized form (parallel
// sagas) replaces the sequence with a partial order; the guarantee
// compensates, in reverse completion order, exactly the committed steps.

#ifndef EXOTICA_ATM_SAGA_H_
#define EXOTICA_ATM_SAGA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "atm/subtxn.h"
#include "atm/trace.h"

namespace exotica::atm {

/// \brief One step of a saga.
struct SagaStep {
  std::string name;  ///< subtransaction name (T1, ReserveFlight, ...)
  /// Steps that must commit before this one starts. Empty predecessors on
  /// every step except chains yields the classic linear saga.
  std::vector<std::string> predecessors;

  /// Program names used by the Exotica translation (default to
  /// "<name>" and "<name>_comp" when empty).
  std::string program;
  std::string compensation_program;
};

/// \brief Declarative saga specification.
class SagaSpec {
 public:
  explicit SagaSpec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<SagaStep>& steps() const { return steps_; }

  /// Appends a step (linear: implicit predecessor = previous step).
  SagaSpec& Then(const std::string& step_name);

  /// Appends a step with explicit predecessors (parallel/generalized).
  SagaSpec& Step(const std::string& step_name,
                 std::vector<std::string> predecessors);

  /// Overrides program names of the most recent step.
  SagaSpec& WithPrograms(const std::string& program,
                         const std::string& compensation_program);

  /// Effective program name of a step.
  static std::string ProgramOf(const SagaStep& step);
  static std::string CompensationProgramOf(const SagaStep& step);

  /// Checks: at least one step, unique names, predecessors resolve,
  /// acyclic.
  Status Validate() const;

  /// True when the spec is a single chain (the classic linear saga).
  bool IsLinear() const;

  /// Step names in a topological order (declaration order preserved for
  /// independent steps). Requires Validate() to pass.
  Result<std::vector<std::string>> TopologicalOrder() const;

 private:
  std::string name_;
  std::vector<SagaStep> steps_;
};

/// \brief Outcome of a saga execution.
struct SagaOutcome {
  bool committed = false;        ///< the whole saga committed
  std::vector<std::string> executed;     ///< committed steps, commit order
  std::vector<std::string> compensated;  ///< compensated steps, comp order
  Trace trace;
};

/// \brief Native saga executor — the baseline the workflow implementation
/// is compared against. Deterministic: steps run sequentially in
/// topological order; on a step abort, committed steps are compensated in
/// reverse commit order, each compensation retried until it succeeds
/// (compensations are treated as retriable, per the paper's appendix).
class SagaExecutor {
 public:
  struct Options {
    /// Compensation retry cap (0 = unlimited). The saga guarantee needs
    /// compensations to eventually succeed; the cap converts a hopeless
    /// compensation into an error instead of a hang.
    int max_compensation_retries = 1000;
  };

  explicit SagaExecutor(SubTxnRunner* runner) : runner_(runner) {}
  SagaExecutor(SubTxnRunner* runner, Options options)
      : runner_(runner), options_(options) {}

  Result<SagaOutcome> Execute(const SagaSpec& spec);

 private:
  SubTxnRunner* runner_;
  Options options_;
};

}  // namespace exotica::atm

#endif  // EXOTICA_ATM_SAGA_H_
