#include "atm/trace.h"

namespace exotica::atm {

const char* TraceActionName(TraceAction action) {
  switch (action) {
    case TraceAction::kCommitted: return "committed";
    case TraceAction::kAborted: return "aborted";
    case TraceAction::kRetried: return "retried";
    case TraceAction::kCompensated: return "compensated";
    case TraceAction::kCompensationFailed: return "compensation-failed";
  }
  return "?";
}

std::string TraceEvent::Compact() const {
  return subtxn + ":" + TraceActionName(action);
}

std::vector<std::string> CompactTrace(const Trace& trace) {
  std::vector<std::string> out;
  out.reserve(trace.size());
  for (const TraceEvent& e : trace) out.push_back(e.Compact());
  return out;
}

std::vector<std::string> Select(const Trace& trace, TraceAction action) {
  std::vector<std::string> out;
  for (const TraceEvent& e : trace) {
    if (e.action == action) out.push_back(e.subtxn);
  }
  return out;
}

}  // namespace exotica::atm
