// Execution traces for transaction models. The appendix of the paper is a
// pair of narrated traces; tests compare native-executor and
// workflow-implemented runs through this common format.

#ifndef EXOTICA_ATM_TRACE_H_
#define EXOTICA_ATM_TRACE_H_

#include <string>
#include <vector>

namespace exotica::atm {

enum class TraceAction : int {
  kCommitted = 0,
  kAborted = 1,
  kRetried = 2,
  kCompensated = 3,
  kCompensationFailed = 4,
};

const char* TraceActionName(TraceAction action);

struct TraceEvent {
  std::string subtxn;
  TraceAction action;

  /// "T1:committed", "T4:aborted", "T5:compensated", ...
  std::string Compact() const;

  bool operator==(const TraceEvent& o) const {
    return subtxn == o.subtxn && action == o.action;
  }
};

using Trace = std::vector<TraceEvent>;

/// Compact strings of a whole trace.
std::vector<std::string> CompactTrace(const Trace& trace);

/// The subset of the trace with the given action, preserving order.
std::vector<std::string> Select(const Trace& trace, TraceAction action);

}  // namespace exotica::atm

#endif  // EXOTICA_ATM_TRACE_H_
