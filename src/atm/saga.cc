#include "atm/saga.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace exotica::atm {

SagaSpec& SagaSpec::Then(const std::string& step_name) {
  SagaStep step;
  step.name = step_name;
  if (!steps_.empty()) step.predecessors.push_back(steps_.back().name);
  steps_.push_back(std::move(step));
  return *this;
}

SagaSpec& SagaSpec::Step(const std::string& step_name,
                         std::vector<std::string> predecessors) {
  SagaStep step;
  step.name = step_name;
  step.predecessors = std::move(predecessors);
  steps_.push_back(std::move(step));
  return *this;
}

SagaSpec& SagaSpec::WithPrograms(const std::string& program,
                                 const std::string& compensation_program) {
  if (!steps_.empty()) {
    steps_.back().program = program;
    steps_.back().compensation_program = compensation_program;
  }
  return *this;
}

std::string SagaSpec::ProgramOf(const SagaStep& step) {
  return step.program.empty() ? step.name : step.program;
}

std::string SagaSpec::CompensationProgramOf(const SagaStep& step) {
  return step.compensation_program.empty() ? step.name + "_comp"
                                           : step.compensation_program;
}

Status SagaSpec::Validate() const {
  if (steps_.empty()) {
    return Status::ValidationError("saga " + name_ + " has no steps");
  }
  std::set<std::string> names;
  for (const SagaStep& s : steps_) {
    if (s.name.empty()) {
      return Status::ValidationError("saga " + name_ + " has an unnamed step");
    }
    if (!names.insert(s.name).second) {
      return Status::ValidationError("saga " + name_ +
                                     " has duplicate step " + s.name);
    }
  }
  for (const SagaStep& s : steps_) {
    for (const std::string& p : s.predecessors) {
      if (names.count(p) == 0) {
        return Status::ValidationError("saga step " + s.name +
                                       " references unknown predecessor " + p);
      }
      if (p == s.name) {
        return Status::ValidationError("saga step " + s.name +
                                       " is its own predecessor");
      }
    }
  }
  return TopologicalOrder().status();
}

bool SagaSpec::IsLinear() const {
  for (size_t i = 0; i < steps_.size(); ++i) {
    const SagaStep& s = steps_[i];
    if (i == 0) {
      if (!s.predecessors.empty()) return false;
    } else {
      if (s.predecessors.size() != 1 ||
          s.predecessors[0] != steps_[i - 1].name) {
        return false;
      }
    }
  }
  return !steps_.empty();
}

Result<std::vector<std::string>> SagaSpec::TopologicalOrder() const {
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> successors;
  for (const SagaStep& s : steps_) indegree[s.name] = 0;
  for (const SagaStep& s : steps_) {
    for (const std::string& p : s.predecessors) {
      successors[p].push_back(s.name);
      ++indegree[s.name];
    }
  }
  std::deque<std::string> frontier;
  for (const SagaStep& s : steps_) {
    if (indegree[s.name] == 0) frontier.push_back(s.name);
  }
  std::vector<std::string> order;
  while (!frontier.empty()) {
    std::string n = frontier.front();
    frontier.pop_front();
    order.push_back(n);
    for (const std::string& m : successors[n]) {
      if (--indegree[m] == 0) frontier.push_back(m);
    }
  }
  if (order.size() != steps_.size()) {
    return Status::ValidationError("saga " + name_ +
                                   " has a cycle in its step order");
  }
  return order;
}

Result<SagaOutcome> SagaExecutor::Execute(const SagaSpec& spec) {
  EXO_RETURN_NOT_OK(spec.Validate());
  EXO_ASSIGN_OR_RETURN(std::vector<std::string> order, spec.TopologicalOrder());

  SagaOutcome outcome;
  bool failed = false;

  for (const std::string& name : order) {
    EXO_ASSIGN_OR_RETURN(bool committed, runner_->Run(name));
    if (committed) {
      outcome.trace.push_back({name, TraceAction::kCommitted});
      outcome.executed.push_back(name);
    } else {
      outcome.trace.push_back({name, TraceAction::kAborted});
      failed = true;
      break;  // remaining steps never start
    }
  }

  if (!failed) {
    outcome.committed = true;
    return outcome;
  }

  // Compensate committed steps in reverse commit order; each compensation
  // is retried until it succeeds.
  for (auto it = outcome.executed.rbegin(); it != outcome.executed.rend();
       ++it) {
    int attempts = 0;
    while (true) {
      EXO_ASSIGN_OR_RETURN(bool done, runner_->Compensate(*it));
      ++attempts;
      if (done) break;
      outcome.trace.push_back({*it, TraceAction::kCompensationFailed});
      if (options_.max_compensation_retries > 0 &&
          attempts >= options_.max_compensation_retries) {
        return Status::FailedPrecondition(
            "compensation of " + *it + " in saga " + spec.name() +
            " failed " + std::to_string(attempts) + " times");
      }
    }
    outcome.trace.push_back({*it, TraceAction::kCompensated});
    outcome.compensated.push_back(*it);
  }
  outcome.committed = false;
  return outcome;
}

}  // namespace exotica::atm
