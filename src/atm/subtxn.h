// Subtransaction bindings: the bridge between transaction-model
// specifications (named subtransactions) and the multidatabase substrate
// (ACID transactions against autonomous sites).

#ifndef EXOTICA_ATM_SUBTXN_H_
#define EXOTICA_ATM_SUBTXN_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "txn/multidb.h"

namespace exotica::atm {

/// \brief Body of a subtransaction: reads/writes through the handle. An OK
/// return asks the executor to commit; an error return aborts. The commit
/// itself can still fail unilaterally (the site says no).
using SubTxnBody = std::function<Status(txn::Transaction&)>;

/// \brief A named subtransaction: which site it runs on, its body, and the
/// body of its compensating transaction (empty for non-compensatable).
struct SubTxnDef {
  std::string name;
  std::string site;
  SubTxnBody body;
  SubTxnBody compensation;
};

/// \brief Abstract runner: executors ask it to run and compensate named
/// subtransactions. Tests plug in scripted runners with deterministic
/// abort schedules; production code uses MultiDbRunner.
class SubTxnRunner {
 public:
  virtual ~SubTxnRunner() = default;

  /// Runs the subtransaction once. true = committed, false = aborted.
  /// Error Status only for infrastructure faults (unknown name/site).
  virtual Result<bool> Run(const std::string& name) = 0;

  /// Runs the compensating transaction once. true = committed.
  virtual Result<bool> Compensate(const std::string& name) = 0;
};

/// \brief Runner over a MultiDatabase and a set of SubTxnDefs.
class MultiDbRunner : public SubTxnRunner {
 public:
  explicit MultiDbRunner(txn::MultiDatabase* multidb) : multidb_(multidb) {}

  Status Register(SubTxnDef def);
  bool Has(const std::string& name) const { return defs_.count(name) > 0; }

  Result<bool> Run(const std::string& name) override;
  Result<bool> Compensate(const std::string& name) override;

 private:
  Result<bool> Execute(const std::string& name, bool compensation);

  txn::MultiDatabase* multidb_;
  std::map<std::string, SubTxnDef> defs_;
};

/// \brief Scripted runner for deterministic tests: each subtransaction
/// aborts on the attempts listed for it and commits otherwise.
class ScriptedRunner : public SubTxnRunner {
 public:
  /// `name` aborts on its first `abort_count` attempts.
  void AbortFirst(const std::string& name, int abort_count) {
    abort_first_[name] = abort_count;
  }
  /// `name` aborts on every attempt.
  void AlwaysAbort(const std::string& name) { abort_first_[name] = -1; }
  /// Compensation of `name` fails on its first `fail_count` attempts.
  void FailCompensationFirst(const std::string& name, int fail_count) {
    comp_fail_first_[name] = fail_count;
  }

  Result<bool> Run(const std::string& name) override;
  Result<bool> Compensate(const std::string& name) override;

  int attempts(const std::string& name) const {
    auto it = attempts_.find(name);
    return it == attempts_.end() ? 0 : it->second;
  }
  int compensation_attempts(const std::string& name) const {
    auto it = comp_attempts_.find(name);
    return it == comp_attempts_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, int> abort_first_;   // -1 = always abort
  std::map<std::string, int> comp_fail_first_;
  std::map<std::string, int> attempts_;
  std::map<std::string, int> comp_attempts_;
};

}  // namespace exotica::atm

#endif  // EXOTICA_ATM_SUBTXN_H_
