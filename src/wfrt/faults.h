// Deterministic program-fault injection (the engine-side half of the
// fault plane; FaultyJournal in wfjournal/ is the storage-side half).
//
// A FaultPlan decides, for every (instance, activity, attempt) triple,
// whether the program invocation crashes transiently, fails permanently,
// or runs slow. Decisions come from either an exact schedule (CrashAt /
// SlowAt — the torture harness enumerates these) or per-activity
// probability profiles hashed off a seed. Both are pure functions of the
// triple: the same run, and a recovery replaying into the same attempt
// numbers, see the same faults — no hidden Rng stream whose position
// depends on scheduling order.
//
// Instrument() wraps every binding in a ProgramRegistry so faults apply
// underneath the engine without the engine knowing; the injected crash
// Statuses are the ones RetryPolicy::DefaultIsPermanent classifies as
// transient (Internal) and permanent (Unsupported).

#ifndef EXOTICA_WFRT_FAULTS_H_
#define EXOTICA_WFRT_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/clock.h"
#include "common/status.h"
#include "wfrt/program.h"

namespace exotica::wfrt {

enum class FaultKind : int {
  kNone = 0,
  kTransient = 1,  ///< program crashes; the retry policy may re-run it
  kPermanent = 2,  ///< program fails permanently; instance is quarantined
  kSlow = 3,       ///< attempt is delayed, then runs normally
};

const char* FaultKindName(FaultKind kind);

/// \brief Per-activity fault probabilities for the hashed (seeded) mode.
struct FaultProfile {
  double transient_probability = 0.0;
  double permanent_probability = 0.0;
  double slow_probability = 0.0;
  Micros slow_micros = 0;  ///< delay when a slow fault fires
};

/// \brief A deterministic schedule of program faults.
///
/// Thread-safe once configured: engines in a fleet may share one plan
/// (configure before the batch starts; Decide only reads).
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 42) : seed_(seed) {}

  // --- exact schedule (torture-harness mode) --------------------------------

  /// The program of `activity` fails at exactly its `attempt`-th run
  /// (1-based, any instance) with `kind`.
  void CrashAt(const std::string& activity, int attempt,
               FaultKind kind = FaultKind::kTransient);

  /// The `attempt`-th run of `activity` is delayed by `delay` first.
  void SlowAt(const std::string& activity, int attempt, Micros delay);

  // --- probabilistic schedule -----------------------------------------------

  void SetProfile(const std::string& activity, FaultProfile profile);
  void SetDefaultProfile(FaultProfile profile);

  // --- decisions ------------------------------------------------------------

  struct Decision {
    FaultKind kind = FaultKind::kNone;
    Micros delay_micros = 0;
  };

  /// The fault (if any) for this invocation. Exact schedule entries win
  /// over profiles. Pure in (seed, instance, activity, attempt).
  Decision Decide(const std::string& instance, const std::string& activity,
                  int attempt) const;

  /// Wraps every program currently bound in `programs` with a
  /// fault-consulting decorator. The plan must outlive the registry's use.
  Status Instrument(ProgramRegistry* programs);

  /// Hook for kSlow delays (advance a ManualClock, sleep, ...); null =
  /// the delay is decided but not acted on.
  void set_on_delay(std::function<void(Micros)> fn) {
    on_delay_ = std::move(fn);
  }

  /// Faults injected so far (transient + permanent + slow).
  uint64_t injected() const { return injected_.load(); }

 private:
  uint64_t seed_;
  std::map<std::pair<std::string, int>, Decision> schedule_;
  std::map<std::string, FaultProfile> profiles_;
  FaultProfile default_profile_;
  bool has_default_profile_ = false;
  std::function<void(Micros)> on_delay_;
  mutable std::atomic<uint64_t> injected_{0};
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_FAULTS_H_
