#include "wfrt/arena.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "wf/process.h"

namespace exotica::wfrt {

Result<InstanceArena> InstanceArena::Build(
    const wf::ProcessDefinition& definition, const data::TypeRegistry& types) {
  // Containers of the same type must share one Layout object: every
  // instance spun up from this arena bumps the layout refcounts of all
  // its containers, and one hot, shared layout beats forty cold ones.
  std::unordered_map<std::string, data::Container> protos;
  auto make = [&](const std::string& type) -> Result<data::Container> {
    auto it = protos.find(type);
    if (it == protos.end()) {
      EXO_ASSIGN_OR_RETURN(data::Container proto,
                           data::Container::Create(types, type));
      it = protos.emplace(type, std::move(proto)).first;
    }
    return it->second;
  };

  InstanceArena arena;
  EXO_ASSIGN_OR_RETURN(arena.input_, make(definition.input_type()));
  EXO_ASSIGN_OR_RETURN(arena.output_, make(definition.output_type()));

  const wf::NavigationPlan& plan = definition.plan();
  const std::vector<wf::Activity>& acts = definition.activities();
  uint32_t n = plan.activity_count();
  arena.activities_.resize(n);
  for (uint32_t aid = 0; aid < n; ++aid) {
    ActivityRuntime& rt = arena.activities_[aid];
    EXO_ASSIGN_OR_RETURN(rt.input, make(acts[aid].input_type));
    EXO_ASSIGN_OR_RETURN(rt.output, make(acts[aid].output_type));
  }

  // Preformat the packed hot block: all planes zero (kWaiting states, no
  // enqueued bits, attempt/failures 0) except the connector-eval planes,
  // which start at -1 (not yet evaluated).
  const wf::HotLayout& hl = plan.hot();
  arena.hot_.assign(hl.size, 0);
  std::fill(arena.hot_.begin() + hl.in_eval_base,
            arena.hot_.begin() + hl.in_eval_base + plan.in_eval_total(),
            static_cast<uint8_t>(-1));
  std::fill(arena.hot_.begin() + hl.out_eval_base,
            arena.hot_.begin() + hl.out_eval_base + plan.out_eval_total(),
            static_cast<uint8_t>(-1));
  return arena;
}

}  // namespace exotica::wfrt
