// Audit trail: the engine's observable execution record (paper §3.3 lists
// monitoring/accounting among the workflow features transaction models
// lack). Tests verify the paper's appendix traces against this trail.

#ifndef EXOTICA_WFRT_AUDIT_H_
#define EXOTICA_WFRT_AUDIT_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace exotica::wfrt {

enum class AuditKind : int {
  kInstanceStarted,
  kActivityReady,
  kActivityStarted,
  kActivityFinished,
  kActivityTerminated,
  kActivityRescheduled,
  kActivityDead,
  kConnectorTrue,
  kConnectorFalse,
  kProgramFailure,
  kInstanceFinished,
  kWorkItemPosted,
  kWorkItemCancelled,
  kForcedFinish,
  kRecoveryResumed,
  kActivityPending,
  kRetryBackoff,       ///< crash retry delayed; detail = wait in micros
  kPermanentFailure,   ///< program error classified permanent (no retry)
  kInstanceFailed,     ///< instance quarantined; detail = reason
  kInstanceDetached,   ///< instance migrated away; detail = family size
  kInstanceAdopted,    ///< instance migrated in; detail = family size
  kCheckpoint,         ///< snapshot written; detail = live/truncated counts
};

const char* AuditKindName(AuditKind kind);

struct AuditEvent {
  Micros at = 0;
  AuditKind kind;
  std::string instance;
  std::string activity;  ///< or connector source
  std::string detail;    ///< connector target, attempt, etc.

  /// Compact form, e.g. "T1:started", "T1->T2:false", "saga:finished".
  std::string Compact() const;
};

/// \brief Append-only event list, optionally bounded.
///
/// With a bound set, the trail behaves as a ring over the most recent
/// events: it retains at least `max_events` and at most twice that, with
/// the oldest half dropped in one amortized erase — long fleet runs keep
/// constant memory without paying a per-event shift.
class AuditTrail {
 public:
  void Add(AuditEvent event) {
    events_.push_back(std::move(event));
    if (max_events_ > 0 && events_.size() >= 2 * max_events_) {
      events_.erase(events_.begin(),
                    events_.end() - static_cast<ptrdiff_t>(max_events_));
    }
  }
  const std::vector<AuditEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Bounds retained events as described above; 0 (default) = unbounded.
  /// Accounting queries see only retained events.
  void set_max_events(size_t n) { max_events_ = n; }
  size_t max_events() const { return max_events_; }

  /// Compact strings for one instance, in order. `kinds` empty = all kinds.
  std::vector<std::string> CompactTrace(
      const std::string& instance,
      const std::vector<AuditKind>& kinds = {}) const;

  // --- accounting queries (paper §3.3: monitoring / accounting) -------------

  /// Per-activity accounting for one instance.
  struct ActivitySummary {
    int executions = 0;        ///< started events
    int reschedules = 0;
    Micros active_micros = 0;  ///< sum of started→finished spans
    Micros first_ready = -1;
    Micros settled_at = -1;    ///< terminated / dead timestamp
  };

  /// Summaries keyed by activity name. NotFound if the instance never
  /// appears in the trail.
  Result<std::map<std::string, ActivitySummary>> Summarize(
      const std::string& instance) const;

  /// Wall-clock from instance start to finish. FailedPrecondition if the
  /// instance has not finished (in this trail).
  Result<Micros> InstanceMakespan(const std::string& instance) const;

 private:
  std::vector<AuditEvent> events_;
  size_t max_events_ = 0;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_AUDIT_H_
