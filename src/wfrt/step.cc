// Engine::RunStepProgram: the fused outgoing-sweep dispatch loop.
//
// The interpreted sweep (Engine::EvaluateOutgoing's legacy body) walks an
// activity's adjacency list twice, re-discovering each connector's kind —
// otherwise? trivial? VM-compiled? — on every navigation step. The plan
// already knows all of it, so NavigationPlan::Compile fuses each
// activity's whole sweep into one straight-line wf::StepInstr program
// (docs/specs/step_program.md) and this loop merely executes it: computed
// goto from handler to handler on GCC/Clang (one indirect branch per
// instruction, per-opcode branch prediction), a switch loop elsewhere.
//
// Everything observable is byte-identical to the interpreted sweep —
// journal record order, audit events, stats counters, error messages, and
// the post-journal signal delivery order — which the step-program golden
// test asserts record for record. The one deliberate difference is pure
// mechanics: the fresh-evaluation list is pooled in the engine
// (fresh_scratch_) instead of reallocated per sweep. The pool is swapped
// out for the duration of the sweep, so the reentrant DeliverSignal →
// ApplyJoin → MarkDead → sweep chain sees an empty pool rather than an
// aliased buffer.

#include <optional>
#include <utility>
#include <vector>

#include "expr/eval.h"
#include "wfrt/engine.h"

// Threaded dispatch needs the address-of-label extension.
#if defined(__GNUC__) || defined(__clang__)
#define EXO_STEP_THREADED 1
#endif

namespace exotica::wfrt {

Status Engine::RunStepProgram(ProcessInstance* inst, uint32_t aid,
                              bool all_false) {
  using Op = wf::StepInstr::Op;
  ++stats_.step_program_dispatches;
  const wf::NavigationPlan& plan = *inst->plan;
  const wf::NavigationPlan::ActivityInfo& info = plan.activity(aid);
  const std::vector<wf::ControlConnector>& connectors =
      inst->definition->control_connectors();

  // Conditions read the activity's output; in the packed layout it may
  // still be unmaterialized (dead-path sweeps never touch it).
  if (!all_false && (info.has_cond_out || info.needs_resolver)) {
    EXO_RETURN_NOT_OK(MaterializeActivityOutput(inst, aid));
  }
  const data::Container& out = inst->activity_output(aid);

  bool any_true = false;
  bool value = false;
  std::vector<std::pair<uint32_t, bool>> fresh;
  fresh.swap(fresh_scratch_);
  fresh.clear();

  // Only tree-walked conditions read through a resolver; the plan's
  // resolver bits let trivial/VM-only sweeps skip constructing one, and a
  // dead-path sweep (all_false) never evaluates conditions at all.
  std::optional<expr::ContainerResolver> resolver;
  if (!all_false &&
      (info.needs_resolver ||
       (info.has_cond_out && !options_.use_condition_vm))) {
    resolver.emplace(out);
  }

  // Tree-walk of one connector's condition (the kTree handler, and kVm
  // when the engine runs with the condition VM off).
  auto tree_eval = [&](uint32_t cidx) -> Result<bool> {
    ++stats_.tree_condition_evals;
    expr::ContainerResolver& r = *resolver;
    return connectors[cidx].condition.Evaluate(r);
  };

  const wf::StepInstr* ip = plan.step_program(info.step_base);

#ifdef EXO_STEP_THREADED
  static const void* kDispatch[] = {&&do_trivial, &&do_vm, &&do_tree,
                                    &&do_otherwise, &&do_end};
#define EXO_STEP_DISPATCH() goto* kDispatch[static_cast<size_t>(ip->op)]
#else
#define EXO_STEP_DISPATCH() goto dispatch
dispatch:
  switch (ip->op) {
    case Op::kTrivial: goto do_trivial;
    case Op::kVm: goto do_vm;
    case Op::kTree: goto do_tree;
    case Op::kOtherwise: goto do_otherwise;
    case Op::kEnd: goto do_end;
  }
#endif
  EXO_STEP_DISPATCH();

do_trivial: {
  const int8_t prior = inst->out_eval_abs(ip->out_idx);
  if (prior >= 0) {
    any_true = any_true || prior != 0;
    ++ip;
    EXO_STEP_DISPATCH();
  }
  value = !all_false;
  any_true = any_true || value;
  goto record;
}

do_vm: {
  const int8_t prior = inst->out_eval_abs(ip->out_idx);
  if (prior >= 0) {
    any_true = any_true || prior != 0;
    ++ip;
    EXO_STEP_DISPATCH();
  }
  if (all_false) {
    value = false;
    goto record;
  }
  Result<bool> r = options_.use_condition_vm
                       ? EvalVmCondition(inst, ip->prog, out)
                       : tree_eval(ip->cidx);
  if (!r.ok()) {
    if (!options_.condition_error_is_false) {
      const wf::ControlConnector& c = connectors[ip->cidx];
      return r.status().WithContext("transition condition " + c.from +
                                    " -> " + c.to + " in " + inst->id);
    }
    value = false;
  } else {
    value = r.value();
  }
  any_true = any_true || value;
  goto record;
}

do_tree: {
  const int8_t prior = inst->out_eval_abs(ip->out_idx);
  if (prior >= 0) {
    any_true = any_true || prior != 0;
    ++ip;
    EXO_STEP_DISPATCH();
  }
  if (all_false) {
    value = false;
    goto record;
  }
  Result<bool> r = tree_eval(ip->cidx);
  if (!r.ok()) {
    if (!options_.condition_error_is_false) {
      const wf::ControlConnector& c = connectors[ip->cidx];
      return r.status().WithContext("transition condition " + c.from +
                                    " -> " + c.to + " in " + inst->id);
    }
    value = false;
  } else {
    value = r.value();
  }
  any_true = any_true || value;
  goto record;
}

do_otherwise: {
  if (inst->out_eval_abs(ip->out_idx) >= 0) {
    ++ip;
    EXO_STEP_DISPATCH();
  }
  // Fires iff no conditioned sibling fired. Deliberately does NOT feed
  // back into any_true (the interpreted sweep's otherwise loop doesn't),
  // so sibling otherwise connectors all decide from the same picture.
  value = all_false ? false : !any_true;
  goto record;
}

record: {
  inst->out_eval_abs(ip->out_idx) = value ? 1 : 0;
  ++stats_.connectors_evaluated;
  const wf::ControlConnector& c = connectors[ip->cidx];
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kConnectorEval,
                                    inst->id, c.from, c.to, value));
  }
  Audit(value ? AuditKind::kConnectorTrue : AuditKind::kConnectorFalse,
        inst->id, c.from, c.to);
  fresh.emplace_back(ip->cidx, value);
  ++ip;
  EXO_STEP_DISPATCH();
}

do_end: {
  // Deliver only after the whole sweep is journaled, so a successor's
  // join never fires on a partial picture.
  for (auto [cidx, v] : fresh) {
    EXO_RETURN_NOT_OK(DeliverSignal(inst, cidx, v));
  }
  fresh.clear();
  fresh_scratch_.swap(fresh);
  return Status::OK();
}

#undef EXO_STEP_DISPATCH
}

}  // namespace exotica::wfrt
