// EngineFleet: scale-out across engines (paper §3.3: workflow systems are
// "orders of magnitude more heterogeneous and distributed than
// databases").
//
// Each worker thread owns one Engine exclusively; the fleet shares only
// immutable state (the DefinitionStore and the ProgramRegistry bindings —
// both read-only while the fleet runs) plus whatever thread-safe
// resources the bound programs touch (e.g. multidatabase sites). This is
// the FlowMark deployment model in miniature: navigation is per-server,
// the contended resources are the data sites.

#ifndef EXOTICA_WFRT_FLEET_H_
#define EXOTICA_WFRT_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wfrt/engine.h"

namespace exotica::wfrt {

/// \brief A set of independent engines driven by worker threads.
class EngineFleet {
 public:
  /// `definitions` and `programs` must outlive the fleet and must not be
  /// mutated while a batch runs. Program callables must be thread-safe.
  EngineFleet(const wf::DefinitionStore* definitions,
              ProgramRegistry* programs, int engines,
              EngineOptions options = {});

  int size() const { return static_cast<int>(engines_.size()); }
  Engine* engine(int i) { return engines_[static_cast<size_t>(i)].get(); }

  struct BatchResult {
    uint64_t instances_finished = 0;
    EngineStats aggregate;
    /// First error per engine, if any (empty strings for clean engines).
    std::vector<std::string> errors;
    bool ok() const {
      for (const std::string& e : errors) {
        if (!e.empty()) return false;
      }
      return true;
    }
  };

  /// Starts `count` instances of `process_name`, spread round-robin over
  /// the engines, and drives them to completion in parallel (one thread
  /// per engine). Instances must not stall on manual work.
  Result<BatchResult> RunBatch(const std::string& process_name, int count,
                               const data::Container* input = nullptr);

 private:
  const wf::DefinitionStore* definitions_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_FLEET_H_
