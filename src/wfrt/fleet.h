// EngineFleet: scale-out across engines (paper §3.3: workflow systems are
// "orders of magnitude more heterogeneous and distributed than
// databases").
//
// Each worker thread owns one Engine exclusively; the fleet shares only
// immutable state (the DefinitionStore and the ProgramRegistry bindings —
// both read-only while the fleet runs) plus whatever thread-safe
// resources the bound programs touch (e.g. multidatabase sites). This is
// the FlowMark deployment model in miniature: navigation is per-server,
// the contended resources are the data sites.
//
// Two batch schedulers:
//
//   - static: seeds are assigned up front by current queue depth (a fresh
//     fleet degenerates to round-robin) and each worker drives its own
//     share to completion, never touching another engine;
//   - work stealing (default): workers run their engines in bounded
//     slices, publish their ready depth to a coordinator, and when idle
//     steal a whole instance *family* from the most-loaded peer via
//     Engine::Detach/Adopt. All cross-thread traffic flows through one
//     mutex-protected coordinator; engines themselves stay
//     single-threaded.

#ifndef EXOTICA_WFRT_FLEET_H_
#define EXOTICA_WFRT_FLEET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wfjournal/journal.h"
#include "wfrt/engine.h"

namespace exotica::wfrt {

/// \brief Fleet-level scheduling knobs.
struct FleetOptions {
  /// Idle workers steal instance families from loaded peers. Gives every
  /// engine a distinct instance-id prefix ("e<i>:") so ids stay unique
  /// across migration.
  bool work_stealing = true;

  /// Ready-queue pops a worker executes between steal-coordination
  /// checks. Smaller = lower steal latency, more coordination overhead.
  int steal_slice = 32;

  /// Adapt the slice to thief pressure: a worker that finds thieves
  /// queued at its slice boundary halves its slice (floor 1) so the next
  /// batch of requests is served sooner, and doubles it back toward
  /// steal_slice at quiet boundaries. Halvings are counted in
  /// EngineStats::steal_slice_shrinks.
  bool adaptive_steal_slice = true;

  /// Weight steal victims by outstanding *work*, not just queue depth:
  /// each worker publishes its engine's observed mean activity cost (an
  /// EWMA sampled by the engine) alongside its ready depth, and thieves
  /// pick the victim maximizing depth x (mean cost + 1). A queue of 10
  /// slow activities then outranks a queue of 12 trivial ones. Picks that
  /// diverge from the plain deepest-queue choice are counted in
  /// EngineStats::steal_victim_cost_picks. Off = exact legacy
  /// deepest-queue selection.
  bool cost_aware_victims = true;
};

/// \brief A set of independent engines driven by worker threads.
class EngineFleet {
 public:
  /// `definitions` and `programs` must outlive the fleet and must not be
  /// mutated while a batch runs. Program callables must be thread-safe.
  EngineFleet(const wf::DefinitionStore* definitions,
              ProgramRegistry* programs, int engines,
              EngineOptions options = {}, FleetOptions fleet_options = {});

  int size() const { return static_cast<int>(engines_.size()); }
  Engine* engine(int i) { return engines_[static_cast<size_t>(i)].get(); }
  const FleetOptions& fleet_options() const { return fleet_; }

  /// \brief One instance that did not finish cleanly in a batch.
  struct InstanceError {
    int engine = 0;      ///< index of the engine that ran (finished) it
    std::string id;      ///< instance id
    std::string error;   ///< quarantine reason / stall description
  };

  struct BatchResult {
    uint64_t instances_finished = 0;
    EngineStats aggregate;
    /// Engine-level infrastructure errors (start failure, navigation
    /// error, journal I/O), one slot per engine; empty string = clean.
    /// The worker stops its engine's loop on these.
    std::vector<std::string> errors;
    /// Per-instance failures: quarantined and stalled instances, across
    /// all engines. One poisoned instance lands here without masking the
    /// rest of the batch.
    std::vector<InstanceError> failed_instances;
    bool ok() const {
      if (!failed_instances.empty()) return false;
      for (const std::string& e : errors) {
        if (!e.empty()) return false;
      }
      return true;
    }
  };

  /// \brief One instance to start in a batch: a process name plus an
  /// optional input container (null = process defaults). The pointer must
  /// outlive RunBatch.
  struct BatchSeed {
    std::string process;
    const data::Container* input = nullptr;
  };

  /// Starts `count` instances of `process_name`, spread over the engines
  /// by current queue depth, and drives them to completion in parallel
  /// (one thread per engine, work stealing per FleetOptions). Instances
  /// must not stall on manual work.
  Result<BatchResult> RunBatch(const std::string& process_name, int count,
                               const data::Container* input = nullptr);

  /// Heterogeneous batch: one instance per seed. This is where stealing
  /// earns its keep — a batch mixing heavy and light processes no longer
  /// bounds the wall clock by whichever engine drew the heavy ones.
  Result<BatchResult> RunBatch(const std::vector<BatchSeed>& seeds);

  // --- durability (per-engine journal shards) --------------------------------

  /// Attaches one pre-opened journal per engine (`journals[i]` ↔ engine
  /// i). Size must equal size(); every engine must be fresh. The journals
  /// are not owned and must outlive the fleet.
  Status AttachJournals(const std::vector<wfjournal::Journal*>& journals);

  /// Opens (creating if necessary) one segmented FileJournal shard per
  /// engine at `<base_path>.e<i>` and attaches them. The fleet owns these
  /// journals. Shard ↔ engine pairing is positional, so reopening the
  /// same base path with the same fleet size after a crash hands every
  /// engine its own history back.
  Status OpenJournalShards(const std::string& base_path,
                           bool fsync_each = false);

  /// Journal attached to engine `i`, or null if none.
  wfjournal::Journal* journal_shard(int i) {
    size_t e = static_cast<size_t>(i);
    return e < journals_.size() ? journals_[e] : nullptr;
  }

  struct RecoveryReport {
    uint64_t records_replayed = 0;    ///< across all shards
    uint64_t handoffs_readopted = 0;  ///< dangling detaches re-adopted
    uint64_t handoff_images_dropped = 0;  ///< detach images whose adopt
                                          ///< was found in another shard
  };

  /// Parallel sharded recovery: every engine replays its own journal
  /// shard concurrently (one thread per engine — engines share only
  /// immutable state), then a single-threaded pass resolves dangling
  /// handoffs: a kInstanceDetached image retained by a victim's replay is
  /// re-adopted onto the least-loaded engine unless some shard's
  /// kInstanceAdopted already re-hosted the family. Follow with
  /// RunBatch({}) (or per-engine Run()) to drive recovered work.
  Result<RecoveryReport> Recover();

 private:
  /// Greedy depth-aware seed assignment (satisfies argmin of current
  /// unfinished load + already-assigned count); fresh fleets degenerate
  /// to round-robin without the old low-index remainder bias.
  std::vector<std::vector<const BatchSeed*>> AssignSeeds(
      const std::vector<BatchSeed>& seeds) const;

  /// Builds one fleet-owned InstanceArena per definition a batch can
  /// reach (seed processes plus their transitive subprocess closure) and
  /// registers it with every engine, so N engines spin instances up from
  /// one image instead of building N private copies. Runs single-threaded
  /// before the workers launch; arenas are immutable afterwards. Arenas
  /// persist across batches and are only built once per definition.
  Status PrepareArenas(const std::vector<BatchSeed>& seeds);

  void RunStatic(const std::vector<std::vector<const BatchSeed*>>& assigned,
                 BatchResult* result);
  void RunStealing(const std::vector<std::vector<const BatchSeed*>>& assigned,
                   BatchResult* result);

  const wf::DefinitionStore* definitions_;
  FleetOptions fleet_;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// Journal shard per engine (AttachJournals/OpenJournalShards); empty
  /// until one of those is called.
  std::vector<wfjournal::Journal*> journals_;
  /// Backing storage for OpenJournalShards.
  std::vector<std::unique_ptr<wfjournal::FileJournal>> owned_journals_;
  /// Fleet-owned spin-up arenas, one per reachable definition
  /// (PrepareArenas); unique_ptr for address stability — engines hold
  /// raw pointers.
  std::unordered_map<const wf::ProcessDefinition*,
                     std::unique_ptr<InstanceArena>>
      arenas_;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_FLEET_H_
