// EngineFleet: scale-out across engines (paper §3.3: workflow systems are
// "orders of magnitude more heterogeneous and distributed than
// databases").
//
// Each worker thread owns one Engine exclusively; the fleet shares only
// immutable state (the DefinitionStore and the ProgramRegistry bindings —
// both read-only while the fleet runs) plus whatever thread-safe
// resources the bound programs touch (e.g. multidatabase sites). This is
// the FlowMark deployment model in miniature: navigation is per-server,
// the contended resources are the data sites.

#ifndef EXOTICA_WFRT_FLEET_H_
#define EXOTICA_WFRT_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wfrt/engine.h"

namespace exotica::wfrt {

/// \brief A set of independent engines driven by worker threads.
class EngineFleet {
 public:
  /// `definitions` and `programs` must outlive the fleet and must not be
  /// mutated while a batch runs. Program callables must be thread-safe.
  EngineFleet(const wf::DefinitionStore* definitions,
              ProgramRegistry* programs, int engines,
              EngineOptions options = {});

  int size() const { return static_cast<int>(engines_.size()); }
  Engine* engine(int i) { return engines_[static_cast<size_t>(i)].get(); }

  /// \brief One instance that did not finish cleanly in a batch.
  struct InstanceError {
    int engine = 0;      ///< index of the engine that ran it
    std::string id;      ///< instance id (engine-local "wf-N" namespace)
    std::string error;   ///< quarantine reason / stall description
  };

  struct BatchResult {
    uint64_t instances_finished = 0;
    EngineStats aggregate;
    /// Engine-level infrastructure errors (start failure, navigation
    /// error, journal I/O), one slot per engine; empty string = clean.
    /// The worker stops its engine's loop on these.
    std::vector<std::string> errors;
    /// Per-instance failures: quarantined and stalled instances, across
    /// all engines. One poisoned instance lands here without masking the
    /// rest of the batch.
    std::vector<InstanceError> failed_instances;
    bool ok() const {
      if (!failed_instances.empty()) return false;
      for (const std::string& e : errors) {
        if (!e.empty()) return false;
      }
      return true;
    }
  };

  /// Starts `count` instances of `process_name`, spread round-robin over
  /// the engines, and drives them to completion in parallel (one thread
  /// per engine). Instances must not stall on manual work.
  Result<BatchResult> RunBatch(const std::string& process_name, int count,
                               const data::Container* input = nullptr);

 private:
  const wf::DefinitionStore* definitions_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_FLEET_H_
