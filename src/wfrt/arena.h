// Per-plan instance spin-up arena.
//
// Instance initialization used to walk the engine's prototype map once per
// activity container (two lookups + a container construction per activity,
// per instance). The arena precomputes, once per process definition, a
// fully preformatted image of the whole ActivityRuntime vector — every
// input/output container instantiated — plus the process input/output
// containers. Starting (or adopting) an instance then reduces to copying
// that image: with the lazy-valued flat-layout containers this is a
// handful of vector copies sharing the immutable container layouts (and
// two flat connector-eval arrays sized per instance), instead of a
// prototype-map walk per activity.
//
// Arenas are immutable after Build and hold no pointers into the engine,
// so a fleet shares one arena per definition across all of its engines:
// EngineFleet::PrepareArenas builds them single-threaded before workers
// launch and registers each via Engine::ShareArena. An engine outside a
// fleet still builds its own lazily on first use. The shared container
// layouts the arena hands out are also what the plan's compiled condition
// programs (expr/vm.h) resolve their member slots against — one layout
// per type, fixed at registration, read by every engine thread.

#ifndef EXOTICA_WFRT_ARENA_H_
#define EXOTICA_WFRT_ARENA_H_

#include <vector>

#include "common/result.h"
#include "data/container.h"
#include "data/types.h"
#include "wfrt/instance.h"

namespace exotica::wf {
class ProcessDefinition;
}  // namespace exotica::wf

namespace exotica::wfrt {

/// \brief Preformatted spin-up image for one ProcessDefinition.
class InstanceArena {
 public:
  /// Builds the image: one ActivityRuntime per activity with containers
  /// instantiated from `types` (same-typed containers share one layout).
  static Result<InstanceArena> Build(const wf::ProcessDefinition& definition,
                                     const data::TypeRegistry& types);

  /// Process input/output container prototypes.
  const data::Container& input() const { return input_; }
  const data::Container& output() const { return output_; }

  /// The preformatted ActivityRuntime image, indexed by activity id. In
  /// the packed layout this doubles as the prototype source that cold
  /// containers materialize from on first touch.
  const std::vector<ActivityRuntime>& activities() const {
    return activities_;
  }

  /// The preformatted packed hot block (plan->hot() layout): zeroed state
  /// / enqueued / attempt / failures planes, connector-eval planes filled
  /// with -1 (not yet evaluated). Packed spin-up is one copy of this.
  const std::vector<uint8_t>& hot_image() const { return hot_; }

  uint32_t activity_count() const {
    return static_cast<uint32_t>(activities_.size());
  }

 private:
  data::Container input_;
  data::Container output_;
  std::vector<ActivityRuntime> activities_;
  std::vector<uint8_t> hot_;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_ARENA_H_
