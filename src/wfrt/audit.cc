#include "wfrt/audit.h"

#include <algorithm>

namespace exotica::wfrt {

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kInstanceStarted: return "instance-started";
    case AuditKind::kActivityReady: return "ready";
    case AuditKind::kActivityStarted: return "started";
    case AuditKind::kActivityFinished: return "finished";
    case AuditKind::kActivityTerminated: return "terminated";
    case AuditKind::kActivityRescheduled: return "rescheduled";
    case AuditKind::kActivityDead: return "dead";
    case AuditKind::kConnectorTrue: return "connector-true";
    case AuditKind::kConnectorFalse: return "connector-false";
    case AuditKind::kProgramFailure: return "program-failure";
    case AuditKind::kInstanceFinished: return "instance-finished";
    case AuditKind::kWorkItemPosted: return "workitem-posted";
    case AuditKind::kWorkItemCancelled: return "workitem-cancelled";
    case AuditKind::kForcedFinish: return "forced-finish";
    case AuditKind::kRecoveryResumed: return "recovery-resumed";
    case AuditKind::kActivityPending: return "pending";
    case AuditKind::kRetryBackoff: return "retry-backoff";
    case AuditKind::kPermanentFailure: return "permanent-failure";
    case AuditKind::kInstanceFailed: return "instance-failed";
    case AuditKind::kInstanceDetached: return "instance-detached";
    case AuditKind::kInstanceAdopted: return "instance-adopted";
    case AuditKind::kCheckpoint: return "checkpoint";
  }
  return "?";
}

std::string AuditEvent::Compact() const {
  switch (kind) {
    case AuditKind::kConnectorTrue:
      return activity + "->" + detail + ":true";
    case AuditKind::kConnectorFalse:
      return activity + "->" + detail + ":false";
    case AuditKind::kInstanceStarted:
    case AuditKind::kInstanceFinished:
    case AuditKind::kInstanceFailed:
    case AuditKind::kInstanceDetached:
    case AuditKind::kInstanceAdopted:
      return instance + ":" + AuditKindName(kind);
    default:
      return activity + ":" + AuditKindName(kind);
  }
}

Result<std::map<std::string, AuditTrail::ActivitySummary>>
AuditTrail::Summarize(const std::string& instance) const {
  std::map<std::string, ActivitySummary> out;
  std::map<std::string, Micros> started_at;
  bool seen = false;
  for (const AuditEvent& e : events_) {
    if (e.instance != instance) continue;
    seen = true;
    switch (e.kind) {
      case AuditKind::kActivityReady: {
        ActivitySummary& s = out[e.activity];
        if (s.first_ready < 0) s.first_ready = e.at;
        break;
      }
      case AuditKind::kActivityStarted:
        ++out[e.activity].executions;
        started_at[e.activity] = e.at;
        break;
      case AuditKind::kActivityFinished:
      case AuditKind::kForcedFinish: {
        auto it = started_at.find(e.activity);
        if (it != started_at.end()) {
          out[e.activity].active_micros += e.at - it->second;
          started_at.erase(it);
        }
        break;
      }
      case AuditKind::kActivityRescheduled:
        ++out[e.activity].reschedules;
        break;
      case AuditKind::kActivityTerminated:
      case AuditKind::kActivityDead:
        out[e.activity].settled_at = e.at;
        break;
      default:
        break;
    }
  }
  if (!seen) {
    return Status::NotFound("no audit events for instance " + instance);
  }
  return out;
}

Result<Micros> AuditTrail::InstanceMakespan(const std::string& instance) const {
  Micros start = -1;
  for (const AuditEvent& e : events_) {
    if (e.instance != instance) continue;
    if (e.kind == AuditKind::kInstanceStarted) start = e.at;
    if (e.kind == AuditKind::kInstanceFinished && start >= 0) {
      return e.at - start;
    }
  }
  if (start < 0) {
    return Status::NotFound("no audit events for instance " + instance);
  }
  return Status::FailedPrecondition("instance " + instance +
                                    " has not finished");
}

std::vector<std::string> AuditTrail::CompactTrace(
    const std::string& instance, const std::vector<AuditKind>& kinds) const {
  std::vector<std::string> out;
  for (const AuditEvent& e : events_) {
    if (e.instance != instance) continue;
    if (!kinds.empty() &&
        std::find(kinds.begin(), kinds.end(), e.kind) == kinds.end()) {
      continue;
    }
    out.push_back(e.Compact());
  }
  return out;
}

}  // namespace exotica::wfrt
