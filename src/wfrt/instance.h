// Runtime state of process instances.
//
// Activity state is held in a dense vector indexed by the compiled plan's
// activity ids; connector evaluations live in two instance-wide flat
// arrays indexed by the plan's precomputed per-activity slot offsets.
// String names appear only at API boundaries, audit events, and journal
// records.

#ifndef EXOTICA_WFRT_INSTANCE_H_
#define EXOTICA_WFRT_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/container.h"
#include "org/worklist.h"
#include "wf/plan.h"
#include "wf/process.h"

namespace exotica::wfrt {

/// \brief Per-activity runtime state inside one instance.
struct ActivityRuntime {
  wf::ActivityState state = wf::ActivityState::kWaiting;

  data::Container input;
  data::Container output;

  /// 1-based attempt counter (reschedules and program failures bump it).
  int attempt = 0;

  /// Consecutive program-crash count (reset on successful completion).
  int failures = 0;

  /// Work item for manual activities currently posted/claimed.
  std::optional<org::WorkItemId> work_item;

  /// Child instance id for running process (block) activities.
  std::string child_instance;
};

/// \brief One executing process.
struct ProcessInstance {
  std::string id;
  /// Dense index of this instance in the engine (creation order).
  uint32_t index = 0;
  const wf::ProcessDefinition* definition = nullptr;
  /// The definition's compiled plan (owned by the definition).
  const wf::NavigationPlan* plan = nullptr;

  data::Container input;
  data::Container output;

  /// Indexed by activity id (== index into definition->activities()).
  std::vector<ActivityRuntime> activities;

  /// Connector evaluations for the whole instance, flat: activity `aid`'s
  /// slot `s` lives at `plan->activity(aid).in_eval_base + s` (resp.
  /// out_eval_base). -1 = not yet evaluated, 0 = false, 1 = true. Two
  /// allocations per instance instead of two per activity, so spin-up
  /// copies them wholesale.
  std::vector<int8_t> in_evals;
  std::vector<int8_t> out_evals;

  /// Ready-queue dedup bitmap, indexed by activity id.
  std::vector<uint8_t> enqueued;

  /// Count of activities in kTerminated or kDead — the instance is
  /// finished when every activity is settled, and the counter makes that
  /// check O(1) instead of a full sweep per termination.
  uint32_t settled = 0;

  bool finished = false;
  bool cancelled = false;  ///< finished via user termination
  bool failed = false;     ///< quarantined: retry budget exhausted or
                           ///< permanent program failure
  bool suspended = false;  ///< navigation paused by the user
  bool detached = false;   ///< migrated to another engine (work stealing);
                           ///< the slot is a dead husk kept only so ready
                           ///< queue indices stay resolvable

  /// Why the instance was quarantined (empty unless failed).
  std::string failure_reason;

  /// Crash retries consumed by this instance, charged against
  /// RetryPolicy::instance_retry_budget.
  int retries_used = 0;

  /// Parent link for block children (empty for top-level instances).
  std::string parent_instance;
  std::string parent_activity;

  bool is_child() const { return !parent_instance.empty(); }

  /// Transitions activity `id` to `next`, maintaining the settled counter.
  /// Every state write (navigation and journal replay) goes through here.
  void SetState(uint32_t id, wf::ActivityState next) {
    wf::ActivityState prev = activities[id].state;
    if (IsSettled(prev)) --settled;
    if (IsSettled(next)) ++settled;
    activities[id].state = next;
  }

  static bool IsSettled(wf::ActivityState s) {
    return s == wf::ActivityState::kTerminated || s == wf::ActivityState::kDead;
  }

  /// Flat-array accessors for activity `aid`'s connector-evaluation slots.
  int8_t& in_eval(uint32_t aid, uint32_t slot) {
    return in_evals[plan->activity(aid).in_eval_base + slot];
  }
  int8_t in_eval(uint32_t aid, uint32_t slot) const {
    return in_evals[plan->activity(aid).in_eval_base + slot];
  }
  int8_t& out_eval(uint32_t aid, uint32_t slot) {
    return out_evals[plan->activity(aid).out_eval_base + slot];
  }
  int8_t out_eval(uint32_t aid, uint32_t slot) const {
    return out_evals[plan->activity(aid).out_eval_base + slot];
  }

  /// Counts activities currently in `state`.
  size_t CountInState(wf::ActivityState state) const {
    size_t n = 0;
    for (const ActivityRuntime& rt : activities) {
      if (rt.state == state) ++n;
    }
    return n;
  }

  /// The process is finished when every activity is terminated or dead
  /// (paper §3.2: "The process is considered finished when all its
  /// activities are in the terminated state").
  bool AllSettled() const { return settled == activities.size(); }
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_INSTANCE_H_
