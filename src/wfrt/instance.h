// Runtime state of process instances.
//
// Two in-memory layouts share one accessor surface (selected per engine
// by EngineOptions::packed_instance_state; see
// docs/specs/instance_layout.md):
//
//  - Legacy AoS: a vector<ActivityRuntime> plus two instance-wide flat
//    connector-eval arrays and a ready-queue dedup bitmap.
//  - Packed SoA: one contiguous byte block (`hot`) laid out by the plan's
//    HotLayout — dense state bytes, enqueued bytes, both eval planes, and
//    4-aligned int32 attempt/failures arrays — plus a cold sidecar
//    (`cold`) holding the containers, work items, and child links that
//    navigation only touches when an activity actually starts or posts
//    work. The state sweep then reads a dense byte array instead of
//    striding ~144-byte structs.
//
// Every engine access goes through the accessors below, which branch on
// `packed`; journal, audit, and error output are byte-identical across
// the two layouts. String names appear only at API boundaries, audit
// events, and journal records.

#ifndef EXOTICA_WFRT_INSTANCE_H_
#define EXOTICA_WFRT_INSTANCE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/container.h"
#include "org/worklist.h"
#include "wf/plan.h"
#include "wf/process.h"

namespace exotica::wfrt {

class InstanceArena;

// The packed state plane stores one byte per activity; a wider enum would
// silently truncate.
static_assert(static_cast<int>(wf::ActivityState::kDead) <= 0xFF,
              "ActivityState must fit the packed one-byte state plane");
// A zeroed hot block must mean "pristine": every activity kWaiting.
static_assert(static_cast<int>(wf::ActivityState::kWaiting) == 0,
              "packed spin-up relies on kWaiting being the zero state");

/// \brief Per-activity runtime state inside one instance (legacy layout).
struct ActivityRuntime {
  wf::ActivityState state = wf::ActivityState::kWaiting;

  data::Container input;
  data::Container output;

  /// 1-based attempt counter (reschedules and program failures bump it).
  int32_t attempt = 0;

  /// Consecutive program-crash count (reset on successful completion).
  int32_t failures = 0;

  /// Work item for manual activities currently posted/claimed.
  std::optional<org::WorkItemId> work_item;

  /// Child instance id for running process (block) activities.
  std::string child_instance;
};

/// \brief Cold per-activity sidecar of the packed layout: everything the
/// sweep never reads. Containers start default-constructed (no layout, no
/// refcount traffic at spin-up) and are materialized from the arena
/// prototypes on first touch — a pristine container and a
/// default-constructed one serialize identically, so images stay
/// byte-identical either way.
struct ActivityCold {
  data::Container input;
  data::Container output;
  std::optional<org::WorkItemId> work_item;
  std::string child_instance;
};

/// \brief One executing process.
struct ProcessInstance {
  std::string id;
  /// Dense index of this instance in the engine (creation order).
  uint32_t index = 0;
  const wf::ProcessDefinition* definition = nullptr;
  /// The definition's compiled plan (owned by the definition).
  const wf::NavigationPlan* plan = nullptr;

  data::Container input;
  data::Container output;

  /// Legacy layout: indexed by activity id (== index into
  /// definition->activities()). Empty when `packed`.
  std::vector<ActivityRuntime> activities;

  /// Legacy layout: connector evaluations for the whole instance, flat:
  /// activity `aid`'s slot `s` lives at `plan->activity(aid).in_eval_base
  /// + s` (resp. out_eval_base). -1 = not yet evaluated, 0 = false,
  /// 1 = true.
  std::vector<int8_t> in_evals;
  std::vector<int8_t> out_evals;

  /// Legacy layout: ready-queue dedup bitmap, indexed by activity id.
  std::vector<uint8_t> enqueued;

  /// Packed layout: the contiguous hot block (plan->hot() offsets) and
  /// the cold sidecar. `hl` is a by-value copy of the plan's HotLayout so
  /// the accessors below read plane bases without chasing through the
  /// plan. `arena` points at the spin-up arena whose container prototypes
  /// materialize cold containers on first touch (null when the instance
  /// was spun up without an arena).
  bool packed = false;
  wf::HotLayout hl;
  std::vector<uint8_t> hot;
  std::vector<ActivityCold> cold;
  const InstanceArena* arena = nullptr;

  /// Count of activities in kTerminated or kDead — the instance is
  /// finished when every activity is settled, and the counter makes that
  /// check O(1) instead of a full sweep per termination.
  uint32_t settled = 0;

  bool finished = false;
  bool cancelled = false;  ///< finished via user termination
  bool failed = false;     ///< quarantined: retry budget exhausted or
                           ///< permanent program failure
  bool suspended = false;  ///< navigation paused by the user
  bool detached = false;   ///< migrated to another engine (work stealing);
                           ///< the slot is a dead husk kept only so ready
                           ///< queue indices stay resolvable

  /// Why the instance was quarantined (empty unless failed).
  std::string failure_reason;

  /// Crash retries consumed by this instance, charged against
  /// RetryPolicy::instance_retry_budget.
  int retries_used = 0;

  /// Parent link for block children (empty for top-level instances).
  std::string parent_instance;
  std::string parent_activity;

  bool is_child() const { return !parent_instance.empty(); }

  uint32_t activity_count() const {
    return packed ? static_cast<uint32_t>(cold.size())
                  : static_cast<uint32_t>(activities.size());
  }

  wf::ActivityState state(uint32_t aid) const {
    return packed ? static_cast<wf::ActivityState>(hot[aid])
                  : activities[aid].state;
  }

  /// Transitions activity `id` to `next`, maintaining the settled counter.
  /// Every state write (navigation and journal replay) goes through here.
  void SetState(uint32_t id, wf::ActivityState next) {
    wf::ActivityState prev = state(id);
    if (IsSettled(prev)) --settled;
    if (IsSettled(next)) ++settled;
    if (packed) {
      hot[id] = static_cast<uint8_t>(next);
    } else {
      activities[id].state = next;
    }
  }

  static bool IsSettled(wf::ActivityState s) {
    return s == wf::ActivityState::kTerminated || s == wf::ActivityState::kDead;
  }

  int32_t& attempt(uint32_t aid) {
    return packed ? hot_i32(hl.attempt_base)[aid]
                  : activities[aid].attempt;
  }
  int32_t attempt(uint32_t aid) const {
    return packed ? hot_i32(hl.attempt_base)[aid]
                  : activities[aid].attempt;
  }
  int32_t& failures(uint32_t aid) {
    return packed ? hot_i32(hl.failures_base)[aid]
                  : activities[aid].failures;
  }
  int32_t failures(uint32_t aid) const {
    return packed ? hot_i32(hl.failures_base)[aid]
                  : activities[aid].failures;
  }

  /// Cold-side accessors. Packed containers may still be unmaterialized
  /// (default-constructed, `type_name().empty()`) — the engine
  /// materializes before any typed use.
  data::Container& activity_input(uint32_t aid) {
    return packed ? cold[aid].input : activities[aid].input;
  }
  const data::Container& activity_input(uint32_t aid) const {
    return packed ? cold[aid].input : activities[aid].input;
  }
  data::Container& activity_output(uint32_t aid) {
    return packed ? cold[aid].output : activities[aid].output;
  }
  const data::Container& activity_output(uint32_t aid) const {
    return packed ? cold[aid].output : activities[aid].output;
  }
  std::optional<org::WorkItemId>& work_item(uint32_t aid) {
    return packed ? cold[aid].work_item : activities[aid].work_item;
  }
  const std::optional<org::WorkItemId>& work_item(uint32_t aid) const {
    return packed ? cold[aid].work_item : activities[aid].work_item;
  }
  std::string& child_instance(uint32_t aid) {
    return packed ? cold[aid].child_instance : activities[aid].child_instance;
  }
  const std::string& child_instance(uint32_t aid) const {
    return packed ? cold[aid].child_instance : activities[aid].child_instance;
  }

  /// Ready-queue dedup byte for activity `aid`.
  uint8_t& enqueued_flag(uint32_t aid) {
    return packed ? hot[hl.enqueued_base + aid] : enqueued[aid];
  }
  void ResetEnqueued() {
    if (packed) {
      const uint32_t base = hl.enqueued_base;
      std::fill(hot.begin() + base, hot.begin() + base + activity_count(), 0);
    } else {
      std::fill(enqueued.begin(), enqueued.end(), 0);
    }
  }

  /// Absolute-slot accessors into the connector-eval planes (slot indices
  /// as precomputed by the plan — StepInstr::out_idx, per-activity bases).
  int8_t& in_eval_abs(uint32_t idx) {
    return packed
               ? reinterpret_cast<int8_t&>(hot[hl.in_eval_base + idx])
               : in_evals[idx];
  }
  int8_t in_eval_abs(uint32_t idx) const {
    return packed ? static_cast<int8_t>(hot[hl.in_eval_base + idx])
                  : in_evals[idx];
  }
  int8_t& out_eval_abs(uint32_t idx) {
    return packed ? reinterpret_cast<int8_t&>(hot[hl.out_eval_base + idx])
                  : out_evals[idx];
  }
  int8_t out_eval_abs(uint32_t idx) const {
    return packed ? static_cast<int8_t>(hot[hl.out_eval_base + idx])
                  : out_evals[idx];
  }

  /// Base of the whole out-eval plane, for native step code that indexes
  /// absolute StepInstr::out_idx slots directly. data()-based so it is
  /// well-defined even on an empty legacy vector (activities without
  /// connectors).
  int8_t* out_eval_plane() {
    return packed ? reinterpret_cast<int8_t*>(hot.data() + hl.out_eval_base)
                  : out_evals.data();
  }

  /// Per-activity-slot accessors for activity `aid`'s connector
  /// evaluations.
  int8_t& in_eval(uint32_t aid, uint32_t slot) {
    return in_eval_abs(plan->activity(aid).in_eval_base + slot);
  }
  int8_t in_eval(uint32_t aid, uint32_t slot) const {
    return in_eval_abs(plan->activity(aid).in_eval_base + slot);
  }
  int8_t& out_eval(uint32_t aid, uint32_t slot) {
    return out_eval_abs(plan->activity(aid).out_eval_base + slot);
  }
  int8_t out_eval(uint32_t aid, uint32_t slot) const {
    return out_eval_abs(plan->activity(aid).out_eval_base + slot);
  }

  /// Counts activities currently in `state` — a dense byte scan in the
  /// packed layout, a struct stride in the legacy one.
  size_t CountInState(wf::ActivityState s) const {
    size_t n = 0;
    if (packed) {
      const uint8_t b = static_cast<uint8_t>(s);
      const uint32_t count = activity_count();
      for (uint32_t i = 0; i < count; ++i) n += (hot[i] == b);
    } else {
      for (const ActivityRuntime& rt : activities) n += (rt.state == s);
    }
    return n;
  }

  /// The process is finished when every activity is terminated or dead
  /// (paper §3.2: "The process is considered finished when all its
  /// activities are in the terminated state").
  bool AllSettled() const { return settled == activity_count(); }

 private:
  int32_t* hot_i32(uint32_t base) {
    return reinterpret_cast<int32_t*>(hot.data() + base);
  }
  const int32_t* hot_i32(uint32_t base) const {
    return reinterpret_cast<const int32_t*>(hot.data() + base);
  }
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_INSTANCE_H_
