// Runtime state of process instances.

#ifndef EXOTICA_WFRT_INSTANCE_H_
#define EXOTICA_WFRT_INSTANCE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "data/container.h"
#include "org/worklist.h"
#include "wf/process.h"

namespace exotica::wfrt {

/// \brief Per-activity runtime state inside one instance.
struct ActivityRuntime {
  wf::ActivityState state = wf::ActivityState::kWaiting;

  data::Container input;
  data::Container output;

  /// 1-based attempt counter (reschedules and program failures bump it).
  int attempt = 0;

  /// Consecutive program-crash count (reset on successful completion).
  int failures = 0;

  /// Incoming control connector evaluations: connector index → value.
  std::map<size_t, bool> incoming_eval;

  /// Outgoing control connector indices already evaluated (journaled).
  std::map<size_t, bool> outgoing_eval;

  /// Work item for manual activities currently posted/claimed.
  std::optional<org::WorkItemId> work_item;

  /// Child instance id for running process (block) activities.
  std::string child_instance;
};

/// \brief One executing process.
struct ProcessInstance {
  std::string id;
  const wf::ProcessDefinition* definition = nullptr;

  data::Container input;
  data::Container output;

  std::map<std::string, ActivityRuntime> activities;

  bool finished = false;
  bool cancelled = false;  ///< finished via user termination
  bool suspended = false;  ///< navigation paused by the user

  /// Parent link for block children (empty for top-level instances).
  std::string parent_instance;
  std::string parent_activity;

  bool is_child() const { return !parent_instance.empty(); }

  /// Counts activities currently in `state`.
  size_t CountInState(wf::ActivityState state) const {
    size_t n = 0;
    for (const auto& [name, rt] : activities) {
      (void)name;
      if (rt.state == state) ++n;
    }
    return n;
  }

  /// The process is finished when every activity is terminated or dead
  /// (paper §3.2: "The process is considered finished when all its
  /// activities are in the terminated state").
  bool AllSettled() const {
    for (const auto& [name, rt] : activities) {
      (void)name;
      if (rt.state != wf::ActivityState::kTerminated &&
          rt.state != wf::ActivityState::kDead) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_INSTANCE_H_
