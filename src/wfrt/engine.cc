#include "wfrt/engine.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"
#include "expr/eval.h"

namespace exotica::wfrt {

using wf::ActivityState;

namespace {
// Name of activity `aid` — journal records and audit events still speak
// names; navigation itself stays on ids.
inline const std::string& NameOf(const ProcessInstance* inst, uint32_t aid) {
  return inst->definition->activities()[aid].name;
}

inline const wf::Activity& DefOf(const ProcessInstance* inst, uint32_t aid) {
  return inst->definition->activities()[aid];
}

// FNV-1a over a string, folded into `h` — the backoff-jitter key. A plain
// hash (not an Rng stream) keeps the decision a pure function of
// (seed, instance, activity, attempt), stable across recovery and
// independent of how many other instances retried first.
inline uint64_t HashMix(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

bool RetryPolicy::DefaultIsPermanent(const Status& error) {
  return error.IsInvalidArgument() || error.IsUnsupported() ||
         error.IsValidationError();
}

Engine::Engine(const wf::DefinitionStore* definitions, ProgramRegistry* programs,
               EngineOptions options)
    : definitions_(definitions),
      programs_(programs),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()) {
  audit_.set_max_events(options_.max_audit_events);
  // Native dispatch sits on top of the whole ladder: it inlines typed
  // condition programs, so turning any lower rung off turns it off too.
  native_enabled_ = options_.use_native_step_programs &&
                    options_.use_condition_vm && options_.use_typed_conditions;
}

Status Engine::AttachJournal(wfjournal::Journal* journal) {
  if (!instances_.empty()) {
    return Status::FailedPrecondition(
        "journal must be attached before any process starts");
  }
  journal_ = journal;
  return Status::OK();
}

Status Engine::AttachOrganization(const org::Directory* directory) {
  directory_ = directory;
  worklists_ = std::make_unique<org::WorklistService>(directory, clock_);
  return Status::OK();
}

Status Engine::JournalAppend(wfjournal::EventType type,
                             const std::string& instance,
                             const std::string& activity,
                             const std::string& to, bool flag,
                             std::string payload, std::string extra) {
  if (journal_ == nullptr) return Status::OK();
  wfjournal::Record r;
  r.type = type;
  r.instance = instance;
  r.activity = activity;
  r.to = to;
  r.flag = flag;
  r.payload = std::move(payload);
  r.extra = std::move(extra);
  EXO_RETURN_NOT_OK(journal_->Append(std::move(r)));
  ++records_since_snapshot_;
  return Status::OK();
}

Status Engine::FlushJournal() {
  if (journal_ == nullptr) return Status::OK();
  return journal_->Flush();
}

void Engine::Audit(AuditKind kind, const std::string& instance,
                   const std::string& activity, std::string detail) {
  if (!options_.audit_enabled) return;
  AuditEvent e;
  e.at = clock_->NowMicros();
  e.kind = kind;
  e.instance = instance;
  e.activity = activity;
  e.detail = std::move(detail);
  if (observer_) observer_(e);
  audit_.Add(std::move(e));
}

std::string Engine::NewInstanceId() {
  return options_.instance_id_prefix + "wf-" + std::to_string(next_instance_++);
}

Result<ProcessInstance*> Engine::MutableInstance(const std::string& id) {
  auto it = instance_index_.find(id);
  if (it == instance_index_.end()) {
    return Status::NotFound("no such process instance: " + id);
  }
  return &instances_[it->second];
}

Result<const ProcessInstance*> Engine::FindInstance(const std::string& id) const {
  auto it = instance_index_.find(id);
  if (it == instance_index_.end()) {
    return Status::NotFound("no such process instance: " + id);
  }
  return &instances_[it->second];
}

bool Engine::IsFinished(const std::string& id) const {
  auto it = instance_index_.find(id);
  return it != instance_index_.end() && instances_[it->second].finished;
}

bool Engine::IsCancelled(const std::string& id) const {
  auto it = instance_index_.find(id);
  return it != instance_index_.end() && instances_[it->second].cancelled;
}

bool Engine::IsSuspended(const std::string& id) const {
  auto it = instance_index_.find(id);
  return it != instance_index_.end() && instances_[it->second].suspended;
}

bool Engine::IsFailed(const std::string& id) const {
  auto it = instance_index_.find(id);
  return it != instance_index_.end() && instances_[it->second].failed;
}

Result<data::Container> Engine::OutputOf(const std::string& id) const {
  EXO_ASSIGN_OR_RETURN(const ProcessInstance* inst, FindInstance(id));
  if (inst->failed) {
    return Status::FailedPrecondition("instance " + id + " is quarantined: " +
                                      inst->failure_reason);
  }
  if (!inst->finished) {
    return Status::FailedPrecondition("instance " + id + " is not finished");
  }
  return inst->output;
}

Result<wf::ActivityState> Engine::StateOf(const std::string& id,
                                          const std::string& activity) const {
  EXO_ASSIGN_OR_RETURN(const ProcessInstance* inst, FindInstance(id));
  Result<size_t> aid = inst->definition->ActivityIndex(activity);
  if (!aid.ok()) {
    return Status::NotFound("no activity " + activity + " in instance " + id);
  }
  return inst->state(static_cast<uint32_t>(*aid));
}

Result<data::Container> Engine::NewContainer(const std::string& type_name) {
  auto it = container_protos_.find(type_name);
  if (it == container_protos_.end()) {
    EXO_ASSIGN_OR_RETURN(
        data::Container proto,
        data::Container::Create(definitions_->types(), type_name));
    it = container_protos_.emplace(type_name, std::move(proto)).first;
  }
  return it->second;
}

// --- instance creation ------------------------------------------------------

Result<std::string> Engine::StartProcess(const std::string& process_name,
                                         const data::Container* input) {
  EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* def,
                       definitions_->FindProcess(process_name));
  Result<std::string> id = CreateInstance(def, input, "", "");
  EXO_RETURN_NOT_OK(FlushJournal());
  return id;
}

Result<std::string> Engine::CreateInstance(const wf::ProcessDefinition* def,
                                           const data::Container* input,
                                           const std::string& parent_instance,
                                           const std::string& parent_activity) {
  std::string id = NewInstanceId();

  ProcessInstance inst;
  inst.id = id;
  inst.definition = def;
  inst.plan = &def->plan();
  inst.parent_instance = parent_instance;
  inst.parent_activity = parent_activity;
  EXO_ASSIGN_OR_RETURN(inst.input, NewContainer(def->input_type()));
  if (input != nullptr) {
    if (input->type_name() != def->input_type()) {
      return Status::InvalidArgument(
          "input container type " + input->type_name() +
          " does not match process input type " + def->input_type());
    }
    inst.input = *input;
  }
  EXO_ASSIGN_OR_RETURN(inst.output, NewContainer(def->output_type()));

  // The payload pins the template version so recovery replays against the
  // exact definition this instance started with, even if newer versions
  // registered since.
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(
        wfjournal::EventType::kInstanceStart, id, parent_activity,
        parent_instance, /*flag=*/false,
        "v" + std::to_string(def->version()) + ":" + def->name(),
        inst.input.Serialize()));
  }

  uint32_t index = static_cast<uint32_t>(instances_.size());
  inst.index = index;
  instances_.push_back(std::move(inst));
  instance_index_.emplace(id, index);
  instance_order_.push_back(id);
  ++stats_.instances_started;
  Audit(AuditKind::kInstanceStarted, id, "", def->name());

  ProcessInstance* p = &instances_[index];
  EXO_RETURN_NOT_OK(InitializeRuntimes(p));

  if (!parent_instance.empty()) {
    EXO_ASSIGN_OR_RETURN(ProcessInstance* parent,
                         MutableInstance(parent_instance));
    EXO_ASSIGN_OR_RETURN(size_t paid,
                         parent->definition->ActivityIndex(parent_activity));
    parent->child_instance(static_cast<uint32_t>(paid)) = id;
  }

  EXO_RETURN_NOT_OK(ReadyStartActivities(p));
  return id;
}

Result<const InstanceArena*> Engine::ArenaFor(const wf::ProcessDefinition* def) {
  auto shared = shared_arenas_.find(def);
  if (shared != shared_arenas_.end()) {
    ++stats_.arena_shared_hits;
    return shared->second;
  }
  auto it = arenas_.find(def);
  if (it == arenas_.end()) {
    EXO_ASSIGN_OR_RETURN(InstanceArena arena,
                         InstanceArena::Build(*def, definitions_->types()));
    it = arenas_.emplace(def, std::move(arena)).first;
  }
  return &it->second;
}

Status Engine::InitializeRuntimes(ProcessInstance* inst) {
  const wf::NavigationPlan& plan = *inst->plan;
  uint32_t n = plan.activity_count();
  if (options_.packed_instance_state) {
    // Packed layout: one copy of the arena's preformatted hot block plus
    // a default-constructed cold sidecar — no per-activity container
    // copies at spin-up; cold containers materialize on first touch.
    inst->packed = true;
    inst->hl = plan.hot();
    if (options_.spinup_arena) {
      EXO_ASSIGN_OR_RETURN(const InstanceArena* arena,
                           ArenaFor(inst->definition));
      inst->arena = arena;
      inst->hot = arena->hot_image();
      ++stats_.arena_spinups;
    } else {
      const wf::HotLayout& hl = plan.hot();
      inst->hot.assign(hl.size, 0);
      std::fill(inst->hot.begin() + hl.in_eval_base,
                inst->hot.begin() + hl.in_eval_base + plan.in_eval_total(),
                static_cast<uint8_t>(-1));
      std::fill(inst->hot.begin() + hl.out_eval_base,
                inst->hot.begin() + hl.out_eval_base + plan.out_eval_total(),
                static_cast<uint8_t>(-1));
    }
    inst->cold.resize(n);
  } else if (options_.spinup_arena) {
    // One vector copy of the preformatted image; the flat-layout
    // containers inside share their immutable layouts by refcount.
    EXO_ASSIGN_OR_RETURN(const InstanceArena* arena,
                         ArenaFor(inst->definition));
    inst->activities = arena->activities();
    ++stats_.arena_spinups;
  } else {
    const std::vector<wf::Activity>& acts = inst->definition->activities();
    inst->activities.resize(n);
    for (uint32_t aid = 0; aid < n; ++aid) {
      ActivityRuntime& rt = inst->activities[aid];
      EXO_ASSIGN_OR_RETURN(rt.input, NewContainer(acts[aid].input_type));
      EXO_ASSIGN_OR_RETURN(rt.output, NewContainer(acts[aid].output_type));
    }
  }
  if (!inst->packed) {
    inst->in_evals.assign(plan.in_eval_total(), -1);
    inst->out_evals.assign(plan.out_eval_total(), -1);
    inst->enqueued.assign(n, 0);
  }
  // Process-input data connectors materialize target inputs immediately.
  for (uint32_t d : plan.input_data()) {
    const wf::DataConnector& dc = inst->definition->data_connectors()[d];
    uint32_t to = plan.data_target(d).to;
    data::Container* target;
    if (to == wf::NavigationPlan::kProcessOutput) {
      target = &inst->output;
    } else {
      EXO_RETURN_NOT_OK(MaterializeActivityInput(inst, to));
      target = &inst->activity_input(to);
    }
    EXO_RETURN_NOT_OK(dc.mapping.Apply(inst->input, target));
  }
  return Status::OK();
}

Status Engine::MaterializeActivityInput(ProcessInstance* inst, uint32_t aid) {
  if (!inst->packed) return Status::OK();
  data::Container& c = inst->cold[aid].input;
  if (!c.type_name().empty()) return Status::OK();
  if (inst->arena != nullptr) {
    c = inst->arena->activities()[aid].input;
    return Status::OK();
  }
  EXO_ASSIGN_OR_RETURN(
      c, NewContainer(inst->definition->activities()[aid].input_type));
  return Status::OK();
}

Status Engine::MaterializeActivityOutput(ProcessInstance* inst, uint32_t aid) {
  if (!inst->packed) return Status::OK();
  data::Container& c = inst->cold[aid].output;
  if (!c.type_name().empty()) return Status::OK();
  if (inst->arena != nullptr) {
    c = inst->arena->activities()[aid].output;
    return Status::OK();
  }
  EXO_ASSIGN_OR_RETURN(
      c, NewContainer(inst->definition->activities()[aid].output_type));
  return Status::OK();
}

Status Engine::ReadyStartActivities(ProcessInstance* inst) {
  for (uint32_t aid : inst->plan->start_activities()) {
    EXO_RETURN_NOT_OK(MakeReady(inst, aid));
  }
  return Status::OK();
}

// --- readiness and the run queue ---------------------------------------------

Status Engine::PostWorkItem(ProcessInstance* inst, uint32_t aid,
                            const char* no_worklists_error) {
  const wf::Activity& def = DefOf(inst, aid);
  if (worklists_ == nullptr) {
    return Status::FailedPrecondition("manual activity " + def.name +
                                      no_worklists_error);
  }
  EXO_ASSIGN_OR_RETURN(
      org::WorkItemId item,
      worklists_->Post(inst->id, def.name, def.role, def.notify_after_micros,
                       def.notify_role));
  inst->work_item(aid) = item;
  Audit(AuditKind::kWorkItemPosted, inst->id, def.name, std::to_string(item));
  return Status::OK();
}

Status Engine::MakeReady(ProcessInstance* inst, uint32_t aid) {
  inst->SetState(aid, ActivityState::kReady);
  const std::string& name = NameOf(inst, aid);
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(
        JournalAppend(wfjournal::EventType::kActivityReady, inst->id, name));
  }
  Audit(AuditKind::kActivityReady, inst->id, name);

  if (inst->plan->activity(aid).manual) {
    return PostWorkItem(inst, aid,
                        " requires an attached organization "
                        "(AttachOrganization)");
  }
  Enqueue(inst, aid);
  return Status::OK();
}

void Engine::Enqueue(ProcessInstance* inst, uint32_t aid) {
  uint8_t& flag = inst->enqueued_flag(aid);
  if (flag) return;
  flag = 1;
  ready_queue_.emplace_back(inst->index, aid);
}

Status Engine::Drain(int limit) {
  int steps = 0;
  while (!ready_queue_.empty()) {
    if (limit > 0 && steps >= limit) break;
    ++steps;
    auto [index, aid] = ready_queue_.front();
    ready_queue_.pop_front();

    ProcessInstance* inst = &instances_[index];
    inst->enqueued_flag(aid) = 0;
    if (inst->suspended) continue;  // parked; ResumeSuspended re-enqueues
    if (inst->failed) continue;     // quarantined
    if (inst->detached) continue;   // migrated away; slot is a husk
    if (inst->state(aid) != ActivityState::kReady) {
      continue;  // stale entry
    }
    EXO_RETURN_NOT_OK(StartExecution(inst, aid, ""));
  }
  return Status::OK();
}

Status Engine::Run() {
  Status st = Drain(0);
  Status fs = FlushJournal();
  if (!st.ok()) return st;
  EXO_RETURN_NOT_OK(fs);
  return MaybeCheckpoint();
}

Status Engine::RunSlice(int max_steps, bool* quiescent) {
  Status st = Drain(max_steps);
  Status fs = FlushJournal();
  if (quiescent != nullptr) *quiescent = ready_queue_.empty();
  if (!st.ok()) return st;
  EXO_RETURN_NOT_OK(fs);
  return MaybeCheckpoint();
}

Result<std::string> Engine::RunToCompletion(const std::string& process_name,
                                            const data::Container* input) {
  EXO_ASSIGN_OR_RETURN(std::string id, StartProcess(process_name, input));
  EXO_RETURN_NOT_OK(Run());
  if (IsFailed(id)) {
    EXO_ASSIGN_OR_RETURN(const ProcessInstance* inst, FindInstance(id));
    return Status::FailedPrecondition("instance " + id + " is quarantined: " +
                                      inst->failure_reason);
  }
  if (!IsFinished(id)) {
    return Status::FailedPrecondition(
        "instance " + id +
        " stalled (manual work pending?); use Run/ExecuteWorkItem");
  }
  return id;
}

// --- execution ----------------------------------------------------------------

Status Engine::StartExecution(ProcessInstance* inst, uint32_t aid,
                              const std::string& person) {
  const wf::Activity& def = DefOf(inst, aid);

  const int32_t attempt = ++inst->attempt(aid);
  inst->SetState(aid, ActivityState::kRunning);
  EXO_RETURN_NOT_OK(MaterializeActivityInput(inst, aid));
  // Fresh output container per attempt: a half-written image from a failed
  // attempt must not leak into the next one. The packed layout takes the
  // fresh container from the arena's preformatted prototype — one
  // container copy instead of a type-registry walk (the prototype IS
  // NewContainer's result, so the two paths are indistinguishable).
  if (inst->packed && inst->arena != nullptr) {
    inst->cold[aid].output = inst->arena->activities()[aid].output;
  } else {
    EXO_ASSIGN_OR_RETURN(inst->activity_output(aid),
                         NewContainer(def.output_type));
  }
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityStarted,
                                    inst->id, def.name, "", false,
                                    std::to_string(attempt)));
  }
  Audit(AuditKind::kActivityStarted, inst->id, def.name,
        "attempt=" + std::to_string(attempt));
  ++stats_.activities_executed;

  if (def.is_process()) {
    // Block: spawn a child instance fed from this activity's input.
    EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* sub,
                         definitions_->FindProcess(def.subprocess));
    EXO_ASSIGN_OR_RETURN(
        std::string child_id,
        CreateInstance(sub, &inst->activity_input(aid), inst->id, def.name));
    (void)child_id;  // continuation happens when the child finishes
    return Status::OK();
  }

  // Program activity.
  EXO_ASSIGN_OR_RETURN(const ProgramFn* fn, programs_->Find(def.program));
  ProgramContext ctx;
  ctx.instance_id = inst->id;
  ctx.activity = def.name;
  ctx.attempt = attempt;
  ctx.person = person;
  // Every 8th execution is wall-clock sampled into the activity-cost EWMA
  // (mean_activity_cost_micros) so the fleet's cost-aware steal victim
  // picking has a load signal without two clock reads per dispatch.
  const bool sample_cost = (cost_sample_tick_++ & 7) == 0;
  const Micros cost_t0 = sample_cost ? clock_->NowMicros() : 0;
  Status st = (*fn)(inst->activity_input(aid), &inst->activity_output(aid),
                    ctx);
  if (sample_cost) {
    const double cost = static_cast<double>(clock_->NowMicros() - cost_t0);
    cost_ewma_micros_ = cost_ewma_micros_ == 0.0
                            ? cost
                            : cost_ewma_micros_ +
                                  0.2 * (cost - cost_ewma_micros_);
  }
  if (st.IsPending()) {
    // Asynchronous external work (§3.3: activities "can be of any type
    // ... as long as there is a way to report their progress"). The
    // activity stays running until CompleteAsync reports the outcome; a
    // crash meanwhile re-runs it from the beginning, the same
    // at-least-once contract as everything else.
    Audit(AuditKind::kActivityPending, inst->id, def.name, st.message());
    return Status::OK();
  }
  if (!st.ok()) {
    return HandleProgramFailure(inst, aid, st);
  }

  inst->failures(aid) = 0;
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                    inst->id, def.name, "", false,
                                    inst->activity_output(aid).Serialize()));
  }
  Audit(AuditKind::kActivityFinished, inst->id, def.name);
  return HandleFinished(inst, aid);
}

const RetryPolicy& Engine::PolicyFor(const std::string& activity) const {
  auto it = options_.activity_retry.find(activity);
  return it == options_.activity_retry.end() ? options_.retry : it->second;
}

Micros Engine::BackoffDelay(const RetryPolicy& policy, int failures,
                            const std::string& instance,
                            const std::string& activity) const {
  if (policy.initial_backoff_micros <= 0) return 0;
  double delay = static_cast<double>(policy.initial_backoff_micros);
  double cap = policy.max_backoff_micros > 0
                   ? static_cast<double>(policy.max_backoff_micros)
                   : 0.0;
  for (int k = 1; k < failures; ++k) {
    delay *= policy.backoff_multiplier;
    if (cap > 0 && delay >= cap) {
      delay = cap;
      break;
    }
  }
  if (cap > 0 && delay > cap) delay = cap;
  if (policy.jitter > 0) {
    uint64_t h = HashMix(0xcbf29ce484222325ull, options_.retry_jitter_seed);
    h = HashMix(h, instance);
    h = HashMix(h, activity);
    h = HashMix(h, static_cast<uint64_t>(failures));
    double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    delay *= 1.0 + policy.jitter * (2.0 * u - 1.0);
  }
  return static_cast<Micros>(delay);
}

Status Engine::HandleProgramFailure(ProcessInstance* inst, uint32_t aid,
                                    const Status& error) {
  const std::string& name = NameOf(inst, aid);
  const int32_t failures = ++inst->failures(aid);
  ++stats_.program_failures;
  Audit(AuditKind::kProgramFailure, inst->id, name, error.ToString());

  const RetryPolicy& policy = PolicyFor(name);
  bool permanent = policy.is_permanent
                       ? policy.is_permanent(error)
                       : RetryPolicy::DefaultIsPermanent(error);
  if (permanent) {
    ++stats_.permanent_failures;
    Audit(AuditKind::kPermanentFailure, inst->id, name, error.ToString());
    return QuarantineInstance(
        inst, StrFormat("activity %s in %s: permanent failure: %s",
                        name.c_str(), inst->id.c_str(),
                        error.ToString().c_str()));
  }
  if (policy.max_attempts > 0 && failures >= policy.max_attempts) {
    return QuarantineInstance(
        inst, StrFormat("activity %s in %s failed %d times; last error: %s",
                        name.c_str(), inst->id.c_str(), failures,
                        error.ToString().c_str()));
  }
  // The retry budget lives on the top-level instance, so block children
  // draw from one shared allowance.
  ProcessInstance* root = inst;
  while (root->is_child()) {
    EXO_ASSIGN_OR_RETURN(root, MutableInstance(root->parent_instance));
  }
  ++root->retries_used;
  if (options_.retry.instance_retry_budget > 0 &&
      root->retries_used > options_.retry.instance_retry_budget) {
    return QuarantineInstance(
        inst,
        StrFormat("instance %s exhausted its retry budget of %d; "
                  "last failing activity %s: %s",
                  root->id.c_str(), options_.retry.instance_retry_budget,
                  name.c_str(), error.ToString().c_str()));
  }
  ++stats_.retries;
  Micros delay = BackoffDelay(policy, failures, inst->id, name);
  if (delay > 0) {
    ++stats_.backoff_waits;
    stats_.backoff_wait_micros += static_cast<uint64_t>(delay);
    Audit(AuditKind::kRetryBackoff, inst->id, name, std::to_string(delay));
    if (options_.on_backoff) options_.on_backoff(delay);
  }
  // Program crash: reschedule from the beginning (paper §3.3).
  return Reschedule(inst, aid, "program-failure");
}

Status Engine::QuarantineInstance(ProcessInstance* inst, std::string reason) {
  ProcessInstance* root = inst;
  while (root->is_child()) {
    EXO_ASSIGN_OR_RETURN(root, MutableInstance(root->parent_instance));
  }
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kInstanceFailed,
                                  root->id, "", "", false, reason));
  return ApplyFailed(root, reason);
}

Status Engine::ApplyFailed(ProcessInstance* inst, const std::string& reason) {
  // Children first, then the same name-ordered settle sweep as ApplyCancel;
  // the instance keeps its journaled data state (a saga's compensation
  // process stays runnable against the committed State image), it just
  // stops navigating.
  for (uint32_t aid : inst->plan->ids_by_name()) {
    if (inst->state(aid) == ActivityState::kRunning &&
        !inst->child_instance(aid).empty()) {
      auto child = MutableInstance(inst->child_instance(aid));
      if (child.ok() && !(*child)->finished && !(*child)->failed) {
        EXO_RETURN_NOT_OK(ApplyFailed(*child, reason));
      }
    }
  }
  for (uint32_t aid : inst->plan->ids_by_name()) {
    ActivityState s = inst->state(aid);
    if (s == ActivityState::kTerminated || s == ActivityState::kDead) {
      continue;
    }
    const std::string& name = NameOf(inst, aid);
    std::optional<org::WorkItemId>& item = inst->work_item(aid);
    if (item.has_value() && worklists_ != nullptr) {
      (void)worklists_->Cancel(*item);
      Audit(AuditKind::kWorkItemCancelled, inst->id, name,
            std::to_string(*item));
      item.reset();
    }
    inst->SetState(aid, ActivityState::kDead);
    Audit(AuditKind::kActivityDead, inst->id, name, "failed");
  }
  inst->failed = true;
  inst->failure_reason = reason;
  inst->suspended = false;
  if (!inst->is_child()) {
    ++stats_.instances_failed;
    failed_.push_back({inst->id, reason});
  }
  Audit(AuditKind::kInstanceFailed, inst->id, "", reason);
  return Status::OK();
}

Status Engine::HandleFinished(ProcessInstance* inst, uint32_t aid) {
  const wf::Activity& def = DefOf(inst, aid);
  inst->SetState(aid, ActivityState::kFinished);

  bool exit_ok;
  const wf::NavigationPlan::ActivityInfo& info = inst->plan->activity(aid);
  if (info.trivial_exit) {
    exit_ok = true;  // always-true exit condition: skip the resolver
  } else {
    const data::Container& out = inst->activity_output(aid);
    Result<bool> exit_result = [&]() -> Result<bool> {
      if (info.exit_vm >= 0 && options_.use_condition_vm) {
        return EvalVmCondition(inst, info.exit_vm, out);
      }
      ++stats_.tree_condition_evals;
      expr::ContainerResolver resolver(out);
      return def.exit_condition.Evaluate(resolver);
    }();
    if (!exit_result.ok()) {
      return exit_result.status().WithContext("exit condition of " + def.name +
                                              " in " + inst->id);
    }
    exit_ok = exit_result.value();
  }
  if (!exit_ok) {
    const int32_t attempt = inst->attempt(aid);
    if (options_.max_exit_retries > 0 &&
        attempt >= options_.max_exit_retries) {
      return Status::FailedPrecondition(StrFormat(
          "activity %s in %s: exit condition still false after %d attempts",
          def.name.c_str(), inst->id.c_str(), attempt));
    }
    return Reschedule(inst, aid, "exit-condition");
  }
  return Terminate(inst, aid);
}

Status Engine::Reschedule(ProcessInstance* inst, uint32_t aid,
                          const std::string& reason) {
  inst->SetState(aid, ActivityState::kReady);
  ++stats_.reschedules;
  const std::string& name = NameOf(inst, aid);
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityRescheduled,
                                  inst->id, name, "", false, reason));
  Audit(AuditKind::kActivityRescheduled, inst->id, name, reason);

  if (inst->plan->activity(aid).manual) {
    return PostWorkItem(inst, aid, " rescheduled without worklists");
  }
  Enqueue(inst, aid);
  return Status::OK();
}

Status Engine::Terminate(ProcessInstance* inst, uint32_t aid) {
  inst->SetState(aid, ActivityState::kTerminated);
  const std::string& name = NameOf(inst, aid);
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityTerminated,
                                    inst->id, name));
  }
  Audit(AuditKind::kActivityTerminated, inst->id, name);
  EXO_RETURN_NOT_OK(PushData(inst, aid));
  EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, aid, /*all_false=*/false));
  return CheckInstanceCompletion(inst);
}

Status Engine::MarkDead(ProcessInstance* inst, uint32_t aid) {
  inst->SetState(aid, ActivityState::kDead);
  ++stats_.dead_path_terminations;
  const std::string& name = NameOf(inst, aid);
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(
        JournalAppend(wfjournal::EventType::kActivityDead, inst->id, name));
  }
  Audit(AuditKind::kActivityDead, inst->id, name);

  std::optional<org::WorkItemId>& item = inst->work_item(aid);
  if (item.has_value() && worklists_ != nullptr) {
    // Best effort: the item may already be done (it should not be, since
    // the activity was still waiting, but recovery can race).
    (void)worklists_->Cancel(*item);
    Audit(AuditKind::kWorkItemCancelled, inst->id, name,
          std::to_string(*item));
    item.reset();
  }
  EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, aid, /*all_false=*/true));
  return CheckInstanceCompletion(inst);
}

Result<bool> Engine::EvalVmCondition(const ProcessInstance* inst,
                                     int32_t index,
                                     const data::Container& input) {
  ++stats_.vm_condition_evals;
  const expr::CompiledCondition& prog = inst->plan->vm_program(index);
  if (prog.typed() && options_.use_typed_conditions) {
    ++stats_.typed_condition_evals;
    return prog.EvaluateBool(input);
  }
  return prog.EvaluateBoolGeneric(input);
}

Status Engine::EvaluateOutgoing(ProcessInstance* inst, uint32_t aid,
                                bool all_false) {
  if (options_.use_step_programs) {
    if (native_enabled_) {
      Status native_status = Status::OK();
      if (TryNativeStepProgram(inst, aid, all_false, &native_status)) {
        return native_status;
      }
    }
    return RunStepProgram(inst, aid, all_false);
  }

  const wf::NavigationPlan& plan = *inst->plan;
  const wf::NavigationPlan::ActivityInfo& info = plan.activity(aid);
  const std::vector<wf::ControlConnector>& connectors =
      inst->definition->control_connectors();

  bool any_true = false;
  // Fresh evaluations are delivered only after every sibling connector is
  // journaled, so a successor's join never fires on a partial picture.
  std::vector<std::pair<uint32_t, bool>> fresh;

  // A conditioned sweep reads the source output container (packed cold
  // containers materialize on first touch).
  if (!all_false && info.has_cond_out) {
    EXO_RETURN_NOT_OK(MaterializeActivityOutput(inst, aid));
  }
  const data::Container& out = inst->activity_output(aid);

  // Every outgoing connector reads the same source output container, so
  // one resolver serves the whole sweep — but only tree-walked conditions
  // consult it, so the plan's resolver bits let trivial/VM-only sweeps
  // (and all-false dead-path sweeps) skip constructing it entirely.
  std::optional<expr::ContainerResolver> resolver;
  if (!all_false &&
      (info.needs_resolver ||
       (info.has_cond_out && !options_.use_condition_vm))) {
    resolver.emplace(out);
  }

  // Non-otherwise connectors first.
  for (uint32_t slot = 0; slot < info.out_control.size(); ++slot) {
    uint32_t cidx = info.out_control[slot];
    const wf::NavigationPlan::ConnectorInfo& ci = plan.connector(cidx);
    if (ci.is_otherwise) continue;
    bool value;
    if (inst->out_eval_abs(info.out_eval_base + slot) >= 0) {
      value = inst->out_eval_abs(info.out_eval_base + slot) != 0;
    } else {
      if (all_false) {
        value = false;
      } else if (ci.trivial) {
        value = true;  // unconditioned connector: no resolver needed
      } else {
        const wf::ControlConnector& c = connectors[cidx];
        Result<bool> r = [&]() -> Result<bool> {
          if (ci.cond_vm >= 0 && options_.use_condition_vm) {
            return EvalVmCondition(inst, ci.cond_vm, out);
          }
          ++stats_.tree_condition_evals;
          return c.condition.Evaluate(*resolver);
        }();
        if (!r.ok()) {
          if (options_.condition_error_is_false) {
            value = false;
          } else {
            return r.status().WithContext("transition condition " + c.from +
                                          " -> " + c.to + " in " + inst->id);
          }
        } else {
          value = r.value();
        }
      }
      inst->out_eval_abs(info.out_eval_base + slot) = value ? 1 : 0;
      ++stats_.connectors_evaluated;
      const wf::ControlConnector& c = connectors[cidx];
      if (journal_ != nullptr) {
        EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kConnectorEval,
                                        inst->id, c.from, c.to, value));
      }
      Audit(value ? AuditKind::kConnectorTrue : AuditKind::kConnectorFalse,
            inst->id, c.from, c.to);
      fresh.emplace_back(cidx, value);
    }
    any_true = any_true || value;
  }

  // Otherwise connector fires iff all conditioned siblings were false.
  for (uint32_t slot = 0; slot < info.out_control.size(); ++slot) {
    uint32_t cidx = info.out_control[slot];
    if (!plan.connector(cidx).is_otherwise) continue;
    if (inst->out_eval_abs(info.out_eval_base + slot) >= 0) continue;
    bool value = all_false ? false : !any_true;
    inst->out_eval_abs(info.out_eval_base + slot) = value ? 1 : 0;
    ++stats_.connectors_evaluated;
    const wf::ControlConnector& c = connectors[cidx];
    if (journal_ != nullptr) {
      EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kConnectorEval,
                                      inst->id, c.from, c.to, value));
    }
    Audit(value ? AuditKind::kConnectorTrue : AuditKind::kConnectorFalse,
          inst->id, c.from, c.to);
    fresh.emplace_back(cidx, value);
  }

  for (auto [cidx, value] : fresh) {
    EXO_RETURN_NOT_OK(DeliverSignal(inst, cidx, value));
  }
  return Status::OK();
}

Status Engine::DeliverSignal(ProcessInstance* inst, uint32_t connector_index,
                             bool value) {
  const wf::NavigationPlan::ConnectorInfo& ci =
      inst->plan->connector(connector_index);
  inst->in_eval(ci.to, ci.in_slot) = value ? 1 : 0;
  if (inst->state(ci.to) != ActivityState::kWaiting) return Status::OK();
  return ApplyJoin(inst, ci.to);
}

Status Engine::ApplyJoin(ProcessInstance* inst, uint32_t aid) {
  if (inst->state(aid) != ActivityState::kWaiting) return Status::OK();
  const wf::NavigationPlan::ActivityInfo& info = inst->plan->activity(aid);
  if (info.join_fan_in == 0) return Status::OK();

  // The start condition is decided only once every incoming connector has
  // been evaluated (terminated sources evaluate their conditions; dead
  // sources evaluate to false via dead path elimination). Deciding early
  // would let an OR-joined activity start before its siblings settle,
  // which breaks the reverse-order compensation pattern of the paper's
  // Figure 2.
  uint32_t evaluated = 0, trues = 0;
  for (uint32_t s = 0; s < info.join_fan_in; ++s) {
    int8_t v = inst->in_eval_abs(info.in_eval_base + s);
    if (v < 0) continue;
    ++evaluated;
    trues += static_cast<uint32_t>(v);
  }
  if (evaluated < info.join_fan_in) return Status::OK();

  bool start = info.or_join ? trues > 0 : trues == info.join_fan_in;
  return start ? MakeReady(inst, aid) : MarkDead(inst, aid);
}

Status Engine::PushData(ProcessInstance* inst, uint32_t aid) {
  const wf::NavigationPlan& plan = *inst->plan;
  if (!plan.activity(aid).out_data.empty()) {
    EXO_RETURN_NOT_OK(MaterializeActivityOutput(inst, aid));
  }
  for (uint32_t d : plan.activity(aid).out_data) {
    const wf::DataConnector& dc = inst->definition->data_connectors()[d];
    uint32_t to = plan.data_target(d).to;
    data::Container* target;
    if (to == wf::NavigationPlan::kProcessOutput) {
      target = &inst->output;
    } else {
      EXO_RETURN_NOT_OK(MaterializeActivityInput(inst, to));
      target = &inst->activity_input(to);
    }
    EXO_RETURN_NOT_OK(dc.mapping.Apply(inst->activity_output(aid), target));
  }
  return Status::OK();
}

Status Engine::CheckInstanceCompletion(ProcessInstance* inst) {
  if (inst->finished || inst->failed || !inst->AllSettled()) {
    return Status::OK();
  }
  inst->finished = true;
  ++stats_.instances_finished;
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kInstanceFinished,
                                    inst->id, "", "", false,
                                    inst->output.Serialize()));
  }
  Audit(AuditKind::kInstanceFinished, inst->id);
  if (inst->is_child()) return ContinueParent(inst);
  return Status::OK();
}

Status Engine::ContinueParent(ProcessInstance* child) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* parent,
                       MutableInstance(child->parent_instance));
  EXO_ASSIGN_OR_RETURN(
      size_t aid, parent->definition->ActivityIndex(child->parent_activity));
  if (parent->state(static_cast<uint32_t>(aid)) != ActivityState::kRunning) {
    return Status::OK();  // already done
  }
  data::Container& out = parent->activity_output(static_cast<uint32_t>(aid));
  out = child->output;
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                    parent->id, child->parent_activity, "",
                                    false, out.Serialize()));
  }
  Audit(AuditKind::kActivityFinished, parent->id, child->parent_activity,
        "block child " + child->id);
  return HandleFinished(parent, static_cast<uint32_t>(aid));
}

// --- manual work ---------------------------------------------------------------

Status Engine::Claim(org::WorkItemId id, const std::string& person) {
  if (worklists_ == nullptr) {
    return Status::FailedPrecondition("no organization attached");
  }
  return worklists_->Claim(id, person);
}

Status Engine::ExecuteWorkItem(org::WorkItemId id, const std::string& person) {
  if (worklists_ == nullptr) {
    return Status::FailedPrecondition("no organization attached");
  }
  EXO_ASSIGN_OR_RETURN(const org::WorkItem* item, worklists_->Find(id));
  if (item->state != org::WorkItemState::kClaimed ||
      item->claimed_by != person) {
    return Status::FailedPrecondition("work item " + std::to_string(id) +
                                      " is not claimed by " + person);
  }
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst,
                       MutableInstance(item->process_instance));
  std::string activity = item->activity;
  EXO_ASSIGN_OR_RETURN(size_t aid, inst->definition->ActivityIndex(activity));
  if (inst->state(static_cast<uint32_t>(aid)) != ActivityState::kReady) {
    return Status::FailedPrecondition("activity " + activity +
                                      " is not ready in " + inst->id);
  }
  EXO_RETURN_NOT_OK(worklists_->Complete(id, person));
  inst->work_item(static_cast<uint32_t>(aid)).reset();
  EXO_RETURN_NOT_OK(StartExecution(inst, static_cast<uint32_t>(aid), person));
  return Run();
}

Status Engine::CompleteAsync(const std::string& instance_id,
                             const std::string& activity,
                             const data::Container& output) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  EXO_ASSIGN_OR_RETURN(size_t aid, inst->definition->ActivityIndex(activity));
  const wf::Activity& def = DefOf(inst, static_cast<uint32_t>(aid));
  ActivityState s = inst->state(static_cast<uint32_t>(aid));
  if (s != ActivityState::kRunning) {
    return Status::FailedPrecondition(
        "activity " + activity + " in " + instance_id + " is " +
        ActivityStateName(s) + "; only running activities complete");
  }
  if (!def.is_program()) {
    return Status::FailedPrecondition(
        "block activity " + activity + " completes through its subprocess");
  }
  if (output.type_name() != def.output_type) {
    return Status::InvalidArgument("output container type " +
                                   output.type_name() + " does not match " +
                                   def.output_type);
  }
  data::Container& out = inst->activity_output(static_cast<uint32_t>(aid));
  out = output;
  inst->failures(static_cast<uint32_t>(aid)) = 0;
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                    inst->id, activity, "", false,
                                    out.Serialize()));
  }
  Audit(AuditKind::kActivityFinished, inst->id, activity, "async");
  EXO_RETURN_NOT_OK(HandleFinished(inst, static_cast<uint32_t>(aid)));
  return Run();
}

Status Engine::ForceFinish(const std::string& instance_id,
                           const std::string& activity,
                           const data::Container& output) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  EXO_ASSIGN_OR_RETURN(size_t aid, inst->definition->ActivityIndex(activity));
  const uint32_t uaid = static_cast<uint32_t>(aid);
  const wf::Activity& def = DefOf(inst, uaid);
  ActivityState s = inst->state(uaid);
  if (s != ActivityState::kReady) {
    return Status::FailedPrecondition(
        "only ready activities can be force-finished; " + activity + " is " +
        ActivityStateName(s));
  }
  if (output.type_name() != def.output_type) {
    return Status::InvalidArgument("output container type " +
                                   output.type_name() + " does not match " +
                                   def.output_type);
  }
  std::optional<org::WorkItemId>& item = inst->work_item(uaid);
  if (item.has_value() && worklists_ != nullptr) {
    (void)worklists_->Cancel(*item);
    Audit(AuditKind::kWorkItemCancelled, inst->id, activity,
          std::to_string(*item));
    item.reset();
  }
  const int32_t attempt = ++inst->attempt(uaid);
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityStarted,
                                  inst->id, activity, "", false,
                                  std::to_string(attempt)));
  data::Container& out = inst->activity_output(uaid);
  out = output;
  if (journal_ != nullptr) {
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                    inst->id, activity, "", false,
                                    out.Serialize()));
  }
  Audit(AuditKind::kForcedFinish, inst->id, activity);
  EXO_RETURN_NOT_OK(HandleFinished(inst, static_cast<uint32_t>(aid)));
  return Run();
}

std::vector<org::Notification> Engine::CheckDeadlines() {
  if (worklists_ == nullptr) return {};
  return worklists_->CheckDeadlines();
}

// --- instance lifecycle control ------------------------------------------------

Status Engine::SuspendInstance(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  if (inst->is_child()) {
    return Status::InvalidArgument(
        "suspend the top-level instance, not block child " + instance_id);
  }
  if (inst->finished) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already finished");
  }
  if (inst->failed) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " is quarantined");
  }
  if (inst->suspended) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already suspended");
  }
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kInstanceSuspended, instance_id));
  EXO_RETURN_NOT_OK(ApplySuspend(inst));
  return FlushJournal();
}

Status Engine::ApplySuspend(ProcessInstance* inst) {
  inst->suspended = true;
  // Name order: the old runtime kept activities in a name-keyed map, and
  // lifecycle sweeps preserve its iteration order so audit and worklist
  // effects stay byte-identical.
  for (uint32_t aid : inst->plan->ids_by_name()) {
    std::optional<org::WorkItemId>& item = inst->work_item(aid);
    if (item.has_value() && worklists_ != nullptr) {
      (void)worklists_->Cancel(*item);
      item.reset();
    }
    if (inst->state(aid) == ActivityState::kRunning &&
        !inst->child_instance(aid).empty()) {
      auto child = MutableInstance(inst->child_instance(aid));
      if (child.ok() && !(*child)->finished && !(*child)->failed) {
        EXO_RETURN_NOT_OK(ApplySuspend(*child));
      }
    }
  }
  return Status::OK();
}

Status Engine::ResumeSuspended(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  if (!inst->suspended) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " is not suspended");
  }
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kInstanceResumed, instance_id));
  EXO_RETURN_NOT_OK(ApplyResume(inst));
  return FlushJournal();
}

Status Engine::ApplyResume(ProcessInstance* inst) {
  inst->suspended = false;
  if (recovering_) return Status::OK();  // ResumeAfterReplay re-dispatches
  uint32_t n = inst->plan->activity_count();
  for (uint32_t aid = 0; aid < n; ++aid) {  // declaration order
    ActivityState s = inst->state(aid);
    if (s == ActivityState::kReady) {
      if (inst->plan->activity(aid).manual) {
        EXO_RETURN_NOT_OK(
            PostWorkItem(inst, aid, " resumed without worklists"));
      } else {
        Enqueue(inst, aid);
      }
    } else if (s == ActivityState::kRunning &&
               !inst->child_instance(aid).empty()) {
      auto child = MutableInstance(inst->child_instance(aid));
      if (child.ok() && (*child)->suspended) {
        EXO_RETURN_NOT_OK(ApplyResume(*child));
      }
    }
  }
  return Status::OK();
}

Status Engine::CancelInstance(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  if (inst->is_child()) {
    return Status::InvalidArgument(
        "cancel the top-level instance, not block child " + instance_id);
  }
  if (inst->finished) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already finished");
  }
  if (inst->failed) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " is quarantined");
  }
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kInstanceCancelled, instance_id));
  EXO_RETURN_NOT_OK(ApplyCancel(inst));
  return FlushJournal();
}

Status Engine::ApplyCancel(ProcessInstance* inst) {
  // Children first, so a block child is settled before its parent slot.
  // Both sweeps run in name order (see ApplySuspend).
  for (uint32_t aid : inst->plan->ids_by_name()) {
    if (inst->state(aid) == ActivityState::kRunning &&
        !inst->child_instance(aid).empty()) {
      auto child = MutableInstance(inst->child_instance(aid));
      if (child.ok() && !(*child)->finished && !(*child)->failed) {
        EXO_RETURN_NOT_OK(ApplyCancel(*child));
      }
    }
  }
  for (uint32_t aid : inst->plan->ids_by_name()) {
    ActivityState s = inst->state(aid);
    if (s == ActivityState::kTerminated || s == ActivityState::kDead) {
      continue;
    }
    const std::string& name = NameOf(inst, aid);
    std::optional<org::WorkItemId>& item = inst->work_item(aid);
    if (item.has_value() && worklists_ != nullptr) {
      (void)worklists_->Cancel(*item);
      Audit(AuditKind::kWorkItemCancelled, inst->id, name,
            std::to_string(*item));
      item.reset();
    }
    inst->SetState(aid, ActivityState::kDead);
    Audit(AuditKind::kActivityDead, inst->id, name, "cancelled");
  }
  inst->cancelled = true;
  inst->suspended = false;
  inst->finished = true;
  ++stats_.instances_finished;
  Audit(AuditKind::kInstanceFinished, inst->id, "", "cancelled");
  return Status::OK();
}

// --- instance migration (work stealing) ------------------------------------------

size_t Engine::unfinished_top_level() const {
  size_t n = 0;
  for (const ProcessInstance& inst : instances_) {
    if (!inst.is_child() && !inst.finished && !inst.failed && !inst.detached) {
      ++n;
    }
  }
  return n;
}

Result<std::string> Engine::PickDetachable() const {
  if (ready_queue_.empty()) {
    return Status::NotFound("ready queue is empty");
  }
  auto root_of = [this](uint32_t index) -> const ProcessInstance* {
    const ProcessInstance* p = &instances_[index];
    while (p->is_child()) {
      auto it = instance_index_.find(p->parent_instance);
      if (it == instance_index_.end()) return nullptr;
      p = &instances_[it->second];
    }
    return p;
  };
  auto family_size = [this](const ProcessInstance* root) -> size_t {
    std::vector<const ProcessInstance*> frontier = {root};
    for (size_t i = 0; i < frontier.size(); ++i) {
      const ProcessInstance* m = frontier[i];
      const uint32_t n = m->activity_count();
      for (uint32_t aid = 0; aid < n; ++aid) {
        const std::string& child_id = m->child_instance(aid);
        if (child_id.empty()) continue;
        auto it = instance_index_.find(child_id);
        if (it == instance_index_.end()) continue;
        frontier.push_back(&instances_[it->second]);
      }
    }
    return frontier.size();
  };
  // The head family stays: the victim is about to execute it, so stealing
  // it would hand over the hottest cache lines and leave the victim idle.
  // Among the rest, prefer the *smallest* family: it is the cheapest to
  // serialize, and a deep block tree signals an expensive computation in
  // flight that is better finished where it lives than re-homed mid-run.
  const ProcessInstance* head = root_of(ready_queue_.front().first);
  const ProcessInstance* best = nullptr;
  size_t best_size = 0;
  for (auto it = ready_queue_.rbegin(); it != ready_queue_.rend(); ++it) {
    const ProcessInstance* root = root_of(it->first);
    if (root == nullptr || root == head || root == best) continue;
    if (root->finished || root->failed || root->detached || root->suspended) {
      continue;
    }
    size_t size = family_size(root);
    if (best == nullptr || size < best_size) {
      best = root;
      best_size = size;
    }
  }
  if (best == nullptr) {
    return Status::NotFound("ready queue holds a single instance family");
  }
  return best->id;
}

Status Engine::CollectFamily(ProcessInstance* root,
                             std::vector<ProcessInstance*>* family) {
  family->push_back(root);
  // Breadth-first, so parents always precede their children in the image
  // list — the order Adopt materializes them in.
  for (size_t i = 0; i < family->size(); ++i) {
    ProcessInstance* m = (*family)[i];
    const uint32_t n = m->activity_count();
    for (uint32_t aid = 0; aid < n; ++aid) {
      const std::string& child_id = m->child_instance(aid);
      if (child_id.empty()) continue;
      EXO_ASSIGN_OR_RETURN(ProcessInstance* child, MutableInstance(child_id));
      family->push_back(child);
    }
  }
  return Status::OK();
}

void Engine::ReleaseSlot(ProcessInstance* inst) {
  inst->detached = true;
  inst->ResetEnqueued();
  instance_index_.erase(inst->id);
  instance_order_.erase(
      std::remove(instance_order_.begin(), instance_order_.end(), inst->id),
      instance_order_.end());
}

Result<DetachedInstance> Engine::Detach(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* root, MutableInstance(instance_id));
  if (root->is_child()) {
    return Status::InvalidArgument("detach the top-level instance, not block child " +
                                   instance_id);
  }
  if (root->finished) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already finished");
  }
  if (root->failed) {
    // Quarantine is engine-local state (FailedInstances); migrating a
    // quarantined instance would strand its failure record.
    return Status::FailedPrecondition("instance " + instance_id +
                                      " is quarantined; it stays put");
  }
  std::vector<ProcessInstance*> family;
  EXO_RETURN_NOT_OK(CollectFamily(root, &family));
  for (ProcessInstance* m : family) {
    const uint32_t n = m->activity_count();
    for (uint32_t aid = 0; aid < n; ++aid) {
      if (m->work_item(aid).has_value()) {
        return Status::FailedPrecondition(
            "instance " + instance_id +
            " has posted work items; manual work does not migrate");
      }
      if (m->state(aid) == ActivityState::kRunning &&
          !m->plan->activity(aid).block) {
        // A Pending program will report back to *this* engine
        // (CompleteAsync); migrating underneath it would lose the report.
        return Status::FailedPrecondition(
            "instance " + instance_id +
            " has an in-flight asynchronous program");
      }
    }
  }

  DetachedInstance detached;
  detached.root_id = instance_id;
  detached.images.reserve(family.size());
  for (ProcessInstance* m : family) {
    detached.images.push_back(EncodeInstanceImage(*m));
  }
  // Journal + flush the full image *before* releasing the slots: if the
  // handoff dies between here and the adopter's journal, recovery replays
  // this record into detached_images_ and the fleet re-adopts from there.
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kInstanceDetached,
                                  instance_id, "", "", false,
                                  detached.EncodePayload()));
  EXO_RETURN_NOT_OK(FlushJournal());
  for (ProcessInstance* m : family) ReleaseSlot(m);
  ready_queue_.erase(
      std::remove_if(ready_queue_.begin(), ready_queue_.end(),
                     [this](const std::pair<uint32_t, uint32_t>& e) {
                       return instances_[e.first].detached;
                     }),
      ready_queue_.end());
  ++stats_.instances_detached;
  Audit(AuditKind::kInstanceDetached, instance_id, "",
        std::to_string(family.size()) + " instances");
  return detached;
}

Status Engine::Adopt(const DetachedInstance& detached) {
  // Materialize first: a rejected image must leave no trace in the
  // journal, or replay would fail on the same bad record forever.
  // Materialization emits no navigation records, so appending the adopt
  // record afterwards still keeps this journal self-contained — every
  // later record for the family lands after it.
  EXO_RETURN_NOT_OK(ApplyAdopt(detached));
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kInstanceAdopted,
                                  detached.root_id, "", "", false,
                                  detached.EncodePayload()));
  return FlushJournal();
}

Status Engine::ApplyAdopt(const DetachedInstance& detached) {
  // Decode and validate everything before touching engine state, so a bad
  // image cannot leave a half-adopted family behind.
  std::vector<InstanceImage> images;
  images.reserve(detached.images.size());
  for (const std::string& encoded : detached.images) {
    EXO_ASSIGN_OR_RETURN(InstanceImage image, DecodeInstanceImage(encoded));
    if (instance_index_.count(image.id) > 0) {
      return Status::FailedPrecondition("instance id collision adopting " +
                                        image.id +
                                        " (fleet id prefixes not set?)");
    }
    EXO_RETURN_NOT_OK(definitions_
                          ->FindProcessVersion(image.process_name,
                                               image.version)
                          .status());
    images.push_back(std::move(image));
  }
  if (images.empty() || images[0].id != detached.root_id) {
    return Status::InvalidArgument("detached payload root mismatch for " +
                                   detached.root_id);
  }
  for (const InstanceImage& image : images) {
    EXO_RETURN_NOT_OK(MaterializeImage(image));
  }
  ++stats_.instances_stolen;
  Audit(AuditKind::kInstanceAdopted, detached.root_id, "",
        std::to_string(images.size()) + " instances");
  return Status::OK();
}

Status Engine::MaterializeImage(const InstanceImage& image) {
  EXO_ASSIGN_OR_RETURN(
      const wf::ProcessDefinition* def,
      definitions_->FindProcessVersion(image.process_name, image.version));
  ProcessInstance inst;
  inst.id = image.id;
  inst.definition = def;
  inst.plan = &def->plan();
  inst.parent_instance = image.parent_instance;
  inst.parent_activity = image.parent_activity;
  EXO_ASSIGN_OR_RETURN(inst.input, NewContainer(def->input_type()));
  EXO_RETURN_NOT_OK(inst.input.Deserialize(image.input_image));
  EXO_ASSIGN_OR_RETURN(inst.output, NewContainer(def->output_type()));
  EXO_RETURN_NOT_OK(inst.output.Deserialize(image.output_image));

  uint32_t index = static_cast<uint32_t>(instances_.size());
  inst.index = index;
  instances_.push_back(std::move(inst));
  instance_index_.emplace(image.id, index);
  instance_order_.push_back(image.id);
  ProcessInstance* p = &instances_[index];
  // Arena spin-up, then overlay the imaged state on the fresh runtimes.
  EXO_RETURN_NOT_OK(InitializeRuntimes(p));
  if (image.activities.size() != p->activity_count()) {
    return Status::Corruption("instance image for " + image.id + " has " +
                              std::to_string(image.activities.size()) +
                              " activities; definition has " +
                              std::to_string(p->activity_count()));
  }
  for (uint32_t aid = 0; aid < p->activity_count(); ++aid) {
    const InstanceImage::ActivityImage& a = image.activities[aid];
    const wf::NavigationPlan::ActivityInfo& info = p->plan->activity(aid);
    if (a.incoming_eval.size() != info.in_control.size() ||
        a.outgoing_eval.size() != info.out_control.size()) {
      return Status::Corruption("connector-evaluation arity mismatch in image of " +
                                image.id);
    }
    p->SetState(aid, static_cast<ActivityState>(a.state));
    p->attempt(aid) = a.attempt;
    p->failures(aid) = a.failures;
    p->child_instance(aid) = a.child_instance;
    for (uint32_t s = 0; s < a.incoming_eval.size(); ++s) {
      p->in_eval_abs(info.in_eval_base + s) = a.incoming_eval[s];
    }
    for (uint32_t s = 0; s < a.outgoing_eval.size(); ++s) {
      p->out_eval_abs(info.out_eval_base + s) = a.outgoing_eval[s];
    }
    // A pristine container round-trips through an empty image, so skip
    // materializing cold containers that the image carries nothing for.
    if (!a.input_image.empty()) {
      EXO_RETURN_NOT_OK(MaterializeActivityInput(p, aid));
      EXO_RETURN_NOT_OK(p->activity_input(aid).Deserialize(a.input_image));
    }
    if (!a.output_image.empty()) {
      EXO_RETURN_NOT_OK(MaterializeActivityOutput(p, aid));
      EXO_RETURN_NOT_OK(p->activity_output(aid).Deserialize(a.output_image));
    }
  }
  p->finished = image.finished;
  p->cancelled = image.cancelled;
  p->failed = image.failed;
  p->suspended = image.suspended;
  p->failure_reason = image.failure_reason;
  p->retries_used = image.retries_used;

  // During journal replay, later records (and ResumeAfterReplay) drive the
  // family onward; live adoption re-dispatches the ready work here.
  if (!recovering_ && !p->suspended && !p->finished && !p->failed) {
    uint32_t n = p->plan->activity_count();
    for (uint32_t aid = 0; aid < n; ++aid) {
      if (p->state(aid) == ActivityState::kReady &&
          !p->plan->activity(aid).manual) {
        Enqueue(p, aid);
      }
    }
  }
  return Status::OK();
}

Result<DetachedInstance> Engine::TakeDetachedImage(const std::string& root_id) {
  auto it = detached_images_.find(root_id);
  if (it == detached_images_.end()) {
    return Status::NotFound("no retained detach image for " + root_id);
  }
  DetachedInstance detached = std::move(it->second);
  detached_images_.erase(it);
  return detached;
}

std::vector<std::string> Engine::RetainedDetachedRoots() const {
  std::vector<std::string> roots;
  roots.reserve(detached_images_.size());
  for (const auto& entry : detached_images_) roots.push_back(entry.first);
  return roots;
}

// --- checkpointing -----------------------------------------------------------

Status Engine::Checkpoint() {
  if (journal_ == nullptr) {
    return Status::FailedPrecondition("no journal attached");
  }
  // Collect live images in creation (index) order, so parents precede
  // their block children — the order MaterializeImage rebuilds them in.
  // Finished (including cancelled) top-level families are dropped; that is
  // what makes recovery O(live state). Quarantined families stay: their
  // committed-state image is the saga compensation source.
  std::string payload;
  size_t live = 0;
  for (const ProcessInstance& inst : instances_) {
    if (inst.detached) continue;
    const ProcessInstance* root = &inst;
    while (root->is_child()) {
      auto it = instance_index_.find(root->parent_instance);
      if (it == instance_index_.end()) break;
      root = &instances_[it->second];
    }
    if (root->finished && !root->failed) continue;
    payload += EscapeQuoted(EncodeInstanceImage(inst));
    payload += '\n';
    ++live;
  }
  // Order of operations is the crash contract (see
  // docs/specs/snapshot_recovery.md): flush navigation records, rotate so
  // the snapshot is the first record of a fresh segment, append + flush
  // the snapshot, and only then truncate — a crash anywhere in between
  // leaves either a journal that fully replays or a durable snapshot.
  EXO_RETURN_NOT_OK(FlushJournal());
  EXO_RETURN_NOT_OK(journal_->RotateSegment());
  uint64_t snapshot_seq = journal_->size();
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kSnapshot, "", "", "",
                                  /*flag=*/false, std::move(payload),
                                  std::to_string(next_instance_)));
  EXO_RETURN_NOT_OK(FlushJournal());
  ++stats_.snapshots_written;
  records_since_snapshot_ = 0;
  // Retained dangling-handoff images had their re-adoption window (the
  // fleet's post-recovery pass); a checkpoint closes it.
  detached_images_.clear();
  EXO_ASSIGN_OR_RETURN(uint64_t dropped,
                       journal_->TruncateBefore(snapshot_seq));
  stats_.records_truncated += dropped;
  Audit(AuditKind::kCheckpoint, "", "",
        std::to_string(live) + " live, " + std::to_string(dropped) +
            " truncated");
  return Status::OK();
}

Status Engine::MaybeCheckpoint() {
  if (journal_ == nullptr || recovering_ || options_.snapshot_interval == 0 ||
      records_since_snapshot_ < options_.snapshot_interval) {
    return Status::OK();
  }
  return Checkpoint();
}

// --- recovery --------------------------------------------------------------------

Status Engine::Recover() {
  if (journal_ == nullptr) {
    return Status::FailedPrecondition("no journal attached");
  }
  if (!instances_.empty()) {
    return Status::FailedPrecondition("Recover requires a fresh engine");
  }

  recovering_ = true;
  replay_saw_snapshot_ = false;
  replay_snapshot_seq_ = 0;
  Status replay = journal_->Visit([this](const wfjournal::Record& r) {
    ++stats_.recovery_records_replayed;
    Status st = ReplayRecord(r);
    if (!st.ok()) {
      return st.WithContext("replaying journal record seq " +
                            std::to_string(r.seq));
    }
    return Status::OK();
  });
  recovering_ = false;
  EXO_RETURN_NOT_OK(replay);

  // Resume every unfinished instance from its exact failure point.
  for (uint32_t i = 0; i < instances_.size(); ++i) {
    ProcessInstance* inst = &instances_[i];
    // Suspended instances stay parked; ResumeSuspended re-dispatches them.
    // Suspension only happens at navigation quiescence, so they have no
    // interrupted steps to complete. Quarantined instances are terminal,
    // and detached husks belong to whichever engine adopted them.
    if (inst->finished || inst->failed || inst->suspended || inst->detached) {
      continue;
    }
    EXO_RETURN_NOT_OK_CTX(ResumeAfterReplay(inst),
                          "resuming instance " + inst->id);
  }
  // A crash between the snapshot flush and its truncation left the
  // pre-snapshot segments behind; finish the job now that replay proved
  // the snapshot complete.
  if (replay_saw_snapshot_) {
    EXO_ASSIGN_OR_RETURN(uint64_t dropped,
                         journal_->TruncateBefore(replay_snapshot_seq_));
    stats_.records_truncated += dropped;
    records_since_snapshot_ = journal_->size() - replay_snapshot_seq_ - 1;
  } else {
    records_since_snapshot_ = journal_->size() - journal_->first_seq();
  }
  return FlushJournal();
}

Status Engine::ReplayRecord(const wfjournal::Record& r) {
  using wfjournal::EventType;
  switch (r.type) {
    case EventType::kInstanceStart: {
      // Payload: "v<version>:<name>".
      size_t colon = r.payload.find(':');
      if (r.payload.size() < 3 || r.payload[0] != 'v' ||
          colon == std::string::npos) {
        return Status::Corruption("malformed INSTANCE_START payload: " +
                                  r.payload);
      }
      int version = static_cast<int>(
          std::strtol(r.payload.c_str() + 1, nullptr, 10));
      std::string process_name = r.payload.substr(colon + 1);
      EXO_ASSIGN_OR_RETURN(
          const wf::ProcessDefinition* def,
          definitions_->FindProcessVersion(process_name, version));
      if (instance_index_.count(r.instance) > 0) {
        return Status::Corruption("duplicate INSTANCE_START for " + r.instance);
      }
      ProcessInstance inst;
      inst.id = r.instance;
      inst.definition = def;
      inst.plan = &def->plan();
      inst.parent_activity = r.activity;
      inst.parent_instance = r.to;
      EXO_ASSIGN_OR_RETURN(inst.input, NewContainer(def->input_type()));
      EXO_RETURN_NOT_OK(inst.input.Deserialize(r.extra));
      EXO_ASSIGN_OR_RETURN(inst.output, NewContainer(def->output_type()));
      uint32_t index = static_cast<uint32_t>(instances_.size());
      inst.index = index;
      instances_.push_back(std::move(inst));
      instance_index_.emplace(r.instance, index);
      instance_order_.push_back(r.instance);
      ++stats_.instances_started;
      EXO_RETURN_NOT_OK(InitializeRuntimes(&instances_[index]));
      NoteRecoveredId(r.instance);
      // Wire the parent's block activity to this child.
      if (!r.to.empty()) {
        EXO_ASSIGN_OR_RETURN(ProcessInstance* parent, MutableInstance(r.to));
        EXO_ASSIGN_OR_RETURN(size_t paid,
                             parent->definition->ActivityIndex(r.activity));
        parent->child_instance(static_cast<uint32_t>(paid)) = r.instance;
      }
      return Status::OK();
    }
    case EventType::kActivityReady:
    case EventType::kActivityRescheduled: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_ASSIGN_OR_RETURN(size_t aid,
                           inst->definition->ActivityIndex(r.activity));
      inst->SetState(static_cast<uint32_t>(aid), ActivityState::kReady);
      return Status::OK();
    }
    case EventType::kActivityStarted: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_ASSIGN_OR_RETURN(size_t aid,
                           inst->definition->ActivityIndex(r.activity));
      const uint32_t uaid = static_cast<uint32_t>(aid);
      inst->SetState(uaid, ActivityState::kRunning);
      inst->attempt(uaid) =
          static_cast<int32_t>(std::strtol(r.payload.c_str(), nullptr, 10));
      EXO_ASSIGN_OR_RETURN(inst->activity_output(uaid),
                           NewContainer(DefOf(inst, uaid).output_type));
      return Status::OK();
    }
    case EventType::kActivityFinished: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_ASSIGN_OR_RETURN(size_t aid,
                           inst->definition->ActivityIndex(r.activity));
      const uint32_t uaid = static_cast<uint32_t>(aid);
      EXO_RETURN_NOT_OK(MaterializeActivityOutput(inst, uaid));
      EXO_RETURN_NOT_OK(inst->activity_output(uaid).Deserialize(r.payload));
      inst->SetState(uaid, ActivityState::kFinished);
      return Status::OK();
    }
    case EventType::kActivityTerminated: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_ASSIGN_OR_RETURN(size_t aid,
                           inst->definition->ActivityIndex(r.activity));
      inst->SetState(static_cast<uint32_t>(aid), ActivityState::kTerminated);
      inst->failures(static_cast<uint32_t>(aid)) = 0;
      // Re-derive the (volatile) data pushes from the journaled output.
      return PushData(inst, static_cast<uint32_t>(aid));
    }
    case EventType::kActivityDead: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_ASSIGN_OR_RETURN(size_t aid,
                           inst->definition->ActivityIndex(r.activity));
      inst->SetState(static_cast<uint32_t>(aid), ActivityState::kDead);
      return Status::OK();
    }
    case EventType::kConnectorEval: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      const std::vector<wf::ControlConnector>& connectors =
          inst->definition->control_connectors();
      Result<size_t> from = inst->definition->ActivityIndex(r.activity);
      if (from.ok()) {
        const wf::NavigationPlan::ActivityInfo& info =
            inst->plan->activity(static_cast<uint32_t>(*from));
        for (uint32_t cidx : info.out_control) {
          if (connectors[cidx].to != r.to) continue;
          const wf::NavigationPlan::ConnectorInfo& ci =
              inst->plan->connector(cidx);
          inst->out_eval(ci.from, ci.out_slot) = r.flag ? 1 : 0;
          inst->in_eval(ci.to, ci.in_slot) = r.flag ? 1 : 0;
          return Status::OK();
        }
      }
      return Status::Corruption("journaled connector " + r.activity + " -> " +
                                r.to + " not in definition of " +
                                inst->definition->name());
    }
    case EventType::kInstanceFinished: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_RETURN_NOT_OK(inst->output.Deserialize(r.payload));
      inst->finished = true;
      ++stats_.instances_finished;
      return Status::OK();
    }
    case EventType::kChildSpawned:
      return Status::OK();  // superseded by parent fields on INSTANCE_START
    case EventType::kInstanceSuspended: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplySuspend(inst);
    }
    case EventType::kInstanceResumed: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplyResume(inst);
    }
    case EventType::kInstanceCancelled: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplyCancel(inst);
    }
    case EventType::kInstanceFailed: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplyFailed(inst, r.payload);
    }
    case EventType::kInstanceDetached: {
      EXO_ASSIGN_OR_RETURN(
          DetachedInstance detached,
          DetachedInstance::DecodePayload(r.instance, r.payload));
      for (const std::string& encoded : detached.images) {
        EXO_ASSIGN_OR_RETURN(InstanceImage image, DecodeInstanceImage(encoded));
        auto it = instance_index_.find(image.id);
        if (it == instance_index_.end()) {
          return Status::Corruption("DETACHED for unknown instance " +
                                    image.id);
        }
        ReleaseSlot(&instances_[it->second]);
      }
      ++stats_.instances_detached;
      // Retain the image: if no engine's journal shows the adopt, the
      // handoff died in flight and the fleet re-adopts from here.
      detached_images_[r.instance] = std::move(detached);
      return Status::OK();
    }
    case EventType::kInstanceAdopted: {
      EXO_ASSIGN_OR_RETURN(
          DetachedInstance detached,
          DetachedInstance::DecodePayload(r.instance, r.payload));
      // The handoff reached an adopter's journal: any image retained from
      // an earlier kInstanceDetached replay (detach + adopt-back through
      // the same journal) is dead weight — drop it.
      detached_images_.erase(r.instance);
      return ApplyAdopt(detached);
    }
    case EventType::kSnapshot:
      return ReplaySnapshot(r);
  }
  return Status::Corruption("unknown journal record type");
}

Status Engine::ReplaySnapshot(const wfjournal::Record& r) {
  // A checkpoint supersedes everything replayed so far. Normally nothing
  // precedes it — the record opens its segment and truncation dropped the
  // rest — but a crash between the snapshot flush and its truncation
  // leaves the prefix behind, and replaying through it must land in the
  // same state as replaying the truncated journal.
  instances_.clear();
  instance_index_.clear();
  instance_order_.clear();
  ready_queue_.clear();
  failed_.clear();
  detached_images_.clear();
  next_instance_ = 1;
  stats_.instances_started = 0;
  stats_.instances_finished = 0;
  stats_.instances_failed = 0;
  stats_.instances_detached = 0;
  stats_.instances_stolen = 0;
  replay_saw_snapshot_ = true;
  replay_snapshot_seq_ = r.seq;

  for (const std::string& line : Split(r.payload, '\n')) {
    if (line.empty()) continue;
    std::string encoded;
    if (!UnescapeQuoted(line, &encoded)) {
      return Status::Corruption("bad image escape in snapshot record seq " +
                                std::to_string(r.seq));
    }
    EXO_ASSIGN_OR_RETURN(InstanceImage image, DecodeInstanceImage(encoded));
    EXO_RETURN_NOT_OK(MaterializeImage(image));
    ProcessInstance* p = &instances_.back();
    ++stats_.instances_started;
    if (p->finished) ++stats_.instances_finished;
    if (p->failed && !p->is_child()) {
      ++stats_.instances_failed;
      failed_.push_back({p->id, p->failure_reason});
    }
    NoteRecoveredId(p->id);
  }
  // The snapshot pins the id counter explicitly too: instances created
  // after the imaged ones and already finished (hence absent above) must
  // not get their ids reused.
  if (!r.extra.empty()) {
    uint64_t n = std::strtoull(r.extra.c_str(), nullptr, 10);
    if (n > next_instance_) next_instance_ = n;
  }
  return Status::OK();
}

void Engine::NoteRecoveredId(const std::string& id) {
  // Restore the id counter past any "<prefix>wf-N" id seen. Foreign
  // prefixes (adopted instances) never collide with ours, so only our own
  // prefix advances the counter.
  std::string_view local = id;
  if (StartsWith(local, options_.instance_id_prefix)) {
    local.remove_prefix(options_.instance_id_prefix.size());
    if (StartsWith(local, "wf-")) {
      uint64_t n = std::strtoull(local.data() + 3, nullptr, 10);
      if (n + 1 > next_instance_) next_instance_ = n + 1;
    }
  }
}

Status Engine::ResumeAfterReplay(ProcessInstance* inst) {
  for (uint32_t aid : inst->plan->topological_order()) {
    const wf::NavigationPlan::ActivityInfo& info = inst->plan->activity(aid);
    switch (inst->state(aid)) {
      case ActivityState::kWaiting: {
        if (info.join_fan_in == 0) {
          // Crash before the start activity was readied.
          EXO_RETURN_NOT_OK(MakeReady(inst, aid));
        } else {
          EXO_RETURN_NOT_OK(ApplyJoin(inst, aid));
        }
        break;
      }
      case ActivityState::kReady: {
        Audit(AuditKind::kRecoveryResumed, inst->id, NameOf(inst, aid),
              "ready");
        if (info.manual) {
          EXO_RETURN_NOT_OK(
              PostWorkItem(inst, aid, " recovered without worklists"));
        } else {
          Enqueue(inst, aid);
        }
        break;
      }
      case ActivityState::kRunning: {
        if (info.block && !inst->child_instance(aid).empty()) {
          EXO_ASSIGN_OR_RETURN(ProcessInstance* child,
                               MutableInstance(inst->child_instance(aid)));
          if (child->finished) {
            // Crash between the child's completion and the parent's
            // continuation: continue now.
            EXO_RETURN_NOT_OK(ContinueParent(child));
          }
          // Otherwise the child resumes on its own and will continue us.
          break;
        }
        // In-flight program (or a block whose child was never created):
        // re-run from the beginning — the at-least-once contract.
        Audit(AuditKind::kRecoveryResumed, inst->id, NameOf(inst, aid),
              "was running");
        EXO_RETURN_NOT_OK(Reschedule(inst, aid, "recovery"));
        break;
      }
      case ActivityState::kFinished: {
        // Crash between FINISHED and the exit-condition outcome.
        Audit(AuditKind::kRecoveryResumed, inst->id, NameOf(inst, aid),
              "was finished");
        EXO_RETURN_NOT_OK(HandleFinished(inst, aid));
        break;
      }
      case ActivityState::kTerminated: {
        // Complete any connector evaluations that were cut short.
        EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, aid, /*all_false=*/false));
        break;
      }
      case ActivityState::kDead: {
        EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, aid, /*all_false=*/true));
        break;
      }
    }
  }
  return CheckInstanceCompletion(inst);
}

}  // namespace exotica::wfrt
