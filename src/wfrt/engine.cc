#include "wfrt/engine.h"

#include <algorithm>

#include "common/strings.h"
#include "expr/eval.h"

namespace exotica::wfrt {

using wf::ActivityState;

Engine::Engine(const wf::DefinitionStore* definitions, ProgramRegistry* programs,
               EngineOptions options)
    : definitions_(definitions),
      programs_(programs),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()) {}

Status Engine::AttachJournal(wfjournal::Journal* journal) {
  if (!instances_.empty()) {
    return Status::FailedPrecondition(
        "journal must be attached before any process starts");
  }
  journal_ = journal;
  return Status::OK();
}

Status Engine::AttachOrganization(const org::Directory* directory) {
  directory_ = directory;
  worklists_ = std::make_unique<org::WorklistService>(directory, clock_);
  return Status::OK();
}

Status Engine::JournalAppend(wfjournal::EventType type,
                             const std::string& instance,
                             const std::string& activity,
                             const std::string& to, bool flag,
                             std::string payload, std::string extra) {
  if (journal_ == nullptr) return Status::OK();
  wfjournal::Record r;
  r.type = type;
  r.instance = instance;
  r.activity = activity;
  r.to = to;
  r.flag = flag;
  r.payload = std::move(payload);
  r.extra = std::move(extra);
  return journal_->Append(std::move(r));
}

void Engine::Audit(AuditKind kind, const std::string& instance,
                   const std::string& activity, std::string detail) {
  AuditEvent e;
  e.at = clock_->NowMicros();
  e.kind = kind;
  e.instance = instance;
  e.activity = activity;
  e.detail = std::move(detail);
  if (observer_) observer_(e);
  audit_.Add(std::move(e));
}

std::string Engine::NewInstanceId() {
  return "wf-" + std::to_string(next_instance_++);
}

Result<ProcessInstance*> Engine::MutableInstance(const std::string& id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return Status::NotFound("no such process instance: " + id);
  }
  return &it->second;
}

Result<const ProcessInstance*> Engine::FindInstance(const std::string& id) const {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return Status::NotFound("no such process instance: " + id);
  }
  return &it->second;
}

bool Engine::IsFinished(const std::string& id) const {
  auto it = instances_.find(id);
  return it != instances_.end() && it->second.finished;
}

bool Engine::IsCancelled(const std::string& id) const {
  auto it = instances_.find(id);
  return it != instances_.end() && it->second.cancelled;
}

bool Engine::IsSuspended(const std::string& id) const {
  auto it = instances_.find(id);
  return it != instances_.end() && it->second.suspended;
}

Result<data::Container> Engine::OutputOf(const std::string& id) const {
  EXO_ASSIGN_OR_RETURN(const ProcessInstance* inst, FindInstance(id));
  if (!inst->finished) {
    return Status::FailedPrecondition("instance " + id + " is not finished");
  }
  return inst->output;
}

Result<wf::ActivityState> Engine::StateOf(const std::string& id,
                                          const std::string& activity) const {
  EXO_ASSIGN_OR_RETURN(const ProcessInstance* inst, FindInstance(id));
  auto it = inst->activities.find(activity);
  if (it == inst->activities.end()) {
    return Status::NotFound("no activity " + activity + " in instance " + id);
  }
  return it->second.state;
}

// --- instance creation ------------------------------------------------------

Result<std::string> Engine::StartProcess(const std::string& process_name,
                                         const data::Container* input) {
  EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* def,
                       definitions_->FindProcess(process_name));
  return CreateInstance(def, input, "", "");
}

Result<std::string> Engine::CreateInstance(const wf::ProcessDefinition* def,
                                           const data::Container* input,
                                           const std::string& parent_instance,
                                           const std::string& parent_activity) {
  std::string id = NewInstanceId();

  ProcessInstance inst;
  inst.id = id;
  inst.definition = def;
  inst.parent_instance = parent_instance;
  inst.parent_activity = parent_activity;
  EXO_ASSIGN_OR_RETURN(
      inst.input, data::Container::Create(definitions_->types(), def->input_type()));
  if (input != nullptr) {
    if (input->type_name() != def->input_type()) {
      return Status::InvalidArgument(
          "input container type " + input->type_name() +
          " does not match process input type " + def->input_type());
    }
    inst.input = *input;
  }
  EXO_ASSIGN_OR_RETURN(
      inst.output,
      data::Container::Create(definitions_->types(), def->output_type()));

  // The payload pins the template version so recovery replays against the
  // exact definition this instance started with, even if newer versions
  // registered since.
  EXO_RETURN_NOT_OK(JournalAppend(
      wfjournal::EventType::kInstanceStart, id, parent_activity,
      parent_instance, /*flag=*/false,
      "v" + std::to_string(def->version()) + ":" + def->name(),
      inst.input.Serialize()));

  auto [it, inserted] = instances_.emplace(id, std::move(inst));
  (void)inserted;
  instance_order_.push_back(id);
  ++stats_.instances_started;
  Audit(AuditKind::kInstanceStarted, id, "", def->name());

  ProcessInstance* p = &it->second;
  EXO_RETURN_NOT_OK(InitializeRuntimes(p));

  if (!parent_instance.empty()) {
    EXO_ASSIGN_OR_RETURN(ProcessInstance* parent,
                         MutableInstance(parent_instance));
    parent->activities[parent_activity].child_instance = id;
  }

  EXO_RETURN_NOT_OK(ReadyStartActivities(p));
  return id;
}

Status Engine::InitializeRuntimes(ProcessInstance* inst) {
  const data::TypeRegistry& types = definitions_->types();
  for (const wf::Activity& a : inst->definition->activities()) {
    ActivityRuntime rt;
    EXO_ASSIGN_OR_RETURN(rt.input, data::Container::Create(types, a.input_type));
    EXO_ASSIGN_OR_RETURN(rt.output, data::Container::Create(types, a.output_type));
    inst->activities.emplace(a.name, std::move(rt));
  }
  // Process-input data connectors materialize target inputs immediately.
  for (size_t i :
       inst->definition->OutgoingData(wf::DataEndpoint::ProcessInput())) {
    const wf::DataConnector& d = inst->definition->data_connectors()[i];
    data::Container* target = d.to.is_activity()
                                  ? &inst->activities[d.to.activity].input
                                  : &inst->output;
    EXO_RETURN_NOT_OK(d.mapping.Apply(inst->input, target));
  }
  return Status::OK();
}

Status Engine::ReadyStartActivities(ProcessInstance* inst) {
  for (const std::string& name : inst->definition->StartActivities()) {
    EXO_RETURN_NOT_OK(MakeReady(inst, name));
  }
  return Status::OK();
}

// --- readiness and the run queue ---------------------------------------------

Status Engine::MakeReady(ProcessInstance* inst, const std::string& activity) {
  ActivityRuntime& rt = inst->activities[activity];
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));
  rt.state = ActivityState::kReady;
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kActivityReady, inst->id, activity));
  Audit(AuditKind::kActivityReady, inst->id, activity);

  if (def->start_mode == wf::StartMode::kManual) {
    if (worklists_ == nullptr) {
      return Status::FailedPrecondition(
          "manual activity " + activity +
          " requires an attached organization (AttachOrganization)");
    }
    EXO_ASSIGN_OR_RETURN(
        org::WorkItemId item,
        worklists_->Post(inst->id, activity, def->role,
                         def->notify_after_micros, def->notify_role));
    rt.work_item = item;
    Audit(AuditKind::kWorkItemPosted, inst->id, activity,
          std::to_string(item));
  } else {
    Enqueue(inst->id, activity);
  }
  return Status::OK();
}

void Engine::Enqueue(const std::string& instance, const std::string& activity) {
  auto key = std::make_pair(instance, activity);
  if (enqueued_.insert(key).second) {
    ready_queue_.push_back(key);
  }
}

Status Engine::Run() {
  while (!ready_queue_.empty()) {
    auto [iid, act] = ready_queue_.front();
    ready_queue_.pop_front();
    enqueued_.erase({iid, act});

    auto it = instances_.find(iid);
    if (it == instances_.end()) continue;
    ProcessInstance* inst = &it->second;
    if (inst->suspended) continue;  // parked; ResumeSuspended re-enqueues
    ActivityRuntime& rt = inst->activities[act];
    if (rt.state != ActivityState::kReady) continue;  // stale entry
    EXO_RETURN_NOT_OK(StartExecution(inst, act, ""));
  }
  return Status::OK();
}

Result<std::string> Engine::RunToCompletion(const std::string& process_name,
                                            const data::Container* input) {
  EXO_ASSIGN_OR_RETURN(std::string id, StartProcess(process_name, input));
  EXO_RETURN_NOT_OK(Run());
  if (!IsFinished(id)) {
    return Status::FailedPrecondition(
        "instance " + id +
        " stalled (manual work pending?); use Run/ExecuteWorkItem");
  }
  return id;
}

// --- execution ----------------------------------------------------------------

Status Engine::StartExecution(ProcessInstance* inst, const std::string& activity,
                              const std::string& person) {
  ActivityRuntime& rt = inst->activities[activity];
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));

  rt.attempt += 1;
  rt.state = ActivityState::kRunning;
  // Fresh output container per attempt: a half-written image from a failed
  // attempt must not leak into the next one.
  EXO_ASSIGN_OR_RETURN(
      rt.output, data::Container::Create(definitions_->types(), def->output_type));
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityStarted,
                                  inst->id, activity, "", false,
                                  std::to_string(rt.attempt)));
  Audit(AuditKind::kActivityStarted, inst->id, activity,
        "attempt=" + std::to_string(rt.attempt));
  ++stats_.activities_executed;

  if (def->is_process()) {
    // Block: spawn a child instance fed from this activity's input.
    EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* sub,
                         definitions_->FindProcess(def->subprocess));
    EXO_ASSIGN_OR_RETURN(std::string child_id,
                         CreateInstance(sub, &rt.input, inst->id, activity));
    (void)child_id;  // continuation happens when the child finishes
    return Status::OK();
  }

  // Program activity.
  EXO_ASSIGN_OR_RETURN(const ProgramFn* fn, programs_->Find(def->program));
  ProgramContext ctx;
  ctx.instance_id = inst->id;
  ctx.activity = activity;
  ctx.attempt = rt.attempt;
  ctx.person = person;
  Status st = (*fn)(rt.input, &rt.output, ctx);
  if (st.IsPending()) {
    // Asynchronous external work (§3.3: activities "can be of any type
    // ... as long as there is a way to report their progress"). The
    // activity stays running until CompleteAsync reports the outcome; a
    // crash meanwhile re-runs it from the beginning, the same
    // at-least-once contract as everything else.
    Audit(AuditKind::kActivityPending, inst->id, activity, st.message());
    return Status::OK();
  }
  if (!st.ok()) {
    // Program crash: reschedule from the beginning (paper §3.3).
    ++rt.failures;
    ++stats_.program_failures;
    Audit(AuditKind::kProgramFailure, inst->id, activity, st.ToString());
    if (options_.max_program_failures > 0 &&
        rt.failures >= options_.max_program_failures) {
      return Status::FailedPrecondition(
          StrFormat("activity %s in %s failed %d times; last error: %s",
                    activity.c_str(), inst->id.c_str(), rt.failures,
                    st.ToString().c_str()));
    }
    return Reschedule(inst, activity, "program-failure");
  }

  rt.failures = 0;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                  inst->id, activity, "", false,
                                  rt.output.Serialize()));
  Audit(AuditKind::kActivityFinished, inst->id, activity);
  return HandleFinished(inst, activity);
}

Status Engine::HandleFinished(ProcessInstance* inst,
                              const std::string& activity) {
  ActivityRuntime& rt = inst->activities[activity];
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));
  rt.state = ActivityState::kFinished;

  expr::ContainerResolver resolver(rt.output);
  Result<bool> exit_result = def->exit_condition.Evaluate(resolver);
  if (!exit_result.ok()) {
    return exit_result.status().WithContext("exit condition of " + activity +
                                            " in " + inst->id);
  }
  bool exit_ok = exit_result.value();
  if (!exit_ok) {
    if (options_.max_exit_retries > 0 &&
        rt.attempt >= options_.max_exit_retries) {
      return Status::FailedPrecondition(StrFormat(
          "activity %s in %s: exit condition still false after %d attempts",
          activity.c_str(), inst->id.c_str(), rt.attempt));
    }
    return Reschedule(inst, activity, "exit-condition");
  }
  return Terminate(inst, activity);
}

Status Engine::Reschedule(ProcessInstance* inst, const std::string& activity,
                          const std::string& reason) {
  ActivityRuntime& rt = inst->activities[activity];
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));
  rt.state = ActivityState::kReady;
  ++stats_.reschedules;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityRescheduled,
                                  inst->id, activity, "", false, reason));
  Audit(AuditKind::kActivityRescheduled, inst->id, activity, reason);

  if (def->start_mode == wf::StartMode::kManual) {
    if (worklists_ == nullptr) {
      return Status::FailedPrecondition(
          "manual activity " + activity + " rescheduled without worklists");
    }
    EXO_ASSIGN_OR_RETURN(
        org::WorkItemId item,
        worklists_->Post(inst->id, activity, def->role,
                         def->notify_after_micros, def->notify_role));
    rt.work_item = item;
    Audit(AuditKind::kWorkItemPosted, inst->id, activity, std::to_string(item));
  } else {
    Enqueue(inst->id, activity);
  }
  return Status::OK();
}

Status Engine::Terminate(ProcessInstance* inst, const std::string& activity) {
  ActivityRuntime& rt = inst->activities[activity];
  rt.state = ActivityState::kTerminated;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityTerminated,
                                  inst->id, activity));
  Audit(AuditKind::kActivityTerminated, inst->id, activity);
  EXO_RETURN_NOT_OK(PushData(inst, activity));
  EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, activity, /*all_false=*/false));
  return CheckInstanceCompletion(inst);
}

Status Engine::MarkDead(ProcessInstance* inst, const std::string& activity) {
  ActivityRuntime& rt = inst->activities[activity];
  rt.state = ActivityState::kDead;
  ++stats_.dead_path_terminations;
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kActivityDead, inst->id, activity));
  Audit(AuditKind::kActivityDead, inst->id, activity);

  if (rt.work_item.has_value() && worklists_ != nullptr) {
    // Best effort: the item may already be done (it should not be, since
    // the activity was still waiting, but recovery can race).
    (void)worklists_->Cancel(*rt.work_item);
    Audit(AuditKind::kWorkItemCancelled, inst->id, activity,
          std::to_string(*rt.work_item));
    rt.work_item.reset();
  }
  EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, activity, /*all_false=*/true));
  return CheckInstanceCompletion(inst);
}

Status Engine::EvaluateOutgoing(ProcessInstance* inst,
                                const std::string& activity, bool all_false) {
  ActivityRuntime& rt = inst->activities[activity];
  const auto& connectors = inst->definition->control_connectors();
  std::vector<size_t> outs = inst->definition->OutgoingControl(activity);

  bool any_true = false;
  std::vector<std::pair<size_t, bool>> fresh;

  // Non-otherwise connectors first.
  for (size_t idx : outs) {
    const wf::ControlConnector& c = connectors[idx];
    if (c.is_otherwise) continue;
    bool value;
    auto stored = rt.outgoing_eval.find(idx);
    if (stored != rt.outgoing_eval.end()) {
      value = stored->second;
    } else {
      if (all_false) {
        value = false;
      } else {
        expr::ContainerResolver resolver(rt.output);
        Result<bool> r = c.condition.Evaluate(resolver);
        if (!r.ok()) {
          if (options_.condition_error_is_false) {
            value = false;
          } else {
            return r.status().WithContext("transition condition " + c.from +
                                          " -> " + c.to + " in " + inst->id);
          }
        } else {
          value = r.value();
        }
      }
      rt.outgoing_eval[idx] = value;
      ++stats_.connectors_evaluated;
      EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kConnectorEval,
                                      inst->id, c.from, c.to, value));
      Audit(value ? AuditKind::kConnectorTrue : AuditKind::kConnectorFalse,
            inst->id, c.from, c.to);
      fresh.emplace_back(idx, value);
    }
    any_true = any_true || value;
  }

  // Otherwise connector fires iff all conditioned siblings were false.
  for (size_t idx : outs) {
    const wf::ControlConnector& c = connectors[idx];
    if (!c.is_otherwise) continue;
    if (rt.outgoing_eval.count(idx) > 0) continue;
    bool value = all_false ? false : !any_true;
    rt.outgoing_eval[idx] = value;
    ++stats_.connectors_evaluated;
    EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kConnectorEval,
                                    inst->id, c.from, c.to, value));
    Audit(value ? AuditKind::kConnectorTrue : AuditKind::kConnectorFalse,
          inst->id, c.from, c.to);
    fresh.emplace_back(idx, value);
  }

  for (auto [idx, value] : fresh) {
    EXO_RETURN_NOT_OK(DeliverSignal(inst, connectors[idx].to, idx, value));
  }
  return Status::OK();
}

Status Engine::DeliverSignal(ProcessInstance* inst, const std::string& target,
                             size_t connector_index, bool value) {
  ActivityRuntime& rt = inst->activities[target];
  rt.incoming_eval[connector_index] = value;
  if (rt.state != ActivityState::kWaiting) return Status::OK();
  return ApplyJoin(inst, target);
}

Status Engine::ApplyJoin(ProcessInstance* inst, const std::string& activity) {
  ActivityRuntime& rt = inst->activities[activity];
  if (rt.state != ActivityState::kWaiting) return Status::OK();
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));
  std::vector<size_t> incoming = inst->definition->IncomingControl(activity);
  if (incoming.empty()) return Status::OK();

  // The start condition is decided only once every incoming connector has
  // been evaluated (terminated sources evaluate their conditions; dead
  // sources evaluate to false via dead path elimination). Deciding early
  // would let an OR-joined activity start before its siblings settle,
  // which breaks the reverse-order compensation pattern of the paper's
  // Figure 2.
  size_t evaluated = 0, trues = 0;
  for (size_t idx : incoming) {
    auto it = rt.incoming_eval.find(idx);
    if (it == rt.incoming_eval.end()) continue;
    ++evaluated;
    if (it->second) ++trues;
  }
  if (evaluated < incoming.size()) return Status::OK();

  bool start = def->join == wf::JoinKind::kAnd ? trues == incoming.size()
                                               : trues > 0;
  return start ? MakeReady(inst, activity) : MarkDead(inst, activity);
}

Status Engine::PushData(ProcessInstance* inst, const std::string& activity) {
  ActivityRuntime& rt = inst->activities[activity];
  for (size_t i :
       inst->definition->OutgoingData(wf::DataEndpoint::Of(activity))) {
    const wf::DataConnector& d = inst->definition->data_connectors()[i];
    data::Container* target = d.to.is_activity()
                                  ? &inst->activities[d.to.activity].input
                                  : &inst->output;
    EXO_RETURN_NOT_OK(d.mapping.Apply(rt.output, target));
  }
  return Status::OK();
}

Status Engine::CheckInstanceCompletion(ProcessInstance* inst) {
  if (inst->finished || !inst->AllSettled()) return Status::OK();
  inst->finished = true;
  ++stats_.instances_finished;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kInstanceFinished,
                                  inst->id, "", "", false,
                                  inst->output.Serialize()));
  Audit(AuditKind::kInstanceFinished, inst->id);
  if (inst->is_child()) return ContinueParent(inst);
  return Status::OK();
}

Status Engine::ContinueParent(ProcessInstance* child) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* parent,
                       MutableInstance(child->parent_instance));
  ActivityRuntime& rt = parent->activities[child->parent_activity];
  if (rt.state != ActivityState::kRunning) return Status::OK();  // already done
  rt.output = child->output;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                  parent->id, child->parent_activity, "", false,
                                  rt.output.Serialize()));
  Audit(AuditKind::kActivityFinished, parent->id, child->parent_activity,
        "block child " + child->id);
  return HandleFinished(parent, child->parent_activity);
}

// --- manual work ---------------------------------------------------------------

Status Engine::Claim(org::WorkItemId id, const std::string& person) {
  if (worklists_ == nullptr) {
    return Status::FailedPrecondition("no organization attached");
  }
  return worklists_->Claim(id, person);
}

Status Engine::ExecuteWorkItem(org::WorkItemId id, const std::string& person) {
  if (worklists_ == nullptr) {
    return Status::FailedPrecondition("no organization attached");
  }
  EXO_ASSIGN_OR_RETURN(const org::WorkItem* item, worklists_->Find(id));
  if (item->state != org::WorkItemState::kClaimed ||
      item->claimed_by != person) {
    return Status::FailedPrecondition("work item " + std::to_string(id) +
                                      " is not claimed by " + person);
  }
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst,
                       MutableInstance(item->process_instance));
  std::string activity = item->activity;
  ActivityRuntime& rt = inst->activities[activity];
  if (rt.state != ActivityState::kReady) {
    return Status::FailedPrecondition("activity " + activity +
                                      " is not ready in " + inst->id);
  }
  EXO_RETURN_NOT_OK(worklists_->Complete(id, person));
  rt.work_item.reset();
  EXO_RETURN_NOT_OK(StartExecution(inst, activity, person));
  return Run();
}

Status Engine::CompleteAsync(const std::string& instance_id,
                             const std::string& activity,
                             const data::Container& output) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));
  ActivityRuntime& rt = inst->activities[activity];
  if (rt.state != ActivityState::kRunning) {
    return Status::FailedPrecondition(
        "activity " + activity + " in " + instance_id + " is " +
        ActivityStateName(rt.state) + "; only running activities complete");
  }
  if (!def->is_program()) {
    return Status::FailedPrecondition(
        "block activity " + activity + " completes through its subprocess");
  }
  if (output.type_name() != def->output_type) {
    return Status::InvalidArgument("output container type " +
                                   output.type_name() + " does not match " +
                                   def->output_type);
  }
  rt.output = output;
  rt.failures = 0;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                  inst->id, activity, "", false,
                                  rt.output.Serialize()));
  Audit(AuditKind::kActivityFinished, inst->id, activity, "async");
  EXO_RETURN_NOT_OK(HandleFinished(inst, activity));
  return Run();
}

Status Engine::ForceFinish(const std::string& instance_id,
                           const std::string& activity,
                           const data::Container& output) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                       inst->definition->FindActivity(activity));
  ActivityRuntime& rt = inst->activities[activity];
  if (rt.state != ActivityState::kReady) {
    return Status::FailedPrecondition(
        "only ready activities can be force-finished; " + activity + " is " +
        ActivityStateName(rt.state));
  }
  if (output.type_name() != def->output_type) {
    return Status::InvalidArgument("output container type " +
                                   output.type_name() + " does not match " +
                                   def->output_type);
  }
  if (rt.work_item.has_value() && worklists_ != nullptr) {
    (void)worklists_->Cancel(*rt.work_item);
    Audit(AuditKind::kWorkItemCancelled, inst->id, activity,
          std::to_string(*rt.work_item));
    rt.work_item.reset();
  }
  rt.attempt += 1;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityStarted,
                                  inst->id, activity, "", false,
                                  std::to_string(rt.attempt)));
  rt.output = output;
  EXO_RETURN_NOT_OK(JournalAppend(wfjournal::EventType::kActivityFinished,
                                  inst->id, activity, "", false,
                                  rt.output.Serialize()));
  Audit(AuditKind::kForcedFinish, inst->id, activity);
  EXO_RETURN_NOT_OK(HandleFinished(inst, activity));
  return Run();
}

std::vector<org::Notification> Engine::CheckDeadlines() {
  if (worklists_ == nullptr) return {};
  return worklists_->CheckDeadlines();
}

// --- instance lifecycle control ------------------------------------------------

Status Engine::SuspendInstance(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  if (inst->is_child()) {
    return Status::InvalidArgument(
        "suspend the top-level instance, not block child " + instance_id);
  }
  if (inst->finished) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already finished");
  }
  if (inst->suspended) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already suspended");
  }
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kInstanceSuspended, instance_id));
  return ApplySuspend(inst);
}

Status Engine::ApplySuspend(ProcessInstance* inst) {
  inst->suspended = true;
  for (auto& [name, rt] : inst->activities) {
    (void)name;
    if (rt.work_item.has_value() && worklists_ != nullptr) {
      (void)worklists_->Cancel(*rt.work_item);
      rt.work_item.reset();
    }
    if (rt.state == ActivityState::kRunning && !rt.child_instance.empty()) {
      auto child = MutableInstance(rt.child_instance);
      if (child.ok() && !(*child)->finished) {
        EXO_RETURN_NOT_OK(ApplySuspend(*child));
      }
    }
  }
  return Status::OK();
}

Status Engine::ResumeSuspended(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  if (!inst->suspended) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " is not suspended");
  }
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kInstanceResumed, instance_id));
  return ApplyResume(inst);
}

Status Engine::ApplyResume(ProcessInstance* inst) {
  inst->suspended = false;
  if (recovering_) return Status::OK();  // ResumeAfterReplay re-dispatches
  for (const wf::Activity& a : inst->definition->activities()) {
    ActivityRuntime& rt = inst->activities[a.name];
    if (rt.state == ActivityState::kReady) {
      if (a.start_mode == wf::StartMode::kManual) {
        if (worklists_ == nullptr) {
          return Status::FailedPrecondition(
              "manual activity " + a.name + " resumed without worklists");
        }
        EXO_ASSIGN_OR_RETURN(
            org::WorkItemId item,
            worklists_->Post(inst->id, a.name, a.role, a.notify_after_micros,
                             a.notify_role));
        rt.work_item = item;
        Audit(AuditKind::kWorkItemPosted, inst->id, a.name,
              std::to_string(item));
      } else {
        Enqueue(inst->id, a.name);
      }
    } else if (rt.state == ActivityState::kRunning &&
               !rt.child_instance.empty()) {
      auto child = MutableInstance(rt.child_instance);
      if (child.ok() && (*child)->suspended) {
        EXO_RETURN_NOT_OK(ApplyResume(*child));
      }
    }
  }
  return Status::OK();
}

Status Engine::CancelInstance(const std::string& instance_id) {
  EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(instance_id));
  if (inst->is_child()) {
    return Status::InvalidArgument(
        "cancel the top-level instance, not block child " + instance_id);
  }
  if (inst->finished) {
    return Status::FailedPrecondition("instance " + instance_id +
                                      " already finished");
  }
  EXO_RETURN_NOT_OK(
      JournalAppend(wfjournal::EventType::kInstanceCancelled, instance_id));
  return ApplyCancel(inst);
}

Status Engine::ApplyCancel(ProcessInstance* inst) {
  // Children first, so a block child is settled before its parent slot.
  for (auto& [name, rt] : inst->activities) {
    (void)name;
    if (rt.state == ActivityState::kRunning && !rt.child_instance.empty()) {
      auto child = MutableInstance(rt.child_instance);
      if (child.ok() && !(*child)->finished) {
        EXO_RETURN_NOT_OK(ApplyCancel(*child));
      }
    }
  }
  for (auto& [name, rt] : inst->activities) {
    if (rt.state == ActivityState::kTerminated ||
        rt.state == ActivityState::kDead) {
      continue;
    }
    if (rt.work_item.has_value() && worklists_ != nullptr) {
      (void)worklists_->Cancel(*rt.work_item);
      Audit(AuditKind::kWorkItemCancelled, inst->id, name,
            std::to_string(*rt.work_item));
      rt.work_item.reset();
    }
    rt.state = ActivityState::kDead;
    Audit(AuditKind::kActivityDead, inst->id, name, "cancelled");
  }
  inst->cancelled = true;
  inst->suspended = false;
  inst->finished = true;
  ++stats_.instances_finished;
  Audit(AuditKind::kInstanceFinished, inst->id, "", "cancelled");
  return Status::OK();
}

// --- recovery --------------------------------------------------------------------

Status Engine::Recover() {
  if (journal_ == nullptr) {
    return Status::FailedPrecondition("no journal attached");
  }
  if (!instances_.empty()) {
    return Status::FailedPrecondition("Recover requires a fresh engine");
  }
  EXO_ASSIGN_OR_RETURN(std::vector<wfjournal::Record> records,
                       journal_->ReadAll());

  recovering_ = true;
  for (const wfjournal::Record& r : records) {
    Status st = ReplayRecord(r);
    if (!st.ok()) {
      recovering_ = false;
      return st.WithContext("replaying journal record seq " +
                            std::to_string(r.seq));
    }
  }
  recovering_ = false;

  // Resume every unfinished instance from its exact failure point.
  std::vector<std::string> order = instance_order_;
  for (const std::string& id : order) {
    ProcessInstance* inst = &instances_[id];
    // Suspended instances stay parked; ResumeSuspended re-dispatches them.
    // Suspension only happens at navigation quiescence, so they have no
    // interrupted steps to complete.
    if (inst->finished || inst->suspended) continue;
    EXO_RETURN_NOT_OK_CTX(ResumeAfterReplay(inst), "resuming instance " + id);
  }
  return Status::OK();
}

Status Engine::ReplayRecord(const wfjournal::Record& r) {
  using wfjournal::EventType;
  switch (r.type) {
    case EventType::kInstanceStart: {
      // Payload: "v<version>:<name>".
      size_t colon = r.payload.find(':');
      if (r.payload.size() < 3 || r.payload[0] != 'v' ||
          colon == std::string::npos) {
        return Status::Corruption("malformed INSTANCE_START payload: " +
                                  r.payload);
      }
      int version = static_cast<int>(
          std::strtol(r.payload.c_str() + 1, nullptr, 10));
      std::string process_name = r.payload.substr(colon + 1);
      EXO_ASSIGN_OR_RETURN(
          const wf::ProcessDefinition* def,
          definitions_->FindProcessVersion(process_name, version));
      ProcessInstance inst;
      inst.id = r.instance;
      inst.definition = def;
      inst.parent_activity = r.activity;
      inst.parent_instance = r.to;
      EXO_ASSIGN_OR_RETURN(inst.input,
                           data::Container::Create(definitions_->types(),
                                                   def->input_type()));
      EXO_RETURN_NOT_OK(inst.input.Deserialize(r.extra));
      EXO_ASSIGN_OR_RETURN(inst.output,
                           data::Container::Create(definitions_->types(),
                                                   def->output_type()));
      auto [it, inserted] = instances_.emplace(r.instance, std::move(inst));
      if (!inserted) {
        return Status::Corruption("duplicate INSTANCE_START for " + r.instance);
      }
      instance_order_.push_back(r.instance);
      ++stats_.instances_started;
      EXO_RETURN_NOT_OK(InitializeRuntimes(&it->second));
      // Restore the id counter past any "wf-N" id seen.
      if (StartsWith(r.instance, "wf-")) {
        uint64_t n = std::strtoull(r.instance.c_str() + 3, nullptr, 10);
        if (n + 1 > next_instance_) next_instance_ = n + 1;
      }
      // Wire the parent's block activity to this child.
      if (!r.to.empty()) {
        EXO_ASSIGN_OR_RETURN(ProcessInstance* parent, MutableInstance(r.to));
        parent->activities[r.activity].child_instance = r.instance;
      }
      return Status::OK();
    }
    case EventType::kActivityReady:
    case EventType::kActivityRescheduled: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      inst->activities[r.activity].state = ActivityState::kReady;
      return Status::OK();
    }
    case EventType::kActivityStarted: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      ActivityRuntime& rt = inst->activities[r.activity];
      rt.state = ActivityState::kRunning;
      rt.attempt = static_cast<int>(std::strtol(r.payload.c_str(), nullptr, 10));
      EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                           inst->definition->FindActivity(r.activity));
      EXO_ASSIGN_OR_RETURN(rt.output,
                           data::Container::Create(definitions_->types(),
                                                   def->output_type));
      return Status::OK();
    }
    case EventType::kActivityFinished: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      ActivityRuntime& rt = inst->activities[r.activity];
      EXO_RETURN_NOT_OK(rt.output.Deserialize(r.payload));
      rt.state = ActivityState::kFinished;
      return Status::OK();
    }
    case EventType::kActivityTerminated: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      inst->activities[r.activity].state = ActivityState::kTerminated;
      inst->activities[r.activity].failures = 0;
      // Re-derive the (volatile) data pushes from the journaled output.
      return PushData(inst, r.activity);
    }
    case EventType::kActivityDead: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      inst->activities[r.activity].state = ActivityState::kDead;
      return Status::OK();
    }
    case EventType::kConnectorEval: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      const auto& connectors = inst->definition->control_connectors();
      for (size_t i = 0; i < connectors.size(); ++i) {
        if (connectors[i].from == r.activity && connectors[i].to == r.to) {
          inst->activities[r.activity].outgoing_eval[i] = r.flag;
          inst->activities[r.to].incoming_eval[i] = r.flag;
          return Status::OK();
        }
      }
      return Status::Corruption("journaled connector " + r.activity + " -> " +
                                r.to + " not in definition of " +
                                inst->definition->name());
    }
    case EventType::kInstanceFinished: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      EXO_RETURN_NOT_OK(inst->output.Deserialize(r.payload));
      inst->finished = true;
      ++stats_.instances_finished;
      return Status::OK();
    }
    case EventType::kChildSpawned:
      return Status::OK();  // superseded by parent fields on INSTANCE_START
    case EventType::kInstanceSuspended: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplySuspend(inst);
    }
    case EventType::kInstanceResumed: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplyResume(inst);
    }
    case EventType::kInstanceCancelled: {
      EXO_ASSIGN_OR_RETURN(ProcessInstance* inst, MutableInstance(r.instance));
      return ApplyCancel(inst);
    }
  }
  return Status::Corruption("unknown journal record type");
}

Status Engine::ResumeAfterReplay(ProcessInstance* inst) {
  EXO_ASSIGN_OR_RETURN(std::vector<std::string> topo,
                       inst->definition->TopologicalOrder());
  for (const std::string& name : topo) {
    ActivityRuntime& rt = inst->activities[name];
    EXO_ASSIGN_OR_RETURN(const wf::Activity* def,
                         inst->definition->FindActivity(name));
    switch (rt.state) {
      case ActivityState::kWaiting: {
        if (inst->definition->IncomingControl(name).empty()) {
          // Crash before the start activity was readied.
          EXO_RETURN_NOT_OK(MakeReady(inst, name));
        } else {
          EXO_RETURN_NOT_OK(ApplyJoin(inst, name));
        }
        break;
      }
      case ActivityState::kReady: {
        Audit(AuditKind::kRecoveryResumed, inst->id, name, "ready");
        if (def->start_mode == wf::StartMode::kManual) {
          if (worklists_ == nullptr) {
            return Status::FailedPrecondition(
                "manual activity " + name + " recovered without worklists");
          }
          EXO_ASSIGN_OR_RETURN(
              org::WorkItemId item,
              worklists_->Post(inst->id, name, def->role,
                               def->notify_after_micros, def->notify_role));
          rt.work_item = item;
          Audit(AuditKind::kWorkItemPosted, inst->id, name,
                std::to_string(item));
        } else {
          Enqueue(inst->id, name);
        }
        break;
      }
      case ActivityState::kRunning: {
        if (def->is_process() && !rt.child_instance.empty()) {
          EXO_ASSIGN_OR_RETURN(ProcessInstance* child,
                               MutableInstance(rt.child_instance));
          if (child->finished) {
            // Crash between the child's completion and the parent's
            // continuation: continue now.
            EXO_RETURN_NOT_OK(ContinueParent(child));
          }
          // Otherwise the child resumes on its own and will continue us.
          break;
        }
        // In-flight program (or a block whose child was never created):
        // re-run from the beginning — the at-least-once contract.
        Audit(AuditKind::kRecoveryResumed, inst->id, name, "was running");
        EXO_RETURN_NOT_OK(Reschedule(inst, name, "recovery"));
        break;
      }
      case ActivityState::kFinished: {
        // Crash between FINISHED and the exit-condition outcome.
        Audit(AuditKind::kRecoveryResumed, inst->id, name, "was finished");
        EXO_RETURN_NOT_OK(HandleFinished(inst, name));
        break;
      }
      case ActivityState::kTerminated: {
        // Complete any connector evaluations that were cut short.
        EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, name, /*all_false=*/false));
        break;
      }
      case ActivityState::kDead: {
        EXO_RETURN_NOT_OK(EvaluateOutgoing(inst, name, /*all_false=*/true));
        break;
      }
    }
  }
  return CheckInstanceCompletion(inst);
}

}  // namespace exotica::wfrt
