#include "wfrt/migrate.h"

#include <cstdlib>

#include "common/strings.h"
#include "wf/process.h"

namespace exotica::wfrt {

namespace {

// Parses a signed int field; `ok` accumulates success across fields.
int ParseInt(const std::string& s, bool* ok) {
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || s.empty()) *ok = false;
  return static_cast<int>(v);
}

// Evals travel as a compact digit string: '-' = -1, '0', '1'.
bool DecodeEvals(const std::string& s, std::vector<int8_t>* out) {
  out->clear();
  out->reserve(s.size());
  for (char c : s) {
    if (c == '-') {
      out->push_back(-1);
    } else if (c == '0') {
      out->push_back(0);
    } else if (c == '1') {
      out->push_back(1);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string DetachedInstance::EncodePayload() const {
  std::string out;
  for (const std::string& image : images) {
    out += EscapeQuoted(image);
    out += '\n';
  }
  return out;
}

Result<DetachedInstance> DetachedInstance::DecodePayload(
    const std::string& root_id, const std::string& payload) {
  DetachedInstance d;
  d.root_id = root_id;
  for (const std::string& line : Split(payload, '\n')) {
    if (line.empty()) continue;
    std::string image;
    if (!UnescapeQuoted(line, &image)) {
      return Status::Corruption("bad escape in detached-instance payload for " +
                                root_id);
    }
    d.images.push_back(std::move(image));
  }
  if (d.images.empty()) {
    return Status::Corruption("empty detached-instance payload for " + root_id);
  }
  return d;
}

std::string EncodeInstanceImage(const ProcessInstance& inst) {
  std::string out;
  // I <id> <process> <version> <parent_instance> <parent_activity>
  out += "I\t" + EscapeQuoted(inst.id) + '\t' +
         EscapeQuoted(inst.definition->name()) + '\t' +
         std::to_string(inst.definition->version()) + '\t' +
         EscapeQuoted(inst.parent_instance) + '\t' +
         EscapeQuoted(inst.parent_activity) + '\n';
  // F <finished><cancelled><failed><suspended> <retries_used> <reason>
  std::string flags;
  flags += inst.finished ? '1' : '0';
  flags += inst.cancelled ? '1' : '0';
  flags += inst.failed ? '1' : '0';
  flags += inst.suspended ? '1' : '0';
  out += "F\t" + flags + '\t' + std::to_string(inst.retries_used) + '\t' +
         EscapeQuoted(inst.failure_reason) + '\n';
  // D <input image> <output image>
  out += "D\t" + EscapeQuoted(inst.input.Serialize()) + '\t' +
         EscapeQuoted(inst.output.Serialize()) + '\n';
  // A <state> <attempt> <failures> <child> <in evals> <out evals> <in> <out>
  // The wire format keeps evals per-activity and goes through the layout-
  // neutral accessors — images stay readable, version-stable, and
  // byte-identical regardless of the in-memory layout. Unmaterialized
  // packed containers serialize as "" exactly like pristine legacy ones.
  for (uint32_t aid = 0; aid < inst.activity_count(); ++aid) {
    const wf::NavigationPlan::ActivityInfo& info = inst.plan->activity(aid);
    std::string in_evals, out_evals;
    in_evals.reserve(info.in_control.size());
    for (size_t s = 0; s < info.in_control.size(); ++s) {
      int8_t v = inst.in_eval(aid, static_cast<uint32_t>(s));
      in_evals += v < 0 ? '-' : (v == 0 ? '0' : '1');
    }
    out_evals.reserve(info.out_control.size());
    for (size_t s = 0; s < info.out_control.size(); ++s) {
      int8_t v = inst.out_eval(aid, static_cast<uint32_t>(s));
      out_evals += v < 0 ? '-' : (v == 0 ? '0' : '1');
    }
    out += "A\t" + std::to_string(static_cast<int>(inst.state(aid))) + '\t' +
           std::to_string(inst.attempt(aid)) + '\t' +
           std::to_string(inst.failures(aid)) + '\t' +
           EscapeQuoted(inst.child_instance(aid)) + '\t' + in_evals + '\t' +
           out_evals + '\t' + EscapeQuoted(inst.activity_input(aid).Serialize()) +
           '\t' + EscapeQuoted(inst.activity_output(aid).Serialize()) + '\n';
  }
  return out;
}

Result<InstanceImage> DecodeInstanceImage(const std::string& image) {
  InstanceImage out;
  bool saw_header = false;
  for (const std::string& line : Split(image, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> f = Split(line, '\t');
    Status bad = Status::Corruption("malformed instance image line: " + line);
    if (f[0] == "I") {
      if (f.size() != 6) return bad;
      bool ok = true;
      if (!UnescapeQuoted(f[1], &out.id)) return bad;
      if (!UnescapeQuoted(f[2], &out.process_name)) return bad;
      out.version = ParseInt(f[3], &ok);
      if (!UnescapeQuoted(f[4], &out.parent_instance)) return bad;
      if (!UnescapeQuoted(f[5], &out.parent_activity)) return bad;
      if (!ok) return bad;
      saw_header = true;
    } else if (f[0] == "F") {
      if (f.size() != 4 || f[1].size() != 4) return bad;
      for (char c : f[1]) {
        if (c != '0' && c != '1') return bad;
      }
      out.finished = f[1][0] == '1';
      out.cancelled = f[1][1] == '1';
      out.failed = f[1][2] == '1';
      out.suspended = f[1][3] == '1';
      bool ok = true;
      out.retries_used = ParseInt(f[2], &ok);
      if (!ok || !UnescapeQuoted(f[3], &out.failure_reason)) return bad;
    } else if (f[0] == "D") {
      if (f.size() != 3) return bad;
      if (!UnescapeQuoted(f[1], &out.input_image) ||
          !UnescapeQuoted(f[2], &out.output_image)) {
        return bad;
      }
    } else if (f[0] == "A") {
      if (f.size() != 9) return bad;
      InstanceImage::ActivityImage a;
      bool ok = true;
      a.state = ParseInt(f[1], &ok);
      a.attempt = ParseInt(f[2], &ok);
      a.failures = ParseInt(f[3], &ok);
      if (!ok || a.state < 0 ||
          a.state > static_cast<int>(wf::ActivityState::kDead)) {
        return bad;
      }
      if (!UnescapeQuoted(f[4], &a.child_instance)) return bad;
      if (!DecodeEvals(f[5], &a.incoming_eval) ||
          !DecodeEvals(f[6], &a.outgoing_eval)) {
        return bad;
      }
      if (!UnescapeQuoted(f[7], &a.input_image) ||
          !UnescapeQuoted(f[8], &a.output_image)) {
        return bad;
      }
      out.activities.push_back(std::move(a));
    } else {
      return bad;
    }
  }
  if (!saw_header) {
    return Status::Corruption("instance image missing I header");
  }
  return out;
}

}  // namespace exotica::wfrt
