// Engine::TryNativeStepProgram: the engine half of the native outgoing
// sweep — the last rung of the compilation ladder.
//
// The native functions (codegen/step_jit.cc) execute the whole sweep —
// prior-eval skips, typed condition bodies, out_evals/fresh bookkeeping,
// stats — in straight-line machine code, and call back into
// NativeRecordThunk for the two things that genuinely need C++: journal
// appends and audit events. Everything observable is byte-identical to
// RunStepProgram (which the golden test asserts record for record); the
// wrapper here exists to populate the NativeStepCtx, decide the
// fall-back cases the emitter left to the interpreter, and rebuild the
// interpreter's exact Status from a native error code.

#include <utility>

#include "codegen/step_jit.h"
#include "common/logging.h"
#include "expr/kernels.h"
#include "wfrt/engine.h"

namespace exotica::wfrt {

uint64_t Engine::NativeRecordThunk(codegen::NativeStepCtx* ctx,
                                   uint32_t step_idx) {
  Engine* engine = static_cast<Engine*>(ctx->engine);
  ProcessInstance* inst = static_cast<ProcessInstance*>(ctx->inst);
  const wf::StepInstr* steps = static_cast<const wf::StepInstr*>(ctx->steps);
  const wf::StepInstr& in = steps[step_idx];
  const bool value = ctx->out_evals[in.out_idx] != 0;
  const wf::ControlConnector& c =
      inst->definition->control_connectors()[in.cidx];
  if (engine->journal_ != nullptr) {
    Status st = engine->JournalAppend(wfjournal::EventType::kConnectorEval,
                                      inst->id, c.from, c.to, value);
    if (!st.ok()) {
      engine->native_record_status_ = std::move(st);
      return codegen::native_err::Make(codegen::native_err::kRecordFailed,
                                       step_idx, 0);
    }
  }
  engine->Audit(value ? AuditKind::kConnectorTrue : AuditKind::kConnectorFalse,
                inst->id, c.from, c.to);
  return 0;
}

Status Engine::DecodeNativeError(const ProcessInstance* inst, uint32_t aid,
                                 uint64_t code) {
  namespace ne = codegen::native_err;
  if (ne::Kind(code) == ne::kRecordFailed) {
    return std::move(native_record_status_);
  }
  const wf::NavigationPlan& plan = *inst->plan;
  const wf::StepInstr& in =
      plan.step_program(plan.activity(aid).step_base)[ne::StepIndex(code)];
  Status st = Status::OK();
  switch (ne::Kind(code)) {
    case ne::kNullRead:
      st = Status::FailedPrecondition(
          expr::internal::kUnsetDataPrefix +
          plan.vm_program(in.prog).names()[ne::Aux(code)]);
      break;
    case ne::kDivZero:
      st = Status::InvalidArgument(expr::internal::kDivisionByZero);
      break;
    case ne::kModZero:
      st = Status::InvalidArgument(expr::internal::kModuloByZero);
      break;
    default:
      st = Status::Internal("unknown native step error code");
      break;
  }
  const wf::ControlConnector& c =
      inst->definition->control_connectors()[in.cidx];
  return st.WithContext("transition condition " + c.from + " -> " + c.to +
                        " in " + inst->id);
}

void Engine::NoteNativePlan(const wf::NavigationPlan& plan,
                            const codegen::NativeStepUnit* unit) {
  native_last_plan_ = &plan;
  // Per-plan compile accounting, folded in the first time this engine
  // navigates the plan (plans are fleet-shared; the unit is immutable).
  if (!native_counted_.insert(&plan).second) return;
  if (unit != nullptr) {
    stats_.native_programs_compiled += unit->programs_compiled();
    stats_.native_compile_bailouts += unit->bailouts();
    if (unit->programs_compiled() == 0 && unit->activity_count() > 0) {
      EXO_LOG(Warn) << "native step codegen: every activity of plan bailed "
                       "out; sweeps stay on the threaded-code interpreter";
    }
  } else {
    stats_.native_compile_bailouts += plan.activity_count();
    EXO_LOG(Warn) << "native step codegen unavailable for this plan; "
                     "sweeps stay on the threaded-code interpreter";
  }
}

bool Engine::TryNativeStepProgram(ProcessInstance* inst, uint32_t aid,
                                  bool all_false, Status* out_status) {
  const wf::NavigationPlan& plan = *inst->plan;
  const codegen::NativeStepUnit* unit = plan.native_unit().get();

  // Sweeps overwhelmingly repeat the plan they just navigated; the
  // pointer check keeps the set insert off the dispatch hot path.
  if (&plan != native_last_plan_) NoteNativePlan(plan, unit);

  if (unit == nullptr) return false;
  codegen::NativeStepUnit::StepFn fn = unit->entry(aid);
  if (fn == nullptr) return false;

  const wf::NavigationPlan::ActivityInfo& info = plan.activity(aid);
  if (!all_false && (info.has_cond_out || info.needs_resolver)) {
    Status st = MaterializeActivityOutput(inst, aid);
    if (!st.ok()) {
      *out_status = std::move(st);
      return true;
    }
  }
  const data::Container& out = inst->activity_output(aid);

  // The compiled condition bodies index container slots by immediate; a
  // container narrower than the compiled layout must take the interpreter
  // path, which raises CompiledCondition's exact layout error.
  if (!all_false && info.has_cond_out &&
      out.slot_count() < unit->min_slots(aid)) {
    return false;
  }

  ++stats_.native_step_dispatches;

  // Same swap-out reentrancy discipline as RunStepProgram's fresh pool:
  // a nested sweep (DeliverSignal → ApplyJoin → MarkDead) starts from an
  // empty pool instead of aliasing this buffer. The pooled buffer keeps
  // its size across sweeps — the native code writes entries [0, count)
  // before bumping fresh_count, so stale tail entries are never read and
  // the grow-only resize runs once per engine, not once per dispatch.
  std::vector<codegen::FreshSignal> fresh;
  fresh.swap(native_fresh_scratch_);
  if (fresh.size() < info.out_control.size()) {
    fresh.resize(info.out_control.size());
  }

  codegen::NativeStepCtx ctx;
  ctx.slot_values = out.slot_values_data();
  ctx.slot_values_size = out.slot_values_size();
  ctx.slot_defaults = out.slot_defaults_data();
  ctx.out_evals = inst->out_eval_plane();
  ctx.fresh = fresh.data();
  ctx.fresh_count = 0;
  ctx.flags = (all_false ? codegen::kFlagAllFalse : 0) |
              ((journal_ != nullptr || options_.audit_enabled)
                   ? codegen::kFlagRecord
                   : 0) |
              (options_.condition_error_is_false ? codegen::kFlagErrFalse : 0);
  ctx.stat_connectors = &stats_.connectors_evaluated;
  ctx.stat_vm = &stats_.vm_condition_evals;
  ctx.stat_typed = &stats_.typed_condition_evals;
  ctx.record_thunk = &Engine::NativeRecordThunk;
  ctx.engine = this;
  ctx.inst = inst;
  ctx.steps = plan.step_program(info.step_base);

  const uint64_t rc = fn(&ctx);
  if (rc != codegen::native_err::kNone) {
    *out_status = DecodeNativeError(inst, aid, rc);
    return true;
  }

  // Deliver only after the whole sweep is journaled, exactly like the
  // interpreter's do_end block.
  for (uint64_t i = 0; i < ctx.fresh_count; ++i) {
    Status st = DeliverSignal(inst, fresh[i].cidx, fresh[i].value != 0);
    if (!st.ok()) {
      *out_status = std::move(st);
      return true;
    }
  }
  native_fresh_scratch_.swap(fresh);
  *out_status = Status::OK();
  return true;
}

}  // namespace exotica::wfrt
