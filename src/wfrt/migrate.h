// Instance migration images (the payload of work stealing).
//
// A fleet steals whole *instances*, not single activities: activity-level
// runtime state is engine-owned, so the unit of migration is an instance
// family — a top-level instance plus its block-child subtree — serialized
// into a journal-replayable image. Engine::Detach produces the image and
// journals it (kInstanceDetached); Engine::Adopt journals it on the
// receiving side (kInstanceAdopted) and rebuilds the runtime state, so
// each engine's journal stays self-contained for crash recovery:
//
//   - the adopter's journal replays the kInstanceAdopted image and then
//     every later navigation record for the instance;
//   - the victim's journal replays the kInstanceDetached record, drops the
//     instance, and retains the image so a handoff that crashed before
//     reaching the adopter's journal can be re-adopted
//     (Engine::TakeDetachedImage) instead of being lost.
//
// The image format is line-oriented with EscapeQuoted payload fields —
// the same escaping discipline as the journal itself.

#ifndef EXOTICA_WFRT_MIGRATE_H_
#define EXOTICA_WFRT_MIGRATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wfrt/instance.h"

namespace exotica::wfrt {

/// \brief A serialized instance family in flight between engines.
///
/// `images` holds one encoded image per family member, root first, parents
/// before children — the order Adopt materializes them in.
struct DetachedInstance {
  std::string root_id;
  std::vector<std::string> images;

  /// Single-string form carried in journal records (one escaped image per
  /// line).
  std::string EncodePayload() const;
  static Result<DetachedInstance> DecodePayload(const std::string& root_id,
                                                const std::string& payload);
};

/// \brief Decoded form of one family member's image.
struct InstanceImage {
  std::string id;
  std::string process_name;
  int version = 1;
  std::string parent_instance;
  std::string parent_activity;

  bool finished = false;
  bool cancelled = false;
  bool failed = false;
  bool suspended = false;
  std::string failure_reason;
  int retries_used = 0;

  std::string input_image;   ///< Container::Serialize() of the instance input
  std::string output_image;

  struct ActivityImage {
    int state = 0;  ///< wf::ActivityState as int
    int attempt = 0;
    int failures = 0;
    std::string child_instance;
    std::vector<int8_t> incoming_eval;
    std::vector<int8_t> outgoing_eval;
    std::string input_image;
    std::string output_image;
  };
  /// Indexed by activity id (dense plan order).
  std::vector<ActivityImage> activities;
};

/// Serializes one instance's migratable state. The caller is responsible
/// for eligibility (no posted work items, no in-flight async programs).
std::string EncodeInstanceImage(const ProcessInstance& inst);

/// Inverse of EncodeInstanceImage. Corruption on malformed images.
Result<InstanceImage> DecodeInstanceImage(const std::string& image);

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_MIGRATE_H_
