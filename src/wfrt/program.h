// Runtime program bindings.
//
// The definition layer declares programs (name + container shapes); the
// runtime binds those names to callables. This mirrors FlowMark's split
// between program registration and program execution (paper §3.3: "once a
// program is registered it can be invoked from any activity. An API
// interface is provided so the programs can access the data containers").

#ifndef EXOTICA_WFRT_PROGRAM_H_
#define EXOTICA_WFRT_PROGRAM_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/container.h"

namespace exotica::wfrt {

/// \brief Execution context handed to a program invocation.
struct ProgramContext {
  std::string instance_id;   ///< process instance being navigated
  std::string activity;      ///< activity name
  int attempt = 1;           ///< 1-based; >1 after reschedules / failures
  std::string person;        ///< who started it (manual activities), else ""
};

/// \brief A bound program. Reads the input container, writes the output
/// container (by convention at least `RC`). Returning a non-OK Status
/// models a program *crash* — FlowMark reschedules the activity from the
/// beginning (at-least-once); a transaction that merely aborts is a
/// *successful* program run that reports RC <> 0.
using ProgramFn = std::function<Status(
    const data::Container& input, data::Container* output,
    const ProgramContext& context)>;

/// \brief Name → callable bindings.
class ProgramRegistry {
 public:
  Status Bind(const std::string& name, ProgramFn fn);

  /// Replaces an existing binding (fault-injection tests rebind).
  Status Rebind(const std::string& name, ProgramFn fn);

  bool IsBound(const std::string& name) const { return fns_.count(name) > 0; }
  Result<const ProgramFn*> Find(const std::string& name) const;
  std::vector<std::string> BoundNames() const;

 private:
  std::map<std::string, ProgramFn> fns_;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_PROGRAM_H_
