#include "wfrt/fleet.h"

#include <thread>
#include <utility>

namespace exotica::wfrt {

EngineFleet::EngineFleet(const wf::DefinitionStore* definitions,
                         ProgramRegistry* programs, int engines,
                         EngineOptions options)
    : definitions_(definitions) {
  if (engines < 1) engines = 1;
  engines_.reserve(static_cast<size_t>(engines));
  for (int i = 0; i < engines; ++i) {
    engines_.push_back(std::make_unique<Engine>(definitions, programs,
                                                options));
  }
}

Result<EngineFleet::BatchResult> EngineFleet::RunBatch(
    const std::string& process_name, int count, const data::Container* input) {
  EXO_RETURN_NOT_OK(definitions_->FindProcess(process_name).status());
  if (count < 0) {
    return Status::InvalidArgument("instance count must be non-negative");
  }

  // Per-engine share, round-robin remainder.
  std::vector<int> share(engines_.size(), count / static_cast<int>(engines_.size()));
  for (int i = 0; i < count % static_cast<int>(engines_.size()); ++i) {
    ++share[static_cast<size_t>(i)];
  }

  BatchResult result;
  result.errors.assign(engines_.size(), "");
  // Per-engine scratch: workers only touch their own slot; merged after
  // the join so failed_instances needs no lock.
  std::vector<std::vector<InstanceError>> stalled(engines_.size());

  std::vector<std::thread> workers;
  workers.reserve(engines_.size());
  for (size_t e = 0; e < engines_.size(); ++e) {
    workers.emplace_back([this, e, &share, &process_name, input, &result,
                          &stalled] {
      Engine* engine = engines_[e].get();
      for (int i = 0; i < share[e]; ++i) {
        auto id = engine->StartProcess(process_name, input);
        if (!id.ok()) {
          result.errors[e] = id.status().ToString();
          return;
        }
        Status st = engine->Run();
        if (!st.ok()) {
          result.errors[e] = st.ToString();
          return;
        }
        // A quarantined or stalled instance is an instance-level outcome,
        // not an engine failure: keep running the rest of the share.
        if (!engine->IsFinished(*id) && !engine->IsFailed(*id)) {
          stalled[e].push_back(InstanceError{
              static_cast<int>(e), *id,
              "instance " + *id + " stalled (manual work?)"});
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (size_t e = 0; e < engines_.size(); ++e) {
    const Engine& engine = *engines_[e];
    const EngineStats& s = engine.stats();
    result.aggregate.instances_started += s.instances_started;
    result.aggregate.instances_finished += s.instances_finished;
    result.aggregate.activities_executed += s.activities_executed;
    result.aggregate.connectors_evaluated += s.connectors_evaluated;
    result.aggregate.dead_path_terminations += s.dead_path_terminations;
    result.aggregate.reschedules += s.reschedules;
    result.aggregate.program_failures += s.program_failures;
    result.aggregate.retries += s.retries;
    result.aggregate.backoff_waits += s.backoff_waits;
    result.aggregate.backoff_wait_micros += s.backoff_wait_micros;
    result.aggregate.permanent_failures += s.permanent_failures;
    result.aggregate.instances_failed += s.instances_failed;
    result.instances_finished += s.instances_finished;
    for (const Engine::FailedInstance& f : engine.FailedInstances()) {
      result.failed_instances.push_back(
          InstanceError{static_cast<int>(e), f.id, f.reason});
    }
    for (InstanceError& err : stalled[e]) {
      result.failed_instances.push_back(std::move(err));
    }
  }
  return result;
}

}  // namespace exotica::wfrt
