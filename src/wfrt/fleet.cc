#include "wfrt/fleet.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace exotica::wfrt {

namespace {

/// All cross-thread state of a stealing batch. Workers touch it only
/// under `mu`; engines are touched only by their owning worker, so the
/// scheduler adds no locking to navigation itself.
struct StealCoordinator {
  explicit StealCoordinator(size_t n)
      : depth(n, 0),
        cost(n, 0.0),
        active(n, 1),
        idle(n, 0),
        barred(n, 0),
        requests(n),
        handoff(n),
        handoff_ready(n, 0) {}

  std::mutex mu;
  std::condition_variable cv;

  std::vector<size_t> depth;  ///< published ready depth per engine
  std::vector<double> cost;   ///< published mean activity cost (EWMA µs)
  std::vector<char> active;   ///< worker has not retired
  std::vector<char> idle;     ///< worker is quiescent, hunting for work
  std::vector<char> barred;   ///< declined a steal; skipped as victim
                              ///< (monotone — guarantees termination)
  std::vector<std::vector<int>> requests;  ///< per victim: queued thieves
  std::vector<std::vector<DetachedInstance>> handoff;  ///< per thief;
                                                       ///< empty = declined
  std::vector<char> handoff_ready;                     ///< per thief
};

}  // namespace

EngineFleet::EngineFleet(const wf::DefinitionStore* definitions,
                         ProgramRegistry* programs, int engines,
                         EngineOptions options, FleetOptions fleet_options)
    : definitions_(definitions), fleet_(fleet_options) {
  if (engines < 1) engines = 1;
  if (fleet_.steal_slice < 1) fleet_.steal_slice = 1;
  engines_.reserve(static_cast<size_t>(engines));
  for (int i = 0; i < engines; ++i) {
    EngineOptions eo = options;
    if (fleet_.work_stealing) {
      eo.instance_id_prefix =
          options.instance_id_prefix + "e" + std::to_string(i) + ":";
    }
    engines_.push_back(std::make_unique<Engine>(definitions, programs, eo));
  }
}

Status EngineFleet::AttachJournals(
    const std::vector<wfjournal::Journal*>& journals) {
  if (journals.size() != engines_.size()) {
    return Status::InvalidArgument(
        "journal shard count " + std::to_string(journals.size()) +
        " does not match fleet size " + std::to_string(engines_.size()));
  }
  for (size_t e = 0; e < engines_.size(); ++e) {
    EXO_RETURN_NOT_OK_CTX(engines_[e]->AttachJournal(journals[e]),
                          "attaching journal shard " + std::to_string(e));
  }
  journals_ = journals;
  return Status::OK();
}

Status EngineFleet::OpenJournalShards(const std::string& base_path,
                                      bool fsync_each) {
  std::vector<std::unique_ptr<wfjournal::FileJournal>> opened;
  std::vector<wfjournal::Journal*> raw;
  opened.reserve(engines_.size());
  raw.reserve(engines_.size());
  for (size_t e = 0; e < engines_.size(); ++e) {
    std::string path = base_path + ".e" + std::to_string(e);
    EXO_ASSIGN_OR_RETURN(std::unique_ptr<wfjournal::FileJournal> journal,
                         wfjournal::FileJournal::Open(path, fsync_each));
    raw.push_back(journal.get());
    opened.push_back(std::move(journal));
  }
  EXO_RETURN_NOT_OK(AttachJournals(raw));
  owned_journals_ = std::move(opened);
  return Status::OK();
}

Result<EngineFleet::RecoveryReport> EngineFleet::Recover() {
  size_t n = engines_.size();
  if (journals_.size() != n) {
    return Status::FailedPrecondition(
        "no journal shards attached (AttachJournals/OpenJournalShards)");
  }
  // Phase 1: every engine replays its own shard, in parallel. Engines
  // share only immutable state (definitions, type registry, shared
  // arenas), so recovery needs no coordination until the handoff pass.
  std::vector<Status> statuses(n);
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t e = 0; e < n; ++e) {
      workers.emplace_back(
          [this, e, &statuses] { statuses[e] = engines_[e]->Recover(); });
    }
    for (std::thread& w : workers) w.join();
  }
  for (size_t e = 0; e < n; ++e) {
    EXO_RETURN_NOT_OK_CTX(statuses[e],
                          "recovering journal shard " + std::to_string(e));
  }

  RecoveryReport report;
  for (size_t e = 0; e < n; ++e) {
    report.records_replayed += engines_[e]->stats().recovery_records_replayed;
  }

  // Phase 2 (single-threaded): resolve dangling handoffs. A victim's
  // replay retained the family image of every detach; if no shard's
  // kInstanceAdopted re-hosted the family, the handoff died in flight and
  // the image is the only surviving copy — re-adopt it on the
  // least-loaded engine (Adopt journals it there, so the next crash
  // replays cleanly).
  for (size_t v = 0; v < n; ++v) {
    for (const std::string& root : engines_[v]->RetainedDetachedRoots()) {
      bool hosted = false;
      for (size_t a = 0; a < n && !hosted; ++a) {
        Result<const ProcessInstance*> found = engines_[a]->FindInstance(root);
        hosted = found.ok() && !(*found)->detached;
      }
      EXO_ASSIGN_OR_RETURN(DetachedInstance image,
                           engines_[v]->TakeDetachedImage(root));
      if (hosted) {
        ++report.handoff_images_dropped;
        continue;
      }
      size_t best = 0;
      for (size_t a = 1; a < n; ++a) {
        if (engines_[a]->unfinished_top_level() <
            engines_[best]->unfinished_top_level()) {
          best = a;
        }
      }
      EXO_RETURN_NOT_OK_CTX(engines_[best]->Adopt(image),
                            "re-adopting dangling handoff " + root);
      ++report.handoffs_readopted;
    }
  }
  return report;
}

Result<EngineFleet::BatchResult> EngineFleet::RunBatch(
    const std::string& process_name, int count, const data::Container* input) {
  if (count < 0) {
    return Status::InvalidArgument("instance count must be non-negative");
  }
  std::vector<BatchSeed> seeds(static_cast<size_t>(count),
                               BatchSeed{process_name, input});
  return RunBatch(seeds);
}

std::vector<std::vector<const EngineFleet::BatchSeed*>>
EngineFleet::AssignSeeds(const std::vector<BatchSeed>& seeds) const {
  size_t n = engines_.size();
  std::vector<size_t> load(n);
  for (size_t e = 0; e < n; ++e) {
    load[e] = engines_[e]->unfinished_top_level();
  }
  std::vector<std::vector<const BatchSeed*>> assigned(n);
  for (const BatchSeed& seed : seeds) {
    size_t best = 0;
    for (size_t e = 1; e < n; ++e) {
      if (load[e] < load[best]) best = e;
    }
    ++load[best];
    assigned[best].push_back(&seed);
  }
  return assigned;
}

Status EngineFleet::PrepareArenas(const std::vector<BatchSeed>& seeds) {
  // Transitive closure over subprocess (block) activities, so a block
  // spin-up mid-batch also hits a shared arena.
  std::vector<const wf::ProcessDefinition*> frontier;
  for (const BatchSeed& seed : seeds) {
    EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* def,
                         definitions_->FindProcess(seed.process));
    frontier.push_back(def);
  }
  while (!frontier.empty()) {
    const wf::ProcessDefinition* def = frontier.back();
    frontier.pop_back();
    if (arenas_.count(def) > 0) continue;
    EXO_ASSIGN_OR_RETURN(InstanceArena arena,
                         InstanceArena::Build(*def, definitions_->types()));
    auto [it, inserted] =
        arenas_.emplace(def, std::make_unique<InstanceArena>(std::move(arena)));
    (void)inserted;
    for (std::unique_ptr<Engine>& engine : engines_) {
      engine->ShareArena(def, it->second.get());
    }
    for (const wf::Activity& a : def->activities()) {
      if (!a.is_process()) continue;
      EXO_ASSIGN_OR_RETURN(const wf::ProcessDefinition* sub,
                           definitions_->FindProcess(a.subprocess));
      frontier.push_back(sub);
    }
  }
  return Status::OK();
}

Result<EngineFleet::BatchResult> EngineFleet::RunBatch(
    const std::vector<BatchSeed>& seeds) {
  for (const BatchSeed& seed : seeds) {
    EXO_RETURN_NOT_OK(definitions_->FindProcess(seed.process).status());
  }
  // Single-threaded moment: build (or reuse) the shared spin-up arenas
  // before any worker thread exists.
  EXO_RETURN_NOT_OK(PrepareArenas(seeds));
  std::vector<std::vector<const BatchSeed*>> assigned = AssignSeeds(seeds);

  BatchResult result;
  result.errors.assign(engines_.size(), "");

  // Baseline stats, so a reused fleet reports only this batch's deltas in
  // the instance sweep below (stats aggregation stays cumulative, as
  // before).
  if (fleet_.work_stealing && engines_.size() > 1) {
    RunStealing(assigned, &result);
  } else {
    RunStatic(assigned, &result);
  }

  for (size_t e = 0; e < engines_.size(); ++e) {
    const Engine& engine = *engines_[e];
    const EngineStats& s = engine.stats();
    result.aggregate.instances_started += s.instances_started;
    result.aggregate.instances_finished += s.instances_finished;
    result.aggregate.activities_executed += s.activities_executed;
    result.aggregate.connectors_evaluated += s.connectors_evaluated;
    result.aggregate.dead_path_terminations += s.dead_path_terminations;
    result.aggregate.reschedules += s.reschedules;
    result.aggregate.program_failures += s.program_failures;
    result.aggregate.retries += s.retries;
    result.aggregate.backoff_waits += s.backoff_waits;
    result.aggregate.backoff_wait_micros += s.backoff_wait_micros;
    result.aggregate.permanent_failures += s.permanent_failures;
    result.aggregate.instances_failed += s.instances_failed;
    result.aggregate.instances_detached += s.instances_detached;
    result.aggregate.instances_stolen += s.instances_stolen;
    result.aggregate.steals_failed += s.steals_failed;
    result.aggregate.arena_spinups += s.arena_spinups;
    result.aggregate.arena_shared_hits += s.arena_shared_hits;
    result.aggregate.vm_condition_evals += s.vm_condition_evals;
    result.aggregate.tree_condition_evals += s.tree_condition_evals;
    result.aggregate.typed_condition_evals += s.typed_condition_evals;
    result.aggregate.step_program_dispatches += s.step_program_dispatches;
    result.aggregate.steal_slice_shrinks += s.steal_slice_shrinks;
    result.aggregate.steal_victim_cost_picks += s.steal_victim_cost_picks;
    result.aggregate.snapshots_written += s.snapshots_written;
    result.aggregate.records_truncated += s.records_truncated;
    result.aggregate.recovery_records_replayed += s.recovery_records_replayed;
    result.aggregate.native_step_dispatches += s.native_step_dispatches;
    result.aggregate.native_compile_bailouts += s.native_compile_bailouts;
    result.aggregate.native_programs_compiled += s.native_programs_compiled;
    result.instances_finished += s.instances_finished;
    for (const Engine::FailedInstance& f : engine.FailedInstances()) {
      result.failed_instances.push_back(
          InstanceError{static_cast<int>(e), f.id, f.reason});
    }
  }

  // Stall sweep: a top-level instance that is neither finished nor
  // quarantined after every worker retired is stuck on manual work. An
  // instance may have migrated, so look it up wherever it lives now.
  for (size_t e = 0; e < engines_.size(); ++e) {
    for (const std::string& id : engines_[e]->instance_order()) {
      Result<const ProcessInstance*> found = engines_[e]->FindInstance(id);
      if (!found.ok()) continue;
      const ProcessInstance* inst = *found;
      if (inst->is_child() || inst->finished || inst->failed ||
          inst->detached) {
        continue;
      }
      result.failed_instances.push_back(
          InstanceError{static_cast<int>(e), id,
                        "instance " + id + " stalled (manual work?)"});
    }
  }
  return result;
}

void EngineFleet::RunStatic(
    const std::vector<std::vector<const BatchSeed*>>& assigned,
    BatchResult* result) {
  std::vector<std::thread> workers;
  workers.reserve(engines_.size());
  for (size_t e = 0; e < engines_.size(); ++e) {
    workers.emplace_back([this, e, &assigned, result] {
      Engine* engine = engines_[e].get();
      for (const BatchSeed* seed : assigned[e]) {
        auto id = engine->StartProcess(seed->process, seed->input);
        if (!id.ok()) {
          result->errors[e] = id.status().ToString();
          return;
        }
        Status st = engine->Run();
        if (!st.ok()) {
          result->errors[e] = st.ToString();
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

void EngineFleet::RunStealing(
    const std::vector<std::vector<const BatchSeed*>>& assigned,
    BatchResult* result) {
  size_t n = engines_.size();
  StealCoordinator co(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t e = 0; e < n; ++e) {
    workers.emplace_back([this, e, n, &assigned, result, &co] {
      Engine* engine = engines_[e].get();
      int self = static_cast<int>(e);

      // Phase 1: spin every seed up front (cheap with the arena), so load
      // is visible to thieves from the first slice.
      bool engine_dead = false;
      for (const BatchSeed* seed : assigned[e]) {
        auto id = engine->StartProcess(seed->process, seed->input);
        if (!id.ok()) {
          result->errors[e] = id.status().ToString();
          engine_dead = true;
          break;
        }
      }

      std::unique_lock<std::mutex> lock(co.mu);

      // Serves (or declines) one pending steal request against this
      // engine. Detach journals + flushes, so it runs unlocked; the
      // request slot is cleared first so the window cannot double-serve.
      auto serve_request = [&] {
        // Serve *every* queued thief at this one boundary. Serving is
        // tied to this engine's slice boundary, and a loaded victim's
        // slices are slow (that is *why* it is loaded) — making thieves
        // wait one boundary each would drain it at the victim's own pace.
        while (!co.requests[e].empty()) {
          int thief = co.requests[e].front();
          co.requests[e].erase(co.requests[e].begin());
          std::vector<DetachedInstance> give;
          lock.unlock();
          // Steal-half: one handoff carries up to half of the resident
          // families, so successive thieves leave with 1/2, 1/4, ... and
          // a deep queue drains in O(log n) handoffs.
          size_t quota = engine->unfinished_top_level() / 2;
          for (size_t k = 0; k < quota; ++k) {
            Result<std::string> pick = engine->PickDetachable();
            if (!pick.ok()) break;
            Result<DetachedInstance> det = engine->Detach(*pick);
            if (!det.ok()) break;
            give.push_back(std::move(*det));
          }
          lock.lock();
          if (give.empty()) {
            // Nothing stealable here now; bar this engine for the rest
            // of the batch so probes cannot loop forever.
            co.barred[e] = 1;
          }
          co.handoff[static_cast<size_t>(thief)] = std::move(give);
          co.handoff_ready[static_cast<size_t>(thief)] = 1;
          co.cv.notify_all();
        }
      };

      // Phase 2: drive in slices; steal when quiescent. The slice adapts
      // to thief pressure: thieves found queued at a boundary mean the
      // whole slice was steal latency for them, so the next slice is
      // halved; quiet boundaries double it back toward the configured
      // width.
      int cur_slice = fleet_.steal_slice;
      while (!engine_dead) {
        lock.unlock();
        bool quiescent = false;
        Status st = engine->RunSlice(cur_slice, &quiescent);
        lock.lock();
        if (!st.ok()) {
          result->errors[e] = st.ToString();
          break;
        }
        if (fleet_.adaptive_steal_slice) {
          if (!co.requests[e].empty()) {
            if (cur_slice > 1) {
              cur_slice /= 2;
              engine->NoteStealSliceShrink();
            }
          } else if (cur_slice < fleet_.steal_slice) {
            cur_slice = std::min(fleet_.steal_slice, cur_slice * 2);
          }
        }
        serve_request();
        co.depth[e] = engine->ready_depth();
        co.cost[e] = engine->mean_activity_cost_micros();
        co.cv.notify_all();
        if (co.depth[e] > 0) continue;

        // Quiescent: hunt for a victim, or wait for load to appear.
        co.idle[e] = 1;
        co.cv.notify_all();
        bool retired = false;
        while (co.idle[e] && !engine_dead) {
          if (!co.requests[e].empty()) {
            serve_request();  // declines: our queue is empty
            continue;
          }
          // Victim hunt. The plain pick is the deepest queue; with
          // cost_aware_victims the pick maximizes depth x (mean activity
          // cost + 1), so a short queue of expensive activities can
          // outrank a deeper queue of trivial ones. With no cost signal
          // yet (all EWMAs zero) the score degenerates to plain depth.
          int victim = -1;
          int deepest = -1;
          size_t best_depth = 0;
          double best_score = 0.0;
          for (size_t v = 0; v < n; ++v) {
            if (v == e || !co.active[v] || co.barred[v]) continue;
            if (co.depth[v] > best_depth) {
              best_depth = co.depth[v];
              deepest = static_cast<int>(v);
            }
            if (fleet_.cost_aware_victims && co.depth[v] > 0) {
              double score =
                  static_cast<double>(co.depth[v]) * (co.cost[v] + 1.0);
              if (score > best_score) {
                best_score = score;
                victim = static_cast<int>(v);
              }
            }
          }
          if (!fleet_.cost_aware_victims) {
            victim = deepest;
          } else if (victim >= 0 && victim != deepest) {
            engine->NoteStealCostPick();
          }
          if (victim >= 0) {
            co.requests[static_cast<size_t>(victim)].push_back(self);
            co.handoff_ready[e] = 0;
            co.cv.notify_all();
            co.cv.wait(lock, [&] { return co.handoff_ready[e] == 1; });
            co.handoff_ready[e] = 0;
            std::vector<DetachedInstance> got = std::move(co.handoff[e]);
            co.handoff[e].clear();
            if (got.empty()) {
              engine->NoteStealFailed();
              continue;  // victim is now barred; try elsewhere
            }
            lock.unlock();
            Status adopt = Status::OK();
            for (const DetachedInstance& d : got) {
              adopt = engine->Adopt(d);
              if (!adopt.ok()) break;
            }
            lock.lock();
            if (!adopt.ok()) {
              result->errors[e] = adopt.ToString();
              engine_dead = true;
              break;
            }
            co.idle[e] = 0;
            co.depth[e] = engine->ready_depth();
            co.cost[e] = engine->mean_activity_cost_micros();
            co.cv.notify_all();
            break;  // back to slicing
          }
          // No stealable load anywhere. Retire once every other worker is
          // idle or retired — a busy worker may still publish depth.
          bool someone_busy = false;
          for (size_t v = 0; v < n; ++v) {
            if (v != e && co.active[v] && !co.idle[v]) someone_busy = true;
          }
          if (!someone_busy) {
            retired = true;
            break;
          }
          co.cv.wait(lock);
        }
        if (retired || engine_dead) break;
      }

      // Retirement: nobody may be left waiting on this engine.
      co.active[e] = 0;
      co.idle[e] = 0;
      co.depth[e] = 0;
      for (int thief : co.requests[e]) {
        co.handoff[static_cast<size_t>(thief)].clear();
        co.handoff_ready[static_cast<size_t>(thief)] = 1;
      }
      co.requests[e].clear();
      co.cv.notify_all();
    });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace exotica::wfrt
