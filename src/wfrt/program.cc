#include "wfrt/program.h"

namespace exotica::wfrt {

Status ProgramRegistry::Bind(const std::string& name, ProgramFn fn) {
  if (name.empty()) {
    return Status::InvalidArgument("program binding name may not be empty");
  }
  if (fns_.count(name) > 0) {
    return Status::AlreadyExists("program already bound: " + name);
  }
  if (!fn) {
    return Status::InvalidArgument("program binding for " + name + " is null");
  }
  fns_.emplace(name, std::move(fn));
  return Status::OK();
}

Status ProgramRegistry::Rebind(const std::string& name, ProgramFn fn) {
  if (!fn) {
    return Status::InvalidArgument("program binding for " + name + " is null");
  }
  fns_[name] = std::move(fn);
  return Status::OK();
}

Result<const ProgramFn*> ProgramRegistry::Find(const std::string& name) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("no program bound for name: " + name);
  }
  return &it->second;
}

std::vector<std::string> ProgramRegistry::BoundNames() const {
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [name, fn] : fns_) {
    (void)fn;
    out.push_back(name);
  }
  return out;
}

}  // namespace exotica::wfrt
