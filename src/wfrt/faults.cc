#include "wfrt/faults.h"

namespace exotica::wfrt {

namespace {
// FNV-1a; the same fold the engine uses for backoff jitter. Hash-based
// decisions are order-independent — instance A retrying first never
// changes what instance B draws.
inline uint64_t HashMix(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kPermanent: return "permanent";
    case FaultKind::kSlow: return "slow";
  }
  return "?";
}

void FaultPlan::CrashAt(const std::string& activity, int attempt,
                        FaultKind kind) {
  schedule_[{activity, attempt}] = Decision{kind, 0};
}

void FaultPlan::SlowAt(const std::string& activity, int attempt,
                       Micros delay) {
  schedule_[{activity, attempt}] = Decision{FaultKind::kSlow, delay};
}

void FaultPlan::SetProfile(const std::string& activity,
                           FaultProfile profile) {
  profiles_[activity] = profile;
}

void FaultPlan::SetDefaultProfile(FaultProfile profile) {
  default_profile_ = profile;
  has_default_profile_ = true;
}

FaultPlan::Decision FaultPlan::Decide(const std::string& instance,
                                      const std::string& activity,
                                      int attempt) const {
  auto it = schedule_.find({activity, attempt});
  if (it != schedule_.end()) return it->second;

  const FaultProfile* profile = nullptr;
  auto pit = profiles_.find(activity);
  if (pit != profiles_.end()) {
    profile = &pit->second;
  } else if (has_default_profile_) {
    profile = &default_profile_;
  }
  if (profile == nullptr) return Decision{};

  uint64_t h = HashMix(0xcbf29ce484222325ull, seed_);
  h = HashMix(h, instance);
  h = HashMix(h, activity);
  h = HashMix(h, static_cast<uint64_t>(attempt));
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);

  if (u < profile->transient_probability) {
    return Decision{FaultKind::kTransient, 0};
  }
  u -= profile->transient_probability;
  if (u < profile->permanent_probability) {
    return Decision{FaultKind::kPermanent, 0};
  }
  u -= profile->permanent_probability;
  if (u < profile->slow_probability) {
    return Decision{FaultKind::kSlow, profile->slow_micros};
  }
  return Decision{};
}

Status FaultPlan::Instrument(ProgramRegistry* programs) {
  for (const std::string& name : programs->BoundNames()) {
    EXO_ASSIGN_OR_RETURN(const ProgramFn* found, programs->Find(name));
    ProgramFn inner = *found;
    EXO_RETURN_NOT_OK(programs->Rebind(
        name,
        [this, inner](const data::Container& input, data::Container* output,
                      const ProgramContext& ctx) -> Status {
          Decision d = Decide(ctx.instance_id, ctx.activity, ctx.attempt);
          switch (d.kind) {
            case FaultKind::kNone:
              break;
            case FaultKind::kTransient:
              injected_.fetch_add(1);
              return Status::Internal(
                  "injected transient fault at (" + ctx.activity +
                  ", attempt " + std::to_string(ctx.attempt) + ")");
            case FaultKind::kPermanent:
              injected_.fetch_add(1);
              return Status::Unsupported(
                  "injected permanent fault at (" + ctx.activity +
                  ", attempt " + std::to_string(ctx.attempt) + ")");
            case FaultKind::kSlow:
              injected_.fetch_add(1);
              if (on_delay_) on_delay_(d.delay_micros);
              break;
          }
          return inner(input, output, ctx);
        }));
  }
  return Status::OK();
}

}  // namespace exotica::wfrt
