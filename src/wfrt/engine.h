// The workflow engine: instantiates process templates and navigates them
// (paper §3.2's execution rules, including dead path elimination, exit
// condition rescheduling, blocks, manual activities via worklists, and
// §3.3's forward recovery from a navigation journal).
//
// Navigation runs on the definition's compiled NavigationPlan: activities
// are dense integer ids, the ready queue holds (instance index, activity
// id) pairs deduplicated by a per-instance bitmap, and string names appear
// only at API boundaries, audit events, and journal records (the on-disk
// journal format is unchanged). Journal writes are group-committed: the
// attached journal may buffer appends, and the engine flushes at every
// navigation quiescence point (Run() exit and each public mutation API).

#ifndef EXOTICA_WFRT_ENGINE_H_
#define EXOTICA_WFRT_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "codegen/step_jit.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "org/directory.h"
#include "org/worklist.h"
#include "wf/process.h"
#include "wfjournal/journal.h"
#include "wfrt/arena.h"
#include "wfrt/audit.h"
#include "wfrt/instance.h"
#include "wfrt/migrate.h"
#include "wfrt/program.h"

namespace exotica::wfrt {

/// \brief How program crashes are retried before an instance is
/// quarantined.
///
/// A program crash (a ProgramFn returning a non-OK, non-Pending Status) is
/// the paper's §3.3 restart case: the activity is rescheduled and re-run
/// from the beginning. The policy bounds that loop three ways — per
/// activity, per instance, and by error class — and spaces retries with
/// exponential backoff. Exhausting any bound quarantines the instance
/// (terminal failed state) instead of poisoning the whole Run().
struct RetryPolicy {
  /// Consecutive crashes tolerated per activity before quarantine;
  /// 0 = unlimited.
  int max_attempts = 64;

  /// Total crash retries allowed per top-level instance, shared with its
  /// block children; 0 = unlimited. Read from the engine-wide policy
  /// (EngineOptions::retry), not per-activity overrides.
  int instance_retry_budget = 0;

  /// Backoff before the k-th retry of an activity:
  ///   min(max_backoff, initial * multiplier^(k-1)), +/- jitter.
  /// 0 initial = retry immediately (the default; keeps traces stable).
  Micros initial_backoff_micros = 0;
  double backoff_multiplier = 2.0;
  Micros max_backoff_micros = 60 * 1000 * 1000;

  /// Jitter as a fraction of the delay in [0, 1]: the delay is scaled by
  /// a factor drawn deterministically from [1 - jitter, 1 + jitter] keyed
  /// off EngineOptions::retry_jitter_seed + (instance, activity, attempt).
  double jitter = 0.0;

  /// Classifies a program error as permanent: no retry, immediate
  /// quarantine. Null uses DefaultIsPermanent.
  std::function<bool(const Status&)> is_permanent;

  /// Default classification: InvalidArgument, Unsupported, and
  /// ValidationError are permanent (retrying a malformed request cannot
  /// succeed); everything else — Internal, IOError, Timeout, ... — is
  /// transient.
  static bool DefaultIsPermanent(const Status& error);
};

/// \brief Engine tuning knobs.
struct EngineOptions {
  /// Cap on exit-condition reschedules per activity; 0 = unlimited.
  /// FlowMark loops forever; the cap turns runaway loops into errors in
  /// tests and benches.
  int max_exit_retries = 100000;

  /// Crash-retry policy for program activities (replaces the old flat
  /// max_program_failures counter).
  RetryPolicy retry;

  /// Per-activity policy overrides, keyed by activity name; activities
  /// not listed use `retry`.
  std::map<std::string, RetryPolicy> activity_retry;

  /// Seed for deterministic backoff jitter.
  uint64_t retry_jitter_seed = 42;

  /// Invoked with each computed backoff delay. The engine is synchronous
  /// and never sleeps on its own: production binds this to a sleeper,
  /// tests advance a ManualClock. Null = the delay is only recorded
  /// (stats + audit).
  std::function<void(Micros)> on_backoff;

  /// Evaluate unevaluable transition conditions (unset data, type errors)
  /// as false instead of failing navigation.
  bool condition_error_is_false = false;

  /// Record audit events at all (§3.3 monitoring/accounting). FlowMark
  /// sets an audit level per process — full, condensed, or none — and
  /// this is "none": no events are recorded, CompactTrace and the
  /// accounting queries see an empty trail, and the monitoring observer
  /// never fires. The journal (the recovery source of truth) is
  /// unaffected. Navigation-throughput benchmarks turn this off so they
  /// measure navigation rather than trail bookkeeping.
  bool audit_enabled = true;

  /// Bound on retained audit events; 0 = unbounded (default). When set,
  /// the trail keeps at least the most recent `max_audit_events` events
  /// (and at most twice that, amortized), so long-running fleets do not
  /// grow memory without bound.
  size_t max_audit_events = 0;

  /// Prepended to every generated instance id ("wf-N" becomes
  /// "<prefix>wf-N"). Fleets with work stealing enabled give each engine a
  /// distinct prefix so an instance id stays unique after migration.
  std::string instance_id_prefix;

  /// Spin instances up by copying a per-definition preformatted image
  /// (InstanceArena) instead of walking the container prototype map once
  /// per activity. Off = the legacy walk (kept for A/B benchmarking).
  bool spinup_arena = true;

  /// Evaluate exit/transition conditions through the plan's compiled
  /// CompiledCondition programs (slot-resolved bytecode) where available.
  /// Off = the tree-walk reference evaluator everywhere (kept for A/B
  /// benchmarking); conditions the compiler couldn't bind always
  /// tree-walk regardless.
  bool use_condition_vm = true;

  /// Run conditions through their typed (monomorphic) programs where the
  /// compiler emitted one. Off = the generic operand-kind-dispatching
  /// program even when a typed one exists (A/B benchmarking). Only
  /// meaningful with use_condition_vm on.
  bool use_typed_conditions = true;

  /// Run each activity's outgoing connector sweep through the plan's
  /// fused step program (threaded dispatch; see
  /// docs/specs/step_program.md). Off = the interpreted per-slot sweep
  /// (kept as the A/B reference; journal records and errors are
  /// byte-identical either way).
  bool use_step_programs = true;

  /// Dispatch outgoing sweeps to the plan's native x86-64 step functions
  /// where the emitter compiled one (the last rung of the compilation
  /// ladder; see docs/specs/native_codegen.md). Requires
  /// use_step_programs, use_condition_vm, and use_typed_conditions;
  /// activities the emitter bailed out on — and whole platforms without
  /// the emitter — fall back to the threaded-code step program. Journal
  /// records, audit events, and error messages are byte-identical either
  /// way.
  bool use_native_step_programs = true;

  /// Hold per-activity hot state (state/enqueued/eval/attempt/failures)
  /// in one contiguous per-instance byte block laid out by the plan
  /// (wf::HotLayout) with containers/work-items in a cold sidecar, so the
  /// settle sweeps scan dense bytes instead of striding ActivityRuntime
  /// structs (see docs/specs/instance_layout.md). Off = the legacy AoS
  /// layout (kept as the A/B reference; journal, audit, and error output
  /// are byte-identical either way).
  bool packed_instance_state = true;

  /// Committed journal records between automatic snapshot checkpoints
  /// (kSnapshot record + truncation of the journal behind it; see
  /// docs/specs/snapshot_recovery.md). Checked at every navigation
  /// quiescence point (Run()/RunSlice() exit). 0 = never automatic;
  /// Engine::Checkpoint() always works explicitly.
  uint64_t snapshot_interval = 0;

  /// Clock for worklist deadlines and audit timestamps.
  const Clock* clock = nullptr;  ///< defaults to SystemClock
};

/// \brief Aggregate navigation counters.
struct EngineStats {
  uint64_t instances_started = 0;
  uint64_t instances_finished = 0;
  uint64_t activities_executed = 0;
  uint64_t connectors_evaluated = 0;
  uint64_t dead_path_terminations = 0;
  uint64_t reschedules = 0;
  uint64_t program_failures = 0;
  uint64_t retries = 0;            ///< crash retries granted by the policy
  uint64_t backoff_waits = 0;      ///< retries that carried a non-zero delay
  uint64_t backoff_wait_micros = 0;///< total delay across backoff_waits
  uint64_t permanent_failures = 0; ///< errors classified permanent
  uint64_t instances_failed = 0;   ///< top-level instances quarantined
  uint64_t instances_detached = 0; ///< families migrated away (victim side)
  uint64_t instances_stolen = 0;   ///< families adopted (thief side)
  uint64_t steals_failed = 0;      ///< steal attempts that found nothing
  uint64_t arena_spinups = 0;      ///< instances spun up from an arena image
  uint64_t arena_shared_hits = 0;  ///< spin-ups served from a fleet-shared arena
  uint64_t vm_condition_evals = 0;   ///< conditions run on the compiled VM
  uint64_t tree_condition_evals = 0; ///< conditions run on the tree-walk
  /// VM evaluations that ran the typed (monomorphic) program — a subset
  /// of vm_condition_evals.
  uint64_t typed_condition_evals = 0;
  uint64_t step_program_dispatches = 0; ///< outgoing sweeps run fused
  uint64_t steal_slice_shrinks = 0;  ///< adaptive slice halvings (fleet)
  /// Steal-victim selections where the cost-aware score picked a
  /// different victim than plain deepest-queue would have (fleet).
  uint64_t steal_victim_cost_picks = 0;
  uint64_t snapshots_written = 0;    ///< checkpoint records appended
  uint64_t records_truncated = 0;    ///< journal records dropped behind snapshots
  uint64_t recovery_records_replayed = 0; ///< records Recover() streamed
  /// Outgoing sweeps dispatched to a native step function (these do NOT
  /// also count in step_program_dispatches).
  uint64_t native_step_dispatches = 0;
  /// Activities whose step program could not be lowered to native code
  /// (counted once per plan, first time the engine navigates it).
  uint64_t native_compile_bailouts = 0;
  /// Activities with a native step function (same per-plan accounting).
  uint64_t native_programs_compiled = 0;
};

/// \brief The navigator.
///
/// Single-threaded and deterministic: automatic activities execute in FIFO
/// ready order; every trace is reproducible given deterministic programs.
/// Concurrency in the modelled world (parallel saga branches, alternative
/// paths) is expressed by graph structure, not threads.
class Engine {
 public:
  /// `definitions` and `programs` must outlive the engine.
  Engine(const wf::DefinitionStore* definitions, ProgramRegistry* programs,
         EngineOptions options = {});

  /// Attaches a navigation journal. Must happen before any StartProcess.
  /// Every navigation step is appended before it is applied; buffered
  /// appends are flushed at every navigation quiescence point.
  Status AttachJournal(wfjournal::Journal* journal);

  /// Attaches the organization; enables manual activities and worklists.
  Status AttachOrganization(const org::Directory* directory);

  // --- driving --------------------------------------------------------------

  /// Creates an instance of `process_name`. `input` (optional) must match
  /// the process input container type. Returns the instance id. The
  /// instance does not advance until Run().
  Result<std::string> StartProcess(const std::string& process_name,
                                   const data::Container* input = nullptr);

  /// Executes automatic activities until quiescent: every instance is
  /// finished or blocked on manual work items.
  Status Run();

  /// Bounded Run(): pops at most `max_steps` ready-queue entries, then
  /// flushes the journal and reports whether the queue drained. The fleet's
  /// work-stealing driver runs engines in slices so steal requests are
  /// served at bounded latency; `max_steps <= 0` behaves like Run().
  Status RunSlice(int max_steps, bool* quiescent);

  /// Convenience: StartProcess + Run; fails if the instance stalls on
  /// manual work. Returns the instance id.
  Result<std::string> RunToCompletion(const std::string& process_name,
                                      const data::Container* input = nullptr);

  // --- inspection -----------------------------------------------------------

  Result<const ProcessInstance*> FindInstance(const std::string& id) const;
  bool IsFinished(const std::string& id) const;
  bool IsCancelled(const std::string& id) const;
  bool IsSuspended(const std::string& id) const;
  /// True if the instance was quarantined (terminal failed state).
  bool IsFailed(const std::string& id) const;

  /// \brief A quarantined top-level instance.
  struct FailedInstance {
    std::string id;
    std::string reason;
  };

  /// Top-level instances quarantined so far, in failure order. Their
  /// journaled state survives, so a saga's compensation process can still
  /// be run against the committed-state image.
  const std::vector<FailedInstance>& FailedInstances() const {
    return failed_;
  }
  /// Output container of a finished instance.
  Result<data::Container> OutputOf(const std::string& id) const;
  Result<wf::ActivityState> StateOf(const std::string& id,
                                    const std::string& activity) const;

  const AuditTrail& audit() const { return audit_; }
  const EngineStats& stats() const { return stats_; }

  /// Live monitoring hook (§3.3): called synchronously for every audit
  /// event as navigation produces it. Keep the callback cheap; it runs on
  /// the navigation path. Pass nullptr to detach.
  using AuditObserver = std::function<void(const AuditEvent&)>;
  void SetObserver(AuditObserver observer) {
    observer_ = std::move(observer);
  }

  /// Instance ids in creation order.
  const std::vector<std::string>& instance_order() const {
    return instance_order_;
  }

  // --- manual work ----------------------------------------------------------

  org::WorklistService* worklists() { return worklists_.get(); }

  /// Claims a posted work item for `person` (withdraws it everywhere else).
  Status Claim(org::WorkItemId id, const std::string& person);

  /// Runs the claimed item's program as `person`, completes the item, and
  /// navigates onward (Run()).
  Status ExecuteWorkItem(org::WorkItemId id, const std::string& person);

  /// Completion report for an asynchronous activity: a program that
  /// returned Status::Pending left its activity running; the external
  /// system reports the outcome here. Journals the result and navigates
  /// onward (Run()).
  Status CompleteAsync(const std::string& instance_id,
                       const std::string& activity,
                       const data::Container& output);

  /// User intervention (§3.3: "The user can ... force it to finish"):
  /// completes a ready activity with the given output container without
  /// running its program, then navigates onward.
  Status ForceFinish(const std::string& instance_id,
                     const std::string& activity,
                     const data::Container& output);

  /// Raises deadline notifications for overdue work items.
  std::vector<org::Notification> CheckDeadlines();

  // --- instance lifecycle control (§3.3 user intervention) -------------------

  /// Pauses navigation of a top-level instance (and its block children):
  /// ready automatic activities stop being dispatched and posted work
  /// items are withdrawn. Journaled, so a suspension survives a crash.
  Status SuspendInstance(const std::string& instance_id);

  /// Resumes a suspended instance: ready activities are re-dispatched and
  /// manual work items reposted. Follow with Run().
  Status ResumeSuspended(const std::string& instance_id);

  /// User-initiated termination of a top-level instance: every unsettled
  /// activity (recursively through block children) is terminated via dead
  /// path, work items are withdrawn, and the instance finishes in the
  /// `cancelled` state without continuing into successors.
  Status CancelInstance(const std::string& instance_id);

  // --- instance migration (work stealing) ------------------------------------

  /// Picks a top-level instance suitable for Detach: the tail-most ready
  /// family that is not the one at the head of the queue, so the victim
  /// always keeps work. NotFound when the queue holds fewer than two
  /// distinct families.
  Result<std::string> PickDetachable() const;

  /// Detaches a top-level instance and its block-child subtree for
  /// migration to another engine. Journals the full family image
  /// (kInstanceDetached) and flushes before releasing it, so a handoff
  /// that crashes mid-flight is recoverable from this journal; the local
  /// slots become dead husks (ready-queue entries purged, ids unindexed).
  /// Refuses block children, finished/quarantined/already-detached
  /// instances, posted work items, and in-flight asynchronous programs.
  Result<DetachedInstance> Detach(const std::string& instance_id);

  /// Adopts a detached family: journals the image (kInstanceAdopted, so
  /// this journal replays self-contained), materializes every member via
  /// the spin-up arena, overlays the imaged state, and enqueues ready
  /// automatic activities. Fails without touching engine state on
  /// malformed images, unknown definitions, or id collisions.
  Status Adopt(const DetachedInstance& detached);

  /// Depth of the ready queue — the load metric workers publish to the
  /// fleet's steal coordinator.
  size_t ready_depth() const { return ready_queue_.size(); }

  /// Top-level instances that are neither finished, failed, nor detached.
  size_t unfinished_top_level() const;

  /// Counts a steal attempt that came back empty (stats only).
  void NoteStealFailed() { ++stats_.steals_failed; }

  /// Counts an adaptive steal-slice halving (stats only; the fleet's
  /// worker loop owns the slice itself).
  void NoteStealSliceShrink() { ++stats_.steal_slice_shrinks; }

  /// Counts a cost-aware victim selection that diverged from plain
  /// deepest-queue (stats only; the fleet's worker loop picks victims).
  void NoteStealCostPick() { ++stats_.steal_victim_cost_picks; }

  /// EWMA of observed automatic-program execution cost in microseconds —
  /// the per-engine activity-cost signal the fleet's cost-aware steal
  /// victim picking multiplies into queue depth. 0 until the first
  /// sampled execution.
  double mean_activity_cost_micros() const { return cost_ewma_micros_; }

  /// Registers a fleet-owned spin-up arena for `def`. Shared arenas are
  /// immutable once built and consulted before the engine's private cache,
  /// so every engine in a fleet spins instances of `def` up from one image
  /// instead of each building its own. `arena` must outlive the engine.
  void ShareArena(const wf::ProcessDefinition* def, const InstanceArena* arena) {
    shared_arenas_[def] = arena;
  }

  /// Surrenders the retained image of an instance this engine detached
  /// before a crash, as recovered from the journal. The fleet re-adopts a
  /// dangling handoff from here when no engine's journal shows the adopt.
  Result<DetachedInstance> TakeDetachedImage(const std::string& root_id);

  /// Root ids of every retained dangling-handoff image (journal-replay
  /// kInstanceDetached records with no matching adopt seen yet) — the
  /// fleet's post-recovery pass resolves these.
  std::vector<std::string> RetainedDetachedRoots() const;

  // --- checkpointing ----------------------------------------------------------

  /// Writes a snapshot checkpoint: rotates the journal to a fresh segment,
  /// appends one kSnapshot record carrying the image of every live
  /// instance family (finished/cancelled top-level trees are dropped —
  /// that is what makes recovery O(live state)), flushes, and truncates
  /// every journal segment wholly behind the snapshot. Also drops retained
  /// dangling-handoff images — their re-adoption window (the fleet's
  /// post-recovery pass) is over. Requires an attached journal.
  Status Checkpoint();

  // --- recovery ---------------------------------------------------------------

  /// Rebuilds all instances from the attached journal (replay), then
  /// resumes every unfinished instance from the exact point of failure:
  /// in-flight program activities are rescheduled from the beginning
  /// (at-least-once), interrupted navigation steps (connector evaluation,
  /// exit checks, joins) are completed. Call on a fresh engine; follow
  /// with Run(). Replay streams records through Journal::Visit, so the
  /// journal is never copied wholesale into memory.
  Status Recover();

 private:
  // Journaling helper; no-op without a journal. Call sites with expensive
  // payloads (container serialization) guard on journal_ themselves so the
  // payload is never built when no journal is attached.
  Status JournalAppend(wfjournal::EventType type, const std::string& instance,
                       const std::string& activity = "",
                       const std::string& to = "", bool flag = false,
                       std::string payload = "", std::string extra = "");

  /// Flushes group-committed journal writes; no-op without a journal.
  Status FlushJournal();

  void Audit(AuditKind kind, const std::string& instance,
             const std::string& activity = "", std::string detail = "");

  std::string NewInstanceId();
  Result<ProcessInstance*> MutableInstance(const std::string& id);

  /// Copy-from-prototype container construction: one registry walk per
  /// type name per engine, then O(fields) copies.
  Result<data::Container> NewContainer(const std::string& type_name);

  /// Creates (and journals) a new instance; readies its start activities.
  Result<std::string> CreateInstance(const wf::ProcessDefinition* definition,
                                     const data::Container* input,
                                     const std::string& parent_instance,
                                     const std::string& parent_activity);

  /// Allocates runtime state for every activity (arena copy, or the legacy
  /// prototype walk when spinup_arena is off) and applies process-input
  /// data connectors.
  Status InitializeRuntimes(ProcessInstance* inst);

  /// Packed layout: cold containers start default-constructed; these
  /// materialize them (arena prototype copy, or a registry walk without
  /// an arena) on first touch. No-ops on the legacy layout and on
  /// already-materialized containers.
  Status MaterializeActivityInput(ProcessInstance* inst, uint32_t aid);
  Status MaterializeActivityOutput(ProcessInstance* inst, uint32_t aid);

  /// Lazily built per-definition spin-up image.
  Result<const InstanceArena*> ArenaFor(const wf::ProcessDefinition* def);

  /// Root + block-child subtree, parents before children.
  Status CollectFamily(ProcessInstance* root,
                       std::vector<ProcessInstance*>* family);

  /// Decode + validate + materialize a detached family; shared by Adopt
  /// and kInstanceAdopted replay (journaling is the caller's business).
  Status ApplyAdopt(const DetachedInstance& detached);

  /// Rebuilds one family member from its image via the arena, overlays the
  /// imaged state, and (outside recovery) enqueues its ready activities.
  Status MaterializeImage(const InstanceImage& image);

  /// Marks a family member's slot as a dead husk: detached flag, purged
  /// ready-queue entries, id unindexed.
  void ReleaseSlot(ProcessInstance* inst);

  Status ReadyStartActivities(ProcessInstance* inst);
  Status MakeReady(ProcessInstance* inst, uint32_t aid);
  void Enqueue(ProcessInstance* inst, uint32_t aid);

  /// Posts a work item for a manual activity; `no_worklists_error` is the
  /// site-specific message when no organization is attached.
  Status PostWorkItem(ProcessInstance* inst, uint32_t aid,
                      const char* no_worklists_error);

  /// Drains the ready queue (the body of Run(), sans journal flush);
  /// `limit > 0` bounds the number of entries popped.
  Status Drain(int limit);

  /// Runs one ready activity (program call or block spawn).
  Status StartExecution(ProcessInstance* inst, uint32_t aid,
                        const std::string& person);

  /// Crash-retry decision for a failed program attempt: retry (with
  /// backoff) under the activity's RetryPolicy, or quarantine the
  /// instance. Returns OK in both cases — navigation of other instances
  /// continues.
  Status HandleProgramFailure(ProcessInstance* inst, uint32_t aid,
                              const Status& error);

  /// Policy for `activity` (per-activity override or the engine default).
  const RetryPolicy& PolicyFor(const std::string& activity) const;

  /// Deterministic backoff delay before the `failures`-th retry.
  Micros BackoffDelay(const RetryPolicy& policy, int failures,
                      const std::string& instance,
                      const std::string& activity) const;

  /// Quarantines the top-level instance owning `inst`: journals the
  /// failure, settles every unsettled activity (recursively through block
  /// children), withdraws work items, and records the instance as failed.
  Status QuarantineInstance(ProcessInstance* inst, std::string reason);

  /// Post-execution: exit condition check → terminate or reschedule.
  Status HandleFinished(ProcessInstance* inst, uint32_t aid);

  Status Reschedule(ProcessInstance* inst, uint32_t aid,
                    const std::string& reason);

  Status Terminate(ProcessInstance* inst, uint32_t aid);

  /// Dead path elimination for one activity.
  Status MarkDead(ProcessInstance* inst, uint32_t aid);

  /// Evaluates this activity's not-yet-evaluated outgoing control
  /// connectors (all false when `all_false`), journals them, and delivers
  /// the signals. Dispatches to RunStepProgram when
  /// EngineOptions::use_step_programs is on.
  Status EvaluateOutgoing(ProcessInstance* inst, uint32_t aid, bool all_false);

  /// The fused-sweep equivalent of the interpreted EvaluateOutgoing body:
  /// executes the activity's plan-compiled step program on a threaded
  /// dispatch loop (step.cc). Byte-identical journal records, audit
  /// events, stats, and error messages.
  Status RunStepProgram(ProcessInstance* inst, uint32_t aid, bool all_false);

  /// Dispatches the sweep to the plan's native step function when one was
  /// compiled for this activity (native_step.cc). Returns true when the
  /// native path ran to a decision (*out_status holds the sweep's result),
  /// false when the caller must fall back to RunStepProgram.
  bool TryNativeStepProgram(ProcessInstance* inst, uint32_t aid,
                            bool all_false, Status* out_status);

  /// Cold half of the native dispatch: first-encounter compile accounting
  /// for a plan this engine has not navigated before.
  void NoteNativePlan(const wf::NavigationPlan& plan,
                      const codegen::NativeStepUnit* unit);

  /// The C++ half of a native sweep's record block: journal + audit for
  /// one freshly evaluated connector, in RunStepProgram's exact order.
  /// Returns 0 or a native_err code (the Status is stashed in
  /// native_record_status_).
  static uint64_t NativeRecordThunk(codegen::NativeStepCtx* ctx,
                                    uint32_t step_idx);

  /// Rebuilds the interpreter's exact Status from a native error code.
  Status DecodeNativeError(const ProcessInstance* inst, uint32_t aid,
                           uint64_t code);

  /// Evaluates compiled condition program `index` of `inst`'s plan
  /// against `input`, honoring use_typed_conditions and counting
  /// vm/typed stats.
  Result<bool> EvalVmCondition(const ProcessInstance* inst, int32_t index,
                               const data::Container& input);

  Status DeliverSignal(ProcessInstance* inst, uint32_t connector_index,
                       bool value);

  /// Applies the join decision for a waiting activity from its recorded
  /// incoming evaluations. Used on signal delivery and during recovery.
  Status ApplyJoin(ProcessInstance* inst, uint32_t aid);

  /// Pushes data connectors whose source is `aid`.
  Status PushData(ProcessInstance* inst, uint32_t aid);

  Status CheckInstanceCompletion(ProcessInstance* inst);

  /// Parent-side continuation when a block child finishes.
  Status ContinueParent(ProcessInstance* child);

  // Lifecycle helpers shared by the public API and journal replay.
  Status ApplySuspend(ProcessInstance* inst);
  Status ApplyResume(ProcessInstance* inst);
  Status ApplyCancel(ProcessInstance* inst);
  Status ApplyFailed(ProcessInstance* inst, const std::string& reason);

  /// Checkpoint() when snapshot_interval committed records have
  /// accumulated since the last snapshot; no-op otherwise.
  Status MaybeCheckpoint();

  // Recovery passes.
  Status ReplayRecord(const wfjournal::Record& record);
  /// kSnapshot replay: resets the engine and materializes the snapshot's
  /// images (the record supersedes everything replayed before it).
  Status ReplaySnapshot(const wfjournal::Record& record);
  Status ResumeAfterReplay(ProcessInstance* inst);

  /// Advances next_instance_ past a recovered "<prefix>wf-N" id.
  void NoteRecoveredId(const std::string& id);

  const wf::DefinitionStore* definitions_;
  ProgramRegistry* programs_;
  EngineOptions options_;
  const Clock* clock_;

  wfjournal::Journal* journal_ = nullptr;
  const org::Directory* directory_ = nullptr;
  std::unique_ptr<org::WorklistService> worklists_;

  /// Instances in creation order; deque for stable addresses. Never
  /// erased, so a ready-queue (instance index, activity id) pair is always
  /// resolvable in O(1).
  std::deque<ProcessInstance> instances_;
  std::map<std::string, uint32_t> instance_index_;
  std::vector<std::string> instance_order_;
  uint64_t next_instance_ = 1;

  std::deque<std::pair<uint32_t, uint32_t>> ready_queue_;

  std::unordered_map<std::string, data::Container> container_protos_;
  std::unordered_map<const wf::ProcessDefinition*, InstanceArena> arenas_;
  /// Fleet-shared arenas (ShareArena), checked before the private cache.
  std::unordered_map<const wf::ProcessDefinition*, const InstanceArena*>
      shared_arenas_;

  /// Images of families this engine detached, retained during journal
  /// replay for dangling-handoff recovery (TakeDetachedImage).
  std::map<std::string, DetachedInstance> detached_images_;

  /// Pooled scratch for the outgoing sweep's fresh-evaluation list
  /// (swapped out for the duration of a sweep, so the reentrant
  /// DeliverSignal → ApplyJoin → MarkDead → sweep chain never aliases an
  /// in-use buffer; a nested sweep just starts from an empty pool).
  std::vector<std::pair<uint32_t, bool>> fresh_scratch_;

  /// Native-dispatch gate, resolved once in the constructor:
  /// use_native_step_programs requires the whole ladder below it.
  bool native_enabled_ = false;
  /// Plans whose native compile outcome was already folded into stats_
  /// (first-navigation accounting of programs_compiled / bailouts).
  /// native_last_plan_ short-circuits the set lookup on the dispatch hot
  /// path: sweeps overwhelmingly repeat the plan they just navigated.
  std::set<const wf::NavigationPlan*> native_counted_;
  const wf::NavigationPlan* native_last_plan_ = nullptr;
  /// Pooled fresh-signal buffer for native sweeps (same swap-out
  /// reentrancy discipline as fresh_scratch_).
  std::vector<codegen::FreshSignal> native_fresh_scratch_;
  /// Journal/audit failure stashed by NativeRecordThunk for the sweep
  /// wrapper to re-raise (native code can only return an integer).
  Status native_record_status_;

  AuditTrail audit_;
  AuditObserver observer_;
  EngineStats stats_;
  std::vector<FailedInstance> failed_;
  bool recovering_ = false;

  /// EWMA of automatic-program execution cost (mean_activity_cost_micros).
  /// Sampled every 8th execution so the hot path pays two clock reads
  /// only occasionally.
  double cost_ewma_micros_ = 0.0;
  uint64_t cost_sample_tick_ = 0;

  /// Committed records since the last snapshot (drives snapshot_interval).
  uint64_t records_since_snapshot_ = 0;
  /// Seq of the snapshot record seen during the current/last replay, if
  /// any — Recover() finishes an interrupted truncation behind it.
  uint64_t replay_snapshot_seq_ = 0;
  bool replay_saw_snapshot_ = false;
};

}  // namespace exotica::wfrt

#endif  // EXOTICA_WFRT_ENGINE_H_
